#include <gtest/gtest.h>

#include <cstdio>

#include "util/csv.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace activedp {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpties) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.123456, 4), "0.1235");
  EXPECT_EQ(FormatDouble(-1.0, 2), "-1.00");
}

TEST(CsvTest, RoundTripWithQuoting) {
  CsvWriter writer({"a", "b"});
  writer.AddRow({"plain", "with,comma"});
  writer.AddRow({"with\"quote", "x"});
  const std::string text = writer.ToString();
  Result<std::vector<std::vector<std::string>>> parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[1][1], "with,comma");
  EXPECT_EQ((*parsed)[2][0], "with\"quote");
}

TEST(CsvTest, NumericRow) {
  CsvWriter writer({"x", "y"});
  writer.AddNumericRow({1.5, 2.25}, 2);
  EXPECT_NE(writer.ToString().find("1.50,2.25"), std::string::npos);
}

TEST(CsvTest, ParseErrors) {
  EXPECT_FALSE(ParseCsv("a,\"unterminated").ok());
  EXPECT_FALSE(ParseCsv("a,b\"c").ok());
}

TEST(CsvTest, WriteAndReadFile) {
  const std::string path = testing::TempDir() + "/csv_test.csv";
  CsvWriter writer({"k", "v"});
  writer.AddRow({"key", "value"});
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  Result<std::string> content = ReadFile(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "k,v\nkey,value\n");
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadFile("/nonexistent/really/not.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"name", "v"});
  printer.AddRow({"a", "1"});
  printer.AddRow({"long-name", "2"});
  const std::string text = printer.ToString();
  // Every line has the same length.
  const std::vector<std::string> lines = Split(text, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].size(), lines[1].size());
  EXPECT_EQ(lines[0].size(), lines[2].size());
  EXPECT_EQ(lines[0].size(), lines[3].size());
}

TEST(TablePrinterTest, LabelledDoubleRow) {
  TablePrinter printer({"m", "x", "y"});
  printer.AddRow("row", {0.5, 0.25}, 2);
  EXPECT_NE(printer.ToString().find("0.50"), std::string::npos);
}

TEST(FlagsTest, ParsesAllSyntaxes) {
  FlagParser flags;
  flags.AddFlag("alpha", "0.5", "");
  flags.AddFlag("name", "x", "");
  flags.AddFlag("verbose", "false", "");
  flags.AddFlag("n", "1", "");
  const char* argv[] = {"prog",      "--alpha=0.75", "--name", "hello",
                        "--verbose", "pos1",         "--n",    "7"};
  ASSERT_TRUE(flags.Parse(8, const_cast<char**>(argv)).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha"), 0.75);
  EXPECT_EQ(flags.GetString("name"), "hello");
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetInt("n"), 7);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagParser flags;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, DefaultsApply) {
  FlagParser flags;
  flags.AddFlag("k", "3", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("k"), 3);
}

TEST(TimerTest, MeasuresNonNegativeTime) {
  Timer timer;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  timer.Reset();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace activedp
