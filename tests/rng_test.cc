#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace activedp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng a(7);
  Rng forked = a.Fork();
  // Forked stream should not replay the parent stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == forked.Next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

class PoissonMeanTest : public testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndNonNegativity) {
  const double lambda = GetParam();
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int k = rng.Poisson(lambda);
    ASSERT_GE(k, 0);
    sum += k;
  }
  EXPECT_NEAR(sum / n, lambda, std::max(0.05, lambda * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMeanTest,
                         testing::Values(0.5, 2.0, 10.0, 29.0, 50.0, 200.0));

TEST(RngTest, DiscreteProportionalToWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int> sample = rng.SampleWithoutReplacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (int idx : sample) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(37);
  std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, SampleWithoutReplacementUniform) {
  // Each element should appear in a k-of-n sample with probability k/n.
  Rng rng(41);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (int idx : rng.SampleWithoutReplacement(10, 3)) ++counts[idx];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(trials), 0.3, 0.02);
  }
}

}  // namespace
}  // namespace activedp
