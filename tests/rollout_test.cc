#include "serve/rollout.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "serve/chaos_scenario.h"
#include "serve/prediction_service.h"
#include "serve/snapshot_registry.h"
#include "util/fault.h"

namespace activedp {
namespace {

RolloutOptions SmallWindow(int window, double fraction, uint64_t seed) {
  RolloutOptions options;
  options.window = window;
  options.canary_fraction = fraction;
  options.min_canary_samples = 1;
  options.seed = seed;
  return options;
}

TEST(RolloutControllerTest, RoutingIsAPureFunctionOfSeedAndIndex) {
  const RolloutController first(SmallWindow(64, 0.3, 17));
  const RolloutController second(SmallWindow(64, 0.3, 17));
  const RolloutController other_seed(SmallWindow(64, 0.3, 18));
  int canaries = 0;
  int seed_differences = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(first.RoutesToCanary(i), second.RoutesToCanary(i)) << i;
    if (first.RoutesToCanary(i)) ++canaries;
    if (first.RoutesToCanary(i) != other_seed.RoutesToCanary(i)) {
      ++seed_differences;
    }
  }
  // Roughly the requested fraction, and a different seed routes differently.
  EXPECT_GT(canaries, 200);
  EXPECT_LT(canaries, 400);
  EXPECT_GT(seed_differences, 0);

  const RolloutController none(SmallWindow(64, 0.0, 17));
  const RolloutController all(SmallWindow(64, 1.0, 17));
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(none.RoutesToCanary(i));
    EXPECT_TRUE(all.RoutesToCanary(i));
  }
}

TEST(RolloutControllerTest, WindowCompletesOnlyWhenEveryIndexIsRecorded) {
  RolloutController controller(SmallWindow(4, 0.5, 1));
  EXPECT_FALSE(controller.WindowComplete());
  controller.RecordOutcome(0, true, true, 0.1);
  controller.RecordOutcome(1, true, true, 0.1);
  controller.RecordOutcome(3, true, true, 0.1);
  EXPECT_FALSE(controller.WindowComplete());
  controller.RecordOutcome(2, true, true, 0.1);
  EXPECT_TRUE(controller.WindowComplete());
}

/// Deterministic synthetic outcome for request `index` — same inputs no
/// matter which thread records them.
struct SyntheticOutcome {
  bool ok;
  bool digest_match;
  double latency_ms;
};

SyntheticOutcome OutcomeFor(int64_t index) {
  return {index % 11 != 0, index % 13 != 0,
          0.25 + 0.05 * static_cast<double>(index % 7)};
}

void ExpectReportsEqual(const RolloutReport& a, const RolloutReport& b) {
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.canary.requests, b.canary.requests);
  EXPECT_EQ(a.canary.errors, b.canary.errors);
  EXPECT_EQ(a.baseline.requests, b.baseline.requests);
  EXPECT_EQ(a.baseline.errors, b.baseline.errors);
  EXPECT_EQ(a.digest_mismatches, b.digest_mismatches);
  // Latency entered slot-by-slot, folded in index order: bitwise equal too.
  EXPECT_EQ(a.canary.total_latency_ms, b.canary.total_latency_ms);
  EXPECT_EQ(a.baseline.total_latency_ms, b.baseline.total_latency_ms);
}

TEST(RolloutControllerTest, DecisionIsIndependentOfRecordingOrderAndThreads) {
  const RolloutOptions options = SmallWindow(240, 0.25, 42);

  RolloutController sequential(options);
  for (int64_t i = 0; i < options.window; ++i) {
    const SyntheticOutcome outcome = OutcomeFor(i);
    sequential.RecordOutcome(i, outcome.ok, outcome.digest_match,
                             outcome.latency_ms);
  }
  ASSERT_TRUE(sequential.WindowComplete());
  const RolloutReport reference = sequential.Decide();

  // Scrambled order, several recording threads, repeated runs: the folded
  // report must be identical every time.
  for (int trial = 0; trial < 3; ++trial) {
    RolloutController scrambled(options);
    std::vector<int64_t> order(options.window);
    for (int64_t i = 0; i < options.window; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), std::mt19937(1000 + trial));
    constexpr int kThreads = 8;
    std::vector<std::thread> recorders;
    recorders.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      recorders.emplace_back([&, t] {
        for (size_t i = t; i < order.size(); i += kThreads) {
          const SyntheticOutcome outcome = OutcomeFor(order[i]);
          scrambled.RecordOutcome(order[i], outcome.ok, outcome.digest_match,
                                  outcome.latency_ms);
        }
      });
    }
    for (std::thread& recorder : recorders) recorder.join();
    ASSERT_TRUE(scrambled.WindowComplete());
    ExpectReportsEqual(reference, scrambled.Decide());
  }
}

TEST(RolloutControllerTest, InsufficientCanarySamplesRollsBack) {
  RolloutOptions options = SmallWindow(16, 0.0, 3);
  options.min_canary_samples = 4;
  RolloutController controller(options);
  for (int64_t i = 0; i < options.window; ++i) {
    controller.RecordOutcome(i, true, true, 0.1);
  }
  const RolloutReport report = controller.Decide();
  EXPECT_EQ(report.decision, RolloutDecision::kRollback);
  EXPECT_NE(report.reason.find("insufficient canary samples"),
            std::string::npos)
      << report.reason;
}

TEST(RolloutControllerTest, CanaryErrorRateAboveBaselineRollsBack) {
  const RolloutOptions options = SmallWindow(64, 0.5, 9);
  RolloutController healthy(options);
  RolloutController faulty(options);
  for (int64_t i = 0; i < options.window; ++i) {
    const bool canary = healthy.RoutesToCanary(i);
    healthy.RecordOutcome(i, true, true, 0.1);
    faulty.RecordOutcome(i, !canary, true, 0.1);  // every canary call fails
  }
  EXPECT_EQ(healthy.Decide().decision, RolloutDecision::kPromote);
  const RolloutReport report = faulty.Decide();
  EXPECT_EQ(report.decision, RolloutDecision::kRollback);
  EXPECT_GT(report.canary.error_rate(), report.baseline.error_rate());
}

TEST(RolloutControllerTest, DigestMismatchesOnlyDecideWhenRequired) {
  RolloutOptions options = SmallWindow(64, 0.5, 9);
  RolloutController counting(options);
  options.require_digest_match = true;
  RolloutController gating(options);
  for (int64_t i = 0; i < options.window; ++i) {
    const bool canary = counting.RoutesToCanary(i);
    counting.RecordOutcome(i, true, !canary, 0.1);
    gating.RecordOutcome(i, true, !canary, 0.1);
  }
  const RolloutReport informational = counting.Decide();
  EXPECT_EQ(informational.decision, RolloutDecision::kPromote);
  EXPECT_GT(informational.digest_mismatches, 0);
  EXPECT_EQ(gating.Decide().decision, RolloutDecision::kRollback);
}

TEST(RolloutControllerTest, LatencyIsInformationalUnlessARatioIsSet) {
  RolloutOptions options = SmallWindow(64, 0.5, 9);
  RolloutController informational(options);
  options.max_latency_ratio = 1.5;
  RolloutController gated(options);
  for (int64_t i = 0; i < options.window; ++i) {
    const bool canary = informational.RoutesToCanary(i);
    const double latency_ms = canary ? 10.0 : 1.0;
    informational.RecordOutcome(i, true, true, latency_ms);
    gated.RecordOutcome(i, true, true, latency_ms);
  }
  const RolloutReport report = informational.Decide();
  EXPECT_EQ(report.decision, RolloutDecision::kPromote);
  EXPECT_GT(report.latency_ratio, 1.5);
  EXPECT_EQ(gated.Decide().decision, RolloutDecision::kRollback);
}

/// End-to-end staged rollouts against a real trained fixture (two exported
/// snapshots on disk + a request trace). Built once per suite — training is
/// the expensive part.
class StagedRolloutTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<ServeChaosFixture> fixture = BuildServeChaosFixture(
        testing::TempDir() + "/rollout_test", "youtube", /*scale=*/0.1,
        /*seed=*/7, /*steps_a=*/12, /*steps_b=*/6, /*trace_size=*/48);
    ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
    fixture_ = new ServeChaosFixture(std::move(*fixture));
  }

  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }

  /// Fresh registry with A registered+active and B registered as candidate.
  struct Stage {
    SnapshotRegistry registry;
    int64_t id_a = 0;
    int64_t id_b = 0;
  };

  static Stage MakeStage(const std::string& tag) {
    const std::string manifest =
        fixture_->dir + "/rollout_test_" + tag + ".manifest";
    std::remove(manifest.c_str());
    Stage stage{*SnapshotRegistry::Open(manifest)};
    stage.id_a =
        *stage.registry.Register(fixture_->snapshot_a_path, -1, "baseline");
    EXPECT_TRUE(stage.registry.Activate(stage.id_a).ok());
    stage.id_b = *stage.registry.Register(fixture_->snapshot_b_path,
                                          stage.id_a, "candidate");
    return stage;
  }

  static RolloutOptions TraceOptions(int client_threads) {
    RolloutOptions options;
    options.canary_fraction = 0.3;
    options.window = static_cast<int>(fixture_->trace.size());
    options.min_canary_samples = 4;
    options.seed = 0x5eed;
    options.client_threads = client_threads;
    return options;
  }

  static ServeChaosFixture* fixture_;
};

ServeChaosFixture* StagedRolloutTest::fixture_ = nullptr;

TEST_F(StagedRolloutTest, HealthyCandidateIsPromotedAndHotSwappedIn) {
  Stage stage = MakeStage("promote");
  PredictionService service;
  service.LoadSnapshot(fixture_->snapshot_a);

  const Result<RolloutReport> report = RunStagedRollout(
      service, stage.registry, stage.id_b, fixture_->trace, TraceOptions(2));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->decision, RolloutDecision::kPromote) << report->Summary();
  EXPECT_EQ(report->canary.errors, 0);
  EXPECT_EQ(report->baseline.errors, 0);
  EXPECT_EQ(stage.registry.active_id(), stage.id_b);
  EXPECT_EQ(stage.registry.Get(stage.id_a)->status, SnapshotStatus::kRetired);

  // The service was hot-swapped to the candidate: it now serves B's bitwise
  // predictions.
  const Result<ServedPrediction> served = service.Predict(fixture_->trace[0]);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(PredictionDigest(*served), fixture_->digests_b[0]);
}

TEST_F(StagedRolloutTest, FaultyCanaryIsRolledBackAndNeverServed) {
  Stage stage = MakeStage("rollback");
  PredictionService service;
  service.LoadSnapshot(fixture_->snapshot_a);

  FaultScope scope("rollout.canary", FaultKind::kError);
  const Result<RolloutReport> report = RunStagedRollout(
      service, stage.registry, stage.id_b, fixture_->trace, TraceOptions(2));
  EXPECT_GT(scope.fire_count(), 0);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->decision, RolloutDecision::kRollback) << report->Summary();
  EXPECT_GT(report->canary.errors, 0);
  EXPECT_EQ(stage.registry.active_id(), stage.id_a);
  EXPECT_EQ(stage.registry.Get(stage.id_b)->status, SnapshotStatus::kFailed);

  // The data plane never saw the condemned candidate.
  const Result<ServedPrediction> served = service.Predict(fixture_->trace[0]);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(PredictionDigest(*served), fixture_->digests_a[0]);
}

TEST_F(StagedRolloutTest, SameTraceAndSeedDecideIdenticallyAcrossThreads) {
  RolloutReport reference;
  for (int pass = 0; pass < 2; ++pass) {
    const int threads[] = {1, 4};
    Stage stage = MakeStage("threads_" + std::to_string(pass));
    PredictionService service;
    service.LoadSnapshot(fixture_->snapshot_a);
    const Result<RolloutReport> report =
        RunStagedRollout(service, stage.registry, stage.id_b, fixture_->trace,
                         TraceOptions(threads[pass]));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (pass == 0) {
      reference = *report;
      continue;
    }
    EXPECT_EQ(report->decision, reference.decision);
    EXPECT_EQ(report->reason, reference.reason);
    EXPECT_EQ(report->canary.requests, reference.canary.requests);
    EXPECT_EQ(report->canary.errors, reference.canary.errors);
    EXPECT_EQ(report->baseline.requests, reference.baseline.requests);
    EXPECT_EQ(report->baseline.errors, reference.baseline.errors);
    EXPECT_EQ(report->digest_mismatches, reference.digest_mismatches);
  }
}

}  // namespace
}  // namespace activedp
