#include <gtest/gtest.h>

#include <cmath>

#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace activedp {
namespace {

void MakeRegressionData(int n, Rng& rng, std::vector<std::vector<double>>* x,
                        std::vector<double>* y) {
  // y = step function of x0 plus noise; x1 is irrelevant.
  for (int i = 0; i < n; ++i) {
    const double a = rng.Uniform(-1.0, 1.0);
    const double b = rng.Uniform(-1.0, 1.0);
    x->push_back({a, b});
    y->push_back((a > 0.0 ? 2.0 : -2.0) + rng.Normal(0.0, 0.1));
  }
}

TEST(DecisionTreeTest, FitsStepFunction) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeRegressionData(400, rng, &x, &y);
  DecisionTreeOptions options;
  Result<DecisionTreeRegressor> tree =
      DecisionTreeRegressor::Fit(x, y, options, rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_NEAR(tree->Predict({0.5, 0.0}), 2.0, 0.3);
  EXPECT_NEAR(tree->Predict({-0.5, 0.0}), -2.0, 0.3);
}

TEST(DecisionTreeTest, DepthZeroIsConstantMean) {
  Rng rng(5);
  std::vector<std::vector<double>> x = {{0}, {1}, {2}, {3}};
  std::vector<double> y = {1.0, 2.0, 3.0, 6.0};
  DecisionTreeOptions options;
  options.max_depth = 0;
  Result<DecisionTreeRegressor> tree =
      DecisionTreeRegressor::Fit(x, y, options, rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->node_count(), 1);
  EXPECT_DOUBLE_EQ(tree->Predict({0}), 3.0);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(static_cast<double>(i));
  }
  DecisionTreeOptions options;
  options.min_samples_leaf = 5;
  options.max_depth = 10;
  Result<DecisionTreeRegressor> tree =
      DecisionTreeRegressor::Fit(x, y, options, rng);
  ASSERT_TRUE(tree.ok());
  // Only one split is possible (5 | 5).
  EXPECT_LE(tree->node_count(), 3);
}

TEST(DecisionTreeTest, ConstantFeaturesYieldLeaf) {
  Rng rng(9);
  std::vector<std::vector<double>> x = {{1, 1}, {1, 1}, {1, 1}, {1, 1}};
  std::vector<double> y = {1, 2, 3, 4};
  Result<DecisionTreeRegressor> tree =
      DecisionTreeRegressor::Fit(x, y, DecisionTreeOptions{}, rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->node_count(), 1);
  EXPECT_DOUBLE_EQ(tree->Predict({1, 1}), 2.5);
}

TEST(DecisionTreeTest, RowSubsetTrainsOnSubsetOnly) {
  Rng rng(11);
  std::vector<std::vector<double>> x = {{0}, {1}, {2}, {3}};
  std::vector<double> y = {10, 10, -10, -10};
  Result<DecisionTreeRegressor> tree = DecisionTreeRegressor::Fit(
      x, y, DecisionTreeOptions{}, rng, /*row_indices=*/{0, 1});
  ASSERT_TRUE(tree.ok());
  EXPECT_DOUBLE_EQ(tree->Predict({3}), 10.0);  // never saw the -10s
}

TEST(DecisionTreeTest, RejectsInvalidInput) {
  Rng rng(1);
  EXPECT_FALSE(DecisionTreeRegressor::Fit({}, {}, {}, rng).ok());
  EXPECT_FALSE(
      DecisionTreeRegressor::Fit({{1.0}}, {1.0, 2.0}, {}, rng).ok());
}

TEST(RandomForestTest, BeatsSingleTreeOnNoisyData) {
  Rng rng(13);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeRegressionData(500, rng, &x, &y);
  RandomForestOptions options;
  options.num_trees = 25;
  Result<RandomForestRegressor> forest =
      RandomForestRegressor::Fit(x, y, options, rng);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->num_trees(), 25);
  double mse = 0.0;
  std::vector<std::vector<double>> tx;
  std::vector<double> ty;
  MakeRegressionData(200, rng, &tx, &ty);
  for (size_t i = 0; i < tx.size(); ++i) {
    const double err = forest->Predict(tx[i]) - ty[i];
    mse += err * err;
  }
  mse /= tx.size();
  EXPECT_LT(mse, 0.5);
}

TEST(RandomForestTest, RejectsInvalidInput) {
  Rng rng(1);
  EXPECT_FALSE(RandomForestRegressor::Fit({}, {}, {}, rng).ok());
  RandomForestOptions bad;
  bad.num_trees = 0;
  EXPECT_FALSE(RandomForestRegressor::Fit({{1.0}}, {1.0}, bad, rng).ok());
}

TEST(RandomForestTest, PredictionIsAverageOfTrees) {
  // With bagging over a constant-target dataset every tree predicts the
  // constant, and so must the ensemble.
  Rng rng(17);
  std::vector<std::vector<double>> x(20, {0.0});
  std::vector<double> y(20, 7.0);
  for (int i = 0; i < 20; ++i) x[i][0] = i;
  Result<RandomForestRegressor> forest =
      RandomForestRegressor::Fit(x, y, {}, rng);
  ASSERT_TRUE(forest.ok());
  EXPECT_DOUBLE_EQ(forest->Predict({5.0}), 7.0);
}

}  // namespace
}  // namespace activedp
