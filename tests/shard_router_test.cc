#include "serve/shard_router.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/chaos_scenario.h"
#include "serve/rollout.h"
#include "serve/serve_config.h"
#include "serve/snapshot_registry.h"
#include "util/fault.h"

namespace activedp {
namespace {

/// Shared trained fixture: two snapshots (A = baseline, B = candidate) on
/// disk and in memory, a request trace, and per-row offline digests — the
/// bitwise ground truth every router test compares served replies against.
class ShardRouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<ServeChaosFixture> fixture = BuildServeChaosFixture(
        testing::TempDir() + "/shard_router_test", "youtube", /*scale=*/0.1,
        /*seed=*/7, /*steps_a=*/12, /*steps_b=*/6, /*trace_size=*/48);
    ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
    fixture_ = new ServeChaosFixture(std::move(*fixture));
  }

  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }

  static ServeConfig FastConfig(int num_shards) {
    ServeConfigBuilder builder;
    builder.set_num_shards(num_shards)
        .set_virtual_nodes(64)
        .set_max_batch_size(16)
        .set_max_batch_delay_ms(0.5);
    Result<ServeConfig> config = builder.Build();
    EXPECT_TRUE(config.ok()) << config.status().ToString();
    return *config;
  }

  /// Two tenant names that route to the same shard of `router` — the
  /// isolation tests need a noisy and a quiet tenant colocated so shedding
  /// one provably cannot be a shard-level effect.
  static std::pair<std::string, std::string> ColocatedTenants(
      const ShardRouter& router) {
    const std::string first = "tenant-0";
    const int shard = router.ShardFor(first);
    for (int i = 1; i < 1000; ++i) {
      const std::string other = "tenant-" + std::to_string(i);
      if (router.ShardFor(other) == shard) return {first, other};
    }
    ADD_FAILURE() << "no colocated tenant found in 1000 candidates";
    return {first, first};
  }

  static ServeRequest TenantRequest(const std::string& tenant_id, int row) {
    ServeRequest request;
    request.tenant_id = tenant_id;
    request.example = fixture_->trace[row % fixture_->trace.size()];
    return request;
  }

  static ServeChaosFixture* fixture_;
};

ServeChaosFixture* ShardRouterTest::fixture_ = nullptr;

TEST(ShardRouterRoutingTest, RoutingIsAPureFunctionOfTenantAndTopology) {
  for (int i = 0; i < 200; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i);
    const int shard = ShardRouter::ShardForKey(tenant, 4, 64);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    // Pure: the same (tenant, topology) always routes the same way.
    EXPECT_EQ(shard, ShardRouter::ShardForKey(tenant, 4, 64)) << tenant;
  }
  // Every shard takes a reasonable share of a uniform tenant population.
  std::vector<int> per_shard(4, 0);
  for (int i = 0; i < 400; ++i) {
    ++per_shard[ShardRouter::ShardForKey("tenant-" + std::to_string(i), 4,
                                         64)];
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(per_shard[s], 20) << "shard " << s << " nearly empty";
  }
}

TEST(ShardRouterRoutingTest, ShardCountChangeMovesBoundedKeys) {
  const int n = 1000;
  int moved = 0;
  for (int i = 0; i < n; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i);
    if (ShardRouter::ShardForKey(tenant, 4, 64) !=
        ShardRouter::ShardForKey(tenant, 5, 64)) {
      ++moved;
    }
  }
  // Consistent hashing: growing 4 → 5 shards should move ~1/5 of tenants,
  // never a wholesale reshuffle (modulo hashing would move ~4/5).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, n * 2 / 5) << "resharding moved " << moved << " of " << n;
}

TEST(ShardRouterRoutingTest, ServeConfigBuilderValidates) {
  EXPECT_TRUE(ServeConfigBuilder().Build().ok());

  ServeConfigBuilder bad_shards;
  bad_shards.set_num_shards(0);
  Result<ServeConfig> r1 = bad_shards.Build();
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r1.status().message().find("num_shards"), std::string::npos);

  ServeConfigBuilder bad_batch;
  bad_batch.set_max_batch_size(0);
  EXPECT_FALSE(bad_batch.Build().ok());

  ServeConfigBuilder bad_fraction;
  bad_fraction.set_canary_fraction(1.5);
  EXPECT_FALSE(bad_fraction.Build().ok());

  ServeConfigBuilder bad_samples;
  bad_samples.set_rollout_window(8).set_min_canary_samples(9);
  EXPECT_FALSE(bad_samples.Build().ok());

  ServeConfigBuilder bad_limits;
  TenantLimits limits;
  limits.max_in_flight = -1;
  bad_limits.set_default_tenant_limits(limits);
  EXPECT_FALSE(bad_limits.Build().ok());
}

TEST_F(ShardRouterTest, RoutesTenantsToTheirOwnSnapshots) {
  ShardRouter router(FastConfig(2));
  ASSERT_TRUE(router.AddTenant("alpha").ok());
  ASSERT_TRUE(router.AddTenant("beta").ok());
  // Registering twice is refused, not silently remapped.
  EXPECT_FALSE(router.AddTenant("alpha").ok());
  ASSERT_TRUE(router.SetTenantSnapshot("alpha", fixture_->snapshot_a).ok());
  ASSERT_TRUE(router.SetTenantSnapshot("beta", fixture_->snapshot_b).ok());

  // Tenant → shard placement agrees with the pure routing function.
  EXPECT_EQ(router.StatsFor("alpha")->shard, router.ShardFor("alpha"));

  for (int i = 0; i < 24; ++i) {
    const ServeReply via_alpha = router.Predict(TenantRequest("alpha", i));
    ASSERT_TRUE(via_alpha.ok()) << via_alpha.status.ToString();
    EXPECT_EQ(PredictionDigest(via_alpha.prediction), fixture_->digests_a[i])
        << "alpha row " << i;
    const ServeReply via_beta = router.Predict(TenantRequest("beta", i));
    ASSERT_TRUE(via_beta.ok()) << via_beta.status.ToString();
    EXPECT_EQ(PredictionDigest(via_beta.prediction), fixture_->digests_b[i])
        << "beta row " << i;
  }

  const ServeReply unknown = router.Predict(TenantRequest("nobody", 0));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status.code(), StatusCode::kNotFound);

  ServeRequest anonymous;
  anonymous.example = fixture_->trace[0];
  const ServeReply no_tenant = router.Predict(std::move(anonymous));
  ASSERT_FALSE(no_tenant.ok());
  EXPECT_EQ(no_tenant.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardRouterTest, OneTenantsOverloadNeverShedsAnother) {
  ShardRouter router(FastConfig(2));
  const auto [noisy, quiet] = ColocatedTenants(router);
  // Any warm EWMA exceeds this budget (the round-trip sample is floored
  // above zero), so after one served request every further noisy-tenant
  // admission sheds deterministically — the per-tenant analogue of the
  // service-level AdaptiveShedder test.
  TenantLimits tight;
  tight.max_queue_delay_ms = 0.0001;
  ASSERT_TRUE(router.AddTenant(noisy, tight).ok());
  ASSERT_TRUE(router.AddTenant(quiet).ok());
  ASSERT_TRUE(router.SetTenantSnapshot(noisy, fixture_->snapshot_a).ok());
  ASSERT_TRUE(router.SetTenantSnapshot(quiet, fixture_->snapshot_a).ok());

  // Warm the noisy tenant's EWMA.
  ASSERT_TRUE(router.Predict(TenantRequest(noisy, 0)).ok());

  int noisy_shed = 0;
  for (int i = 0; i < 16; ++i) {
    const ServeReply reply = router.Predict(TenantRequest(noisy, i));
    if (!reply.ok()) {
      EXPECT_EQ(reply.status.code(), StatusCode::kUnavailable);
      ASSERT_TRUE(reply.reject.has_value());
      EXPECT_EQ(reply.reject->reason, RejectReason::kOverloaded);
      EXPECT_GE(reply.reject->retry_after_ms, 1.0);
      ++noisy_shed;
    }
  }
  EXPECT_EQ(noisy_shed, 16) << "warm noisy tenant should shed every request";

  // The quiet tenant shares the shard and is completely untouched: zero
  // failed requests, bitwise-correct replies.
  for (int i = 0; i < 16; ++i) {
    const ServeReply reply = router.Predict(TenantRequest(quiet, i));
    ASSERT_TRUE(reply.ok()) << reply.status.ToString();
    EXPECT_EQ(PredictionDigest(reply.prediction), fixture_->digests_a[i]);
  }
  EXPECT_EQ(router.StatsFor(quiet)->shed, 0);
  EXPECT_EQ(router.StatsFor(noisy)->shed, 16);

  // priority >= 1 bypasses the tenant's adaptive shedder.
  ServeRequest urgent = TenantRequest(noisy, 0);
  urgent.priority = 1;
  EXPECT_TRUE(router.Predict(std::move(urgent)).ok());
}

TEST_F(ShardRouterTest, TenantQuotaRejectsWithStructuredInfo) {
  ServeConfig config = FastConfig(1);
  // Hold the micro-batch window open so the first request is still in
  // flight when the second arrives.
  config.service.max_batch_size = 64;
  config.service.max_batch_delay_ms = 200.0;
  ShardRouter router(config);
  TenantLimits one;
  one.max_in_flight = 1;
  ASSERT_TRUE(router.AddTenant("capped", one).ok());
  ASSERT_TRUE(router.SetTenantSnapshot("capped", fixture_->snapshot_a).ok());

  std::future<ServeReply> first = router.PredictAsync(TenantRequest("capped", 0));
  const ServeReply second = router.Predict(TenantRequest("capped", 1));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(second.reject.has_value());
  EXPECT_EQ(second.reject->reason, RejectReason::kQuotaExceeded);
  EXPECT_EQ(second.reject->queue_depth, 1);
  // Quota is a hard limit: priority does not bypass it.
  ServeRequest urgent = TenantRequest("capped", 2);
  urgent.priority = 1;
  const ServeReply still_capped = router.Predict(std::move(urgent));
  ASSERT_FALSE(still_capped.ok());
  EXPECT_EQ(still_capped.reject->reason, RejectReason::kQuotaExceeded);

  EXPECT_TRUE(first.get().ok());
  // Quota freed: the tenant serves again.
  EXPECT_TRUE(router.Predict(TenantRequest("capped", 3)).ok());
}

TEST_F(ShardRouterTest, PerTenantRolloutNeverTouchesOtherTenants) {
  ShardRouter router(FastConfig(2));
  ASSERT_TRUE(router.AddTenant("promoting").ok());
  ASSERT_TRUE(router.AddTenant("rolling-back").ok());

  const auto make_registry = [&](const std::string& tag) {
    const std::string manifest =
        fixture_->dir + "/router_" + tag + ".manifest";
    std::remove(manifest.c_str());
    return SnapshotRegistry::Open(manifest);
  };
  Result<SnapshotRegistry> promoting_registry = make_registry("promoting");
  ASSERT_TRUE(promoting_registry.ok());
  Result<SnapshotRegistry> rollback_registry = make_registry("rollback");
  ASSERT_TRUE(rollback_registry.ok());

  const auto seed_registry = [&](SnapshotRegistry& registry) {
    const int64_t id_a =
        *registry.Register(fixture_->snapshot_a_path, -1, "baseline");
    EXPECT_TRUE(registry.Activate(id_a).ok());
    return *registry.Register(fixture_->snapshot_b_path, id_a, "candidate");
  };
  const int64_t promote_candidate = seed_registry(*promoting_registry);
  const int64_t rollback_candidate = seed_registry(*rollback_registry);
  ASSERT_TRUE(
      router.AttachTenantRegistry("promoting", &*promoting_registry).ok());
  ASSERT_TRUE(
      router.AttachTenantRegistry("rolling-back", &*rollback_registry).ok());

  RolloutOptions options;
  options.window = 32;
  options.canary_fraction = 0.3;
  options.min_canary_samples = 1;
  options.seed = 11;
  options.client_threads = 2;

  // Tenant "promoting": healthy candidate, full promote. Its registry
  // activates the candidate and only *its* snapshot swaps.
  Result<RolloutReport> promoted = RunTenantStagedRollout(
      router, "promoting", promote_candidate, fixture_->trace, options);
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted->decision, RolloutDecision::kPromote)
      << promoted->Summary();
  EXPECT_EQ(promoting_registry->active_id(),
            std::optional<int64_t>(promote_candidate));

  // Tenant "rolling-back": the canary fault site makes its candidate look
  // unhealthy, forcing a deterministic rollback. Its registry condemns the
  // candidate and its serving snapshot stays on the baseline.
  Result<RolloutReport> rolled_back(Status::Internal("rollout never ran"));
  {
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    FaultScope scope("rollout.canary", spec);
    rolled_back = RunTenantStagedRollout(router, "rolling-back",
                                         rollback_candidate, fixture_->trace,
                                         options);
    EXPECT_GT(scope.fire_count(), 0);
  }
  ASSERT_TRUE(rolled_back.ok()) << rolled_back.status().ToString();
  EXPECT_EQ(rolled_back->decision, RolloutDecision::kRollback)
      << rolled_back->Summary();
  EXPECT_EQ(rollback_registry->Get(rollback_candidate)->status,
            SnapshotStatus::kFailed);
  EXPECT_NE(rollback_registry->active_id(),
            std::optional<int64_t>(rollback_candidate));

  // Cross-tenant digest gate: "promoting" serves the candidate bitwise,
  // "rolling-back" still serves the baseline bitwise — neither rollout
  // perturbed the other tenant.
  for (int i = 0; i < 24; ++i) {
    const ServeReply promoted_reply =
        router.Predict(TenantRequest("promoting", i));
    ASSERT_TRUE(promoted_reply.ok()) << promoted_reply.status.ToString();
    EXPECT_EQ(PredictionDigest(promoted_reply.prediction),
              fixture_->digests_b[i]);
    const ServeReply stable_reply =
        router.Predict(TenantRequest("rolling-back", i));
    ASSERT_TRUE(stable_reply.ok()) << stable_reply.status.ToString();
    EXPECT_EQ(PredictionDigest(stable_reply.prediction),
              fixture_->digests_a[i]);
  }
}

TEST_F(ShardRouterTest, ShutdownRejectsWithStructuredReason) {
  ShardRouter router(FastConfig(1));
  ASSERT_TRUE(router.AddTenant("alpha").ok());
  ASSERT_TRUE(router.SetTenantSnapshot("alpha", fixture_->snapshot_a).ok());
  ASSERT_TRUE(router.Predict(TenantRequest("alpha", 0)).ok());
  EXPECT_TRUE(router.CheckHealth().ok());

  router.Shutdown();
  EXPECT_FALSE(router.CheckHealth().ok());
  const ServeReply late = router.Predict(TenantRequest("alpha", 1));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(late.reject.has_value());
  EXPECT_EQ(late.reject->reason, RejectReason::kShutdown);
}

}  // namespace
}  // namespace activedp
