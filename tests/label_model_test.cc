#include <gtest/gtest.h>

#include <cmath>

#include "labelmodel/dawid_skene.h"
#include "labelmodel/generative_model.h"
#include "labelmodel/label_model.h"
#include "labelmodel/majority_vote.h"
#include "labelmodel/metal_completion.h"
#include "labelmodel/metal_model.h"
#include "math/vector_ops.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace activedp {
namespace {

/// Builds a label matrix from planted per-LF accuracies/coverages on a
/// binary problem and returns it with the true labels.
struct PlantedProblem {
  LabelMatrix matrix{0};
  std::vector<int> labels;
};

PlantedProblem MakePlanted(int n, const std::vector<double>& accuracies,
                           const std::vector<double>& coverages,
                           uint64_t seed, double positive_prior = 0.5) {
  Rng rng(seed);
  PlantedProblem problem;
  problem.matrix = LabelMatrix(n);
  problem.labels.resize(n);
  for (int i = 0; i < n; ++i) {
    problem.labels[i] = rng.Bernoulli(positive_prior) ? 1 : 0;
  }
  for (size_t j = 0; j < accuracies.size(); ++j) {
    std::vector<int8_t> column(n, kAbstain);
    for (int i = 0; i < n; ++i) {
      if (!rng.Bernoulli(coverages[j])) continue;
      const bool correct = rng.Bernoulli(accuracies[j]);
      column[i] = static_cast<int8_t>(
          correct ? problem.labels[i] : 1 - problem.labels[i]);
    }
    problem.matrix.AddColumn(std::move(column));
  }
  return problem;
}

class LabelModelParamTest : public testing::TestWithParam<LabelModelType> {};

TEST_P(LabelModelParamTest, BeatsBestSingleLfOnPlantedProblem) {
  const std::vector<double> accuracies = {0.85, 0.75, 0.7, 0.65, 0.8};
  const PlantedProblem problem =
      MakePlanted(3000, accuracies, {1.0, 1.0, 1.0, 1.0, 1.0}, 11);
  auto model = MakeLabelModel(GetParam());
  ASSERT_TRUE(model->Fit(problem.matrix, 2).ok());
  const std::vector<int> predictions = model->PredictAll(problem.matrix).value();
  const double accuracy = Accuracy(predictions, problem.labels);
  // Aggregation should beat the best individual LF (0.85).
  EXPECT_GT(accuracy, 0.86) << model->name();
}

TEST_P(LabelModelParamTest, ProbabilitiesAreDistributions) {
  const PlantedProblem problem =
      MakePlanted(500, {0.8, 0.7, 0.75}, {0.5, 0.5, 0.5}, 13);
  auto model = MakeLabelModel(GetParam());
  ASSERT_TRUE(model->Fit(problem.matrix, 2).ok());
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> p = model->PredictProba(problem.matrix.Row(i)).value();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
    EXPECT_GE(p[0], 0.0);
    EXPECT_GE(p[1], 0.0);
  }
}

TEST_P(LabelModelParamTest, AbstainRowsPredictAbstainInPredictAll) {
  LabelMatrix matrix(3);
  matrix.AddColumn({1, -1, 0});
  matrix.AddColumn({-1, -1, 1});
  auto model = MakeLabelModel(GetParam());
  ASSERT_TRUE(model->Fit(matrix, 2).ok());
  const std::vector<int> predictions = model->PredictAll(matrix).value();
  EXPECT_EQ(predictions[1], kAbstain);
  EXPECT_NE(predictions[0], kAbstain);
}

TEST_P(LabelModelParamTest, FitFailsWithoutColumns) {
  LabelMatrix empty(5);
  auto model = MakeLabelModel(GetParam());
  EXPECT_FALSE(model->Fit(empty, 2).ok());
}

INSTANTIATE_TEST_SUITE_P(AllModels, LabelModelParamTest,
                         testing::Values(LabelModelType::kMajorityVote,
                                         LabelModelType::kDawidSkene,
                                         LabelModelType::kMetal,
                                         LabelModelType::kMetalCompletion,
                                         LabelModelType::kGenerative));

TEST(MajorityVoteTest, FollowsMajority) {
  LabelMatrix matrix(1);
  matrix.AddColumn({1});
  matrix.AddColumn({1});
  matrix.AddColumn({0});
  MajorityVoteModel model;
  ASSERT_TRUE(model.Fit(matrix, 2).ok());
  EXPECT_EQ(ArgMax(model.PredictProba({1, 1, 0}).value()), 1);
  EXPECT_EQ(ArgMax(model.PredictProba({0, 0, 1}).value()), 0);
}

TEST(DawidSkeneTest, RecoversPlantedConfusions) {
  // LF 0 accurate (0.9), LF 1 adversarial (0.2 -> should be learned as
  // systematically flipped and still exploited).
  const PlantedProblem problem =
      MakePlanted(4000, {0.9, 0.2, 0.8}, {1.0, 1.0, 1.0}, 17);
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(problem.matrix, 2).ok());
  const double accuracy =
      Accuracy(model.PredictAll(problem.matrix).value(), problem.labels);
  EXPECT_GT(accuracy, 0.9);
  // Confusion of LF 0 is strongly diagonal (the better-than-random anchor
  // shades the exact values, so check dominance rather than equality)...
  const Matrix& confusion = model.confusion(0);
  EXPECT_GT(confusion(0, 0), 3.0 * confusion(0, 1));
  EXPECT_GT(confusion(1, 1), 3.0 * confusion(1, 0));
  // ...while the adversarial LF is learned as systematically flipped and
  // still exploited.
  const Matrix& adversarial = model.confusion(1);
  EXPECT_GT(adversarial(0, 1), adversarial(0, 0));
  EXPECT_GT(adversarial(1, 0), adversarial(1, 1));
}

TEST(DawidSkeneTest, MulticlassAggregation) {
  // Three classes, three decent LFs.
  Rng rng(19);
  const int n = 2000;
  LabelMatrix matrix(n);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = rng.UniformInt(3);
  for (int j = 0; j < 3; ++j) {
    std::vector<int8_t> column(n, kAbstain);
    for (int i = 0; i < n; ++i) {
      if (!rng.Bernoulli(0.7)) continue;
      if (rng.Bernoulli(0.75)) {
        column[i] = static_cast<int8_t>(labels[i]);
      } else {
        column[i] = static_cast<int8_t>(rng.UniformInt(3));
      }
    }
    matrix.AddColumn(std::move(column));
  }
  DawidSkeneModel model;
  ASSERT_TRUE(model.Fit(matrix, 3).ok());
  EXPECT_GT(Accuracy(model.PredictAll(matrix).value(), labels), 0.8);
}

TEST(MetalModelTest, RecoversPlantedAccuracyParameters) {
  const std::vector<double> accuracies = {0.9, 0.65, 0.8};
  const PlantedProblem problem =
      MakePlanted(8000, accuracies, {0.8, 0.8, 0.8}, 23);
  MetalModel model;
  ASSERT_TRUE(model.Fit(problem.matrix, 2).ok());
  for (size_t j = 0; j < accuracies.size(); ++j) {
    // a_j = 2 * accuracy - 1 under the planted model.
    EXPECT_NEAR(model.accuracy_param(static_cast<int>(j)),
                2.0 * accuracies[j] - 1.0, 0.1)
        << "LF " << j;
  }
}

TEST(MetalModelTest, EstimatesClassBalance) {
  const PlantedProblem problem =
      MakePlanted(5000, {0.85, 0.85, 0.85}, {0.9, 0.9, 0.9}, 29,
                  /*positive_prior=*/0.7);
  MetalModel model;
  ASSERT_TRUE(model.Fit(problem.matrix, 2).ok());
  EXPECT_NEAR(model.positive_prior(), 0.7, 0.05);
}

TEST(MetalModelTest, RejectsMulticlass) {
  LabelMatrix matrix(2);
  matrix.AddColumn({0, 2});
  MetalModel model;
  EXPECT_FALSE(model.Fit(matrix, 3).ok());
}

TEST(MetalModelTest, SingleLfFallsBackGracefully) {
  const PlantedProblem problem = MakePlanted(500, {0.9}, {0.8}, 31);
  MetalModel model;
  ASSERT_TRUE(model.Fit(problem.matrix, 2).ok());
  // With one LF the model must still follow its votes.
  EXPECT_GT(Accuracy(model.PredictAll(problem.matrix).value(), problem.labels), 0.85);
}

TEST(MetalModelTest, HigherAccuracyLfGetsMoreWeight) {
  const PlantedProblem problem =
      MakePlanted(6000, {0.95, 0.6, 0.75}, {0.9, 0.9, 0.9}, 37);
  MetalModel model;
  ASSERT_TRUE(model.Fit(problem.matrix, 2).ok());
  // Conflict between LF0 (strong) and LF1 (weak): follow LF0.
  const std::vector<double> p = model.PredictProba({1, 0, -1}).value();
  EXPECT_GT(p[1], 0.5);
}

TEST(MetalCompletionTest, RecoversPlantedAccuracyParameters) {
  const std::vector<double> accuracies = {0.9, 0.65, 0.8,  0.7, 0.85,
                                          0.75, 0.6, 0.82, 0.68};
  const PlantedProblem problem = MakePlanted(
      8000, accuracies, std::vector<double>(accuracies.size(), 0.8), 41);
  MetalCompletionModel model;
  ASSERT_TRUE(model.Fit(problem.matrix, 2).ok());
  EXPECT_FALSE(model.used_fallback());
  for (size_t j = 0; j < accuracies.size(); ++j) {
    EXPECT_NEAR(model.accuracy_param(static_cast<int>(j)),
                2.0 * accuracies[j] - 1.0, 0.12)
        << "LF " << j;
  }
}

TEST(MetalCompletionTest, SmallLfSetsUseTripletFallback) {
  const PlantedProblem problem =
      MakePlanted(2000, {0.9, 0.7, 0.8}, {0.8, 0.8, 0.8}, 47);
  MetalCompletionModel model;
  ASSERT_TRUE(model.Fit(problem.matrix, 2).ok());
  EXPECT_TRUE(model.used_fallback());
  // Accessors and prediction must work through the fallback.
  EXPECT_GT(model.accuracy_param(0), 0.0);
  EXPECT_GT(Accuracy(model.PredictAll(problem.matrix).value(), problem.labels), 0.85);
}

TEST(MetalCompletionTest, RejectsMulticlass) {
  LabelMatrix matrix(2);
  matrix.AddColumn({0, 2});
  MetalCompletionModel model;
  EXPECT_FALSE(model.Fit(matrix, 3).ok());
}

TEST(MetalCompletionTest, AggregatesConditionallyIndependentLfs) {
  const PlantedProblem problem = MakePlanted(
      4000, {0.85, 0.75, 0.7, 0.8, 0.65}, {1.0, 1.0, 1.0, 1.0, 1.0}, 43);
  MetalCompletionModel model;
  ASSERT_TRUE(model.Fit(problem.matrix, 2).ok());
  EXPECT_GT(Accuracy(model.PredictAll(problem.matrix).value(), problem.labels),
            0.86);
}

TEST(GenerativeModelTest, LearnsHigherThetaForBetterLfs) {
  const std::vector<double> accuracies = {0.9, 0.6, 0.8};
  const PlantedProblem problem =
      MakePlanted(6000, accuracies, {0.9, 0.9, 0.9}, 53);
  GenerativeModel model;
  ASSERT_TRUE(model.Fit(problem.matrix, 2).ok());
  EXPECT_GT(model.theta(0), model.theta(2));
  EXPECT_GT(model.theta(2), model.theta(1));
  EXPECT_GT(model.theta(1), 0.0);
  // sigmoid(2θ) approximates each LF's accuracy.
  for (size_t j = 0; j < accuracies.size(); ++j) {
    const double implied = 1.0 / (1.0 + std::exp(-2.0 * model.theta(j)));
    EXPECT_NEAR(implied, accuracies[j], 0.1) << "LF " << j;
  }
}

TEST(GenerativeModelTest, LearnsClassBias) {
  const PlantedProblem problem = MakePlanted(
      6000, {0.85, 0.8, 0.8}, {0.9, 0.9, 0.9}, 59, /*positive_prior=*/0.75);
  GenerativeModel model;
  ASSERT_TRUE(model.Fit(problem.matrix, 2).ok());
  EXPECT_GT(model.class_bias(), 0.05);
}

TEST(GenerativeModelTest, RejectsMulticlass) {
  LabelMatrix matrix(2);
  matrix.AddColumn({0, 2});
  GenerativeModel model;
  EXPECT_FALSE(model.Fit(matrix, 3).ok());
}

TEST(LabelModelFactoryTest, ParseNames) {
  EXPECT_EQ(ParseLabelModelType("mv"), LabelModelType::kMajorityVote);
  EXPECT_EQ(ParseLabelModelType("DS"), LabelModelType::kDawidSkene);
  EXPECT_EQ(ParseLabelModelType("metal"), LabelModelType::kMetal);
  EXPECT_EQ(ParseLabelModelType("metal-mc"),
            LabelModelType::kMetalCompletion);
  EXPECT_EQ(ParseLabelModelType("???"), LabelModelType::kMetalCompletion);
}

}  // namespace
}  // namespace activedp
