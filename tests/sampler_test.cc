#include "active/sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "active/adp.h"
#include "active/coreset.h"
#include "active/lal.h"
#include "active/passive.h"
#include "active/qbc.h"
#include "active/seu.h"
#include "active/uncertainty.h"
#include "data/synthetic_text.h"
#include "lf/lf_candidates.h"
#include "math/vector_ops.h"

namespace activedp {
namespace {

/// Harness state for sampler tests over a small text dataset.
class SamplerFixture : public testing::Test {
 protected:
  void SetUp() override {
    SyntheticTextConfig config;
    config.num_examples = 120;
    Rng data_rng(3);
    train_ = GenerateSyntheticText(config, data_rng);
    lf_space_ = BuildLfSpace(train_);
    queried_.assign(train_.size(), false);
    features_.resize(train_.size());
    for (int i = 0; i < train_.size(); ++i) {
      for (const auto& [term, count] : train_.example(i).term_counts) {
        features_[i].PushBack(term, static_cast<double>(count));
      }
    }
    const int n = train_.size();
    al_proba_.resize(n);
    lm_proba_.resize(n);
    lm_active_.assign(n, true);
    Rng rng(5);
    for (int i = 0; i < n; ++i) {
      const double p = rng.Uniform(0.01, 0.99);
      al_proba_[i] = {p, 1.0 - p};
      const double q = rng.Uniform(0.01, 0.99);
      lm_proba_[i] = {q, 1.0 - q};
    }
  }

  SamplerContext Context() {
    SamplerContext ctx;
    ctx.train = &train_;
    ctx.features = &features_;
    ctx.feature_dim = train_.vocabulary().size();
    ctx.al_proba = &al_proba_;
    ctx.lm_proba = &lm_proba_;
    ctx.lm_active = &lm_active_;
    ctx.queried = &queried_;
    ctx.lf_space = lf_space_.get();
    ctx.adp_alpha = 0.5;
    return ctx;
  }

  Dataset train_;
  std::vector<SparseVector> features_;
  std::unique_ptr<LfSpace> lf_space_;
  std::vector<std::vector<double>> al_proba_;
  std::vector<std::vector<double>> lm_proba_;
  std::vector<bool> lm_active_;
  std::vector<bool> queried_;
};

class AllSamplersTest : public SamplerFixture,
                        public testing::WithParamInterface<SamplerType> {};

TEST_P(AllSamplersTest, NeverRequeriesAndStaysInRange) {
  auto sampler = MakeSampler(GetParam(), 7);
  Rng rng(9);
  std::set<int> seen;
  for (int t = 0; t < 40; ++t) {
    const int q = sampler->SelectQuery(Context(), rng);
    ASSERT_GE(q, 0);
    ASSERT_LT(q, train_.size());
    EXPECT_TRUE(seen.insert(q).second) << "requeried " << q;
    queried_[q] = true;
  }
}

TEST_P(AllSamplersTest, ReturnsMinusOneWhenExhausted) {
  auto sampler = MakeSampler(GetParam(), 7);
  Rng rng(9);
  queried_.assign(train_.size(), true);
  EXPECT_EQ(sampler->SelectQuery(Context(), rng), -1);
}

TEST_P(AllSamplersTest, HandlesMissingModelsGracefully) {
  auto sampler = MakeSampler(GetParam(), 7);
  Rng rng(11);
  SamplerContext ctx = Context();
  ctx.al_proba = nullptr;
  ctx.lm_proba = nullptr;
  ctx.lm_active = nullptr;
  const int q = sampler->SelectQuery(ctx, rng);
  EXPECT_GE(q, 0);
  EXPECT_LT(q, train_.size());
}

INSTANTIATE_TEST_SUITE_P(Samplers, AllSamplersTest,
                         testing::Values(SamplerType::kPassive,
                                         SamplerType::kUncertainty,
                                         SamplerType::kLal, SamplerType::kSeu,
                                         SamplerType::kAdp, SamplerType::kQbc,
                                         SamplerType::kCoreset));

TEST_F(SamplerFixture, UncertaintyPicksMaxEntropy) {
  // Plant a uniquely most-uncertain row.
  for (auto& p : al_proba_) p = {0.9, 0.1};
  al_proba_[42] = {0.5, 0.5};
  UncertaintySampler sampler;
  Rng rng(13);
  EXPECT_EQ(sampler.SelectQuery(Context(), rng), 42);
}

TEST_F(SamplerFixture, AdpImplementsEquationTwo) {
  // With alpha = 0.5, the score is sqrt(Ent_a * Ent_l); craft rows where the
  // joint winner differs from each individual winner.
  for (auto& p : al_proba_) p = {0.95, 0.05};
  for (auto& p : lm_proba_) p = {0.95, 0.05};
  al_proba_[3] = {0.5, 0.5};   // max AL entropy, low LM entropy
  lm_proba_[3] = {0.99, 0.01};
  lm_proba_[7] = {0.5, 0.5};   // max LM entropy, low AL entropy
  al_proba_[7] = {0.99, 0.01};
  al_proba_[11] = {0.7, 0.3};  // balanced uncertainty on both
  lm_proba_[11] = {0.7, 0.3};
  AdpSampler sampler;
  Rng rng(15);
  SamplerContext ctx = Context();
  ctx.adp_alpha = 0.5;
  EXPECT_EQ(sampler.SelectQuery(ctx, rng), 11);
}

TEST_F(SamplerFixture, AdpAlphaOneIgnoresLabelModel) {
  for (auto& p : al_proba_) p = {0.9, 0.1};
  for (auto& p : lm_proba_) p = {0.9, 0.1};
  al_proba_[5] = {0.55, 0.45};
  lm_proba_[8] = {0.5, 0.5};
  AdpSampler sampler;
  Rng rng(17);
  SamplerContext ctx = Context();
  ctx.adp_alpha = 1.0;
  EXPECT_EQ(sampler.SelectQuery(ctx, rng), 5);
}

TEST_F(SamplerFixture, AdpFallsBackToSingleModel) {
  AdpSampler sampler;
  Rng rng(19);
  SamplerContext ctx = Context();
  ctx.al_proba = nullptr;  // only the label model exists
  for (auto& p : lm_proba_) p = {0.9, 0.1};
  lm_proba_[23] = {0.5, 0.5};
  EXPECT_EQ(sampler.SelectQuery(ctx, rng), 23);
}

TEST_F(SamplerFixture, PassiveIsUniformIsh) {
  PassiveSampler sampler;
  Rng rng(21);
  std::set<int> picks;
  for (int t = 0; t < 30; ++t) {
    const int q = sampler.SelectQuery(Context(), rng);
    picks.insert(q);
    queried_[q] = true;
  }
  EXPECT_GT(picks.size(), 25u);  // all distinct by construction
}

TEST(LalSamplerTest, MetaTrainingSucceeds) {
  LalOptions options;
  options.episodes = 6;
  options.steps_per_episode = 8;
  options.task_size = 60;
  options.seed = 3;
  LalSampler sampler(options);
  EXPECT_TRUE(sampler.trained());
}

TEST(LalSamplerTest, StateFeaturesShape) {
  const std::vector<double> phi =
      LalSampler::StateFeatures({0.7, 0.3}, 0.1, 0.5, 0.8, 0.01);
  ASSERT_EQ(phi.size(), 7u);
  EXPECT_DOUBLE_EQ(phi[0], 0.7);                    // p_max
  EXPECT_NEAR(phi[1], Entropy({0.7, 0.3}), 1e-12);  // entropy
  EXPECT_NEAR(phi[2], 0.4, 1e-12);                  // margin
  EXPECT_DOUBLE_EQ(phi[3], 0.1);
  EXPECT_DOUBLE_EQ(phi[4], 0.5);
}

TEST_F(SamplerFixture, QbcDisagreementTargetsBoundary) {
  // Label half the data with a clean linear rule; QBC should prefer points
  // the bootstrap committee disagrees on over points deep inside a class.
  QbcSampler sampler;
  Rng rng(23);
  SamplerContext ctx = Context();
  std::vector<int> labeled_rows, labeled_values;
  for (int i = 0; i < 40; ++i) {
    labeled_rows.push_back(i);
    labeled_values.push_back(train_.example(i).label);
    queried_[i] = true;
  }
  ctx.labeled_rows = &labeled_rows;
  ctx.labeled_values = &labeled_values;
  const int q = sampler.SelectQuery(ctx, rng);
  EXPECT_GE(q, 40);  // never re-queries
  EXPECT_LT(q, train_.size());
}

TEST_F(SamplerFixture, CoresetSpreadsQueries) {
  // With duplicated feature vectors, core-set must not query a duplicate of
  // an already-queried point while distinct points remain.
  CoresetSampler sampler;
  Rng rng(29);
  std::vector<SparseVector> features(train_.size());
  for (int i = 0; i < train_.size(); ++i) {
    // Three distinct locations repeated over the dataset.
    features[i].PushBack(0, static_cast<double>(i % 3));
  }
  SamplerContext ctx = Context();
  ctx.features = &features;
  ctx.feature_dim = 1;
  std::set<int> locations;
  for (int t = 0; t < 3; ++t) {
    const int q = sampler.SelectQuery(ctx, rng);
    ASSERT_GE(q, 0);
    queried_[q] = true;
    locations.insert(q % 3);
  }
  // Three picks, three distinct locations (greedy k-center).
  EXPECT_EQ(locations.size(), 3u);
}

TEST(SamplerFactoryTest, ParseNames) {
  EXPECT_EQ(ParseSamplerType("passive"), SamplerType::kPassive);
  EXPECT_EQ(ParseSamplerType("US"), SamplerType::kUncertainty);
  EXPECT_EQ(ParseSamplerType("lal"), SamplerType::kLal);
  EXPECT_EQ(ParseSamplerType("seu"), SamplerType::kSeu);
  EXPECT_EQ(ParseSamplerType("adp"), SamplerType::kAdp);
  EXPECT_EQ(ParseSamplerType("qbc"), SamplerType::kQbc);
  EXPECT_EQ(ParseSamplerType("coreset"), SamplerType::kCoreset);
  EXPECT_EQ(ParseSamplerType("bogus"), SamplerType::kAdp);
}

TEST(SamplerFactoryTest, NamesRoundTrip) {
  EXPECT_EQ(MakeSampler(SamplerType::kPassive)->name(), "passive");
  EXPECT_EQ(MakeSampler(SamplerType::kUncertainty)->name(), "us");
  EXPECT_EQ(MakeSampler(SamplerType::kSeu)->name(), "seu");
  EXPECT_EQ(MakeSampler(SamplerType::kAdp)->name(), "adp");
}

}  // namespace
}  // namespace activedp
