// Integration tests of the full ActiveDP pipeline on small synthetic data.

#include "core/activedp.h"

#include <gtest/gtest.h>

#include <set>

#include "core/end_model.h"
#include "core/experiment.h"
#include "data/dataset_zoo.h"
#include "math/vector_ops.h"

namespace activedp {
namespace {

class ActiveDpIntegrationTest : public testing::Test {
 protected:
  void SetUp() override {
    Result<DataSplit> split = MakeZooDataset("youtube", 0.4, 101);
    ASSERT_TRUE(split.ok());
    split_ = std::move(*split);
    context_ = FrameworkContext::Build(split_);
  }

  DataSplit split_;
  FrameworkContext context_;
};

TEST_F(ActiveDpIntegrationTest, CollectsLfsAndPseudoLabels) {
  ActiveDpOptions options;
  options.seed = 3;
  ActiveDp pipeline(context_, options);
  for (int t = 0; t < 30; ++t) ASSERT_TRUE(pipeline.Step().ok());
  EXPECT_GT(pipeline.lfs().size(), 20u);
  EXPECT_EQ(pipeline.lfs().size(), pipeline.query_indices().size());
  EXPECT_EQ(pipeline.lfs().size(), pipeline.pseudo_labels().size());
  // Pseudo-labels equal each LF's vote on its own query instance.
  for (size_t k = 0; k < pipeline.lfs().size(); ++k) {
    const int q = pipeline.query_indices()[k];
    EXPECT_EQ(pipeline.pseudo_labels()[k],
              pipeline.lfs()[k]->Apply(split_.train.example(q)));
  }
  // Queries are distinct.
  std::set<int> unique(pipeline.query_indices().begin(),
                       pipeline.query_indices().end());
  EXPECT_EQ(unique.size(), pipeline.query_indices().size());
}

TEST_F(ActiveDpIntegrationTest, TrainsBothModels) {
  ActiveDpOptions options;
  options.seed = 5;
  ActiveDp pipeline(context_, options);
  for (int t = 0; t < 25; ++t) ASSERT_TRUE(pipeline.Step().ok());
  EXPECT_TRUE(pipeline.has_label_model());
  EXPECT_TRUE(pipeline.has_al_model());
  EXPECT_NE(pipeline.al_model(), nullptr);
  EXPECT_FALSE(pipeline.selected_lfs().empty());
  EXPECT_LE(pipeline.selected_lfs().size(), pipeline.lfs().size());
}

TEST_F(ActiveDpIntegrationTest, TrainingLabelsAreValidSoftLabels) {
  ActiveDpOptions options;
  options.seed = 7;
  ActiveDp pipeline(context_, options);
  for (int t = 0; t < 25; ++t) ASSERT_TRUE(pipeline.Step().ok());
  const std::vector<std::vector<double>> labels =
      pipeline.CurrentTrainingLabels();
  ASSERT_EQ(static_cast<int>(labels.size()), split_.train.size());
  int covered = 0;
  for (const auto& soft : labels) {
    if (soft.empty()) continue;
    ++covered;
    ASSERT_EQ(soft.size(), 2u);
    EXPECT_NEAR(soft[0] + soft[1], 1.0, 1e-9);
  }
  EXPECT_GT(covered, split_.train.size() / 4);
  // Threshold was tuned into [0, 1].
  EXPECT_GE(pipeline.last_threshold(), 0.0);
  EXPECT_LE(pipeline.last_threshold(), 1.0);
}

TEST_F(ActiveDpIntegrationTest, GeneratedLabelsBeatChance) {
  ActiveDpOptions options;
  options.seed = 9;
  ActiveDp pipeline(context_, options);
  for (int t = 0; t < 40; ++t) ASSERT_TRUE(pipeline.Step().ok());
  const LabelQuality quality = MeasureLabelQuality(
      pipeline.CurrentTrainingLabels(), split_.train);
  EXPECT_GT(quality.accuracy, 0.7);
  EXPECT_GT(quality.coverage, 0.5);
}

TEST_F(ActiveDpIntegrationTest, DeterministicAcrossRuns) {
  ActiveDpOptions options;
  options.seed = 11;
  ActiveDp a(context_, options), b(context_, options);
  for (int t = 0; t < 15; ++t) {
    ASSERT_TRUE(a.Step().ok());
    ASSERT_TRUE(b.Step().ok());
    EXPECT_EQ(a.last_query(), b.last_query());
  }
  ASSERT_EQ(a.lfs().size(), b.lfs().size());
  for (size_t k = 0; k < a.lfs().size(); ++k) {
    EXPECT_EQ(a.lfs()[k]->Key(), b.lfs()[k]->Key());
  }
}

TEST_F(ActiveDpIntegrationTest, AblationSwitchesChangeBehaviour) {
  ActiveDpOptions with;
  with.seed = 13;
  ActiveDpOptions without = with;
  without.use_label_pick = false;
  ActiveDp a(context_, with), b(context_, without);
  for (int t = 0; t < 30; ++t) {
    ASSERT_TRUE(a.Step().ok());
    ASSERT_TRUE(b.Step().ok());
  }
  // Without LabelPick every LF is selected.
  EXPECT_EQ(b.selected_lfs().size(), b.lfs().size());

  ActiveDpOptions dp_only = with;
  dp_only.use_confusion = false;
  ActiveDp c(context_, dp_only);
  for (int t = 0; t < 30; ++t) ASSERT_TRUE(c.Step().ok());
  // DP-only labels cover exactly the rows with at least one selected LF
  // firing; an AL-confident row without LF coverage stays empty.
  const std::vector<std::vector<double>> labels = c.CurrentTrainingLabels();
  int covered = 0;
  for (const auto& soft : labels) covered += !soft.empty();
  EXPECT_GT(covered, 0);
  EXPECT_LT(covered, split_.train.size());
}

TEST_F(ActiveDpIntegrationTest, StepsExhaustAtTrainSize) {
  Result<DataSplit> tiny_split = MakeZooDataset("youtube", 0.05, 3);
  ASSERT_TRUE(tiny_split.ok());
  FrameworkContext tiny = FrameworkContext::Build(*tiny_split);
  ActiveDpOptions options;
  options.seed = 15;
  ActiveDp pipeline(tiny, options);
  int steps = 0;
  while (pipeline.Step().ok()) {
    ++steps;
    ASSERT_LE(steps, tiny_split->train.size());
  }
  EXPECT_EQ(steps, tiny_split->train.size());
}

TEST_F(ActiveDpIntegrationTest, TabularPipelineUsesHighAlpha) {
  Result<DataSplit> split = MakeZooDataset("occupancy", 0.05, 7);
  ASSERT_TRUE(split.ok());
  FrameworkContext context = FrameworkContext::Build(*split);
  ActiveDpOptions options;
  options.seed = 17;
  ActiveDp pipeline(context, options);
  for (int t = 0; t < 30; ++t) ASSERT_TRUE(pipeline.Step().ok());
  const LabelQuality quality =
      MeasureLabelQuality(pipeline.CurrentTrainingLabels(), split->train);
  EXPECT_GT(quality.accuracy, 0.8);
}

TEST_F(ActiveDpIntegrationTest, SurvivesUserWhoNeverReturnsLfs) {
  // Failure injection: with an impossible accuracy threshold the simulated
  // user has no candidates, so every interaction is a no-op. The pipeline
  // must keep stepping, produce no labels, and the protocol must report
  // zero accuracy rather than crash.
  ActiveDpOptions options;
  options.seed = 23;
  options.user.accuracy_threshold = 1.01;  // nothing qualifies
  ActiveDp pipeline(context_, options);
  for (int t = 0; t < 20; ++t) ASSERT_TRUE(pipeline.Step().ok());
  EXPECT_TRUE(pipeline.lfs().empty());
  EXPECT_FALSE(pipeline.has_label_model());
  EXPECT_FALSE(pipeline.has_al_model());
  const std::vector<std::vector<double>> labels =
      pipeline.CurrentTrainingLabels();
  for (const auto& soft : labels) EXPECT_TRUE(soft.empty());

  ProtocolOptions protocol;
  protocol.iterations = 20;
  ActiveDp fresh(context_, options);
  const RunResult result = RunProtocol(fresh, context_, protocol);
  for (double accuracy : result.test_accuracy) {
    EXPECT_DOUBLE_EQ(accuracy, 0.0);
  }
}

TEST_F(ActiveDpIntegrationTest, HighNoiseStillRuns) {
  // 100% label noise poisons every pseudo-label; the run must stay stable
  // (the models just get worse).
  ActiveDpOptions options;
  options.seed = 29;
  options.user.label_noise = 1.0;
  ActiveDp pipeline(context_, options);
  for (int t = 0; t < 30; ++t) ASSERT_TRUE(pipeline.Step().ok());
  const LabelQuality quality =
      MeasureLabelQuality(pipeline.CurrentTrainingLabels(), split_.train);
  EXPECT_GE(quality.accuracy, 0.0);
  EXPECT_LE(quality.accuracy, 1.0);
}

TEST_F(ActiveDpIntegrationTest, EndToEndBeatsChanceOnTest) {
  ActiveDpOptions options;
  options.seed = 19;
  ActiveDp pipeline(context_, options);
  for (int t = 0; t < 50; ++t) ASSERT_TRUE(pipeline.Step().ok());
  Result<LogisticRegression> end_model = TrainEndModel(
      context_.train_features, pipeline.CurrentTrainingLabels(),
      context_.num_classes, context_.feature_dim, EndModelOptions{});
  ASSERT_TRUE(end_model.ok());
  EXPECT_GT(EvaluateAccuracy(*end_model, context_.test_features,
                             context_.test_labels),
            0.7);
}

}  // namespace
}  // namespace activedp
