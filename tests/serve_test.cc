#include "serve/prediction_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/activedp.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "online/event_log.h"
#include "serve/serve_client.h"
#include "serve/snapshot_export.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace activedp {
namespace {

/// Shared trained pipeline + two snapshots exported at different points of
/// the run (for hot-swap tests). Training once keeps the suite fast.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<DataSplit> split = MakeZooDataset("youtube", 0.1, /*seed=*/7);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    split_ = new DataSplit(std::move(*split));
    context_ = new FrameworkContext(FrameworkContext::Build(*split_));
    ActiveDpOptions options;
    options.seed = 23;
    ActiveDp pipeline(*context_, options);
    for (int t = 0; t < 15; ++t) ASSERT_TRUE(pipeline.Step().ok());
    Result<ModelSnapshot> early = ExportSnapshot(pipeline, *context_);
    ASSERT_TRUE(early.ok()) << early.status().ToString();
    snapshot_a_ =
        new std::shared_ptr<const ModelSnapshot>(
            std::make_shared<const ModelSnapshot>(std::move(*early)));
    for (int t = 0; t < 10; ++t) ASSERT_TRUE(pipeline.Step().ok());
    Result<ModelSnapshot> late = ExportSnapshot(pipeline, *context_);
    ASSERT_TRUE(late.ok()) << late.status().ToString();
    snapshot_b_ =
        new std::shared_ptr<const ModelSnapshot>(
            std::make_shared<const ModelSnapshot>(std::move(*late)));
  }

  static void TearDownTestSuite() {
    delete snapshot_a_;
    delete snapshot_b_;
    delete context_;
    delete split_;
    snapshot_a_ = nullptr;
    snapshot_b_ = nullptr;
    context_ = nullptr;
    split_ = nullptr;
  }

  static const Example& TrainExample(int i) {
    return split_->train.example(i % split_->train.size());
  }

  static DataSplit* split_;
  static FrameworkContext* context_;
  static std::shared_ptr<const ModelSnapshot>* snapshot_a_;
  static std::shared_ptr<const ModelSnapshot>* snapshot_b_;
};

DataSplit* ServeTest::split_ = nullptr;
FrameworkContext* ServeTest::context_ = nullptr;
std::shared_ptr<const ModelSnapshot>* ServeTest::snapshot_a_ = nullptr;
std::shared_ptr<const ModelSnapshot>* ServeTest::snapshot_b_ = nullptr;

TEST_F(ServeTest, ServedEqualsOfflineAcrossBatchSizes) {
  const int n = std::min(split_->train.size(), 48);
  for (int batch_size : {1, 4, 32}) {
    PredictionServiceOptions options;
    options.max_batch_size = batch_size;
    options.max_batch_delay_ms = 0.5;
    PredictionService service(options);
    service.LoadSnapshot(*snapshot_a_);
    std::vector<std::future<Result<ServedPrediction>>> futures;
    for (int i = 0; i < n; ++i) {
      futures.push_back(service.PredictAsync(TrainExample(i)));
    }
    for (int i = 0; i < n; ++i) {
      Result<ServedPrediction> served = futures[i].get();
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      Result<ServedPrediction> offline =
          (*snapshot_a_)->Predict(TrainExample(i));
      ASSERT_TRUE(offline.ok());
      EXPECT_EQ(served->proba, offline->proba)
          << "batch_size " << batch_size << " row " << i;
      EXPECT_EQ(served->label, offline->label);
      EXPECT_EQ(static_cast<int>(served->source),
                static_cast<int>(offline->source));
    }
  }
}

TEST_F(ServeTest, ServedEqualsOfflineAcrossThreadCounts) {
  const int previous_threads = ComputePoolThreads();
  const int n = std::min(split_->train.size(), 48);
  for (int threads : {1, 4}) {
    SetComputePoolThreads(threads);
    PredictionService service;
    service.LoadSnapshot(*snapshot_a_);
    for (int i = 0; i < n; ++i) {
      Result<ServedPrediction> served = service.Predict(TrainExample(i));
      ASSERT_TRUE(served.ok());
      Result<ServedPrediction> offline =
          (*snapshot_a_)->Predict(TrainExample(i));
      ASSERT_TRUE(offline.ok());
      EXPECT_EQ(served->proba, offline->proba)
          << "threads " << threads << " row " << i;
    }
  }
  SetComputePoolThreads(previous_threads);
}

TEST_F(ServeTest, HotSwapUnderLoadServesOneOfTheTwoSnapshots) {
  PredictionServiceOptions options;
  options.max_batch_size = 8;
  options.max_batch_delay_ms = 0.2;
  PredictionService service(options);
  service.LoadSnapshot(*snapshot_a_);

  // Clients hammer the service from several threads while the main thread
  // swaps snapshots repeatedly. Every response must be bitwise identical to
  // snapshot A's or snapshot B's offline prediction for that instance —
  // never a mix, never garbage. TSan covers the synchronization.
  constexpr int kClients = 4;
  constexpr int kPerClient = 60;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int k = 0; k < kPerClient; ++k) {
        const int row = c * kPerClient + k;
        Result<ServedPrediction> served = service.Predict(TrainExample(row));
        if (!served.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        Result<ServedPrediction> via_a =
            (*snapshot_a_)->Predict(TrainExample(row));
        Result<ServedPrediction> via_b =
            (*snapshot_b_)->Predict(TrainExample(row));
        const bool matches_a = via_a.ok() && served->proba == via_a->proba &&
                               served->label == via_a->label;
        const bool matches_b = via_b.ok() && served->proba == via_b->proba &&
                               served->label == via_b->label;
        if (!matches_a && !matches_b) mismatches.fetch_add(1);
      }
    });
  }
  for (int swap = 0; swap < 20; ++swap) {
    service.LoadSnapshot(swap % 2 == 0 ? *snapshot_b_ : *snapshot_a_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ServeTest, QueueFullReturnsUnavailable) {
  PredictionServiceOptions options;
  options.max_queue_depth = 2;
  options.max_batch_size = 64;
  options.max_batch_delay_ms = 200.0;  // hold the batch window open
  PredictionService service(options);
  service.LoadSnapshot(*snapshot_a_);
  std::vector<std::future<ServeReply>> futures;
  int rejected = 0;
  for (int i = 0; i < 32; ++i) {
    ServeRequest request;
    request.example = TrainExample(i);
    futures.push_back(service.PredictAsync(std::move(request)));
  }
  for (auto& future : futures) {
    const ServeReply reply = future.get();
    if (!reply.ok()) {
      EXPECT_EQ(reply.status.code(), StatusCode::kUnavailable);
      // The rejection is actionable: structured RejectInfo names the
      // reason, the queue depth and a retry-after the client wrapper
      // honours — no string parsing.
      ASSERT_TRUE(reply.reject.has_value()) << reply.status.ToString();
      EXPECT_EQ(reply.reject->reason, RejectReason::kQueueFull);
      EXPECT_EQ(reply.reject->queue_depth, options.max_queue_depth);
      EXPECT_GE(reply.reject->retry_after_ms, 1.0);
      ++rejected;
    }
  }
  // The dispatcher may drain a couple of requests between admissions, but
  // with a 200ms window most of the flood must hit the depth limit.
  EXPECT_GT(rejected, 0);
}

TEST_F(ServeTest, ExpiredDeadlineFailsFastWithoutPoisoningTheBatch) {
  PredictionService service;
  service.LoadSnapshot(*snapshot_a_);
  std::future<Result<ServedPrediction>> expired =
      service.PredictAsync(TrainExample(0), Deadline::After(0.0));
  std::future<Result<ServedPrediction>> healthy =
      service.PredictAsync(TrainExample(1));
  const Result<ServedPrediction> expired_result = expired.get();
  ASSERT_FALSE(expired_result.ok());
  EXPECT_EQ(expired_result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(healthy.get().ok());
}

TEST_F(ServeTest, RequestsWithoutSnapshotAreRejected) {
  PredictionService service;
  const Result<ServedPrediction> result = service.Predict(TrainExample(0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, ShutdownDrainsQueuedRequests) {
  PredictionServiceOptions options;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 50.0;
  auto service = std::make_unique<PredictionService>(options);
  service->LoadSnapshot(*snapshot_a_);
  std::vector<std::future<Result<ServedPrediction>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(service->PredictAsync(TrainExample(i)));
  }
  service->Shutdown();
  for (auto& future : futures) {
    const Result<ServedPrediction> result = future.get();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  // After shutdown new requests are refused, not queued forever.
  const Result<ServedPrediction> late = service->Predict(TrainExample(0));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST_F(ServeTest, AdaptiveShedderRejectsWithStructuredRejectInfo) {
  PredictionServiceOptions options;
  options.max_batch_size = 64;
  options.max_batch_delay_ms = 50.0;
  // Any warm EWMA exceeds this, so after one served batch every admission
  // sheds deterministically (the EWMA sample is floored above zero).
  options.max_queue_delay_ms = 0.0001;
  PredictionService service(options);
  service.LoadSnapshot(*snapshot_a_);

  // Cold shedder: the first request is admitted and served normally.
  ASSERT_TRUE(service.Predict(TrainExample(0)).ok());

  ServeRequest request;
  request.example = TrainExample(1);
  const ServeReply shed = service.Predict(std::move(request));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status.ToString().find("overloaded"), std::string::npos)
      << shed.status.ToString();
  ASSERT_TRUE(shed.reject.has_value()) << shed.status.ToString();
  EXPECT_EQ(shed.reject->reason, RejectReason::kOverloaded);
  EXPECT_GE(shed.reject->retry_after_ms, 1.0);

  // priority >= 1 bypasses the adaptive shedder (never the hard limits):
  // the same request that just shed is admitted and served.
  ServeRequest urgent;
  urgent.example = TrainExample(1);
  urgent.priority = 1;
  EXPECT_TRUE(service.Predict(std::move(urgent)).ok());

  // The health probe agrees with admission without consuming capacity.
  EXPECT_EQ(service.CheckHealth().code(), StatusCode::kUnavailable);
  const ServiceHealth health = service.Health();
  EXPECT_FALSE(health.ok);
  EXPECT_GT(health.estimated_queue_delay_ms, options.max_queue_delay_ms);
}

TEST_F(ServeTest, DoomedDeadlinesFailFastAtAdmission) {
  PredictionServiceOptions options;
  options.max_batch_size = 64;
  options.max_batch_delay_ms = 50.0;
  PredictionService service(options);
  service.LoadSnapshot(*snapshot_a_);
  ASSERT_TRUE(service.Predict(TrainExample(0)).ok());  // warm the EWMA

  // 100ns of budget: already expired at admission, or (with the EWMA warm)
  // provably unable to survive the queue. Both are a fail-fast
  // DeadlineExceeded, never a queued request that times out later.
  const Result<ServedPrediction> doomed =
      service.Predict(TrainExample(1), Deadline::After(1e-7));
  ASSERT_FALSE(doomed.ok());
  EXPECT_EQ(doomed.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ServeTest, CircuitBreakerDegradesToLastKnownGood) {
  PredictionServiceOptions options;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 0.2;
  options.breaker_threshold = 2;
  PredictionService service(options);
  service.LoadSnapshot(*snapshot_a_);
  // Two healthy batches make A the last-known-good.
  ASSERT_TRUE(service.Predict(TrainExample(0)).ok());
  ASSERT_TRUE(service.Predict(TrainExample(1)).ok());
  ASSERT_EQ(service.last_known_good(), *snapshot_a_);

  service.LoadSnapshot(*snapshot_b_);
  {
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.max_fires = options.breaker_threshold;
    FaultScope scope("serve.dispatch", spec);
    for (int i = 0; i < options.breaker_threshold; ++i) {
      const Result<ServedPrediction> failed = service.Predict(TrainExample(i));
      ASSERT_FALSE(failed.ok());
      EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
    }
    EXPECT_EQ(scope.fire_count(), options.breaker_threshold);
  }
  // The breaker tripped on the second consecutive fully-failed batch and
  // swapped back to A; the service recovers without operator action.
  EXPECT_EQ(service.breaker_trips(), 1);
  EXPECT_EQ(service.snapshot(), *snapshot_a_);
  const Result<ServedPrediction> recovered = service.Predict(TrainExample(2));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(service.Health().breaker_trips, 1);
}

TEST_F(ServeTest, PredictWithRetryRecoversFromTransientFaults) {
  PredictionServiceOptions options;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 0.2;
  PredictionService service(options);
  service.LoadSnapshot(*snapshot_a_);

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.max_fires = 1;
  FaultScope scope("serve.dispatch", spec);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.seed = 7;
  RetryLog log;
  const Result<ServedPrediction> result = PredictWithRetry(
      service, TrainExample(0), Deadline::Infinite(), policy, &log);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(scope.fire_count(), 1);
  EXPECT_EQ(log.count("serve.submit"), 1);
  EXPECT_EQ(log.recovered_count("serve.submit"), 1);
}

TEST_F(ServeTest, PredictWithRetryDoesNotRetryDeterministicFailures) {
  PredictionService service;  // no snapshot: FailedPrecondition every time
  RetryPolicy policy;
  policy.max_attempts = 4;
  RetryLog log;
  const Result<ServedPrediction> result = PredictWithRetry(
      service, TrainExample(0), Deadline::Infinite(), policy, &log);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(log.count("serve.submit"), 0);
}

TEST_F(ServeTest, ServeReplyCarriesStructuredRejectInfo) {
  // The structured replacement for the old "retry-after-ms=<n>" string
  // hint: RejectInfo rides alongside the Status, and the deprecated
  // positional-arg shims collapse it away via ToResult().
  ServeReply reply = ServeReply::Rejected(
      Status::Unavailable("prediction queue is full (depth=8 of max 8)"),
      RejectInfo{12.0, 8, RejectReason::kQueueFull});
  ASSERT_TRUE(reply.reject.has_value());
  EXPECT_EQ(reply.reject->retry_after_ms, 12.0);
  EXPECT_EQ(reply.reject->queue_depth, 8);
  EXPECT_EQ(RejectReasonToString(reply.reject->reason), "queue-full");
  const Result<ServedPrediction> collapsed = reply.ToResult();
  ASSERT_FALSE(collapsed.ok());
  EXPECT_EQ(collapsed.status().code(), StatusCode::kUnavailable);

  EXPECT_EQ(RejectReasonToString(RejectReason::kOverloaded), "overloaded");
  EXPECT_EQ(RejectReasonToString(RejectReason::kQuotaExceeded),
            "quota-exceeded");
  EXPECT_EQ(RejectReasonToString(RejectReason::kShutdown), "shutdown");

  ServeReply ok_reply = ServeReply::Ok(ServedPrediction{});
  EXPECT_TRUE(ok_reply.ok());
  EXPECT_FALSE(ok_reply.reject.has_value());
  EXPECT_TRUE(ok_reply.ToResult().ok());
}

TEST_F(ServeTest, PredictWithRetryClampsBackoffToTheDeadlineBudget) {
  PredictionServiceOptions options;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 0.2;
  PredictionService service(options);
  service.LoadSnapshot(*snapshot_a_);

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.max_fires = 1;
  FaultScope scope("serve.dispatch", spec);

  // A schedule that would sleep for seconds, against a budget of ~500ms:
  // the backoff must be clamped to half the remaining budget, leaving the
  // retry enough of the deadline to actually succeed.
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 5000.0;
  policy.max_backoff_ms = 5000.0;
  policy.jitter = 0.0;
  policy.sleep = true;
  RetryLog log;
  const Deadline deadline = Deadline::After(0.5);
  const Result<ServedPrediction> result =
      PredictWithRetry(service, TrainExample(0), deadline, policy, &log);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(log.count("serve.submit"), 1);
  EXPECT_LE(log.events()[0].backoff_ms, 250.0)
      << "backoff not clamped to the deadline budget";
  EXPECT_EQ(log.recovered_count("serve.submit"), 1);
}

TEST_F(ServeTest, RecordFeedbackAppendsDurablyToTheAttachedLog) {
  const std::string dir = testing::TempDir() + "/serve_feedback_log";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  auto log = EventLog::Open(dir, EventLogOptions{});
  ASSERT_TRUE(log.ok());

  PredictionService service;
  service.LoadSnapshot(*snapshot_a_);
  FeedbackEvent event;
  event.type = FeedbackType::kExactLabel;
  event.row = 5;
  event.label = 1;
  // No log attached yet: the caller must know the feedback was dropped.
  EXPECT_EQ(service.RecordFeedback(event).status().code(),
            StatusCode::kFailedPrecondition);

  service.AttachEventLog(log->get());
  const Result<uint64_t> first = service.RecordFeedback(event);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);
  event.type = FeedbackType::kLfVote;
  event.lf_id = 3;
  const Result<uint64_t> second = service.RecordFeedback(event);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 1u);

  // The events round-trip through the durable log.
  ASSERT_TRUE((*log)->Rotate().ok());
  const Result<std::vector<FeedbackEvent>> replayed = (*log)->ReplayAll();
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 2u);
  EXPECT_EQ((*replayed)[0].type, FeedbackType::kExactLabel);
  EXPECT_EQ((*replayed)[0].row, 5);
  EXPECT_EQ((*replayed)[1].type, FeedbackType::kLfVote);
  EXPECT_EQ((*replayed)[1].lf_id, 3);

  // After shutdown, feedback is refused (not silently dropped).
  service.Shutdown();
  EXPECT_EQ(service.RecordFeedback(event).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(ServeTest, HealthProbeMirrorsAdmission) {
  PredictionService service;
  EXPECT_EQ(service.CheckHealth().code(), StatusCode::kFailedPrecondition);
  ServiceHealth health = service.Health();
  EXPECT_FALSE(health.ok);
  EXPECT_FALSE(health.has_snapshot);

  service.LoadSnapshot(*snapshot_a_);
  EXPECT_TRUE(service.CheckHealth().ok());
  health = service.Health();
  EXPECT_TRUE(health.ok);
  EXPECT_TRUE(health.has_snapshot);
  EXPECT_EQ(health.breaker_trips, 0);

  service.Shutdown();
  EXPECT_EQ(service.CheckHealth().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(service.Health().shutdown);
}

}  // namespace
}  // namespace activedp
