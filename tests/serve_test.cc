#include "serve/prediction_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/activedp.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "serve/snapshot_export.h"
#include "util/thread_pool.h"

namespace activedp {
namespace {

/// Shared trained pipeline + two snapshots exported at different points of
/// the run (for hot-swap tests). Training once keeps the suite fast.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<DataSplit> split = MakeZooDataset("youtube", 0.1, /*seed=*/7);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    split_ = new DataSplit(std::move(*split));
    context_ = new FrameworkContext(FrameworkContext::Build(*split_));
    ActiveDpOptions options;
    options.seed = 23;
    ActiveDp pipeline(*context_, options);
    for (int t = 0; t < 15; ++t) ASSERT_TRUE(pipeline.Step().ok());
    Result<ModelSnapshot> early = ExportSnapshot(pipeline, *context_);
    ASSERT_TRUE(early.ok()) << early.status().ToString();
    snapshot_a_ =
        new std::shared_ptr<const ModelSnapshot>(
            std::make_shared<const ModelSnapshot>(std::move(*early)));
    for (int t = 0; t < 10; ++t) ASSERT_TRUE(pipeline.Step().ok());
    Result<ModelSnapshot> late = ExportSnapshot(pipeline, *context_);
    ASSERT_TRUE(late.ok()) << late.status().ToString();
    snapshot_b_ =
        new std::shared_ptr<const ModelSnapshot>(
            std::make_shared<const ModelSnapshot>(std::move(*late)));
  }

  static void TearDownTestSuite() {
    delete snapshot_a_;
    delete snapshot_b_;
    delete context_;
    delete split_;
    snapshot_a_ = nullptr;
    snapshot_b_ = nullptr;
    context_ = nullptr;
    split_ = nullptr;
  }

  static const Example& TrainExample(int i) {
    return split_->train.example(i % split_->train.size());
  }

  static DataSplit* split_;
  static FrameworkContext* context_;
  static std::shared_ptr<const ModelSnapshot>* snapshot_a_;
  static std::shared_ptr<const ModelSnapshot>* snapshot_b_;
};

DataSplit* ServeTest::split_ = nullptr;
FrameworkContext* ServeTest::context_ = nullptr;
std::shared_ptr<const ModelSnapshot>* ServeTest::snapshot_a_ = nullptr;
std::shared_ptr<const ModelSnapshot>* ServeTest::snapshot_b_ = nullptr;

TEST_F(ServeTest, ServedEqualsOfflineAcrossBatchSizes) {
  const int n = std::min(split_->train.size(), 48);
  for (int batch_size : {1, 4, 32}) {
    PredictionServiceOptions options;
    options.max_batch_size = batch_size;
    options.max_batch_delay_ms = 0.5;
    PredictionService service(options);
    service.LoadSnapshot(*snapshot_a_);
    std::vector<std::future<Result<ServedPrediction>>> futures;
    for (int i = 0; i < n; ++i) {
      futures.push_back(service.PredictAsync(TrainExample(i)));
    }
    for (int i = 0; i < n; ++i) {
      Result<ServedPrediction> served = futures[i].get();
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      Result<ServedPrediction> offline =
          (*snapshot_a_)->Predict(TrainExample(i));
      ASSERT_TRUE(offline.ok());
      EXPECT_EQ(served->proba, offline->proba)
          << "batch_size " << batch_size << " row " << i;
      EXPECT_EQ(served->label, offline->label);
      EXPECT_EQ(static_cast<int>(served->source),
                static_cast<int>(offline->source));
    }
  }
}

TEST_F(ServeTest, ServedEqualsOfflineAcrossThreadCounts) {
  const int previous_threads = ComputePoolThreads();
  const int n = std::min(split_->train.size(), 48);
  for (int threads : {1, 4}) {
    SetComputePoolThreads(threads);
    PredictionService service;
    service.LoadSnapshot(*snapshot_a_);
    for (int i = 0; i < n; ++i) {
      Result<ServedPrediction> served = service.Predict(TrainExample(i));
      ASSERT_TRUE(served.ok());
      Result<ServedPrediction> offline =
          (*snapshot_a_)->Predict(TrainExample(i));
      ASSERT_TRUE(offline.ok());
      EXPECT_EQ(served->proba, offline->proba)
          << "threads " << threads << " row " << i;
    }
  }
  SetComputePoolThreads(previous_threads);
}

TEST_F(ServeTest, HotSwapUnderLoadServesOneOfTheTwoSnapshots) {
  PredictionServiceOptions options;
  options.max_batch_size = 8;
  options.max_batch_delay_ms = 0.2;
  PredictionService service(options);
  service.LoadSnapshot(*snapshot_a_);

  // Clients hammer the service from several threads while the main thread
  // swaps snapshots repeatedly. Every response must be bitwise identical to
  // snapshot A's or snapshot B's offline prediction for that instance —
  // never a mix, never garbage. TSan covers the synchronization.
  constexpr int kClients = 4;
  constexpr int kPerClient = 60;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int k = 0; k < kPerClient; ++k) {
        const int row = c * kPerClient + k;
        Result<ServedPrediction> served = service.Predict(TrainExample(row));
        if (!served.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        Result<ServedPrediction> via_a =
            (*snapshot_a_)->Predict(TrainExample(row));
        Result<ServedPrediction> via_b =
            (*snapshot_b_)->Predict(TrainExample(row));
        const bool matches_a = via_a.ok() && served->proba == via_a->proba &&
                               served->label == via_a->label;
        const bool matches_b = via_b.ok() && served->proba == via_b->proba &&
                               served->label == via_b->label;
        if (!matches_a && !matches_b) mismatches.fetch_add(1);
      }
    });
  }
  for (int swap = 0; swap < 20; ++swap) {
    service.LoadSnapshot(swap % 2 == 0 ? *snapshot_b_ : *snapshot_a_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ServeTest, QueueFullReturnsUnavailable) {
  PredictionServiceOptions options;
  options.max_queue_depth = 2;
  options.max_batch_size = 64;
  options.max_batch_delay_ms = 200.0;  // hold the batch window open
  PredictionService service(options);
  service.LoadSnapshot(*snapshot_a_);
  std::vector<std::future<Result<ServedPrediction>>> futures;
  int rejected = 0;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(service.PredictAsync(TrainExample(i)));
  }
  for (auto& future : futures) {
    const Result<ServedPrediction> result = future.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  // The dispatcher may drain a couple of requests between admissions, but
  // with a 200ms window most of the flood must hit the depth limit.
  EXPECT_GT(rejected, 0);
}

TEST_F(ServeTest, ExpiredDeadlineFailsFastWithoutPoisoningTheBatch) {
  PredictionService service;
  service.LoadSnapshot(*snapshot_a_);
  std::future<Result<ServedPrediction>> expired =
      service.PredictAsync(TrainExample(0), Deadline::After(0.0));
  std::future<Result<ServedPrediction>> healthy =
      service.PredictAsync(TrainExample(1));
  const Result<ServedPrediction> expired_result = expired.get();
  ASSERT_FALSE(expired_result.ok());
  EXPECT_EQ(expired_result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(healthy.get().ok());
}

TEST_F(ServeTest, RequestsWithoutSnapshotAreRejected) {
  PredictionService service;
  const Result<ServedPrediction> result = service.Predict(TrainExample(0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, ShutdownDrainsQueuedRequests) {
  PredictionServiceOptions options;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 50.0;
  auto service = std::make_unique<PredictionService>(options);
  service->LoadSnapshot(*snapshot_a_);
  std::vector<std::future<Result<ServedPrediction>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(service->PredictAsync(TrainExample(i)));
  }
  service->Shutdown();
  for (auto& future : futures) {
    const Result<ServedPrediction> result = future.get();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  // After shutdown new requests are refused, not queued forever.
  const Result<ServedPrediction> late = service->Predict(TrainExample(0));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace activedp
