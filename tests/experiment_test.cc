#include "core/experiment.h"

#include <gtest/gtest.h>

#include "data/dataset_zoo.h"

namespace activedp {
namespace {

TEST(EndModelTest, TrainsOnNonRejectedRowsOnly) {
  Result<DataSplit> split = MakeZooDataset("occupancy", 0.04, 31);
  ASSERT_TRUE(split.ok());
  FrameworkContext context = FrameworkContext::Build(*split);
  // Label half the rows with ground truth, reject the rest.
  std::vector<std::vector<double>> soft(split->train.size());
  for (int i = 0; i < split->train.size(); i += 2) {
    soft[i] = {0.0, 0.0};
    soft[i][split->train.example(i).label] = 1.0;
  }
  Result<LogisticRegression> model =
      TrainEndModel(context.train_features, soft, 2, context.feature_dim,
                    EndModelOptions{});
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateAccuracy(*model, context.test_features,
                             context.test_labels),
            0.9);
}

TEST(EndModelTest, FailsWithNoLabels) {
  Result<DataSplit> split = MakeZooDataset("occupancy", 0.04, 31);
  ASSERT_TRUE(split.ok());
  FrameworkContext context = FrameworkContext::Build(*split);
  const std::vector<std::vector<double>> empty(split->train.size());
  EXPECT_FALSE(TrainEndModel(context.train_features, empty, 2,
                             context.feature_dim, EndModelOptions{})
                   .ok());
}

TEST(MeasureLabelQualityTest, CountsCorrectAndCovered) {
  DatasetMeta meta;
  meta.num_classes = 2;
  std::vector<Example> examples(4);
  examples[0].label = 0;
  examples[1].label = 1;
  examples[2].label = 0;
  examples[3].label = 1;
  const Dataset train(meta, std::move(examples));
  const std::vector<std::vector<double>> soft = {
      {0.9, 0.1}, {0.2, 0.8}, {}, {0.9, 0.1}};
  const LabelQuality quality = MeasureLabelQuality(soft, train);
  EXPECT_DOUBLE_EQ(quality.coverage, 0.75);
  EXPECT_NEAR(quality.accuracy, 2.0 / 3.0, 1e-12);
}

TEST(ProtocolTest, ChecksPointsEveryEvalEvery) {
  Result<DataSplit> split = MakeZooDataset("youtube", 0.3, 17);
  ASSERT_TRUE(split.ok());
  FrameworkContext context = FrameworkContext::Build(*split);
  ActiveDpOptions adp;
  adp.seed = 3;
  std::unique_ptr<InteractiveFramework> framework =
      MakeFramework(FrameworkType::kUs, context, adp);
  ProtocolOptions protocol;
  protocol.iterations = 30;
  protocol.eval_every = 10;
  const RunResult result = RunProtocol(*framework, context, protocol);
  EXPECT_EQ(result.budgets, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(result.test_accuracy.size(), 3u);
  EXPECT_EQ(result.label_accuracy.size(), 3u);
  for (double accuracy : result.test_accuracy) {
    EXPECT_GE(accuracy, 0.0);
    EXPECT_LE(accuracy, 1.0);
  }
  EXPECT_NEAR(result.average_test_accuracy,
              (result.test_accuracy[0] + result.test_accuracy[1] +
               result.test_accuracy[2]) /
                  3.0,
              1e-12);
}

TEST(ProtocolTest, UncertaintyLabelAccuracyIsOne) {
  Result<DataSplit> split = MakeZooDataset("youtube", 0.3, 19);
  ASSERT_TRUE(split.ok());
  FrameworkContext context = FrameworkContext::Build(*split);
  ActiveDpOptions adp;
  adp.seed = 5;
  std::unique_ptr<InteractiveFramework> framework =
      MakeFramework(FrameworkType::kUs, context, adp);
  ProtocolOptions protocol;
  protocol.iterations = 20;
  const RunResult result = RunProtocol(*framework, context, protocol);
  for (double accuracy : result.label_accuracy) {
    EXPECT_DOUBLE_EQ(accuracy, 1.0);
  }
}

TEST(RunExperimentTest, AveragesSeedsAndIsDeterministic) {
  ExperimentSpec spec;
  spec.dataset = "youtube";
  spec.framework = FrameworkType::kActiveDp;
  spec.protocol.iterations = 20;
  spec.protocol.eval_every = 10;
  spec.data_scale = 0.2;
  spec.num_seeds = 2;
  spec.base_seed = 7;
  Result<RunResult> a = RunExperiment(spec);
  Result<RunResult> b = RunExperiment(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->test_accuracy.size(), b->test_accuracy.size());
  for (size_t i = 0; i < a->test_accuracy.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->test_accuracy[i], b->test_accuracy[i]);
  }
}

TEST(ProtocolTest, EarlyExhaustionTruncatesCurve) {
  // IWS's candidate pool on a small tabular dataset is smaller than the
  // budget; the protocol must stop cleanly with a shorter curve (the
  // regression behind the figure-3 harness padding).
  Result<DataSplit> split = MakeZooDataset("occupancy", 0.05, 23);
  ASSERT_TRUE(split.ok());
  FrameworkContext context = FrameworkContext::Build(*split);
  ActiveDpOptions adp;
  adp.seed = 3;
  std::unique_ptr<InteractiveFramework> framework =
      MakeFramework(FrameworkType::kIws, context, adp);
  ProtocolOptions protocol;
  protocol.iterations = 500;
  protocol.eval_every = 10;
  const RunResult result = RunProtocol(*framework, context, protocol);
  EXPECT_LT(result.budgets.size(), 50u);
  EXPECT_FALSE(result.budgets.empty());
  EXPECT_EQ(result.budgets.size(), result.test_accuracy.size());
}

TEST(RunExperimentTest, ParallelSeedsMatchSerial) {
  ExperimentSpec spec;
  spec.dataset = "youtube";
  spec.framework = FrameworkType::kUs;
  spec.protocol.iterations = 20;
  spec.protocol.eval_every = 10;
  spec.data_scale = 0.2;
  spec.num_seeds = 3;
  spec.base_seed = 11;
  Result<RunResult> serial = RunExperiment(spec);
  spec.num_threads = 3;
  Result<RunResult> parallel = RunExperiment(spec);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->test_accuracy.size(), parallel->test_accuracy.size());
  for (size_t i = 0; i < serial->test_accuracy.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial->test_accuracy[i], parallel->test_accuracy[i]);
  }
}

TEST(RunExperimentTest, UnknownDatasetFails) {
  ExperimentSpec spec;
  spec.dataset = "not-a-dataset";
  EXPECT_FALSE(RunExperiment(spec).ok());
}

}  // namespace
}  // namespace activedp
