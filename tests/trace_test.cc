// RunTrace tracer tests (util/trace.h): span nesting and exception
// unwinding, the (track, seq) determinism contract across thread counts,
// JSONL / Chrome trace_event syntactic validity, and the end-to-end promise
// that two same-seed experiments produce identical traces modulo timestamps.
//
// Every test arms the process-wide Tracer::Global() and disables it before
// returning, so the suite leaves no tracing cost behind for other tests.

#include "util/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <regex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "util/csv.h"
#include "util/metrics.h"

namespace activedp {
namespace {

// Removes the timestamp fields — the only fields allowed to differ between
// same-seed runs per the determinism contract in util/trace.h.
std::string StripTimestamps(const std::string& text) {
  static const std::regex kTimestamp(
      "\"(ts_us|dur_us|ts|dur)\": -?[0-9]+");
  return std::regex_replace(text, kTimestamp, "\"$1\": _");
}

// Minimal recursive-descent JSON syntax checker — enough to prove the
// exported text is well-formed without pulling in a JSON dependency.
class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker checker(text);
    checker.SkipWs();
    if (!checker.Value()) return false;
    checker.SkipWs();
    return checker.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        pos_ += 2;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(TraceTest, DisabledTracerRecordsNothingAndSpansAreInactive) {
  Tracer::Global().Disable();
  {
    TraceSpan span("never.recorded");
    EXPECT_FALSE(span.active());
    span.AddArg("ignored", 1);
    TraceInstant("retry", "never", "recorded");
  }
  if (!kTracingCompiledIn) {
    EXPECT_FALSE(Tracer::Global().enabled());
    return;  // nothing else to assert in a -DACTIVEDP_DISABLE_TRACING build
  }
  Tracer::Global().Enable();
  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_TRUE(trace.events.empty());
}

TEST(TraceTest, SpanNestingRecordsParentSeqAndDepth) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer::Global().Enable();
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
      { TraceSpan leaf("leaf"); }
    }
    { TraceSpan sibling("sibling"); }
  }
  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();

  ASSERT_EQ(trace.spans.size(), 4u);
  const TraceSpanRecord& outer = trace.spans[0];
  const TraceSpanRecord& inner = trace.spans[1];
  const TraceSpanRecord& leaf = trace.spans[2];
  const TraceSpanRecord& sibling = trace.spans[3];
  EXPECT_EQ(outer.stage, "outer");
  EXPECT_EQ(outer.parent_seq, -1);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.parent_seq, outer.seq);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(leaf.parent_seq, inner.seq);
  EXPECT_EQ(leaf.depth, 2);
  EXPECT_EQ(sibling.parent_seq, outer.seq);
  EXPECT_EQ(sibling.depth, 1);
  // All spans closed: durations recorded.
  for (const TraceSpanRecord& span : trace.spans) {
    EXPECT_GE(span.dur_us, 0) << span.stage;
  }
  // Sequences are 1-based and strictly increasing in construction order.
  EXPECT_EQ(outer.seq, 1);
  EXPECT_EQ(inner.seq, 2);
  EXPECT_EQ(leaf.seq, 3);
  EXPECT_EQ(sibling.seq, 4);
}

TEST(TraceTest, ExceptionUnwindingClosesOpenSpans) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer::Global().Enable();
  try {
    TraceSpan outer("throwing.outer");
    TraceSpan inner("throwing.inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // The stack unwound cleanly: a new root span nests at depth 0 again.
  { TraceSpan after("after.throw"); }
  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();

  ASSERT_EQ(trace.spans.size(), 3u);
  for (const TraceSpanRecord& span : trace.spans) {
    EXPECT_GE(span.dur_us, 0) << span.stage << " left open";
  }
  EXPECT_EQ(trace.spans[2].stage, "after.throw");
  EXPECT_EQ(trace.spans[2].depth, 0);
  EXPECT_EQ(trace.spans[2].parent_seq, -1);
}

TEST(TraceTest, ArgsAndInstantsShareTheTrackSequence) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer::Global().Enable();
  {
    TraceSpan span("stage.with.args");
    span.AddArg("iteration", 7);
    TraceInstant("retry", "stage.with.args", "transient failure");
    span.AddArg("converged", 1);
  }
  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();

  ASSERT_EQ(trace.spans.size(), 1u);
  ASSERT_EQ(trace.events.size(), 1u);
  ASSERT_EQ(trace.spans[0].args.size(), 2u);
  EXPECT_EQ(trace.spans[0].args[0].first, "iteration");
  EXPECT_EQ(trace.spans[0].args[0].second, 7);
  EXPECT_EQ(trace.spans[0].args[1].first, "converged");
  EXPECT_EQ(trace.spans[0].args[1].second, 1);
  EXPECT_EQ(trace.events[0].category, "retry");
  EXPECT_EQ(trace.events[0].detail, "transient failure");
  // The event drew the next seq after the span on the same track.
  EXPECT_EQ(trace.events[0].track, trace.spans[0].track);
  EXPECT_EQ(trace.events[0].seq, trace.spans[0].seq + 1);
}

// The deterministic workload each track runs in the merge test below.
void TrackWorkload(int track) {
  TraceTrackScope scope(track);
  TraceSpan outer("work.outer");
  outer.AddArg("track", track);
  for (int i = 0; i < 3; ++i) {
    TraceSpan inner("work.inner");
    inner.AddArg("i", i);
    if (i == 1) TraceInstant("fault", "work.inner", "injected");
  }
}

TEST(TraceTest, MergeIsDeterministicAcrossOneVsFourThreads) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  constexpr int kTracks = 4;

  // Serial: one thread drives all four tracks in order.
  Tracer::Global().Enable();
  for (int t = 0; t < kTracks; ++t) TrackWorkload(t);
  const RunTrace serial = Tracer::Global().Collect();

  // Parallel: four threads, one per track, interleaving freely. The merge
  // sorts by (track, seq), so the collected trace must match the serial one
  // exactly after stripping timestamps.
  Tracer::Global().Enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < kTracks; ++t) {
    threads.emplace_back(TrackWorkload, t);
  }
  for (std::thread& thread : threads) thread.join();
  const RunTrace parallel = Tracer::Global().Collect();
  Tracer::Global().Disable();

  EXPECT_EQ(serial.spans.size(), parallel.spans.size());
  EXPECT_EQ(serial.events.size(), parallel.events.size());
  EXPECT_EQ(StripTimestamps(serial.ToJsonl()),
            StripTimestamps(parallel.ToJsonl()));
}

TEST(TraceTest, JsonlAndChromeExportsAreWellFormed) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer::Global().Enable();
  {
    TraceSpan span("stage \"quoted\"\nnewline");
    span.AddArg("n", 42);
    TraceInstant("degradation", "stage\\back", "reason -> fallback\t(tab)");
  }
  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();

  // Every JSONL line is one standalone JSON object, escapes included.
  const std::vector<std::string> lines = SplitLines(trace.ToJsonl());
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonChecker::Valid(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"type\": \"span\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\": \"event\""), std::string::npos);
  // Timestamp fields are serialized last so tests (and diff tools) can
  // strip them with a regex without re-ordering keys.
  EXPECT_GT(lines[0].find("\"ts_us\""), lines[0].find("\"args\""));

  // The Chrome export is one JSON document with the trace_event envelope.
  const std::string chrome = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker::Valid(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"i\""), std::string::npos);

  // The summary JSON is valid too.
  EXPECT_TRUE(JsonChecker::Valid(trace.Summary().ToJson()));
}

TEST(TraceTest, SummaryAggregatesByStageAndCategory) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer::Global().Enable();
  for (int i = 0; i < 3; ++i) {
    TraceSpan span("repeated.stage");
  }
  { TraceSpan span("single.stage"); }
  TraceInstant("retry", "a", "x");
  TraceInstant("retry", "b", "y");
  TraceInstant("fault", "c", "z");
  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();

  const TraceSummary summary = trace.Summary();
  EXPECT_EQ(summary.num_spans, 4);
  EXPECT_EQ(summary.num_events, 3);
  int64_t repeated = 0;
  int64_t retries = 0;
  for (const TraceStageStats& stats : summary.stages) {
    if (stats.stage == "repeated.stage") repeated = stats.count;
  }
  for (const auto& [category, count] : summary.event_counts) {
    if (category == "retry") retries = count;
  }
  EXPECT_EQ(repeated, 3);
  EXPECT_EQ(retries, 2);
  EXPECT_FALSE(summary.ToString().empty());
}

TEST(TraceTest, EnableWhileSpanOpenDoesNotCorruptTheNewGeneration) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer::Global().Enable();
  {
    TraceSpan stale("stale.span");
    Tracer::Global().Enable();  // reset mid-span: bumps the generation
    // The stale span's destructor must not write into the fresh buffer.
  }
  { TraceSpan fresh("fresh.span"); }
  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();

  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_EQ(trace.spans[0].stage, "fresh.span");
  EXPECT_GE(trace.spans[0].dur_us, 0);
}

// Same-seed experiments must emit byte-identical trace files modulo the
// timestamp fields — the ISSUE's acceptance bar for the whole tentpole.
TEST(TraceTest, SameSeedExperimentTracesIdenticalModuloTimestamps) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  ExperimentSpec spec;
  spec.dataset = "youtube";
  spec.framework = FrameworkType::kActiveDp;
  spec.protocol.iterations = 20;
  spec.protocol.eval_every = 10;
  spec.data_scale = 0.2;
  spec.num_seeds = 2;
  spec.base_seed = 7;

  spec.policy.trace_dir = testing::TempDir() + "/trace_a";
  ASSERT_TRUE(RunExperiment(spec).ok());
  spec.policy.trace_dir = testing::TempDir() + "/trace_b";
  ASSERT_TRUE(RunExperiment(spec).ok());

  const std::string stem = "/youtube-activedp";
  Result<std::string> a =
      ReadFile(testing::TempDir() + "/trace_a" + stem + ".trace.jsonl");
  Result<std::string> b =
      ReadFile(testing::TempDir() + "/trace_b" + stem + ".trace.jsonl");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->empty());
  EXPECT_EQ(StripTimestamps(*a), StripTimestamps(*b));

  // Every protocol stage shows up in the timeline.
  for (const char* stage :
       {"experiment.seed", "dataset.make", "protocol.round", "protocol.eval",
        "end_model.fit", "activedp.step", "sampler.select", "oracle.create_lf",
        "lf.apply", "al_model.fit", "label_model.fit",
        "label_model.predict"}) {
    EXPECT_NE(a->find(std::string("\"stage\": \"") + stage + "\""),
              std::string::npos)
        << "missing stage " << stage;
  }

  // Both seeds recorded on their own tracks.
  EXPECT_NE(a->find("\"track\": 0"), std::string::npos);
  EXPECT_NE(a->find("\"track\": 1"), std::string::npos);

  // Each JSONL line parses; the Chrome companion file is one JSON document.
  for (const std::string& line : SplitLines(*a)) {
    ASSERT_TRUE(JsonChecker::Valid(line)) << line;
  }
  Result<std::string> chrome =
      ReadFile(testing::TempDir() + "/trace_a" + stem + ".trace.chrome.json");
  ASSERT_TRUE(chrome.ok());
  EXPECT_TRUE(JsonChecker::Valid(*chrome));
  Result<std::string> summary =
      ReadFile(testing::TempDir() + "/trace_a" + stem + ".trace.summary.json");
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(JsonChecker::Valid(*summary));
  EXPECT_NE(summary->find("\"metrics\""), std::string::npos);
}

// Hammer for the TSan preset: concurrent spans, args, instants and metrics
// from many threads, with a mid-flight Enable() reset thrown in.
TEST(TraceTest, ConcurrentRecordingIsThreadSafe) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer::Global().Enable();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t]() {
      TraceTrackScope scope(t);
      for (int i = 0; i < 200; ++i) {
        TraceSpan span("hammer.stage");
        span.AddArg("i", i);
        if (i % 7 == 0) TraceInstant("retry", "hammer", "contend");
        MetricsRegistry::Global().counter("hammer.count").Increment();
      }
    });
  }
  // Reset concurrently with the writers: generation guard must hold.
  Tracer::Global().Enable();
  for (std::thread& thread : threads) thread.join();
  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();
  // No structural guarantees after the reset race — only memory safety and
  // that whatever survived is well-formed.
  for (const TraceSpanRecord& span : trace.spans) {
    EXPECT_EQ(span.stage, "hammer.stage");
  }
}

}  // namespace
}  // namespace activedp
