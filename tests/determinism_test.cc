// End-to-end determinism: every parallelized stage must produce bitwise
// identical results regardless of the compute-pool thread count. The chunked
// reductions are constructed so each value is accumulated in the same order
// as the serial code (see DESIGN.md "Parallelism & determinism"); this suite
// is the enforcement.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic_text.h"
#include "graphical/graphical_lasso.h"
#include "lf/label_function.h"
#include "lf/lf_applier.h"
#include "labelmodel/metal_completion.h"
#include "labelmodel/metal_model.h"
#include "math/kernels.h"
#include "math/matrix.h"
#include "ml/featurizer.h"
#include "ml/metrics.h"
#include "text/tfidf.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace activedp {
namespace {

// FNV-1a over raw bit patterns: any single-bit difference anywhere in the
// pipeline's numeric output changes the digest.
class BitHasher {
 public:
  void Add(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
    std::memcpy(&bits, &value, sizeof(bits));
    AddBits(bits);
  }
  void Add(int value) { AddBits(static_cast<uint64_t>(value)); }
  void Add(const std::vector<double>& values) {
    for (double v : values) Add(v);
  }
  void Add(const std::vector<std::vector<double>>& rows) {
    for (const auto& row : rows) Add(row);
  }
  void Add(const Matrix& m) {
    for (int r = 0; r < m.rows(); ++r) {
      for (int c = 0; c < m.cols(); ++c) Add(m(r, c));
    }
  }
  void Add(const SparseVector& v) {
    for (int k = 0; k < v.nnz(); ++k) {
      Add(v.indices[k]);
      Add(v.values[k]);
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  void AddBits(uint64_t bits) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (bits >> (8 * byte)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Runs the full pipeline — synthetic corpus, TF-IDF features, LF matrix,
// both MeTaL label models, spin covariance through Matrix ops, graphical
// lasso, metrics — and digests every stage's numeric output.
uint64_t RunPipelineDigest(uint64_t seed) {
  BitHasher hasher;

  SyntheticTextConfig config;
  config.num_examples = 400;
  config.num_classes = 2;
  config.signal_words_per_class = 24;
  config.weak_words_per_class = 24;
  config.background_words = 120;
  Rng rng(seed);
  const Dataset data = GenerateSyntheticText(config, rng);

  // Stage: TF-IDF fit + per-example featurization.
  const TextFeaturizer tfidf(data);
  const std::vector<SparseVector> features = FeaturizeAll(tfidf, data);
  for (const auto& f : features) hasher.Add(f);

  // Stage: LF application. Keyword LFs over the most frequent vocab ids;
  // 12 LFs keeps the completion model on its matrix-completion path (m >= 8).
  std::vector<LfPtr> lfs;
  const int num_lfs = std::min(12, data.vocabulary().size());
  for (int id = 0; id < num_lfs; ++id) {
    lfs.push_back(std::make_shared<KeywordLf>(
        id, data.vocabulary().GetWord(id), id % config.num_classes));
  }
  const LabelMatrix matrix = ApplyLfs(lfs, data);
  for (int j = 0; j < matrix.num_cols(); ++j) {
    for (int8_t v : matrix.column(j)) hasher.Add(static_cast<int>(v));
  }

  // Stage: label models (pairwise-moment fit and matrix completion).
  MetalModel metal;
  EXPECT_TRUE(metal.Fit(matrix, config.num_classes).ok());
  const auto metal_proba = metal.PredictProbaAll(matrix);
  EXPECT_TRUE(metal_proba.ok());
  hasher.Add(*metal_proba);

  MetalCompletionModel completion;
  EXPECT_TRUE(completion.Fit(matrix, config.num_classes).ok());
  const auto completion_proba = completion.PredictProbaAll(matrix);
  EXPECT_TRUE(completion_proba.ok());
  hasher.Add(*completion_proba);

  // Stage: Matrix ops + graphical lasso over the LF spin covariance.
  const int n = matrix.num_rows();
  const int m = matrix.num_cols();
  Matrix spins(n, m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      const int v = matrix.At(i, j);
      spins(i, j) = v < 0 ? 0.0 : (v == 1 ? 1.0 : -1.0);
    }
  }
  Matrix covariance =
      spins.Transpose().Multiply(spins).Scale(1.0 / n);
  for (int j = 0; j < m; ++j) covariance(j, j) += 0.1;
  hasher.Add(covariance);

  GraphicalLassoOptions glasso_options;
  glasso_options.max_iterations = 30;
  const auto glasso = GraphicalLasso(covariance, glasso_options);
  EXPECT_TRUE(glasso.ok());
  hasher.Add(glasso->precision);

  // Stage: metrics over the label-model predictions.
  const auto predictions = metal.PredictAll(matrix);
  EXPECT_TRUE(predictions.ok());
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = data.example(i).label;
  hasher.Add(Accuracy(*predictions, labels));
  const PrecisionRecallF1 prf = BinaryPrf(*predictions, labels, 1);
  hasher.Add(prf.precision);
  hasher.Add(prf.recall);
  hasher.Add(prf.f1);

  return hasher.digest();
}

TEST(DeterminismTest, PipelineBitwiseIdenticalAcrossThreadCounts) {
  // Run with the tracer armed: instrumentation must not perturb any numeric
  // result, at any thread count (the RunTrace cost/determinism contract).
  Tracer::Global().Enable();
  for (const uint64_t seed : {11ULL, 23ULL, 47ULL}) {
    SetComputePoolThreads(1);
    const uint64_t serial = RunPipelineDigest(seed);

    SetComputePoolThreads(4);
    const uint64_t pooled = RunPipelineDigest(seed);
    SetComputePoolThreads(1);

    EXPECT_EQ(serial, pooled) << "seed " << seed;
    // And re-running serially reproduces the digest (the pipeline itself is
    // deterministic, so a digest mismatch above isolates the thread count).
    EXPECT_EQ(serial, RunPipelineDigest(seed)) << "seed " << seed;
  }
  Tracer::Global().Disable();
}

TEST(DeterminismTest, PipelineBitwiseIdenticalAcrossSimdLevels) {
  // The kernels' canonical 4-lane association (math/kernels.h) makes the
  // SIMD level as digest-neutral as the thread count: scalar and the best
  // compiled-in/supported level must agree bitwise, in every combination
  // with the pool width. In a -DACTIVEDP_SIMD=OFF build the sweep collapses
  // to scalar and degenerates into a reproducibility check.
  const kernels::SimdLevel entry_level = kernels::ActiveSimdLevel();
  std::vector<kernels::SimdLevel> levels = {kernels::SimdLevel::kScalar};
  if (kernels::MaxSupportedSimdLevel() != kernels::SimdLevel::kScalar) {
    levels.push_back(kernels::MaxSupportedSimdLevel());
  }
  for (const uint64_t seed : {11ULL, 47ULL}) {
    kernels::SetSimdLevel(kernels::SimdLevel::kScalar);
    SetComputePoolThreads(1);
    const uint64_t reference = RunPipelineDigest(seed);
    for (const kernels::SimdLevel level : levels) {
      for (const int threads : {1, 4}) {
        ASSERT_EQ(kernels::SetSimdLevel(level), level);
        SetComputePoolThreads(threads);
        EXPECT_EQ(reference, RunPipelineDigest(seed))
            << "seed " << seed << " simd " << kernels::SimdLevelName(level)
            << " threads " << threads;
      }
    }
  }
  SetComputePoolThreads(1);
  kernels::SetSimdLevel(entry_level);
}

}  // namespace
}  // namespace activedp
