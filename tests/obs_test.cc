// OpsPlane tests (src/obs): the flight recorder's bounded ring and
// checksummed incident dumps, the TraceSink hook that feeds it from every
// existing span/instant site, and the SLO burn-rate engine's deterministic
// delta evaluation. Every test disables the global recorder before
// returning so no sink cost leaks into other tests.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "util/atomic_file.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace activedp {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

class RecorderGuard {
 public:
  explicit RecorderGuard(FlightRecorderOptions options) {
    FlightRecorder::Global().Enable(std::move(options));
  }
  ~RecorderGuard() { FlightRecorder::Global().Disable(); }
};

bool TimelineContains(const std::vector<FlightRecord>& records,
                      const std::string& name) {
  for (const FlightRecord& record : records) {
    if (record.name == name) return true;
  }
  return false;
}

TEST(FlightRecorderTest, RingCapturesInstantsAndSpansOldestFirst) {
  Tracer::Global().Disable();  // the sink must not depend on the tracer
  RecorderGuard guard({.incident_dir = FreshDir("fr_ring")});
  TraceInstant("test", "first", "detail=1");
  { TraceSpan span("test.stage"); }
  TraceInstant("test", "second", "");

  const std::vector<FlightRecord> records =
      FlightRecorder::Global().CollectRecent();
  ASSERT_GE(records.size(), 3u);
  EXPECT_TRUE(TimelineContains(records, "first"));
  EXPECT_TRUE(TimelineContains(records, "test.stage"));
  EXPECT_TRUE(TimelineContains(records, "second"));
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].ts_us, records[i].ts_us);
  }
  bool saw_span = false;
  for (const FlightRecord& record : records) {
    if (record.name == "test.stage") {
      saw_span = true;
      EXPECT_TRUE(record.is_span);
      EXPECT_GE(record.dur_us, 0);
    }
  }
  EXPECT_TRUE(saw_span);
}

TEST(FlightRecorderTest, DisabledRecorderCapturesNothing) {
  // Rings survive Disable() (registration is reused), so the check is that
  // no *new* record lands, not that the rings are empty.
  FlightRecorder::Global().Disable();
  TraceInstant("test", "ghost", "");
  EXPECT_FALSE(TimelineContains(FlightRecorder::Global().CollectRecent(),
                                "ghost"));
}

TEST(FlightRecorderTest, WindowAgesOutOldRecords) {
  RecorderGuard guard(
      {.window_seconds = 0.05, .incident_dir = FreshDir("fr_window")});
  TraceInstant("test", "stale", "");
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  TraceInstant("test", "fresh", "");
  const std::vector<FlightRecord> records =
      FlightRecorder::Global().CollectRecent();
  EXPECT_FALSE(TimelineContains(records, "stale"));
  EXPECT_TRUE(TimelineContains(records, "fresh"));
}

TEST(FlightRecorderTest, TriggerIncidentWritesVerifiedDump) {
  const std::string dir = FreshDir("fr_dump");
  RecorderGuard guard({.incident_dir = dir});
  FlightRecorder::Global().AddContextProvider(
      "scenario", [] { return std::string("\"unit-test\""); });
  TraceInstant("test", "the_trigger", "cause=injected");

  const Result<std::string> dump =
      FlightRecorder::Global().TriggerIncident("test.reason");
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_TRUE(VerifyIncidentDump(*dump).ok());

  const Result<IncidentManifest> manifest = ReadIncidentManifest(*dump);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->reason, "test.reason");
  EXPECT_GT(manifest->num_records, 0);

  const Result<std::string> timeline =
      ReadFileVerifyingChecksum(*dump + "/timeline.jsonl");
  ASSERT_TRUE(timeline.ok());
  EXPECT_NE(timeline->find("the_trigger"), std::string::npos);
  const Result<std::string> context =
      ReadFileVerifyingChecksum(*dump + "/context.json");
  ASSERT_TRUE(context.ok());
  EXPECT_NE(context->find("unit-test"), std::string::npos);

  const std::vector<std::string> listed = ListIncidentDumps(dir);
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed.front(), *dump);
}

TEST(FlightRecorderTest, TriggerWhileDisabledFailsPrecondition) {
  FlightRecorder::Global().Disable();
  const Result<std::string> dump =
      FlightRecorder::Global().TriggerIncident("whatever");
  ASSERT_FALSE(dump.ok());
  EXPECT_EQ(dump.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FlightRecorderTest, CooldownSuppressesRepeatReasonsUntilReenable) {
  const std::string dir = FreshDir("fr_cooldown");
  FlightRecorder::Global().Enable({.incident_dir = dir});
  TraceInstant("test", "blip", "");
  ASSERT_TRUE(FlightRecorder::Global().TriggerIncident("flap").ok());
  const Result<std::string> repeat =
      FlightRecorder::Global().TriggerIncident("flap");
  ASSERT_FALSE(repeat.ok());
  EXPECT_EQ(repeat.status().code(), StatusCode::kUnavailable);
  // A different reason is not throttled by "flap"'s cooldown.
  EXPECT_TRUE(FlightRecorder::Global().TriggerIncident("other").ok());
  // Enable() resets cooldowns: a new scenario starts clean.
  FlightRecorder::Global().Enable({.incident_dir = dir});
  EXPECT_TRUE(FlightRecorder::Global().TriggerIncident("flap").ok());
  FlightRecorder::Global().Disable();
  EXPECT_EQ(ListIncidentDumps(dir).size(), 3u);
}

TEST(FlightRecorderTest, ListExcludesInProgressTempDirectories) {
  const std::string dir = FreshDir("fr_list");
  std::filesystem::create_directories(dir + "/.tmp-incident-000001");
  std::filesystem::create_directories(dir + "/not-an-incident");
  EXPECT_TRUE(ListIncidentDumps(dir).empty());
}

// Writers spam records from several threads while the reader repeatedly
// collects and dumps. Run under TSan this certifies the seqlock: no torn
// text, no data race, and the dump still verifies.
TEST(FlightRecorderTest, ConcurrentWritersAndDumpStayCoherent) {
  const std::string dir = FreshDir("fr_race");
  RecorderGuard guard({.ring_capacity = 128, .incident_dir = dir});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        TraceInstant("race", "w" + std::to_string(t),
                     "i=" + std::to_string(i));
        TraceSpan span("race.span");
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    const std::vector<FlightRecord> records =
        FlightRecorder::Global().CollectRecent();
    for (const FlightRecord& record : records) {
      // A torn slot would show mixed category/name text.
      if (record.category == "race") {
        EXPECT_EQ(record.name.rfind('w', 0) == 0 || record.name == "race.span",
                  true);
      }
    }
  }
  const Result<std::string> dump =
      FlightRecorder::Global().TriggerIncident("race.check");
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_TRUE(VerifyIncidentDump(*dump).ok());
}

// -- HistogramCdf ---------------------------------------------------------

TEST(HistogramCdfTest, EmptyHistogramIsFullyUnderAnyBound) {
  EXPECT_DOUBLE_EQ(HistogramCdf({10, 20}, {0, 0, 0}, 15.0), 1.0);
}

TEST(HistogramCdfTest, InterpolatesWithinTheContainingBucket) {
  const std::vector<double> bounds = {10, 20};
  const std::vector<int64_t> counts = {10, 10, 0};
  EXPECT_DOUBLE_EQ(HistogramCdf(bounds, counts, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(HistogramCdf(bounds, counts, 15.0), 0.75);
  EXPECT_DOUBLE_EQ(HistogramCdf(bounds, counts, 20.0), 1.0);
  EXPECT_DOUBLE_EQ(HistogramCdf(bounds, counts, 1000.0), 1.0);
}

TEST(HistogramCdfTest, OverflowBucketCountsAsOverAnyFiniteBound) {
  EXPECT_DOUBLE_EQ(HistogramCdf({10}, {0, 5}, 1e12), 0.0);
  EXPECT_DOUBLE_EQ(HistogramCdf({10}, {5, 5}, 1e12), 0.5);
}

// -- SLO engine -----------------------------------------------------------

MetricsSnapshot CounterSnapshot(int64_t total, int64_t bad) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"req.total", {}, total});
  snapshot.counters.push_back({"req.bad", {}, bad});
  return snapshot;
}

SloSpec AvailabilitySpec() {
  SloSpec spec;
  spec.name = "avail";
  spec.kind = SloKind::kAvailability;
  spec.objective = 0.9;  // 10% error budget
  spec.total_counter = "req.total";
  spec.bad_counters = {"req.bad"};
  spec.short_window_seconds = 5.0;
  spec.long_window_seconds = 60.0;
  return spec;
}

TEST(SloEngineTest, BreachRequiresBothWindowsBurning) {
  SloEngine engine({AvailabilitySpec()});
  engine.TickWithSnapshot(0, CounterSnapshot(0, 0));
  // 50% bad over 30s: burn 5.0 on both windows -> breached.
  engine.TickWithSnapshot(30'000'000, CounterSnapshot(1000, 500));
  SloStatus status = engine.Evaluate();
  ASSERT_EQ(status.results.size(), 1u);
  EXPECT_FALSE(status.results[0].met);
  EXPECT_GT(status.results[0].burn_short, 1.0);
  EXPECT_GT(status.results[0].burn_long, 1.0);
  EXPECT_FALSE(status.all_met());

  // The next 10s are clean: the short window recovers, the long window is
  // still burning, and the SLO reads met again (both must burn to breach).
  engine.TickWithSnapshot(36'000'000, CounterSnapshot(1500, 500));
  engine.TickWithSnapshot(40'000'000, CounterSnapshot(2000, 500));
  status = engine.Evaluate();
  EXPECT_LE(status.results[0].burn_short, 1.0);
  EXPECT_GT(status.results[0].burn_long, 1.0);
  EXPECT_TRUE(status.results[0].met);
}

TEST(SloEngineTest, ZeroTrafficBurnsNothing) {
  SloEngine engine({AvailabilitySpec()});
  engine.TickWithSnapshot(0, CounterSnapshot(100, 100));
  engine.TickWithSnapshot(10'000'000, CounterSnapshot(100, 100));
  const SloStatus status = engine.Evaluate();
  ASSERT_EQ(status.results.size(), 1u);
  EXPECT_TRUE(status.results[0].met);
  EXPECT_DOUBLE_EQ(status.results[0].burn_long, 0.0);
}

TEST(SloEngineTest, SingleSampleReportsMetWithoutDeltas) {
  SloEngine engine({AvailabilitySpec()});
  engine.TickWithSnapshot(0, CounterSnapshot(1000, 1000));
  EXPECT_TRUE(engine.Evaluate().all_met());
}

TEST(SloEngineTest, LatencyQuantileJudgesBucketDeltas) {
  SloSpec spec;
  spec.name = "p90-under-10ms";
  spec.kind = SloKind::kLatencyQuantile;
  spec.objective = 0.9;
  spec.histogram = "lat";
  spec.latency_bound_ms = 10.0;
  SloEngine engine({spec});

  const auto histogram_snapshot = [](int64_t under, int64_t over) {
    MetricsSnapshot snapshot;
    MetricsSnapshot::HistogramSample sample;
    sample.name = "lat";
    sample.bounds = {10.0};
    sample.counts = {under, over};
    sample.count = under + over;
    snapshot.histograms.push_back(std::move(sample));
    return snapshot;
  };
  engine.TickWithSnapshot(0, histogram_snapshot(0, 0));
  // 5% over the bound: burn 0.5 -> met.
  engine.TickWithSnapshot(10'000'000, histogram_snapshot(95, 5));
  EXPECT_TRUE(engine.Evaluate().all_met());
  // The next delta is 50% over the bound: burn 5.0 on both windows.
  engine.TickWithSnapshot(12'000'000, histogram_snapshot(145, 55));
  EXPECT_FALSE(engine.Evaluate().all_met());
}

TEST(SloEngineTest, StalenessReadsTheLatestAgeGauge) {
  SloSpec spec;
  spec.name = "staleness";
  spec.kind = SloKind::kSnapshotStaleness;
  spec.age_gauge = "age_seconds";
  spec.max_age_seconds = 600.0;
  SloEngine engine({spec});

  MetricsSnapshot fresh;
  fresh.gauges.push_back({"age_seconds", {}, 30.0});
  engine.TickWithSnapshot(0, fresh);
  EXPECT_TRUE(engine.Evaluate().all_met());

  MetricsSnapshot stale;
  stale.gauges.push_back({"age_seconds", {}, 700.0});
  engine.TickWithSnapshot(1'000'000, stale);
  const SloStatus status = engine.Evaluate();
  EXPECT_FALSE(status.all_met());
  EXPECT_DOUBLE_EQ(status.results[0].value, 700.0);
}

TEST(SloEngineTest, AbsentAgeGaugeIsNotABreach) {
  SloSpec spec;
  spec.name = "freshness";
  spec.kind = SloKind::kRetrainFreshness;
  spec.age_gauge = "never_published";
  spec.max_age_seconds = 60.0;
  SloEngine engine({spec});
  engine.TickWithSnapshot(0, MetricsSnapshot{});
  EXPECT_TRUE(engine.Evaluate().all_met());
}

TEST(SloEngineTest, EvaluationIsAPureFunctionOfTheSampleHistory) {
  SloEngine a({AvailabilitySpec()});
  SloEngine b({AvailabilitySpec()});
  const std::vector<std::pair<int64_t, std::pair<int64_t, int64_t>>> ticks = {
      {0, {0, 0}}, {7'000'000, {500, 3}}, {61'000'000, {1200, 40}}};
  for (const auto& [ts, counts] : ticks) {
    a.TickWithSnapshot(ts, CounterSnapshot(counts.first, counts.second));
    b.TickWithSnapshot(ts, CounterSnapshot(counts.first, counts.second));
  }
  EXPECT_EQ(a.StatusJson(), b.StatusJson());
}

TEST(SloEngineTest, DefaultServingSlosCoverTheServeAndLearnPlanes) {
  const std::vector<SloSpec> specs = DefaultServingSlos();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].kind, SloKind::kAvailability);
  EXPECT_EQ(specs[1].kind, SloKind::kLatencyQuantile);
  EXPECT_EQ(specs[2].kind, SloKind::kSnapshotStaleness);
  EXPECT_EQ(specs[3].kind, SloKind::kRetrainFreshness);
}

}  // namespace
}  // namespace activedp
