#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "text/stopwords.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace activedp {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnumAndLowercases) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("Hello, World! 42x"),
            (std::vector<std::string>{"hello", "world", "42x"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("... !!! ---").empty());
}

TEST(TokenizerTest, MinTokenLength) {
  TokenizerOptions options;
  options.min_token_length = 3;
  Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("a an the cat"),
            (std::vector<std::string>{"the", "cat"}));
}

TEST(TokenizerTest, StopwordRemoval) {
  TokenizerOptions options;
  options.remove_stopwords = true;
  Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("the cat and the dog"),
            (std::vector<std::string>{"cat", "dog"}));
}

TEST(TokenizerTest, PreserveCaseOption) {
  TokenizerOptions options;
  options.lowercase = false;
  Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("Hello"), (std::vector<std::string>{"Hello"}));
}

TEST(StopwordsTest, KnownMembers) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_FALSE(IsStopword("spam"));
  EXPECT_FALSE(IsStopword(""));
}

TEST(VocabularyTest, BuildAssignsIdsByDocFrequency) {
  const std::vector<std::vector<std::string>> docs = {
      {"a", "b", "b"}, {"a", "c"}, {"a"}};
  const Vocabulary vocab = Vocabulary::Build(docs);
  EXPECT_EQ(vocab.size(), 3);
  // "a" appears in 3 docs -> id 0; duplicate tokens in one doc count once.
  EXPECT_EQ(vocab.GetId("a"), 0);
  EXPECT_EQ(vocab.doc_frequency(0), 3);
  EXPECT_EQ(vocab.doc_frequency(vocab.GetId("b")), 1);
  EXPECT_EQ(vocab.GetId("zzz"), Vocabulary::kUnknownId);
  EXPECT_EQ(vocab.GetWord(vocab.GetId("c")), "c");
}

TEST(VocabularyTest, MinDocCountPrunes) {
  const std::vector<std::vector<std::string>> docs = {
      {"common", "rare1"}, {"common", "rare2"}, {"common"}};
  const Vocabulary vocab = Vocabulary::Build(docs, /*min_doc_count=*/2);
  EXPECT_EQ(vocab.size(), 1);
  EXPECT_NE(vocab.GetId("common"), Vocabulary::kUnknownId);
  EXPECT_EQ(vocab.GetId("rare1"), Vocabulary::kUnknownId);
}

TEST(VocabularyTest, MaxSizeKeepsMostFrequent) {
  const std::vector<std::vector<std::string>> docs = {
      {"x", "y"}, {"x", "y"}, {"x"}};
  const Vocabulary vocab = Vocabulary::Build(docs, 1, /*max_size=*/1);
  EXPECT_EQ(vocab.size(), 1);
  EXPECT_NE(vocab.GetId("x"), Vocabulary::kUnknownId);
}

TEST(VocabularyTest, DeterministicTieBreak) {
  const std::vector<std::vector<std::string>> docs = {{"beta", "alpha"}};
  const Vocabulary vocab = Vocabulary::Build(docs);
  // Equal doc frequency -> lexicographic order.
  EXPECT_EQ(vocab.GetId("alpha"), 0);
  EXPECT_EQ(vocab.GetId("beta"), 1);
}

Dataset TinyTextDataset() {
  // Build a 3-document dataset by hand.
  const std::vector<std::vector<std::string>> docs = {
      {"spam", "spam", "money"}, {"ham", "hello"}, {"money", "hello"}};
  Vocabulary vocab = Vocabulary::Build(docs);
  std::vector<Example> examples;
  for (const auto& doc : docs) {
    Example e;
    std::map<int, int> counts;
    for (const auto& token : doc) ++counts[vocab.GetId(token)];
    for (const auto& [id, c] : counts) e.term_counts.emplace_back(id, c);
    e.label = 0;
    examples.push_back(e);
  }
  DatasetMeta meta;
  meta.name = "tiny";
  meta.num_classes = 2;
  meta.class_names = {"a", "b"};
  Dataset dataset(meta, std::move(examples));
  dataset.set_vocabulary(std::move(vocab));
  return dataset;
}

TEST(TfidfTest, DimensionMatchesVocabulary) {
  const Dataset dataset = TinyTextDataset();
  const TfidfFeaturizer tfidf = TfidfFeaturizer::Fit(dataset);
  EXPECT_EQ(tfidf.dim(), dataset.vocabulary().size());
}

TEST(TfidfTest, RarerTermsGetHigherIdf) {
  const Dataset dataset = TinyTextDataset();
  const TfidfFeaturizer tfidf = TfidfFeaturizer::Fit(dataset);
  const int money = dataset.vocabulary().GetId("money");  // df 2
  const int spam = dataset.vocabulary().GetId("spam");    // df 1
  EXPECT_GT(tfidf.idf(spam), tfidf.idf(money));
}

TEST(TfidfTest, TransformIsL2Normalized) {
  const Dataset dataset = TinyTextDataset();
  const TfidfFeaturizer tfidf = TfidfFeaturizer::Fit(dataset);
  const SparseVector v = tfidf.Transform(dataset.example(0));
  double norm_sq = 0.0;
  for (double value : v.values) norm_sq += value * value;
  EXPECT_NEAR(norm_sq, 1.0, 1e-12);
}

TEST(TfidfTest, UnknownTermsAreSkipped) {
  const Dataset dataset = TinyTextDataset();
  const TfidfFeaturizer tfidf = TfidfFeaturizer::Fit(dataset);
  Example e;
  e.term_counts = {{-1, 2}, {dataset.vocabulary().size() + 3, 1}};
  const SparseVector v = tfidf.Transform(e);
  EXPECT_EQ(v.nnz(), 0);
}

TEST(TfidfTest, SublinearTfDampensCounts) {
  const Dataset dataset = TinyTextDataset();
  TfidfOptions with;
  with.sublinear_tf = true;
  with.l2_normalize = false;
  TfidfOptions without;
  without.sublinear_tf = false;
  without.l2_normalize = false;
  const TfidfFeaturizer sub = TfidfFeaturizer::Fit(dataset, with);
  const TfidfFeaturizer raw = TfidfFeaturizer::Fit(dataset, without);
  // "spam" occurs twice in doc 0; sublinear weight 1+log 2 < raw weight 2.
  const SparseVector a = sub.Transform(dataset.example(0));
  const SparseVector b = raw.Transform(dataset.example(0));
  const int spam = dataset.vocabulary().GetId("spam");
  double sub_val = 0, raw_val = 0;
  for (int k = 0; k < a.nnz(); ++k) {
    if (a.indices[k] == spam) sub_val = a.values[k];
  }
  for (int k = 0; k < b.nnz(); ++k) {
    if (b.indices[k] == spam) raw_val = b.values[k];
  }
  EXPECT_LT(sub_val, raw_val);
}

TEST(TfidfTest, ZeroCountTermStaysFinite) {
  // Regression: with sublinear_tf a zero count hit 1 + log(0) = -inf, which
  // the L2 normalization then spread across the whole vector as NaNs.
  const Dataset dataset = TinyTextDataset();
  const TfidfFeaturizer tfidf = TfidfFeaturizer::Fit(dataset);
  Example e;
  e.term_counts = {{dataset.vocabulary().GetId("spam"), 0},
                   {dataset.vocabulary().GetId("money"), 1}};
  const SparseVector v = tfidf.Transform(e);
  EXPECT_EQ(v.nnz(), 1);  // the zero-count term contributes nothing
  for (double value : v.values) EXPECT_TRUE(std::isfinite(value));
}

TEST(TfidfTest, AllZeroCountsYieldEmptyVector) {
  const Dataset dataset = TinyTextDataset();
  const TfidfFeaturizer tfidf = TfidfFeaturizer::Fit(dataset);
  Example e;
  e.term_counts = {{0, 0}, {1, 0}};
  const SparseVector v = tfidf.Transform(e);
  EXPECT_EQ(v.nnz(), 0);
}

TEST(TfidfTest, EmptyDocumentTransformsToEmptyVector) {
  const Dataset dataset = TinyTextDataset();
  const TfidfFeaturizer tfidf = TfidfFeaturizer::Fit(dataset);
  const SparseVector v = tfidf.Transform(Example{});
  EXPECT_EQ(v.nnz(), 0);
}

TEST(TfidfTest, OutOfVocabularyMixedWithZeroCount) {
  const Dataset dataset = TinyTextDataset();
  const TfidfFeaturizer tfidf = TfidfFeaturizer::Fit(dataset);
  Example e;
  e.term_counts = {{-1, 3},
                   {dataset.vocabulary().size() + 1, 0},
                   {dataset.vocabulary().GetId("hello"), 2}};
  const SparseVector v = tfidf.Transform(e);
  ASSERT_EQ(v.nnz(), 1);
  EXPECT_EQ(v.indices[0], dataset.vocabulary().GetId("hello"));
  EXPECT_TRUE(std::isfinite(v.values[0]));
}

}  // namespace
}  // namespace activedp
