#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/activedp.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "labelmodel/label_model.h"
#include "serve/model_snapshot.h"
#include "serve/snapshot_export.h"
#include "serve/snapshot_io.h"
#include "util/atomic_file.h"

namespace activedp {
namespace {

/// One trained pipeline shared by every test in the suite (training is the
/// expensive part; the tests only read from it).
class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<DataSplit> split = MakeZooDataset("youtube", 0.1, /*seed=*/5);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    split_ = new DataSplit(std::move(*split));
    context_ = new FrameworkContext(FrameworkContext::Build(*split_));
    ActiveDpOptions options;
    options.seed = 11;
    pipeline_ = new ActiveDp(*context_, options);
    for (int t = 0; t < 25; ++t) {
      const Status status = pipeline_->Step();
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    delete context_;
    delete split_;
    pipeline_ = nullptr;
    context_ = nullptr;
    split_ = nullptr;
  }

  static Result<ModelSnapshot> Export() {
    return ExportSnapshot(*pipeline_, *context_);
  }

  static DataSplit* split_;
  static FrameworkContext* context_;
  static ActiveDp* pipeline_;
};

DataSplit* SnapshotTest::split_ = nullptr;
FrameworkContext* SnapshotTest::context_ = nullptr;
ActiveDp* SnapshotTest::pipeline_ = nullptr;

TEST_F(SnapshotTest, ExportCapturesRunState) {
  Result<ModelSnapshot> snapshot = Export();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->num_classes(), context_->num_classes);
  EXPECT_EQ(snapshot->feature_dim(), context_->feature_dim);
  EXPECT_EQ(snapshot->threshold(), pipeline_->last_threshold());
  EXPECT_TRUE(snapshot->has_label_model());
  EXPECT_EQ(snapshot->state().lfs.size(), pipeline_->selected_lfs().size());
}

TEST_F(SnapshotTest, PredictionsMatchOfflineAggregateBitwise) {
  Result<ModelSnapshot> snapshot = Export();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  // The offline inference phase over the training set; CurrentTrainingLabels
  // is deterministic, so this re-run reproduces the export-time aggregation.
  const std::vector<std::vector<double>> offline =
      pipeline_->CurrentTrainingLabels();
  const Dataset& train = split_->train;
  for (int i = 0; i < train.size(); ++i) {
    Result<ServedPrediction> served = snapshot->Predict(train.example(i));
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    // operator== on vector<double>: exact (bitwise) equality required.
    EXPECT_EQ(served->proba, offline[i]) << "row " << i;
    EXPECT_EQ(served->label == kAbstain, offline[i].empty()) << "row " << i;
  }
}

TEST_F(SnapshotTest, PredictBatchMatchesPredictAtAnyBatchSize) {
  Result<ModelSnapshot> snapshot = Export();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const Dataset& train = split_->train;
  const int n = std::min(train.size(), 64);
  std::vector<Result<ServedPrediction>> reference;
  for (int i = 0; i < n; ++i) {
    reference.push_back(snapshot->Predict(train.example(i)));
  }
  for (int batch_size : {1, 3, 17, n}) {
    for (int begin = 0; begin < n; begin += batch_size) {
      const int end = std::min(n, begin + batch_size);
      const std::vector<Example> batch(train.examples().begin() + begin,
                                       train.examples().begin() + end);
      const std::vector<Result<ServedPrediction>> results =
          snapshot->PredictBatch(batch);
      ASSERT_EQ(results.size(), batch.size());
      for (int k = 0; k < end - begin; ++k) {
        ASSERT_TRUE(results[k].ok());
        EXPECT_EQ(results[k]->proba, reference[begin + k]->proba)
            << "batch_size " << batch_size << " row " << begin + k;
      }
    }
  }
}

TEST_F(SnapshotTest, SaveLoadRoundTripsPredictionsBitwise) {
  Result<ModelSnapshot> snapshot = Export();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const std::string path = testing::TempDir() + "/roundtrip.snap";
  ASSERT_TRUE(SaveSnapshot(*snapshot, path).ok());
  Result<ModelSnapshot> loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->threshold(), snapshot->threshold());
  EXPECT_EQ(loaded->state().lfs.size(), snapshot->state().lfs.size());
  EXPECT_EQ(loaded->has_end_model(), snapshot->has_end_model());
  const Dataset& train = split_->train;
  for (int i = 0; i < train.size(); ++i) {
    Result<ServedPrediction> a = snapshot->Predict(train.example(i));
    Result<ServedPrediction> b = loaded->Predict(train.example(i));
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->proba, b->proba) << "row " << i;
    EXPECT_EQ(a->label, b->label) << "row " << i;
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, MakeTextExampleMatchesDatasetConstruction) {
  Result<ModelSnapshot> snapshot = Export();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const Dataset& train = split_->train;
  for (int i = 0; i < std::min(train.size(), 32); ++i) {
    Result<Example> rebuilt =
        snapshot->MakeTextExample(train.example(i).text);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(rebuilt->term_counts, train.example(i).term_counts)
        << "row " << i;
  }
}

TEST_F(SnapshotTest, CorruptFileIsRejected) {
  Result<ModelSnapshot> snapshot = Export();
  ASSERT_TRUE(snapshot.ok());
  const std::string path = testing::TempDir() + "/corrupt.snap";
  ASSERT_TRUE(SaveSnapshot(*snapshot, path).ok());
  std::string content;
  {
    std::ifstream in(path);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  // Flip one byte in the middle: the checksum footer must catch it.
  content[content.size() / 2] ^= 0x01;
  {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  }
  Result<ModelSnapshot> loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, TruncatedFileIsRejected) {
  Result<ModelSnapshot> snapshot = Export();
  ASSERT_TRUE(snapshot.ok());
  const std::string path = testing::TempDir() + "/truncated.snap";
  ASSERT_TRUE(SaveSnapshot(*snapshot, path).ok());
  std::string content;
  {
    std::ifstream in(path);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  for (double fraction : {0.2, 0.5, 0.9}) {
    std::ofstream out(path, std::ios::trunc);
    out << content.substr(0, static_cast<size_t>(content.size() * fraction));
    out.close();
    Result<ModelSnapshot> loaded = LoadSnapshot(path);
    EXPECT_FALSE(loaded.ok()) << "fraction " << fraction;
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, WrongVersionIsRejected) {
  // A structurally plausible file from a future format version, with a
  // *valid* checksum — only the version gate can reject it.
  const std::string path = testing::TempDir() + "/future.snap";
  const std::string body = "activedp-snapshot v999\nend\n";
  {
    std::ofstream out(path, std::ios::trunc);
    out << WithChecksumFooter(body);
  }
  Result<ModelSnapshot> loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, InconsistentStateIsRejected) {
  Result<ModelSnapshot> exported = Export();
  ASSERT_TRUE(exported.ok());

  SnapshotState no_models = exported->state();
  no_models.label_model_name.clear();
  no_models.al_weights.reset();
  EXPECT_FALSE(ModelSnapshot::Create(std::move(no_models)).ok());

  SnapshotState bad_dim = exported->state();
  bad_dim.feature_dim += 1;  // vocab/idf no longer match
  EXPECT_FALSE(ModelSnapshot::Create(std::move(bad_dim)).ok());

  SnapshotState bad_version = exported->state();
  bad_version.version = kSnapshotVersion + 1;
  EXPECT_FALSE(ModelSnapshot::Create(std::move(bad_version)).ok());

  SnapshotState bad_params = exported->state();
  bad_params.label_model_params = "not numbers at all";
  EXPECT_FALSE(ModelSnapshot::Create(std::move(bad_params)).ok());
}

TEST(LabelModelParamsTest, AllModelsRoundTripPredictionsBitwise) {
  // A small matrix every model family can fit.
  LabelMatrix matrix(40);
  for (int j = 0; j < 4; ++j) {
    std::vector<int8_t> column(40, -1);
    for (int i = 0; i < 40; ++i) {
      if ((i + j) % 3 == 0) column[i] = static_cast<int8_t>((i / 20) % 2);
    }
    matrix.AddColumn(std::move(column));
  }
  const std::vector<std::string> names = {
      "majority-vote", "dawid-skene", "metal", "metal-completion",
      "generative-dp"};
  for (const std::string& name : names) {
    Result<std::unique_ptr<LabelModel>> fitted = MakeLabelModelByName(name);
    ASSERT_TRUE(fitted.ok()) << name;
    ASSERT_TRUE((*fitted)->Fit(matrix, 2).ok()) << name;
    Result<std::string> params = (*fitted)->SerializeParams();
    ASSERT_TRUE(params.ok()) << name << ": " << params.status().ToString();

    Result<std::unique_ptr<LabelModel>> restored = MakeLabelModelByName(name);
    ASSERT_TRUE(restored.ok()) << name;
    ASSERT_TRUE((*restored)->RestoreParams(*params).ok()) << name;
    for (int i = 0; i < matrix.num_rows(); ++i) {
      Result<std::vector<double>> a = (*fitted)->PredictProba(matrix.Row(i));
      Result<std::vector<double>> b =
          (*restored)->PredictProba(matrix.Row(i));
      ASSERT_TRUE(a.ok() && b.ok()) << name;
      EXPECT_EQ(*a, *b) << name << " row " << i;
    }
    // Garbage params must be rejected, not half-applied.
    Result<std::unique_ptr<LabelModel>> fresh = MakeLabelModelByName(name);
    ASSERT_TRUE(fresh.ok());
    EXPECT_FALSE((*fresh)->RestoreParams("3 bogus").ok()) << name;
  }
}

}  // namespace
}  // namespace activedp
