// Deterministic corruption fuzzing of the on-disk artifacts: sessions and
// run checkpoints mutilated by seeded byte flips, truncations, and line
// edits must load as InvalidArgument / NotFound — or load cleanly with sane
// contents when the mutation misses the payload (legacy files without a
// checksum footer are accepted by design) — but never crash or hang. Run
// under the ASan preset to certify no out-of-bounds parse.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/run_checkpoint.h"
#include "core/session_io.h"
#include "obs/flight_recorder.h"
#include "online/event_log.h"
#include "serve/snapshot_registry.h"
#include "util/atomic_file.h"
#include "util/trace.h"

namespace activedp {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
  EXPECT_TRUE(out.good()) << path;
}

// One seeded mutation of `content`: byte flips, a truncation, a duplicated
// line, a deleted line, or injected garbage — the shapes a crashed writer,
// a bad disk, or a concurrent editor leave behind.
std::string Mutate(const std::string& content, std::mt19937_64& rng) {
  std::string out = content;
  switch (rng() % 5) {
    case 0: {  // flip 1-8 bytes
      if (out.empty()) return out;
      const int flips = 1 + static_cast<int>(rng() % 8);
      for (int i = 0; i < flips; ++i) {
        out[rng() % out.size()] ^= static_cast<char>(1 + rng() % 255);
      }
      return out;
    }
    case 1:  // truncate at a random offset (possibly to empty)
      return out.substr(0, out.empty() ? 0 : rng() % out.size());
    case 2: {  // duplicate one line
      std::vector<std::string> lines;
      std::istringstream in(out);
      for (std::string line; std::getline(in, line);) lines.push_back(line);
      if (lines.empty()) return out;
      const size_t at = rng() % lines.size();
      lines.insert(lines.begin() + at, lines[at]);
      std::string rebuilt;
      for (const std::string& line : lines) rebuilt += line + "\n";
      return rebuilt;
    }
    case 3: {  // delete one line
      std::vector<std::string> lines;
      std::istringstream in(out);
      for (std::string line; std::getline(in, line);) lines.push_back(line);
      if (lines.empty()) return out;
      lines.erase(lines.begin() + rng() % lines.size());
      std::string rebuilt;
      for (const std::string& line : lines) rebuilt += line + "\n";
      return rebuilt;
    }
    default: {  // splice random garbage into the middle
      static const char kJunk[] = "\x00\xff nan -inf 1e999 %s\t\r{}";
      const size_t at = out.empty() ? 0 : rng() % out.size();
      out.insert(at, kJunk, sizeof(kJunk) - 1);
      return out;
    }
  }
}

constexpr int kTrials = 300;

TEST(CorruptionFuzzTest, SessionLoadNeverCrashes) {
  const std::string original_path = testing::TempDir() + "/fuzz_session.txt";
  const std::string mutated_path = testing::TempDir() + "/fuzz_session_m.txt";
  SessionState state;
  state.lfs.push_back(std::make_shared<KeywordLf>(3, "check", 1));
  state.lfs.push_back(std::make_shared<KeywordLf>(7, "song", 0));
  state.lfs.push_back(
      std::make_shared<ThresholdLf>(2, 0.25, StumpOp::kGreaterEqual, 1));
  state.query_indices = {4, 9, -1};
  state.pseudo_labels = {1, 0, -1};
  ASSERT_TRUE(SaveSession(state, original_path).ok());
  const std::string pristine = ReadFileOrDie(original_path);

  std::mt19937_64 rng(0xfeedULL);
  int rejected = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    WriteFileOrDie(mutated_path, Mutate(pristine, rng));
    const Result<SessionState> loaded = LoadSession(mutated_path);
    if (!loaded.ok()) {
      ++rejected;
      EXPECT_TRUE(loaded.status().code() == StatusCode::kInvalidArgument ||
                  loaded.status().code() == StatusCode::kNotFound)
          << "trial " << trial << ": " << loaded.status().ToString();
      continue;
    }
    // A mutation that survives the checksum (e.g. a truncation that dropped
    // the footer cleanly) must still yield a structurally sound session.
    EXPECT_EQ(loaded->query_indices.size(), loaded->pseudo_labels.size())
        << "trial " << trial;
  }
  // The checksum footer makes silent acceptance rare: most mutations must
  // be rejected outright.
  EXPECT_GT(rejected, kTrials / 2);
}

TEST(CorruptionFuzzTest, CheckpointLoadNeverCrashes) {
  const std::string original_path = testing::TempDir() + "/fuzz_ckpt.ckpt";
  const std::string mutated_path = testing::TempDir() + "/fuzz_ckpt_m.ckpt";
  RunCheckpoint checkpoint;
  checkpoint.completed_iterations = 30;
  checkpoint.partial.budgets = {10, 20, 30};
  checkpoint.partial.test_accuracy = {0.71234567891234567, 0.8, 0.85};
  checkpoint.partial.label_accuracy = {0.9, 0.91, 0.92};
  checkpoint.partial.label_coverage = {0.5, 0.6, 0.7};
  ASSERT_TRUE(SaveRunCheckpoint(checkpoint, original_path).ok());
  const std::string pristine = ReadFileOrDie(original_path);

  std::mt19937_64 rng(0xbeefULL);
  int rejected = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    WriteFileOrDie(mutated_path, Mutate(pristine, rng));
    const Result<RunCheckpoint> loaded = LoadRunCheckpoint(mutated_path);
    if (!loaded.ok()) {
      ++rejected;
      EXPECT_TRUE(loaded.status().code() == StatusCode::kInvalidArgument ||
                  loaded.status().code() == StatusCode::kNotFound)
          << "trial " << trial << ": " << loaded.status().ToString();
      continue;
    }
    // Accepted checkpoints must uphold the loader's contract: aligned,
    // finite curves under monotone budgets — safe to resume from.
    const RunResult& partial = loaded->partial;
    ASSERT_EQ(partial.budgets.size(), partial.test_accuracy.size());
    ASSERT_EQ(partial.budgets.size(), partial.label_accuracy.size());
    ASSERT_EQ(partial.budgets.size(), partial.label_coverage.size());
    for (size_t i = 0; i < partial.budgets.size(); ++i) {
      EXPECT_LE(partial.budgets[i], loaded->completed_iterations);
      EXPECT_TRUE(std::isfinite(partial.test_accuracy[i]));
      EXPECT_TRUE(std::isfinite(partial.label_accuracy[i]));
      EXPECT_TRUE(std::isfinite(partial.label_coverage[i]));
    }
  }
  EXPECT_GT(rejected, kTrials / 2);
}

TEST(CorruptionFuzzTest, RegistryManifestLoadNeverCrashes) {
  const std::string snapshot_path = testing::TempDir() + "/fuzz_reg_snap";
  const std::string original_path = testing::TempDir() + "/fuzz_reg.manifest";
  const std::string mutated_path = testing::TempDir() + "/fuzz_reg_m.manifest";
  WriteFileOrDie(snapshot_path, "snapshot payload for checksumming\n");
  std::remove(original_path.c_str());
  {
    SnapshotRegistry registry = *SnapshotRegistry::Open(original_path);
    const int64_t a = *registry.Register(snapshot_path, -1, "fuzz baseline");
    ASSERT_TRUE(registry.Activate(a).ok());
    ASSERT_TRUE(registry.Register(snapshot_path, a, "fuzz candidate").ok());
  }
  const std::string pristine = ReadFileOrDie(original_path);

  std::mt19937_64 rng(0xdeedULL);
  int rejected = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    WriteFileOrDie(mutated_path, Mutate(pristine, rng));
    const Result<SnapshotRegistry> loaded =
        SnapshotRegistry::Open(mutated_path);
    if (!loaded.ok()) {
      ++rejected;
      EXPECT_TRUE(loaded.status().code() == StatusCode::kInvalidArgument ||
                  loaded.status().code() == StatusCode::kNotFound)
          << "trial " << trial << ": " << loaded.status().ToString();
      continue;
    }
    // A mutation that slips past the checksum must still yield a registry
    // that upholds the loader's invariants: at most one active snapshot,
    // unique positive ids, a history of known ids.
    if (loaded->active_id().has_value()) {
      const Result<SnapshotRecord> active = loaded->Get(*loaded->active_id());
      ASSERT_TRUE(active.ok()) << "trial " << trial;
      EXPECT_EQ(active->status, SnapshotStatus::kActive);
    }
    for (const int64_t id : loaded->history()) {
      EXPECT_TRUE(loaded->Get(id).ok()) << "trial " << trial;
    }
  }
  EXPECT_GT(rejected, kTrials / 2);
}

// Targeted registry malformations the random fuzz is unlikely to hit: each
// body carries a *valid* checksum footer, so the parser itself — not the
// checksum — must reject it, leaving no partially-loaded registry behind.
TEST(CorruptionFuzzTest, RegistryRejectsTargetedMalformations) {
  const std::string path = testing::TempDir() + "/fuzz_reg_t.manifest";
  const char* kBodies[] = {
      // future version header
      "activedp-registry v99\nend\n",
      // duplicate snapshot id
      "activedp-registry v1\n"
      "snapshot 1 -1 active abc /tmp/x -\n"
      "snapshot 1 -1 candidate abc /tmp/y -\n"
      "history 1\nend\n",
      // truncated: terminator missing
      "activedp-registry v1\nsnapshot 1 -1 active abc /tmp/x -\n",
  };
  for (const char* body : kBodies) {
    WriteFileOrDie(path, WithChecksumFooter(body));
    const Result<SnapshotRegistry> loaded = SnapshotRegistry::Open(path);
    ASSERT_FALSE(loaded.ok()) << body;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << body << ": " << loaded.status().ToString();
  }
}

// Feedback-log segments fed to the strict replay (what the LearnGuard
// retrainer uses before training on a segment): every mutation must be
// rejected as InvalidArgument/NotFound or replay to structurally sound
// events — contiguous sequence numbers, known types — never crash or hang.
TEST(CorruptionFuzzTest, EventLogSegmentReplayNeverCrashes) {
  const std::string dir = testing::TempDir() + "/fuzz_event_log";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::string segment;
  {
    auto log = EventLog::Open(dir, EventLogOptions{});
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 12; ++i) {
      FeedbackEvent event;
      event.type = static_cast<FeedbackType>(i % 3);
      event.row = i * 7;
      event.label = i % 4;
      event.lf_id = i % 5;
      ASSERT_TRUE((*log)->Append(event).ok());
    }
    ASSERT_TRUE((*log)->Rotate().ok());
    segment = (*log)->SealedSegments()[0];
  }
  const std::string pristine = ReadFileOrDie(segment);
  const std::string mutated_path = dir + "/mutated.log";

  std::mt19937_64 rng(0xfeedf00dULL);
  int rejected = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    WriteFileOrDie(mutated_path, Mutate(pristine, rng));
    const Result<SegmentReplay> replay =
        EventLog::ReplaySegment(mutated_path, /*allow_torn_tail=*/false);
    if (!replay.ok()) {
      ++rejected;
      EXPECT_TRUE(replay.status().code() == StatusCode::kInvalidArgument ||
                  replay.status().code() == StatusCode::kNotFound)
          << "trial " << trial << ": " << replay.status().ToString();
      continue;
    }
    // A mutation the per-record checksums let through (e.g. whole records
    // cleanly deleted from the tail) must still replay soundly.
    for (size_t i = 0; i < replay->events.size(); ++i) {
      const FeedbackEvent& event = replay->events[i];
      if (i > 0) {
        ASSERT_EQ(event.seq, replay->events[i - 1].seq + 1)
            << "trial " << trial;
      }
      ASSERT_LE(static_cast<int>(event.type),
                static_cast<int>(FeedbackType::kLfVote))
          << "trial " << trial;
    }
  }
  // Per-record checksums make silent acceptance rare.
  EXPECT_GT(rejected, kTrials / 2);
}

// Stacked corruption: each round mutates the survivor of the previous one,
// drifting arbitrarily far from a well-formed file.
TEST(CorruptionFuzzTest, RepeatedMutationsStayContained) {
  const std::string path = testing::TempDir() + "/fuzz_stacked.ckpt";
  RunCheckpoint checkpoint;
  checkpoint.completed_iterations = 10;
  checkpoint.partial.budgets = {10};
  checkpoint.partial.test_accuracy = {0.5};
  checkpoint.partial.label_accuracy = {0.5};
  checkpoint.partial.label_coverage = {0.5};
  ASSERT_TRUE(SaveRunCheckpoint(checkpoint, path).ok());
  std::string content = ReadFileOrDie(path);

  std::mt19937_64 rng(0xc0ffeeULL);
  for (int round = 0; round < 100; ++round) {
    content = Mutate(content, rng);
    WriteFileOrDie(path, content);
    const Result<RunCheckpoint> loaded = LoadRunCheckpoint(path);
    if (!loaded.ok()) {
      EXPECT_TRUE(loaded.status().code() == StatusCode::kInvalidArgument ||
                  loaded.status().code() == StatusCode::kNotFound)
          << "round " << round << ": " << loaded.status().ToString();
    }
  }
}

// Incident dumps (obs/flight_recorder.h): seeded mutations of any file in a
// dump — the manifest, the timeline, the metrics snapshot, the context —
// must be *detected* by VerifyIncidentDump (the dump is checksummed end to
// end), and ReadIncidentManifest must reject rather than mis-parse. A
// mutation that reproduces the original bytes exactly is the only one
// allowed to still verify.
TEST(CorruptionFuzzTest, IncidentDumpMutationsAreDetected) {
  const std::string root = testing::TempDir() + "/fuzz_incidents";
  std::filesystem::remove_all(root);
  FlightRecorder::Global().Enable({.incident_dir = root});
  TraceInstant("fuzz", "trigger", "cause=fuzz");
  const Result<std::string> dump =
      FlightRecorder::Global().TriggerIncident("fuzz.reason");
  FlightRecorder::Global().Disable();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  ASSERT_TRUE(VerifyIncidentDump(*dump).ok());

  std::vector<std::pair<std::string, std::string>> originals;
  for (const auto& entry : std::filesystem::directory_iterator(*dump)) {
    originals.emplace_back(entry.path().string(),
                           ReadFileOrDie(entry.path().string()));
  }
  ASSERT_GE(originals.size(), 3u);

  std::mt19937_64 rng(0x0b5e2ed
  );
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto& [file, original] = originals[rng() % originals.size()];
    const std::string mutated = Mutate(original, rng);
    WriteFileOrDie(file, mutated);
    const Status verified = VerifyIncidentDump(*dump);
    if (mutated != original) {
      EXPECT_FALSE(verified.ok())
          << "trial " << trial << ": undetected mutation of " << file;
    }
    // The manifest reader must never crash, whatever the bytes.
    (void)ReadIncidentManifest(*dump);
    WriteFileOrDie(file, original);
  }
  EXPECT_TRUE(VerifyIncidentDump(*dump).ok());
}

}  // namespace
}  // namespace activedp
