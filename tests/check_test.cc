#include "util/check.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace activedp {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  CHECK(true);
  CHECK_EQ(1, 1);
  CHECK_NE(1, 2);
  CHECK_LT(1, 2);
  CHECK_LE(2, 2);
  CHECK_GT(2, 1);
  CHECK_GE(2, 2);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(CHECK(false) << "context", "CHECK failed");
  EXPECT_DEATH(CHECK_EQ(1, 2), "1 vs 2");
  EXPECT_DEATH(CHECK_GT(1, 2) << "extra detail", "extra detail");
}

TEST(CheckDeathTest, MessageIncludesLocationAndCondition) {
  EXPECT_DEATH(CHECK(2 + 2 == 5), "2 \\+ 2 == 5");
}

TEST(CheckTest, DcheckCompilesInBothModes) {
  DCHECK(true);
#ifdef NDEBUG
  // In release builds DCHECK(false) must be a no-op.
  DCHECK(false);
#endif
  SUCCEED();
}

TEST(LoggingTest, SeverityFilterRoundTrips) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  // Below-threshold logging must not crash (and is suppressed).
  LOG(Info) << "suppressed";
  LOG(Warning) << "suppressed too";
  SetMinLogSeverity(original);
}

TEST(LoggingTest, StreamingArbitraryTypes) {
  LOG(Debug) << "int=" << 42 << " double=" << 1.5 << " str=" << std::string("x");
  SUCCEED();
}

}  // namespace
}  // namespace activedp
