#include "core/session_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/activedp.h"
#include "core/framework.h"
#include "data/synthetic_text.h"
#include "util/rng.h"

namespace activedp {
namespace {

SessionState MakeState() {
  SessionState state;
  state.lfs.push_back(std::make_shared<KeywordLf>(3, "check", 1));
  state.lfs.push_back(std::make_shared<KeywordLf>(17, "song", 0));
  state.lfs.push_back(std::make_shared<ThresholdLf>(
      2, 0.12345678901234567, StumpOp::kLessEqual, 0));
  state.lfs.push_back(std::make_shared<ThresholdLf>(
      5, -3.5, StumpOp::kGreaterEqual, 1));
  state.query_indices = {10, 20, 30, 40};
  state.pseudo_labels = {1, 0, 0, 1};
  return state;
}

TEST(SessionIoTest, RoundTripsAllLfKinds) {
  const std::string path = testing::TempDir() + "/session.adp";
  const SessionState original = MakeState();
  ASSERT_TRUE(SaveSession(original, path).ok());
  Result<SessionState> loaded = LoadSession(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->lfs.size(), original.lfs.size());
  for (size_t i = 0; i < original.lfs.size(); ++i) {
    EXPECT_EQ(loaded->lfs[i]->Key(), original.lfs[i]->Key()) << i;
    EXPECT_EQ(loaded->lfs[i]->Name(), original.lfs[i]->Name()) << i;
  }
  EXPECT_EQ(loaded->query_indices, original.query_indices);
  EXPECT_EQ(loaded->pseudo_labels, original.pseudo_labels);
  std::remove(path.c_str());
}

TEST(SessionIoTest, ThresholdSurvivesExactly) {
  const std::string path = testing::TempDir() + "/session2.adp";
  ASSERT_TRUE(SaveSession(MakeState(), path).ok());
  Result<SessionState> loaded = LoadSession(path);
  ASSERT_TRUE(loaded.ok());
  const auto* stump =
      dynamic_cast<const ThresholdLf*>(loaded->lfs[2].get());
  ASSERT_NE(stump, nullptr);
  EXPECT_DOUBLE_EQ(stump->threshold(), 0.12345678901234567);
  std::remove(path.c_str());
}

TEST(SessionIoTest, VocabularyRemapsKeywordIds) {
  // Save against one dataset's ids, load against another's vocabulary.
  SyntheticTextConfig config;
  config.num_examples = 200;
  Rng rng(3);
  const Dataset dataset = GenerateSyntheticText(config, rng);
  const int id = dataset.vocabulary().GetId("c0w0");
  ASSERT_NE(id, Vocabulary::kUnknownId);

  SessionState state;
  state.lfs.push_back(
      std::make_shared<KeywordLf>(/*wrong id=*/9999, "c0w0", 0));
  state.query_indices = {-1};
  state.pseudo_labels = {-1};
  const std::string path = testing::TempDir() + "/session3.adp";
  ASSERT_TRUE(SaveSession(state, path).ok());

  Result<SessionState> loaded = LoadSession(path, &dataset.vocabulary());
  ASSERT_TRUE(loaded.ok());
  const auto* keyword =
      dynamic_cast<const KeywordLf*>(loaded->lfs[0].get());
  ASSERT_NE(keyword, nullptr);
  EXPECT_EQ(keyword->token_id(), id);  // re-resolved
  std::remove(path.c_str());
}

TEST(SessionIoTest, MissingKeywordInVocabularyFails) {
  SyntheticTextConfig config;
  config.num_examples = 100;
  Rng rng(5);
  const Dataset dataset = GenerateSyntheticText(config, rng);
  SessionState state;
  state.lfs.push_back(std::make_shared<KeywordLf>(1, "no-such-word", 1));
  const std::string path = testing::TempDir() + "/session4.adp";
  ASSERT_TRUE(SaveSession(state, path).ok());
  EXPECT_EQ(LoadSession(path, &dataset.vocabulary()).status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(SessionIoTest, RejectsCorruptFiles) {
  const std::string path = testing::TempDir() + "/bad.adp";
  {
    std::ofstream out(path);
    out << "something else\nkw 1 x 1 0 0\n";
  }
  EXPECT_FALSE(LoadSession(path).ok());
  {
    std::ofstream out(path);
    out << "activedp-session v1\nkw 1\n";
  }
  EXPECT_FALSE(LoadSession(path).ok());
  {
    std::ofstream out(path);
    out << "activedp-session v1\nst 1 0.5 XX 1 0 0\n";
  }
  EXPECT_FALSE(LoadSession(path).ok());
  {
    std::ofstream out(path);
    out << "activedp-session v1\nzz 1 2 3\n";
  }
  EXPECT_FALSE(LoadSession(path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(LoadSession("/no/such/file").status().code(),
            StatusCode::kNotFound);
}

TEST(SessionIoTest, CorruptFileMatrixNeverAborts) {
  // Every corruption is reported as InvalidArgument with a line number —
  // the loader must never CHECK-abort on untrusted file contents.
  const std::string path = testing::TempDir() + "/matrix.adp";
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"empty file", ""},
      {"header only garbage", "activedp-session v9\n"},
      {"negative keyword label", "activedp-session v1\nkw 1 x -2 0 0\n"},
      {"negative token id", "activedp-session v1\nkw -5 x 1 0 0\n"},
      {"negative stump feature", "activedp-session v1\nst -1 0.5 le 1 0 0\n"},
      {"non-finite threshold", "activedp-session v1\nst 1 nan le 1 0 0\n"},
      {"truncated mid-line", "activedp-session v1\nkw 1 x 1 0 0\nst 2 0.\n"},
      {"binary junk", std::string("activedp-session v1\n\x01\x02\xff\n", 24)},
      {"stale checksum footer",
       "activedp-session v1\nkw 1 x 1 0 0\n#crc64 0123456789abcdef\n"}};
  for (const auto& [name, content] : cases) {
    {
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out << content;
    }
    Result<SessionState> loaded = LoadSession(path);
    ASSERT_FALSE(loaded.ok()) << name;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << name << ": " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(SessionIoTest, LineNumberAppearsInParseErrors) {
  const std::string path = testing::TempDir() + "/lineno.adp";
  {
    std::ofstream out(path);
    out << "activedp-session v1\nkw 1 x 1 0 0\nkw broken\n";
  }
  Result<SessionState> loaded = LoadSession(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("line 3"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SessionIoTest, FooterlessLegacyFilesStillLoad) {
  // Files written before the checksum footer existed must keep loading.
  const std::string path = testing::TempDir() + "/legacy.adp";
  {
    std::ofstream out(path);
    out << "activedp-session v1\nkw 4 check 1 2 1\n";
  }
  Result<SessionState> loaded = LoadSession(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->lfs.size(), 1u);
  std::remove(path.c_str());
}

TEST(SessionIoTest, SaveLeavesPreviousFileOnFailure) {
  // The atomic protocol must not clobber a good session when a later save
  // errors out before the rename.
  const std::string path = testing::TempDir() + "/atomic.adp";
  ASSERT_TRUE(SaveSession(MakeState(), path).ok());
  SessionState bad = MakeState();
  bad.lfs.push_back(std::make_shared<KeywordLf>(9, "two words", 1));
  bad.query_indices.push_back(1);
  bad.pseudo_labels.push_back(1);
  EXPECT_FALSE(SaveSession(bad, path).ok());  // whitespace keyword rejected
  Result<SessionState> loaded = LoadSession(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->lfs.size(), MakeState().lfs.size());
  std::remove(path.c_str());
}

TEST(SessionIoTest, PipelineSnapshotRestoreRoundTrip) {
  // Run a pipeline, snapshot, restore into a fresh pipeline, and check the
  // restored pipeline produces the same labels.
  SyntheticTextConfig config;
  config.num_examples = 500;
  Rng rng(13);
  const Dataset full = GenerateSyntheticText(config, rng);
  Rng split_rng(17);
  const DataSplit split = SplitDataset(full, 0.8, 0.1, split_rng);
  FrameworkContext context = FrameworkContext::Build(split);

  ActiveDpOptions options;
  options.seed = 19;
  ActiveDp original(context, options);
  for (int t = 0; t < 25; ++t) ASSERT_TRUE(original.Step().ok());

  const std::string path = testing::TempDir() + "/pipeline.adp";
  ASSERT_TRUE(SaveSession(original.Snapshot(), path).ok());
  Result<SessionState> loaded =
      LoadSession(path, &split.train.vocabulary());
  ASSERT_TRUE(loaded.ok());

  ActiveDp restored(context, options);
  ASSERT_TRUE(restored.Restore(*loaded).ok());
  EXPECT_EQ(restored.lfs().size(), original.lfs().size());
  EXPECT_EQ(restored.query_indices(), original.query_indices());
  EXPECT_EQ(restored.pseudo_labels(), original.pseudo_labels());
  EXPECT_EQ(restored.has_al_model(), original.has_al_model());

  const auto a = original.CurrentTrainingLabels();
  const auto b = restored.CurrentTrainingLabels();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << i;
    for (size_t c = 0; c < a[i].size(); ++c) {
      EXPECT_NEAR(a[i][c], b[i][c], 1e-9);
    }
  }
  // And the restored pipeline can keep going.
  EXPECT_TRUE(restored.Step().ok());
  std::remove(path.c_str());
}

TEST(SessionIoTest, RestoreRejectsUsedPipeline) {
  SyntheticTextConfig config;
  config.num_examples = 200;
  Rng rng(23);
  const Dataset full = GenerateSyntheticText(config, rng);
  Rng split_rng(29);
  const DataSplit split = SplitDataset(full, 0.8, 0.1, split_rng);
  FrameworkContext context = FrameworkContext::Build(split);
  ActiveDpOptions options;
  options.seed = 31;
  ActiveDp pipeline(context, options);
  ASSERT_TRUE(pipeline.Step().ok());
  EXPECT_EQ(pipeline.Restore(SessionState{}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SessionIoTest, EmptySessionRoundTrips) {
  const std::string path = testing::TempDir() + "/empty.adp";
  ASSERT_TRUE(SaveSession(SessionState{}, path).ok());
  Result<SessionState> loaded = LoadSession(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->lfs.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace activedp
