// Time budgets and cooperative cancellation: Deadline / CancellationToken /
// RunLimits semantics, the watchdog, and the per-iteration checks inside
// every long-running solver — an expired budget surfaces as DeadlineExceeded
// or Cancelled with partial-progress info, never as a hang or a crash.

#include "util/deadline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "graphical/graphical_lasso.h"
#include "labelmodel/dawid_skene.h"
#include "labelmodel/metal_model.h"
#include "lf/lf_applier.h"
#include "math/matrix.h"
#include "ml/linear_model.h"

namespace activedp {
namespace {

// ----------------------------------------------------------- primitives ----

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.is_infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(std::isinf(deadline.remaining_seconds()));
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  const Deadline deadline = Deadline::After(-1.0);
  EXPECT_FALSE(deadline.is_infinite());
  EXPECT_TRUE(deadline.expired());
  EXPECT_LE(deadline.remaining_seconds(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineIsNotExpired) {
  const Deadline deadline = Deadline::After(3600.0);
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 3000.0);
}

TEST(DeadlineTest, SoonerPicksTheEarlier) {
  const Deadline early = Deadline::After(1.0);
  const Deadline late = Deadline::After(3600.0);
  EXPECT_LT(Deadline::Sooner(early, late).remaining_seconds(), 2.0);
  EXPECT_LT(Deadline::Sooner(late, early).remaining_seconds(), 2.0);
  EXPECT_TRUE(Deadline::Sooner(Deadline(), Deadline()).is_infinite());
  EXPECT_FALSE(Deadline::Sooner(Deadline(), early).is_infinite());
}

TEST(CancellationTest, DefaultTokenIsNeverCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTest, CancelTripsEveryToken) {
  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.token().cancelled());  // tokens made after the fact too
}

TEST(CancellationTest, ParentCancelPropagatesToChildNotBack) {
  CancellationSource experiment;
  CancellationSource seed(experiment.token());
  CancellationSource other_seed(experiment.token());

  // Cancelling one seed leaves its siblings and the experiment running.
  seed.Cancel();
  EXPECT_TRUE(seed.token().cancelled());
  EXPECT_FALSE(other_seed.token().cancelled());
  EXPECT_FALSE(experiment.token().cancelled());

  // Cancelling the experiment cancels every seed derived from it.
  experiment.Cancel();
  EXPECT_TRUE(other_seed.token().cancelled());
}

TEST(RunLimitsTest, CheckReportsTheTrippedBudget) {
  EXPECT_TRUE(RunLimits::Unlimited().Check("stage").ok());

  RunLimits expired;
  expired.deadline = Deadline::After(-1.0);
  const Status deadline_status = expired.Check("glasso");
  EXPECT_EQ(deadline_status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(deadline_status.message().find("glasso"), std::string::npos);

  CancellationSource source;
  source.Cancel();
  RunLimits cancelled;
  cancelled.cancel = source.token();
  EXPECT_EQ(cancelled.Check("stage").code(), StatusCode::kCancelled);
}

TEST(RunLimitsTest, TightenedNeverExtendsTheDeadline) {
  RunLimits limits;
  limits.deadline = Deadline::After(1.0);
  // Tightening by a longer budget keeps the original deadline.
  EXPECT_LT(limits.Tightened(3600.0).deadline.remaining_seconds(), 2.0);
  // Tightening by a shorter budget caps it.
  RunLimits loose;
  loose.deadline = Deadline::After(3600.0);
  EXPECT_LT(loose.Tightened(1.0).deadline.remaining_seconds(), 2.0);
  // Non-positive budgets are a no-op.
  EXPECT_TRUE(RunLimits::Unlimited().Tightened(0.0).deadline.is_infinite());
}

TEST(SleepTest, CancellationWakesTheSleeper) {
  CancellationSource source;
  source.Cancel();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(SleepWithCancellation(30.0, source.token()));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 5.0);

  EXPECT_TRUE(SleepWithCancellation(0.0, CancellationToken()));
}

// -------------------------------------------------------------- watchdog ----

TEST(WatchdogTest, CancelsSourceOnceDeadlinePasses) {
  Watchdog watchdog(0.001);
  auto source = std::make_shared<CancellationSource>();
  watchdog.Watch(Deadline::After(0.005), source);
  for (int i = 0; i < 2000 && !source->cancelled(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(source->cancelled());
  EXPECT_EQ(watchdog.cancellations(), 1);
}

TEST(WatchdogTest, InfiniteDeadlineNeverFires) {
  Watchdog watchdog(0.001);
  auto source = std::make_shared<CancellationSource>();
  watchdog.Watch(Deadline::Infinite(), source);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(source->cancelled());
  EXPECT_EQ(watchdog.cancellations(), 0);
}

// ------------------------------------------------------ solver budgets -----

Matrix SmallCovariance(int n) {
  Matrix cov = Matrix::Identity(n);
  for (int i = 0; i + 1 < n; ++i) {
    cov(i, i + 1) = 0.3;
    cov(i + 1, i) = 0.3;
  }
  return cov;
}

TEST(SolverBudgetTest, GraphicalLassoReportsPartialProgress) {
  GraphicalLassoOptions options;
  options.limits.deadline = Deadline::After(-1.0);
  const Result<GraphicalLassoResult> result =
      GraphicalLasso(SmallCovariance(6), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Partial-progress info: how many sweeps ran out of how many.
  EXPECT_NE(result.status().message().find("sweeps"), std::string::npos)
      << result.status().ToString();
}

TEST(SolverBudgetTest, LogisticRegressionHonorsCancellation) {
  std::vector<SparseVector> x(8);
  std::vector<int> labels(8);
  for (int i = 0; i < 8; ++i) {
    x[i].PushBack(i % 4, 1.0);
    labels[i] = i % 2;
  }
  CancellationSource source;
  source.Cancel();
  LogisticRegressionOptions options;
  options.limits.cancel = source.token();
  const Result<LogisticRegression> model =
      LogisticRegression::FitHard(x, labels, 2, 4, options);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kCancelled);
  EXPECT_NE(model.status().message().find("epochs"), std::string::npos)
      << model.status().ToString();
}

LabelMatrix SmallLabelMatrix() {
  LabelMatrix matrix(12);
  for (int j = 0; j < 3; ++j) {
    std::vector<int8_t> column(12, kAbstain);
    for (int i = 0; i < 12; ++i) {
      if ((i + j) % 3 != 0) column[i] = static_cast<int8_t>(i % 2);
    }
    matrix.AddColumn(std::move(column));
  }
  return matrix;
}

TEST(SolverBudgetTest, MetalFitHonorsDeadline) {
  MetalModel model;
  RunLimits limits;
  limits.deadline = Deadline::After(-1.0);
  model.set_limits(limits);
  const Status status = model.Fit(SmallLabelMatrix(), 2);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(SolverBudgetTest, DawidSkeneFitHonorsCancellation) {
  CancellationSource source;
  source.Cancel();
  DawidSkeneModel model;
  RunLimits limits;
  limits.cancel = source.token();
  model.set_limits(limits);
  const Status status = model.Fit(SmallLabelMatrix(), 2);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("EM"), std::string::npos)
      << status.ToString();
}

// Cross-thread cancellation: a solver spinning on one thread is torn down
// by a Cancel() from another — the pattern the experiment watchdog relies
// on. Run under -DACTIVEDP_SANITIZE=thread to certify the handshake.
TEST(SolverBudgetTest, CancellationFromAnotherThreadStopsTheFit) {
  std::vector<SparseVector> x(64);
  std::vector<int> labels(64);
  for (int i = 0; i < 64; ++i) {
    x[i].PushBack(i % 16, 1.0);
    x[i].PushBack(16 + (i % 8), 0.5);
    labels[i] = (i / 2) % 2;
  }
  CancellationSource source;
  LogisticRegressionOptions options;
  options.epochs = 1000000;  // would run ~minutes without cancellation
  options.limits.cancel = source.token();

  Status status = Status::Ok();
  std::thread worker([&]() {
    const Result<LogisticRegression> model =
        LogisticRegression::FitHard(x, labels, 2, 24, options);
    status = model.ok() ? Status::Ok() : model.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  source.Cancel();
  worker.join();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace activedp
