// Sparse data plane + kernel dispatch (DESIGN.md §13):
//  - every SIMD variant of every reducing kernel is bitwise identical to the
//    scalar 4-lane reference, including ragged tails;
//  - CsrMatrix round-trips dense matrices exactly and its products match the
//    dense path, including all-zero rows and empty columns;
//  - LabelMatrix's maintained active counts and lazily built CSR row view
//    agree with a reference scan, across mutation (AddColumn / Set);
//  - the label models' PredictProbaSparse is bitwise equal to dense
//    PredictProba on every row.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "lf/lf_applier.h"
#include "labelmodel/majority_vote.h"
#include "labelmodel/metal_completion.h"
#include "labelmodel/metal_model.h"
#include "math/csr_matrix.h"
#include "math/kernels.h"
#include "math/matrix.h"
#include "ml/linear_model.h"
#include "util/rng.h"

namespace activedp {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// The levels this binary + CPU can actually run (always includes scalar).
std::vector<kernels::SimdLevel> AvailableLevels() {
  std::vector<kernels::SimdLevel> levels = {kernels::SimdLevel::kScalar};
  if (kernels::MaxSupportedSimdLevel() >= kernels::SimdLevel::kSse2) {
    levels.push_back(kernels::SimdLevel::kSse2);
  }
  if (kernels::MaxSupportedSimdLevel() >= kernels::SimdLevel::kAvx2) {
    levels.push_back(kernels::SimdLevel::kAvx2);
  }
  return levels;
}

class SimdLevelRestorer {
 public:
  SimdLevelRestorer() : entry_(kernels::ActiveSimdLevel()) {}
  ~SimdLevelRestorer() { kernels::SetSimdLevel(entry_); }

 private:
  kernels::SimdLevel entry_;
};

TEST(KernelDispatchTest, AllLevelsBitwiseIdenticalFuzz) {
  SimdLevelRestorer restore;
  Rng rng(20240809);
  // Sizes straddle every tail length of the 4-wide (and 2-wide SSE2) main
  // loops, plus a couple of larger blocks.
  const std::vector<int> sizes = {0,  1,  2,  3,  4,  5,  6,  7,  8,
                                  9,  15, 16, 17, 31, 64, 67, 255};
  for (const int n : sizes) {
    std::vector<double> a(n), b(n), w(4 * n + 1);
    for (double& v : a) v = rng.Normal();
    for (double& v : b) v = rng.Normal();
    for (double& v : w) v = rng.Normal();
    std::vector<int32_t> idx(n);
    {
      // Strictly ascending sparse indices into w.
      int cursor = 0;
      for (int k = 0; k < n; ++k) {
        cursor += 1 + rng.UniformInt(3);
        idx[k] = cursor;
      }
    }
    std::vector<double> soft(n);
    for (double& v : soft) v = rng.Uniform(-30.0, 30.0);

    // Scalar reference for every kernel.
    ASSERT_EQ(kernels::SetSimdLevel(kernels::SimdLevel::kScalar),
              kernels::SimdLevel::kScalar);
    const double ref_dot = kernels::DotDense(a.data(), b.data(), n);
    const double ref_sparse =
        kernels::DotSparse(idx.data(), a.data(), n, w.data());
    const double ref_sum = kernels::Sum(a.data(), n);
    std::vector<double> ref_axpy = b;
    kernels::Axpy(1.7, a.data(), ref_axpy.data(), n);
    std::vector<double> ref_scale = a;
    kernels::Scale(ref_scale.data(), n, -0.37);
    std::vector<double> ref_softmax = soft;
    if (n > 0) kernels::SoftmaxInPlace(ref_softmax.data(), n);

    for (const kernels::SimdLevel level : AvailableLevels()) {
      ASSERT_EQ(kernels::SetSimdLevel(level), level);
      const std::string name = kernels::SimdLevelName(level);
      EXPECT_EQ(Bits(ref_dot), Bits(kernels::DotDense(a.data(), b.data(), n)))
          << "DotDense n=" << n << " level=" << name;
      EXPECT_EQ(Bits(ref_sparse),
                Bits(kernels::DotSparse(idx.data(), a.data(), n, w.data())))
          << "DotSparse n=" << n << " level=" << name;
      EXPECT_EQ(Bits(ref_sum), Bits(kernels::Sum(a.data(), n)))
          << "Sum n=" << n << " level=" << name;
      std::vector<double> axpy = b;
      kernels::Axpy(1.7, a.data(), axpy.data(), n);
      std::vector<double> scale = a;
      kernels::Scale(scale.data(), n, -0.37);
      std::vector<double> softmax = soft;
      if (n > 0) kernels::SoftmaxInPlace(softmax.data(), n);
      for (int k = 0; k < n; ++k) {
        ASSERT_EQ(Bits(ref_axpy[k]), Bits(axpy[k]))
            << "Axpy n=" << n << " k=" << k << " level=" << name;
        ASSERT_EQ(Bits(ref_scale[k]), Bits(scale[k]))
            << "Scale n=" << n << " k=" << k << " level=" << name;
        ASSERT_EQ(Bits(ref_softmax[k]), Bits(softmax[k]))
            << "Softmax n=" << n << " k=" << k << " level=" << name;
      }
    }
  }
}

TEST(KernelDispatchTest, EnvAndClampSemantics) {
  SimdLevelRestorer restore;
  // SetSimdLevel clamps to what the binary/CPU supports and reports what it
  // actually applied.
  const kernels::SimdLevel applied =
      kernels::SetSimdLevel(kernels::SimdLevel::kAvx2);
  EXPECT_LE(applied, kernels::MaxSupportedSimdLevel());
  EXPECT_EQ(applied, kernels::ActiveSimdLevel());
  EXPECT_EQ(kernels::SetSimdLevel(kernels::SimdLevel::kScalar),
            kernels::SimdLevel::kScalar);
  // Name/parse round trip.
  for (const kernels::SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(kernels::ParseSimdLevel(kernels::SimdLevelName(level)), level);
  }
  EXPECT_EQ(kernels::ParseSimdLevel("off"), kernels::SimdLevel::kScalar);
  EXPECT_EQ(kernels::ParseSimdLevel("auto"), kernels::MaxSupportedSimdLevel());
}

// Random dense matrix with controllable sparsity; `zero_rows` / `zero_cols`
// force whole rows/columns to zero (the CSR edge cases).
Matrix RandomSparseDense(Rng& rng, int rows, int cols, double density,
                         const std::vector<int>& zero_rows,
                         const std::vector<int>& zero_cols) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (rng.Uniform() < density) m(r, c) = rng.Normal();
    }
  }
  for (const int r : zero_rows) {
    for (int c = 0; c < cols; ++c) m(r, c) = 0.0;
  }
  for (const int c : zero_cols) {
    for (int r = 0; r < rows; ++r) m(r, c) = 0.0;
  }
  return m;
}

TEST(CsrMatrixTest, DenseRoundTripFuzz) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int rows = 1 + rng.UniformInt(40);
    const int cols = 1 + rng.UniformInt(30);
    const double density = rng.Uniform();  // includes near-0 and near-1
    std::vector<int> zero_rows, zero_cols;
    if (rows > 2) zero_rows = {0, rows - 1};
    if (cols > 2) zero_cols = {cols / 2};
    const Matrix dense =
        RandomSparseDense(rng, rows, cols, density, zero_rows, zero_cols);
    const CsrMatrix csr = CsrMatrix::FromDense(dense);
    ASSERT_EQ(csr.rows(), rows);
    ASSERT_EQ(csr.cols(), cols);
    const Matrix back = csr.ToDense();
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        ASSERT_EQ(Bits(dense(r, c)), Bits(back(r, c)))
            << "trial " << trial << " (" << r << "," << c << ")";
      }
    }
    for (const int r : zero_rows) EXPECT_EQ(csr.RowNnz(r), 0);
  }
}

TEST(CsrMatrixTest, ProductsMatchDenseFuzz) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const int rows = 5 + rng.UniformInt(60);
    const int cols = 2 + rng.UniformInt(12);
    // Integer-valued entries: sums of products are exact, so sparse and
    // dense accumulation orders must agree to the last bit.
    Matrix dense(rows, cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (rng.Uniform() < 0.3) {
          dense(r, c) = static_cast<double>(rng.UniformInt(-3, 3));
        }
      }
    }
    const CsrMatrix csr = CsrMatrix::FromDense(dense);

    // RowDot == dense row dot restricted to stored entries (exact sums).
    std::vector<double> v(cols);
    for (double& x : v) x = static_cast<double>(rng.UniformInt(-5, 5));
    const std::vector<double> product = csr.MultiplyVector(v);
    for (int r = 0; r < rows; ++r) {
      double expected = 0.0;
      for (int c = 0; c < cols; ++c) expected += dense(r, c) * v[c];
      ASSERT_EQ(Bits(expected), Bits(product[r])) << "row " << r;
    }

    // A^T A == dense transpose-multiply (exact integer sums).
    const Matrix ata = csr.SelfInnerProduct();
    const Matrix dense_ata = dense.Transpose().Multiply(dense);
    for (int a = 0; a < cols; ++a) {
      for (int b = 0; b < cols; ++b) {
        ASSERT_EQ(Bits(dense_ata(a, b)), Bits(ata(a, b)))
            << "(" << a << "," << b << ")";
      }
    }
  }
}

TEST(CsrMatrixTest, SetRowExtentsMatchesAppendRow) {
  Rng rng(29);
  const int rows = 30, cols = 20;
  const Matrix dense = RandomSparseDense(rng, rows, cols, 0.3, {3}, {7});
  const CsrMatrix appended = CsrMatrix::FromDense(dense);

  CsrMatrix bulk(rows, cols);
  std::vector<int> row_nnz(rows);
  for (int r = 0; r < rows; ++r) row_nnz[r] = appended.RowNnz(r);
  bulk.SetRowExtents(row_nnz);
  for (int r = 0; r < rows; ++r) {
    for (int k = 0; k < appended.RowNnz(r); ++k) {
      bulk.MutableRowIndices(r)[k] = appended.RowIndices(r)[k];
      bulk.MutableRowValues(r)[k] = appended.RowValues(r)[k];
    }
  }
  ASSERT_EQ(bulk.nnz(), appended.nnz());
  const Matrix back = bulk.ToDense();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      ASSERT_EQ(Bits(dense(r, c)), Bits(back(r, c)));
    }
  }
}

// Reference LabelMatrix built with per-entry scans, for differential tests.
LabelMatrix RandomLabelMatrix(Rng& rng, int rows, int cols,
                              double fire_rate) {
  LabelMatrix matrix(rows);
  for (int j = 0; j < cols; ++j) {
    std::vector<int8_t> column(rows, kAbstain);
    for (int i = 0; i < rows; ++i) {
      if (rng.Uniform() < fire_rate) {
        column[i] = static_cast<int8_t>(rng.UniformInt(2));
      }
    }
    // Guarantee at least one all-abstain row and one all-abstain column.
    if (j == cols - 1) std::fill(column.begin(), column.end(), kAbstain);
    if (rows > 0) column[0] = kAbstain;
    matrix.AddColumn(std::move(column));
  }
  return matrix;
}

TEST(LabelMatrixTest, ActiveCountsAndRowsMatchReferenceScan) {
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    const int rows = 1 + rng.UniformInt(50);
    const int cols = 1 + rng.UniformInt(10);
    LabelMatrix matrix = RandomLabelMatrix(rng, rows, cols, rng.Uniform());
    matrix.EnsureRows();
    for (int i = 0; i < rows; ++i) {
      int expected_count = 0;
      std::vector<int32_t> expected_cols;
      std::vector<int8_t> expected_labels;
      for (int j = 0; j < cols; ++j) {
        if (matrix.At(i, j) != kAbstain) {
          ++expected_count;
          expected_cols.push_back(j);
          expected_labels.push_back(static_cast<int8_t>(matrix.At(i, j)));
        }
      }
      ASSERT_EQ(matrix.ActiveCount(i), expected_count) << "row " << i;
      ASSERT_EQ(matrix.AnyActive(i), expected_count > 0) << "row " << i;
      const ActiveRowView view = matrix.ActiveRow(i);
      ASSERT_EQ(view.nnz, expected_count) << "row " << i;
      for (int k = 0; k < view.nnz; ++k) {
        ASSERT_EQ(view.cols[k], expected_cols[k]) << "row " << i;
        ASSERT_EQ(view.labels[k], expected_labels[k]) << "row " << i;
      }
    }
    // SpinCsr: +1 for label 1, -1 for label 0, abstains dropped.
    const CsrMatrix spins = matrix.SpinCsr();
    for (int i = 0; i < rows; ++i) {
      const ActiveRowView view = matrix.ActiveRow(i);
      ASSERT_EQ(spins.RowNnz(i), view.nnz);
      for (int k = 0; k < view.nnz; ++k) {
        ASSERT_EQ(spins.RowIndices(i)[k], view.cols[k]);
        ASSERT_EQ(spins.RowValues(i)[k], view.labels[k] == 1 ? 1.0 : -1.0);
      }
    }
  }
}

TEST(LabelMatrixTest, SetInvalidatesCountsAndRows) {
  LabelMatrix matrix(3);
  matrix.AddColumn({0, kAbstain, 1});
  matrix.AddColumn({kAbstain, kAbstain, 0});
  EXPECT_EQ(matrix.ActiveCount(0), 1);
  EXPECT_FALSE(matrix.AnyActive(1));
  EXPECT_EQ(matrix.ActiveCount(2), 2);

  matrix.Set(1, 0, 1);        // abstain -> active
  matrix.Set(2, 1, kAbstain); // active -> abstain
  matrix.Set(0, 0, 1);        // active -> active (count unchanged)
  EXPECT_EQ(matrix.ActiveCount(0), 1);
  EXPECT_TRUE(matrix.AnyActive(1));
  EXPECT_EQ(matrix.ActiveCount(2), 1);

  matrix.EnsureRows();
  const ActiveRowView row2 = matrix.ActiveRow(2);
  ASSERT_EQ(row2.nnz, 1);
  EXPECT_EQ(row2.cols[0], 0);
  EXPECT_EQ(row2.labels[0], 1);
}

TEST(LabelModelTest, SparsePredictionsBitwiseEqualDense) {
  Rng rng(4242);
  LabelMatrix matrix = RandomLabelMatrix(rng, 300, 12, 0.25);
  matrix.EnsureRows();

  MetalModel metal;
  ASSERT_TRUE(metal.Fit(matrix, 2).ok());
  MetalCompletionModel completion;
  ASSERT_TRUE(completion.Fit(matrix, 2).ok());
  MajorityVoteModel majority;
  ASSERT_TRUE(majority.Fit(matrix, 2).ok());
  const std::vector<const LabelModel*> models = {&metal, &completion,
                                                 &majority};

  for (const LabelModel* model : models) {
    for (int i = 0; i < matrix.num_rows(); ++i) {
      const auto dense = model->PredictProba(matrix.Row(i));
      ASSERT_TRUE(dense.ok()) << dense.status().ToString();
      const auto sparse =
          model->PredictProbaSparse(matrix.ActiveRow(i), matrix.num_cols());
      ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
      ASSERT_EQ(dense->size(), sparse->size());
      for (size_t c = 0; c < dense->size(); ++c) {
        ASSERT_EQ(Bits((*dense)[c]), Bits((*sparse)[c]))
            << "row " << i << " class " << c;
      }
    }
  }
}

TEST(LinearModelTest, CsrRowViewLogitsBitwiseEqualSparseVector) {
  Rng rng(555);
  const int dim = 40;
  Matrix weights(2, dim + 1);
  for (int c = 0; c < 2; ++c) {
    for (int k = 0; k <= dim; ++k) weights(c, k) = rng.Normal();
  }
  const auto model = LogisticRegression::FromWeights(2, dim, weights);
  ASSERT_TRUE(model.ok());
  for (int trial = 0; trial < 20; ++trial) {
    SparseVector x;
    for (int j = 0; j < dim; ++j) {
      if (rng.Uniform() < 0.2) x.PushBack(j, rng.Normal());
    }
    const std::vector<double> via_vector = model->PredictProba(x);
    const std::vector<double> via_view =
        model->PredictProba(x.indices.data(), x.values.data(), x.nnz());
    ASSERT_EQ(via_vector.size(), via_view.size());
    for (size_t c = 0; c < via_vector.size(); ++c) {
      ASSERT_EQ(Bits(via_vector[c]), Bits(via_view[c])) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace activedp
