#include <gtest/gtest.h>

#include <set>

#include "data/dataset.h"
#include "data/dataset_zoo.h"
#include "data/example.h"
#include "data/synthetic_tabular.h"
#include "data/synthetic_text.h"
#include "util/rng.h"

namespace activedp {
namespace {

TEST(SparseVectorTest, DotAndAxpy) {
  SparseVector x;
  x.PushBack(1, 2.0);
  x.PushBack(4, -1.0);
  std::vector<double> w = {0, 3, 0, 0, 5};
  EXPECT_DOUBLE_EQ(SparseDot(x, w), 1.0);
  SparseAxpy(2.0, x, w);
  EXPECT_DOUBLE_EQ(w[1], 7.0);
  EXPECT_DOUBLE_EQ(w[4], 3.0);
}

TEST(SparseVectorTest, L2Normalize) {
  SparseVector x;
  x.PushBack(0, 3.0);
  x.PushBack(1, 4.0);
  L2Normalize(x);
  EXPECT_NEAR(x.values[0], 0.6, 1e-12);
  EXPECT_NEAR(x.values[1], 0.8, 1e-12);
  SparseVector zero;
  L2Normalize(zero);  // must not crash
  EXPECT_EQ(zero.nnz(), 0);
}

TEST(ExampleTest, HasTokenBinarySearch) {
  Example e;
  e.term_counts = {{2, 1}, {5, 3}, {9, 1}};
  EXPECT_TRUE(e.HasToken(5));
  EXPECT_FALSE(e.HasToken(4));
  EXPECT_TRUE(e.HasToken(9));
  EXPECT_FALSE(e.HasToken(100));
}

TEST(DatasetTest, LabelsAndBalance) {
  DatasetMeta meta;
  meta.num_classes = 2;
  std::vector<Example> examples(4);
  examples[0].label = 0;
  examples[1].label = 1;
  examples[2].label = 1;
  examples[3].label = 1;
  Dataset dataset(meta, std::move(examples));
  EXPECT_EQ(dataset.Labels(), (std::vector<int>{0, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(dataset.ClassBalance()[1], 0.75);
}

TEST(DatasetTest, SplitSizesAndPartition) {
  DatasetMeta meta;
  meta.num_classes = 2;
  std::vector<Example> examples(100);
  for (int i = 0; i < 100; ++i) {
    examples[i].label = i % 2;
    examples[i].features = {static_cast<double>(i)};
  }
  Dataset full(meta, std::move(examples));
  Rng rng(3);
  const DataSplit split = SplitDataset(full, 0.8, 0.1, rng);
  EXPECT_EQ(split.train.size(), 80);
  EXPECT_EQ(split.valid.size(), 10);
  EXPECT_EQ(split.test.size(), 10);
  // Every original example appears exactly once across the parts.
  std::multiset<double> seen;
  for (const auto* part : {&split.train, &split.valid, &split.test}) {
    for (const auto& e : part->examples()) seen.insert(e.features[0]);
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0.0);
  EXPECT_EQ(*seen.rbegin(), 99.0);
}

TEST(SyntheticTextTest, GeneratesRequestedShape) {
  SyntheticTextConfig config;
  config.num_examples = 300;
  Rng rng(11);
  const Dataset dataset = GenerateSyntheticText(config, rng);
  EXPECT_EQ(dataset.size(), 300);
  EXPECT_EQ(dataset.meta().task, TaskType::kTextClassification);
  EXPECT_GT(dataset.vocabulary().size(), 50);
  for (const auto& e : dataset.examples()) {
    EXPECT_GE(e.label, 0);
    EXPECT_LT(e.label, 2);
    EXPECT_FALSE(e.text.empty());
    // Term counts sorted strictly by id.
    for (size_t k = 1; k < e.term_counts.size(); ++k) {
      EXPECT_LT(e.term_counts[k - 1].first, e.term_counts[k].first);
    }
  }
}

TEST(SyntheticTextTest, DeterministicForSeed) {
  SyntheticTextConfig config;
  config.num_examples = 50;
  Rng rng1(5), rng2(5);
  const Dataset a = GenerateSyntheticText(config, rng1);
  const Dataset b = GenerateSyntheticText(config, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.example(i).text, b.example(i).text);
    EXPECT_EQ(a.example(i).label, b.example(i).label);
  }
}

TEST(SyntheticTextTest, SignalWordsPredictClass) {
  // With zero leak and zero label noise, a class-0 strong keyword should
  // only ever appear in class-0 documents.
  SyntheticTextConfig config;
  config.num_examples = 800;
  config.confusion_min = 0.0;
  config.confusion_max = 0.0;
  config.label_noise = 0.0;
  Rng rng(7);
  const Dataset dataset = GenerateSyntheticText(config, rng);
  const int id = dataset.vocabulary().GetId("c0w0");
  ASSERT_NE(id, Vocabulary::kUnknownId);
  for (const auto& e : dataset.examples()) {
    if (e.HasToken(id)) EXPECT_EQ(e.label, 0);
  }
}

TEST(SyntheticTextTest, LabelNoiseFlipsRoughlyTheConfiguredFraction) {
  SyntheticTextConfig base;
  base.num_examples = 4000;
  base.label_noise = 0.0;
  SyntheticTextConfig noisy = base;
  noisy.label_noise = 0.3;
  Rng rng1(9), rng2(9);
  const Dataset clean = GenerateSyntheticText(base, rng1);
  const Dataset flipped = GenerateSyntheticText(noisy, rng2);
  // Same RNG consumption pattern differs, so compare statistically: with
  // heavy label noise the strong keyword/label association weakens.
  auto keyword_accuracy = [](const Dataset& d) {
    const int id = d.vocabulary().GetId("c0w0");
    int match = 0, total = 0;
    for (const auto& e : d.examples()) {
      if (!e.HasToken(id)) continue;
      ++total;
      match += (e.label == 0);
    }
    return total > 0 ? static_cast<double>(match) / total : 0.0;
  };
  EXPECT_GT(keyword_accuracy(clean), keyword_accuracy(flipped) + 0.1);
}

TEST(SyntheticTabularTest, ShapeAndDeterminism) {
  SyntheticTabularConfig config;
  config.num_examples = 200;
  config.num_features = 6;
  Rng rng1(3), rng2(3);
  const Dataset a = GenerateSyntheticTabular(config, rng1);
  const Dataset b = GenerateSyntheticTabular(config, rng2);
  EXPECT_EQ(a.size(), 200);
  EXPECT_EQ(a.meta().task, TaskType::kTabularClassification);
  EXPECT_EQ(static_cast<int>(a.example(0).features.size()), 6);
  EXPECT_EQ(a.feature_names().size(), 6u);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.example(i).features, b.example(i).features);
  }
}

TEST(SyntheticTabularTest, InformativeFeaturesSeparateClasses) {
  SyntheticTabularConfig config;
  config.num_examples = 4000;
  config.num_features = 4;
  config.informative_features = 1;
  config.class_separation = 4.0;
  config.label_noise = 0.0;
  Rng rng(13);
  const Dataset dataset = GenerateSyntheticTabular(config, rng);
  // Feature 0 means should differ strongly between classes; feature 3 not.
  double mean0[2] = {0, 0}, mean3[2] = {0, 0};
  int counts[2] = {0, 0};
  for (const auto& e : dataset.examples()) {
    mean0[e.label] += e.features[0];
    mean3[e.label] += e.features[3];
    ++counts[e.label];
  }
  for (int y = 0; y < 2; ++y) {
    mean0[y] /= counts[y];
    mean3[y] /= counts[y];
  }
  EXPECT_GT(std::abs(mean0[0] - mean0[1]), 2.0);
  EXPECT_LT(std::abs(mean3[0] - mean3[1]), 0.3);
}

TEST(DatasetZooTest, HasAllEightPaperDatasets) {
  const std::vector<std::string> names = ZooDatasetNames();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names[0], "youtube");
  EXPECT_EQ(names[7], "census");
  EXPECT_TRUE(FindZooEntry("bios-pt").ok());
  EXPECT_FALSE(FindZooEntry("mnist").ok());
}

TEST(DatasetZooTest, PaperSizesMatchTable2) {
  const Result<ZooEntry> imdb = FindZooEntry("imdb");
  ASSERT_TRUE(imdb.ok());
  EXPECT_EQ(imdb->paper_train, 20000);
  EXPECT_EQ(imdb->paper_valid, 2500);
  const Result<ZooEntry> census = FindZooEntry("census");
  ASSERT_TRUE(census.ok());
  EXPECT_EQ(census->paper_train, 25541);
  EXPECT_EQ(census->type, TaskType::kTabularClassification);
}

TEST(DatasetZooTest, GeneratesSplitsAtScale) {
  const Result<DataSplit> split = MakeZooDataset("youtube", 0.5, 1);
  ASSERT_TRUE(split.ok());
  const int total =
      split->train.size() + split->valid.size() + split->test.size();
  EXPECT_NEAR(total, (1566 + 195 + 195) * 0.5, 3);
  // 80/10/10 partition.
  EXPECT_NEAR(split->train.size() / static_cast<double>(total), 0.8, 0.02);
}

TEST(DatasetZooTest, RejectsBadArguments) {
  EXPECT_FALSE(MakeZooDataset("unknown", 1.0, 1).ok());
  EXPECT_FALSE(MakeZooDataset("imdb", 0.0, 1).ok());
  EXPECT_FALSE(MakeZooDataset("imdb", -1.0, 1).ok());
}

TEST(DatasetZooTest, DifferentSeedsGiveDifferentData) {
  const Result<DataSplit> a = MakeZooDataset("youtube", 0.2, 1);
  const Result<DataSplit> b = MakeZooDataset("youtube", 0.2, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->train.example(0).text, b->train.example(0).text);
}

TEST(DatasetZooTest, SameSeedIsReproducible) {
  const Result<DataSplit> a = MakeZooDataset("census", 0.05, 9);
  const Result<DataSplit> b = MakeZooDataset("census", 0.05, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->train.size(), b->train.size());
  EXPECT_EQ(a->train.example(0).features, b->train.example(0).features);
}

}  // namespace
}  // namespace activedp
