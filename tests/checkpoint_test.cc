// Crash-safe run checkpointing: RunCheckpoint round-trip, corrupt-file
// handling, and the kill-and-resume guarantee — a run interrupted after any
// evaluation and restarted over the same checkpoint file must produce a
// RunResult bitwise-identical to an uninterrupted run.

#include "core/run_checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/experiment.h"
#include "data/dataset_zoo.h"
#include "util/atomic_file.h"
#include "util/fault.h"

namespace activedp {
namespace {

RunCheckpoint MakeCheckpoint() {
  RunCheckpoint checkpoint;
  checkpoint.completed_iterations = 20;
  checkpoint.partial.budgets = {10, 20};
  checkpoint.partial.test_accuracy = {0.71234567891234567, 0.8};
  checkpoint.partial.label_accuracy = {0.9, 0.91};
  checkpoint.partial.label_coverage = {0.5, 0.6};
  return checkpoint;
}

TEST(RunCheckpointTest, RoundTripsExactly) {
  const std::string path = testing::TempDir() + "/roundtrip.ckpt";
  const RunCheckpoint saved = MakeCheckpoint();
  ASSERT_TRUE(SaveRunCheckpoint(saved, path).ok());
  Result<RunCheckpoint> loaded = LoadRunCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->completed_iterations, saved.completed_iterations);
  EXPECT_EQ(loaded->partial.budgets, saved.partial.budgets);
  // %.17g serialization must round-trip doubles bit for bit.
  EXPECT_EQ(loaded->partial.test_accuracy, saved.partial.test_accuracy);
  EXPECT_EQ(loaded->partial.label_accuracy, saved.partial.label_accuracy);
  EXPECT_EQ(loaded->partial.label_coverage, saved.partial.label_coverage);
}

TEST(RunCheckpointTest, MissingFileIsNotFound) {
  Result<RunCheckpoint> loaded =
      LoadRunCheckpoint(testing::TempDir() + "/does_not_exist.ckpt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(RunCheckpointTest, RejectsCorruptFiles) {
  const std::string path = testing::TempDir() + "/corrupt.ckpt";
  const auto write = [&path](const std::string& content) {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;
  };
  const auto expect_invalid = [&path]() {
    Result<RunCheckpoint> loaded = LoadRunCheckpoint(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << loaded.status().ToString();
  };

  write("not a checkpoint at all\n");
  expect_invalid();
  write("activedp-checkpoint v1\niter ten\n");
  expect_invalid();
  write("activedp-checkpoint v1\niter 10\neval 10 0.5\n");
  expect_invalid();
  write("activedp-checkpoint v1\niter 10\neval 10 nan 0.5 0.5\n");
  expect_invalid();
  write("activedp-checkpoint v1\niter 10\neval 20 0.5 0.5 0.5\n");
  expect_invalid();  // eval row beyond completed iterations
  write("activedp-checkpoint v1\neval 10 0.5 0.5 0.5\n");
  expect_invalid();  // missing iter record
  write(
      "activedp-checkpoint v1\niter 10\neval 10 0.5 0.5 0.5\n"
      "#crc64 0000000000000000\n");
  expect_invalid();  // checksum mismatch
}

TEST(RunCheckpointTest, TruncatedWriteIsDetectedAtLoad) {
  const std::string path = testing::TempDir() + "/truncated.ckpt";
  {
    FaultScope fault("checkpoint.save", FaultKind::kTruncateWrite);
    ASSERT_TRUE(SaveRunCheckpoint(MakeCheckpoint(), path).ok());
  }
  Result<RunCheckpoint> loaded = LoadRunCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
      << loaded.status().ToString();
}

// --------------------------------------------------- kill and resume ------

class ProtocolResumeTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    Result<DataSplit> split = MakeZooDataset("youtube", 0.4, 101);
    ASSERT_TRUE(split.ok());
    split_ = std::move(*split);
    context_ = FrameworkContext::Build(split_);
    options_.iterations = 30;
    options_.eval_every = 10;
  }

  ActiveDpOptions Adp() const {
    ActiveDpOptions adp;
    adp.seed = 17;
    return adp;
  }

  DataSplit split_;
  FrameworkContext context_;
  ProtocolOptions options_;
};

void ExpectBitwiseEqual(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.budgets, b.budgets);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_EQ(a.label_accuracy, b.label_accuracy);
  EXPECT_EQ(a.label_coverage, b.label_coverage);
  EXPECT_EQ(a.average_test_accuracy, b.average_test_accuracy);
}

TEST_F(ProtocolResumeTest, KilledRunResumesBitwiseIdentical) {
  // Reference: one uninterrupted run, no checkpointing.
  ActiveDp reference(context_, Adp());
  const RunResult uninterrupted = RunProtocol(reference, context_, options_);
  ASSERT_EQ(uninterrupted.budgets.size(), 3u);

  // "Killed" run: same protocol but stopped after the second evaluation —
  // simulated by running only 20 of the 30 iterations, checkpointing as it
  // goes, exactly the state a killed process leaves behind.
  const std::string path = testing::TempDir() + "/resume.ckpt";
  std::remove(path.c_str());
  ProtocolOptions with_checkpoint = options_;
  with_checkpoint.policy.checkpoint_path = path;
  {
    ProtocolOptions killed = with_checkpoint;
    killed.iterations = 20;
    ActiveDp first(context_, Adp());
    RunProtocol(first, context_, killed);
    Result<RunCheckpoint> checkpoint = LoadRunCheckpoint(path);
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
    EXPECT_EQ(checkpoint->completed_iterations, 20);
  }

  // Restart: a fresh pipeline over the same checkpoint file replays the
  // first 20 iterations without re-evaluating, then runs the rest live.
  ActiveDp second(context_, Adp());
  const RunResult resumed = RunProtocol(second, context_, with_checkpoint);
  ExpectBitwiseEqual(resumed, uninterrupted);
}

TEST_F(ProtocolResumeTest, CorruptCheckpointFallsBackToFreshStart) {
  const std::string path = testing::TempDir() + "/corrupt_resume.ckpt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "garbage that is not a checkpoint\n";
  }
  ProtocolOptions with_checkpoint = options_;
  with_checkpoint.policy.checkpoint_path = path;
  ActiveDp pipeline(context_, Adp());
  const RunResult result = RunProtocol(pipeline, context_, with_checkpoint);

  ActiveDp reference(context_, Adp());
  const RunResult uninterrupted = RunProtocol(reference, context_, options_);
  ExpectBitwiseEqual(result, uninterrupted);
}

TEST_F(ProtocolResumeTest, CheckpointSaveFailureDoesNotStopTheRun) {
  const std::string path = testing::TempDir() + "/unsavable.ckpt";
  std::remove(path.c_str());
  ProtocolOptions with_checkpoint = options_;
  with_checkpoint.policy.checkpoint_path = path;
  FaultScope fault("checkpoint.save", FaultKind::kError);
  ActiveDp pipeline(context_, Adp());
  const RunResult result = RunProtocol(pipeline, context_, with_checkpoint);
  EXPECT_EQ(result.budgets.size(), 3u);
  EXPECT_GT(fault.fire_count(), 0);
}

}  // namespace
}  // namespace activedp
