// Deterministic retry layer: seeded backoff reproducibility, the
// retry-only-transients contract, per-site budgets, and the end-to-end
// guarantee that a run with retries is exactly reproducible — same policy
// seed + same fault schedule give identical backoff sequences and a
// bitwise-identical RunResult, including across a kill-and-resume.

#include "util/retry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/activedp.h"
#include "core/experiment.h"
#include "core/recovery.h"
#include "core/run_checkpoint.h"
#include "data/dataset_zoo.h"
#include "util/fault.h"

namespace activedp {
namespace {

// -------------------------------------------------------------- backoff ----

TEST(RetryBackoffTest, DeterministicGivenSeedSiteAndCounters) {
  RetryPolicy policy;
  policy.seed = 42;
  for (int counter = 1; counter <= 4; ++counter) {
    for (int retry = 1; retry <= 3; ++retry) {
      EXPECT_EQ(RetryBackoffMs(policy, "glasso.solve", counter, retry),
                RetryBackoffMs(policy, "glasso.solve", counter, retry));
    }
  }
  RetryPolicy other = policy;
  other.seed = 43;
  EXPECT_NE(RetryBackoffMs(policy, "glasso.solve", 1, 1),
            RetryBackoffMs(other, "glasso.solve", 1, 1));
  EXPECT_NE(RetryBackoffMs(policy, "glasso.solve", 1, 1),
            RetryBackoffMs(policy, "metal.fit", 1, 1));
}

TEST(RetryBackoffTest, ExponentialGrowthWithCap) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10.0;
  policy.max_backoff_ms = 50.0;
  policy.jitter = 0.0;  // exact values
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, "s", 1, 1), 10.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, "s", 2, 2), 20.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, "s", 3, 3), 40.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, "s", 4, 4), 50.0);  // capped
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, "s", 5, 9), 50.0);
}

TEST(RetryBackoffTest, JitterStaysWithinConfiguredFraction) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter = 0.5;
  for (int counter = 1; counter <= 32; ++counter) {
    const double ms = RetryBackoffMs(policy, "site", counter, 1);
    EXPECT_GE(ms, 50.0);
    EXPECT_LT(ms, 100.0);
  }
}

// -------------------------------------------------------------- retrier ----

TEST(RetryLogTest, MarkRecoveredOnlyTouchesItsInvocation) {
  // Events from two invocations interleaved in one shared log (the
  // parallel-seed layout): marking one invocation recovered must not touch
  // the other's still-failing events.
  RetryLog log;
  const int64_t a = log.NextInvocation();
  const int64_t b = log.NextInvocation();
  EXPECT_NE(a, b);
  log.Record({"site.a", 1, 1.0, "transient", false, a});
  log.Record({"site.b", 1, 1.0, "transient", false, b});
  log.Record({"site.a", 2, 2.0, "transient", false, a});
  log.MarkRecovered(a);
  EXPECT_EQ(log.recovered_count("site.a"), 2);
  EXPECT_EQ(log.recovered_count("site.b"), 0);
}

TEST(RetrierTest, RetriesTransientFailuresUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryLog log;
  Retrier retrier(policy, &log);
  int calls = 0;
  const Status status =
      retrier.Run("site", RunLimits::Unlimited(), [&]() -> Status {
        ++calls;
        return calls < 3 ? Status::Internal("transient") : Status::Ok();
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(log.count("site"), 2);
  EXPECT_EQ(log.recovered_count("site"), 2);
  EXPECT_EQ(retrier.retries_used("site"), 2);
}

TEST(RetrierTest, DoesNotRetryDeterministicFailures) {
  RetryLog log;
  Retrier retrier(RetryPolicy{}, &log);
  int calls = 0;
  const Status status =
      retrier.Run("site", RunLimits::Unlimited(), [&]() -> Status {
        ++calls;
        return Status::InvalidArgument("bad input");
      });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(log.empty());
}

TEST(RetrierTest, GivesUpAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryLog log;
  Retrier retrier(policy, &log);
  int calls = 0;
  const Status status =
      retrier.Run("site", RunLimits::Unlimited(), [&]() -> Status {
        ++calls;
        return Status::Internal("still broken");
      });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(log.count("site"), 2);
  EXPECT_EQ(log.recovered_count("site"), 0);
}

TEST(RetrierTest, PerSiteBudgetCapsRetriesAcrossInvocations) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.per_site_budget = 3;
  Retrier retrier(policy);
  int calls = 0;
  const auto failing = [&calls]() -> Status {
    ++calls;
    return Status::Internal("deterministic failure");
  };
  for (int i = 0; i < 5; ++i) {
    retrier.Run("site", RunLimits::Unlimited(), failing);
  }
  // 5 invocations but only the first 3 earned a retry (budget), so 5 + 3
  // calls in total; the budget does not leak across sites.
  EXPECT_EQ(calls, 8);
  EXPECT_EQ(retrier.retries_used("site"), 3);
  EXPECT_EQ(retrier.retries_used("other"), 0);
  retrier.Run("other", RunLimits::Unlimited(), failing);
  EXPECT_EQ(retrier.retries_used("other"), 1);
}

TEST(RetrierTest, ZeroBudgetDisablesRetries) {
  RetryPolicy policy;
  policy.per_site_budget = 0;
  Retrier retrier(policy);
  int calls = 0;
  retrier.Run("site", RunLimits::Unlimited(), [&]() -> Status {
    ++calls;
    return Status::Internal("transient");
  });
  EXPECT_EQ(calls, 1);
}

TEST(RetrierTest, TrippedLimitsShortCircuitTheAttempt) {
  CancellationSource source;
  source.Cancel();
  RunLimits limits;
  limits.cancel = source.token();
  Retrier retrier(RetryPolicy{});
  int calls = 0;
  const Status status = retrier.Run("site", limits, [&]() -> Status {
    ++calls;
    return Status::Ok();
  });
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 0);
}

TEST(RetrierTest, RunResultingReturnsTheRecoveredValue) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  Retrier retrier(policy);
  int calls = 0;
  const Result<int> result = retrier.RunResulting<int>(
      "site", RunLimits::Unlimited(), [&]() -> Result<int> {
        ++calls;
        if (calls < 2) return Status::Internal("transient");
        return 41 + calls;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 43);
}

// ------------------------------------------------ run reproducibility ------

class RetryDeterminismTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    Result<DataSplit> split = MakeZooDataset("youtube", 0.4, 101);
    ASSERT_TRUE(split.ok());
    split_ = std::move(*split);
    context_ = FrameworkContext::Build(split_);
    options_.iterations = 30;
    options_.eval_every = 10;
  }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  ActiveDpOptions Adp() const {
    ActiveDpOptions adp;
    adp.seed = 17;
    adp.policy.retry.seed = 99;
    return adp;
  }

  /// The fault schedule shared by every run in these tests: metal.fit
  /// poisons its parameters twice starting from the fourth fit, then heals
  /// — transient enough for the retry layer to absorb.
  static FaultSpec TransientMetalFault() {
    FaultSpec spec;
    spec.kind = FaultKind::kNan;
    spec.trigger_after = 3;
    spec.max_fires = 2;
    return spec;
  }

  DataSplit split_;
  FrameworkContext context_;
  ProtocolOptions options_;
};

void ExpectSameRunResult(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.budgets, b.budgets);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_EQ(a.label_accuracy, b.label_accuracy);
  EXPECT_EQ(a.label_coverage, b.label_coverage);
  EXPECT_EQ(a.average_test_accuracy, b.average_test_accuracy);
}

TEST_F(RetryDeterminismTest, SameSeedAndScheduleGiveIdenticalRetries) {
  const auto run = [&](RunResult* out) -> std::vector<RetryEvent> {
    FaultScope fault("metal.fit", TransientMetalFault());
    ActiveDp pipeline(context_, Adp());
    *out = RunProtocol(pipeline, context_, options_);
    EXPECT_EQ(fault.fire_count(), 2);
    return pipeline.retry_log().events();
  };
  RunResult first_result, second_result;
  const std::vector<RetryEvent> first = run(&first_result);
  const std::vector<RetryEvent> second = run(&second_result);

  ASSERT_EQ(first.size(), second.size());
  ASSERT_GE(first.size(), 2u);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].site, second[i].site);
    EXPECT_EQ(first[i].retry, second[i].retry);
    // Bitwise-equal backoffs: the jitter is a pure function of
    // (policy seed, site, per-site counter, retry index).
    EXPECT_EQ(first[i].backoff_ms, second[i].backoff_ms);
    EXPECT_EQ(first[i].recovered, second[i].recovered);
  }
  ExpectSameRunResult(first_result, second_result);
}

TEST_F(RetryDeterminismTest, RetriedRunResumesBitwiseIdentical) {
  // Reference: uninterrupted run under the transient fault.
  RunResult uninterrupted;
  {
    FaultScope fault("metal.fit", TransientMetalFault());
    ActiveDp reference(context_, Adp());
    uninterrupted = RunProtocol(reference, context_, options_);
    ASSERT_EQ(fault.fire_count(), 2);
  }
  ASSERT_EQ(uninterrupted.budgets.size(), 3u);

  // Killed run: same fault schedule (re-armed, counters reset), stopped
  // after 20 of 30 iterations with checkpointing on.
  const std::string path = testing::TempDir() + "/retry_resume.ckpt";
  std::remove(path.c_str());
  ProtocolOptions with_checkpoint = options_;
  with_checkpoint.policy.checkpoint_path = path;
  {
    FaultScope fault("metal.fit", TransientMetalFault());
    ProtocolOptions killed = with_checkpoint;
    killed.iterations = 20;
    ActiveDp first(context_, Adp());
    RunProtocol(first, context_, killed);
    Result<RunCheckpoint> checkpoint = LoadRunCheckpoint(path);
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  }

  // Resume replays every iteration (reusing checkpointed evaluations), so
  // the re-armed fault fires on the same fits and the same retries absorb
  // it — the final result matches the uninterrupted run bit for bit.
  FaultScope fault("metal.fit", TransientMetalFault());
  ActiveDp second(context_, Adp());
  const RunResult resumed = RunProtocol(second, context_, with_checkpoint);
  EXPECT_EQ(fault.fire_count(), 2);
  ExpectSameRunResult(resumed, uninterrupted);
}

// ------------------------------------------------- cross-thread logging ----
// One RetryLog / RecoveryLog is shared by every seed when RunExperiment runs
// seeds on a thread pool; these hammers certify the mutex-guarded write and
// counting paths under the TSan preset (scripts/verify.sh runs this file in
// the -DACTIVEDP_SANITIZE=thread build).

TEST(RetryLogThreadingTest, ConcurrentRecordAndCountAreRaceFree) {
  RetryLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t]() {
      const std::string site = "site" + std::to_string(t % 2);
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t invocation = log.NextInvocation();
        log.Record({site, i + 1, 1.5, "transient", false, invocation});
        // Counting readers race the writers by design; they must only be
        // mutex-safe, not see any particular count.
        (void)log.count(site);
        (void)log.size();
        if (i % 50 == 0) (void)log.Summary();
        // Recovery marking is scoped by invocation id, so it only touches
        // this thread's event however the threads interleave.
        log.MarkRecovered(invocation);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(log.size(), static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.count("site0") + log.count("site1"),
            kThreads * kPerThread);
  EXPECT_EQ(log.recovered_count("site0"), log.count("site0"));
  EXPECT_EQ(log.recovered_count("site1"), log.count("site1"));
}

TEST(RecoveryLogThreadingTest, ConcurrentRecordAndCountAreRaceFree) {
  RecoveryLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t]() {
      const std::string stage = "stage" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct reasons defeat the dedup of identical consecutive events,
        // so every Record lands.
        log.Record(stage, "failure " + std::to_string(i), "fallback");
        (void)log.count(stage);
        (void)log.empty();
        if (i % 25 == 0) (void)log.Summary();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(log.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(log.count("stage" + std::to_string(t)), kPerThread);
  }
}

}  // namespace
}  // namespace activedp
