// Tests for the metrics registry (util/metrics.h): counter/gauge semantics,
// histogram bucket boundaries, ResetAll, the JSON snapshot, and concurrent
// increments from many threads (exercised under the TSan preset). Named
// util_metrics_test because tests/metrics_test.cc covers ml/metrics.h.

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace activedp {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, KeepsLastWrittenValue) {
  Gauge gauge;
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.25);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram histogram({1.0, 10.0, 100.0});
  ASSERT_EQ(histogram.num_buckets(), 4);  // 3 bounds + overflow

  histogram.Observe(0.5);    // <= 1      -> bucket 0
  histogram.Observe(1.0);    // <= 1      -> bucket 0 (inclusive bound)
  histogram.Observe(1.0001); // <= 10     -> bucket 1
  histogram.Observe(10.0);   // <= 10     -> bucket 1
  histogram.Observe(99.0);   // <= 100    -> bucket 2
  histogram.Observe(100.5);  // overflow  -> bucket 3
  histogram.Observe(1e9);    // overflow  -> bucket 3

  EXPECT_EQ(histogram.bucket_count(0), 2);
  EXPECT_EQ(histogram.bucket_count(1), 2);
  EXPECT_EQ(histogram.bucket_count(2), 1);
  EXPECT_EQ(histogram.bucket_count(3), 2);
  EXPECT_EQ(histogram.count(), 7);
  EXPECT_NEAR(histogram.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 100.5 + 1e9,
              1e-6);

  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0);
  for (int b = 0; b < histogram.num_buckets(); ++b) {
    EXPECT_EQ(histogram.bucket_count(b), 0) << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
}

TEST(MetricsRegistryTest, InstrumentsAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.counter("stage.iterations");
  Counter& b = registry.counter("stage.iterations");
  EXPECT_EQ(&a, &b);  // same instrument, reference survives re-lookup
  a.Increment(5);
  EXPECT_EQ(registry.counter_value("stage.iterations"), 5);
  EXPECT_EQ(registry.counter_value("never.registered"), 0);

  registry.gauge("pool.width").Set(4.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("pool.width"), 4.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("never.registered"), 0.0);

  // Histogram bounds are fixed at first registration; a second registration
  // with different bounds returns the original instrument unchanged.
  Histogram& h1 = registry.histogram("backoff", {1.0, 2.0});
  Histogram& h2 = registry.histogram("backoff", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.num_buckets(), 3);
}

TEST(MetricsRegistryTest, ResetAllZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  registry.gauge("g").Set(7.0);
  registry.histogram("h", {1.0}).Observe(0.5);
  counter.Increment(3);

  registry.ResetAll();

  EXPECT_EQ(counter.value(), 0);  // the old reference still works
  EXPECT_EQ(registry.counter_value("c"), 0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("g"), 0.0);
  counter.Increment();
  EXPECT_EQ(registry.counter_value("c"), 1);
}

TEST(MetricsRegistryTest, ToJsonIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("z.last").Increment(2);
  registry.counter("a.first").Increment(1);
  registry.gauge("mid").Set(1.5);
  registry.histogram("latency", {10.0, 100.0}).Observe(42.0);

  const std::string json = registry.ToJson();
  // Counters appear sorted by name.
  const size_t a_pos = json.find("\"a.first\"");
  const size_t z_pos = json.find("\"z.last\"");
  ASSERT_NE(a_pos, std::string::npos);
  ASSERT_NE(z_pos, std::string::npos);
  EXPECT_LT(a_pos, z_pos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry]() {
      Counter& counter = registry.counter("contended");
      Histogram& histogram = registry.histogram("latency", {1.0, 10.0});
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        histogram.Observe(i % 20);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.counter_value("contended"),
            static_cast<int64_t>(kThreads) * kPerThread);
  const Histogram& histogram = registry.histogram("latency", {});
  EXPECT_EQ(histogram.count(), static_cast<int64_t>(kThreads) * kPerThread);
  int64_t bucket_total = 0;
  for (int b = 0; b < histogram.num_buckets(); ++b) {
    bucket_total += histogram.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, histogram.count());
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  MetricsRegistry::Global().counter("util_metrics_test.global").Increment();
  EXPECT_GE(
      MetricsRegistry::Global().counter_value("util_metrics_test.global"), 1);
}

TEST(MetricsRegistryTest, LabelledSeriesAreIndependentAndCanonical) {
  MetricsRegistry registry;
  registry.counter("req", {{"phase", "open"}}).Increment();
  registry.counter("req", {{"phase", "closed"}}).Increment();
  registry.counter("req", {{"phase", "closed"}}).Increment();
  registry.counter("req").Increment();  // unlabelled is its own series
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter_value("req", {{"phase", "open"}}), 1);
  EXPECT_EQ(snapshot.counter_value("req", {{"phase", "closed"}}), 2);
  EXPECT_EQ(snapshot.counter_value("req"), 1);
  // Labels are canonicalized by key: insertion order cannot fork a series.
  registry.counter("multi", {{"b", "2"}, {"a", "1"}}).Increment();
  EXPECT_EQ(
      registry.Snapshot().counter_value("multi", {{"a", "1"}, {"b", "2"}}),
      1);
}

TEST(MetricsRegistryTest, LabelCardinalityIsCapped) {
  MetricsRegistry registry;
  for (int i = 0; i < kMaxLabelSetsPerFamily + 16; ++i) {
    registry.counter("burst", {{"id", std::to_string(i)}}).Increment();
  }
  // Past the cap, registrations collapse into the overflow series instead
  // of growing without bound.
  EXPECT_GE(registry.Snapshot().counter_value("burst", {{"overflow", "true"}}),
            1);
}

TEST(HistogramQuantileTest, InterpolatesWithinTheTargetBucket) {
  // 100 observations spread 50/50 across (0,10] and (10,20].
  const std::vector<double> bounds = {10, 20};
  const std::vector<int64_t> counts = {50, 50, 0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.25), 5.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 1.0), 20.0);
}

TEST(HistogramQuantileTest, ErrorIsBoundedByTheBucketWidth) {
  // The documented bound: a quantile can be off by at most the width of
  // its containing bucket. Feed point-mass data at 7.3 and check every
  // quantile lands inside that value's bucket (5, 10].
  Histogram histogram({1, 5, 10, 50});
  for (int i = 0; i < 1000; ++i) histogram.Observe(7.3);
  for (double q : {0.01, 0.5, 0.99}) {
    const double value = histogram.Quantile(q);
    EXPECT_GT(value, 5.0) << q;
    EXPECT_LE(value, 10.0) << q;
  }
}

TEST(HistogramQuantileTest, OverflowBucketClampsToTheLastFiniteBound) {
  Histogram histogram({1, 2});
  histogram.Observe(100.0);
  // There is no finite upper edge; Quantile reports the last finite bound
  // rather than inventing a value.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 2.0);
}

// Writers hammer a histogram and counters while a reader snapshots: every
// snapshot must be internally coherent — within a histogram sample, count
// equals the sum of its buckets. Exercised under the TSan preset.
TEST(MetricsRegistryTest, SnapshotsStayCoherentUnderConcurrentWrites) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("hammer.lat", {1, 5, 10});
  Counter& counter = registry.counter("hammer.total");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        histogram.Observe((t + i) % 13);
        counter.Increment();
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    for (const MetricsSnapshot::HistogramSample& sample :
         snapshot.histograms) {
      int64_t bucket_total = 0;
      for (int64_t bucket : sample.counts) bucket_total += bucket;
      EXPECT_EQ(sample.count, bucket_total) << sample.name;
    }
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  const MetricsSnapshot final_snapshot = registry.Snapshot();
  ASSERT_EQ(final_snapshot.histograms.size(), 1u);
  EXPECT_EQ(final_snapshot.histograms[0].count,
            registry.counter_value("hammer.total"));
}

}  // namespace
}  // namespace activedp
