// Tests for the metrics registry (util/metrics.h): counter/gauge semantics,
// histogram bucket boundaries, ResetAll, the JSON snapshot, and concurrent
// increments from many threads (exercised under the TSan preset). Named
// util_metrics_test because tests/metrics_test.cc covers ml/metrics.h.

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace activedp {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, KeepsLastWrittenValue) {
  Gauge gauge;
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.25);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram histogram({1.0, 10.0, 100.0});
  ASSERT_EQ(histogram.num_buckets(), 4);  // 3 bounds + overflow

  histogram.Observe(0.5);    // <= 1      -> bucket 0
  histogram.Observe(1.0);    // <= 1      -> bucket 0 (inclusive bound)
  histogram.Observe(1.0001); // <= 10     -> bucket 1
  histogram.Observe(10.0);   // <= 10     -> bucket 1
  histogram.Observe(99.0);   // <= 100    -> bucket 2
  histogram.Observe(100.5);  // overflow  -> bucket 3
  histogram.Observe(1e9);    // overflow  -> bucket 3

  EXPECT_EQ(histogram.bucket_count(0), 2);
  EXPECT_EQ(histogram.bucket_count(1), 2);
  EXPECT_EQ(histogram.bucket_count(2), 1);
  EXPECT_EQ(histogram.bucket_count(3), 2);
  EXPECT_EQ(histogram.count(), 7);
  EXPECT_NEAR(histogram.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 100.5 + 1e9,
              1e-6);

  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0);
  for (int b = 0; b < histogram.num_buckets(); ++b) {
    EXPECT_EQ(histogram.bucket_count(b), 0) << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
}

TEST(MetricsRegistryTest, InstrumentsAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.counter("stage.iterations");
  Counter& b = registry.counter("stage.iterations");
  EXPECT_EQ(&a, &b);  // same instrument, reference survives re-lookup
  a.Increment(5);
  EXPECT_EQ(registry.counter_value("stage.iterations"), 5);
  EXPECT_EQ(registry.counter_value("never.registered"), 0);

  registry.gauge("pool.width").Set(4.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("pool.width"), 4.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("never.registered"), 0.0);

  // Histogram bounds are fixed at first registration; a second registration
  // with different bounds returns the original instrument unchanged.
  Histogram& h1 = registry.histogram("backoff", {1.0, 2.0});
  Histogram& h2 = registry.histogram("backoff", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.num_buckets(), 3);
}

TEST(MetricsRegistryTest, ResetAllZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  registry.gauge("g").Set(7.0);
  registry.histogram("h", {1.0}).Observe(0.5);
  counter.Increment(3);

  registry.ResetAll();

  EXPECT_EQ(counter.value(), 0);  // the old reference still works
  EXPECT_EQ(registry.counter_value("c"), 0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("g"), 0.0);
  counter.Increment();
  EXPECT_EQ(registry.counter_value("c"), 1);
}

TEST(MetricsRegistryTest, ToJsonIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("z.last").Increment(2);
  registry.counter("a.first").Increment(1);
  registry.gauge("mid").Set(1.5);
  registry.histogram("latency", {10.0, 100.0}).Observe(42.0);

  const std::string json = registry.ToJson();
  // Counters appear sorted by name.
  const size_t a_pos = json.find("\"a.first\"");
  const size_t z_pos = json.find("\"z.last\"");
  ASSERT_NE(a_pos, std::string::npos);
  ASSERT_NE(z_pos, std::string::npos);
  EXPECT_LT(a_pos, z_pos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry]() {
      Counter& counter = registry.counter("contended");
      Histogram& histogram = registry.histogram("latency", {1.0, 10.0});
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        histogram.Observe(i % 20);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.counter_value("contended"),
            static_cast<int64_t>(kThreads) * kPerThread);
  const Histogram& histogram = registry.histogram("latency", {});
  EXPECT_EQ(histogram.count(), static_cast<int64_t>(kThreads) * kPerThread);
  int64_t bucket_total = 0;
  for (int b = 0; b < histogram.num_buckets(); ++b) {
    bucket_total += histogram.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, histogram.count());
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  MetricsRegistry::Global().counter("util_metrics_test.global").Increment();
  EXPECT_GE(
      MetricsRegistry::Global().counter_value("util_metrics_test.global"), 1);
}

}  // namespace
}  // namespace activedp
