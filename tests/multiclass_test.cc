// Multiclass support: the paper's eight datasets are binary, but the
// pipeline's components (oracle, label matrix, Dawid–Skene, ConFusion,
// samplers, end model) are written for C classes. These tests run the whole
// loop on a 3-class synthetic text task.

#include <gtest/gtest.h>

#include <set>

#include "core/activedp.h"
#include "core/end_model.h"
#include "core/framework.h"
#include "data/synthetic_text.h"
#include "math/vector_ops.h"

namespace activedp {
namespace {

DataSplit ThreeClassSplit(uint64_t seed) {
  SyntheticTextConfig config;
  config.num_examples = 900;
  config.num_classes = 3;
  config.label_noise = 0.02;
  Rng rng(seed);
  const Dataset full = GenerateSyntheticText(config, rng);
  Rng split_rng(seed ^ 0xf0);
  return SplitDataset(full, 0.8, 0.1, split_rng);
}

TEST(MulticlassTest, GeneratorProducesThreeBalancedClasses) {
  const DataSplit split = ThreeClassSplit(3);
  EXPECT_EQ(split.train.meta().num_classes, 3);
  const std::vector<double> balance = split.train.ClassBalance();
  for (double b : balance) EXPECT_NEAR(b, 1.0 / 3.0, 0.08);
}

TEST(MulticlassTest, OracleReturnsLfsForAllClasses) {
  const DataSplit split = ThreeClassSplit(5);
  SimulatedUser user(split.train, {});
  std::set<int> classes_seen;
  for (int q = 0; q < 60; ++q) {
    std::optional<LfCandidate> response = user.CreateLf(q);
    if (!response.has_value()) continue;
    EXPECT_EQ(response->lf->label(), split.train.example(q).label);
    classes_seen.insert(response->lf->label());
  }
  EXPECT_EQ(classes_seen.size(), 3u);
}

TEST(MulticlassTest, FullPipelineWithDawidSkene) {
  const DataSplit split = ThreeClassSplit(7);
  FrameworkContext context = FrameworkContext::Build(split);
  ActiveDpOptions options;
  options.seed = 9;
  // The MeTaL-style models are binary-only; multiclass uses Dawid–Skene.
  options.label_model_type = LabelModelType::kDawidSkene;
  ActiveDp pipeline(context, options);
  for (int t = 0; t < 60; ++t) ASSERT_TRUE(pipeline.Step().ok());
  EXPECT_TRUE(pipeline.has_label_model());

  const std::vector<std::vector<double>> labels =
      pipeline.CurrentTrainingLabels();
  int covered = 0;
  for (const auto& soft : labels) {
    if (soft.empty()) continue;
    ++covered;
    ASSERT_EQ(soft.size(), 3u);
    EXPECT_NEAR(soft[0] + soft[1] + soft[2], 1.0, 1e-9);
  }
  EXPECT_GT(covered, split.train.size() / 4);
  const LabelQuality quality = MeasureLabelQuality(labels, split.train);
  EXPECT_GT(quality.accuracy, 0.55);  // well above the 1/3 chance level

  Result<LogisticRegression> end_model =
      TrainEndModel(context.train_features, labels, 3, context.feature_dim,
                    EndModelOptions{});
  ASSERT_TRUE(end_model.ok());
  EXPECT_GT(EvaluateAccuracy(*end_model, context.test_features,
                             context.test_labels),
            0.5);
}

TEST(MulticlassTest, MetalGracefullyDegradesToMajorityVote) {
  // With the (binary-only) MeTaL label model on 3 classes, every MeTaL fit
  // fails; the degradation cascade swaps in majority-vote aggregation (and
  // records it) rather than crashing or running label-model-free.
  const DataSplit split = ThreeClassSplit(11);
  FrameworkContext context = FrameworkContext::Build(split);
  ActiveDpOptions options;
  options.seed = 13;
  options.label_model_type = LabelModelType::kMetal;
  ActiveDp pipeline(context, options);
  for (int t = 0; t < 40; ++t) ASSERT_TRUE(pipeline.Step().ok());
  EXPECT_TRUE(pipeline.has_label_model());
  EXPECT_TRUE(pipeline.using_fallback_label_model());
  EXPECT_GT(pipeline.recovery().count("label_model"), 0);
  EXPECT_TRUE(pipeline.has_al_model());
  const LabelQuality quality =
      MeasureLabelQuality(pipeline.CurrentTrainingLabels(), split.train);
  EXPECT_GT(quality.accuracy, 0.5);
}

}  // namespace
}  // namespace activedp
