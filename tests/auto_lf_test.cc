#include "core/auto_lf.h"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic_tabular.h"
#include "data/synthetic_text.h"
#include "labelmodel/label_model.h"
#include "lf/lf_applier.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace activedp {
namespace {

struct SeedSet {
  std::vector<int> rows;
  std::vector<int> labels;
};

SeedSet DrawSeed(const Dataset& train, int k, uint64_t seed) {
  Rng rng(seed);
  SeedSet out;
  out.rows = rng.SampleWithoutReplacement(train.size(), k);
  for (int row : out.rows) out.labels.push_back(train.example(row).label);
  return out;
}

class AutoLfTest : public testing::Test {
 protected:
  void SetUp() override {
    SyntheticTextConfig config;
    config.num_examples = 800;
    config.label_noise = 0.0;
    Rng rng(3);
    train_ = GenerateSyntheticText(config, rng);
    space_ = BuildLfSpace(train_);
  }

  Dataset train_;
  std::unique_ptr<LfSpace> space_;
};

TEST_F(AutoLfTest, SynthesizesAccurateLfs) {
  const SeedSet seed = DrawSeed(train_, 160, 7);
  Result<std::vector<SynthesizedLf>> lfs =
      SynthesizeLfs(train_, *space_, seed.rows, seed.labels);
  ASSERT_TRUE(lfs.ok());
  EXPECT_GT(lfs->size(), 5u);
  const std::vector<int> truth = train_.Labels();
  // With only a seed to judge on, a few statistical flukes are unavoidable;
  // require that the large majority of accepted LFs generalize.
  int generalize = 0;
  for (const auto& synthesized : *lfs) {
    EXPECT_GE(synthesized.seed_accuracy, 0.6);
    const LfColumnStats stats =
        ComputeColumnStats(ApplyLf(*synthesized.lf, train_), truth);
    if (stats.accuracy > 0.6) ++generalize;
  }
  EXPECT_GE(generalize * 10, static_cast<int>(lfs->size()) * 7)
      << generalize << " of " << lfs->size() << " generalize";
}

TEST_F(AutoLfTest, NoDuplicateLfs) {
  const SeedSet seed = DrawSeed(train_, 160, 9);
  Result<std::vector<SynthesizedLf>> lfs =
      SynthesizeLfs(train_, *space_, seed.rows, seed.labels);
  ASSERT_TRUE(lfs.ok());
  std::set<std::string> keys;
  for (const auto& synthesized : *lfs) {
    EXPECT_TRUE(keys.insert(synthesized.lf->Key()).second);
  }
}

TEST_F(AutoLfTest, SynthesizedSetDrivesLabelModelAboveChance) {
  const SeedSet seed = DrawSeed(train_, 160, 11);
  Result<std::vector<SynthesizedLf>> lfs =
      SynthesizeLfs(train_, *space_, seed.rows, seed.labels);
  ASSERT_TRUE(lfs.ok());
  std::vector<LfPtr> set;
  for (const auto& synthesized : *lfs) set.push_back(synthesized.lf);
  const LabelMatrix matrix = ApplyLfs(set, train_);
  auto model = MakeLabelModel(LabelModelType::kMetal);
  ASSERT_TRUE(model->Fit(matrix, 2).ok());
  const double accuracy =
      Accuracy(model->PredictAll(matrix).value(), train_.Labels());
  EXPECT_GT(accuracy, 0.7);
  EXPECT_GT(matrix.OverallCoverage(), 0.2);
}

TEST_F(AutoLfTest, MaxLfsRespected) {
  const SeedSet seed = DrawSeed(train_, 80, 13);
  AutoLfOptions options;
  options.max_lfs = 5;
  Result<std::vector<SynthesizedLf>> lfs =
      SynthesizeLfs(train_, *space_, seed.rows, seed.labels, options);
  ASSERT_TRUE(lfs.ok());
  EXPECT_LE(lfs->size(), 5u);
}

TEST_F(AutoLfTest, WorksOnTabularData) {
  SyntheticTabularConfig config;
  config.num_examples = 600;
  Rng rng(17);
  const Dataset tabular = GenerateSyntheticTabular(config, rng);
  const auto space = BuildLfSpace(tabular);
  const SeedSet seed = DrawSeed(tabular, 80, 19);
  Result<std::vector<SynthesizedLf>> lfs =
      SynthesizeLfs(tabular, *space, seed.rows, seed.labels);
  ASSERT_TRUE(lfs.ok());
  EXPECT_GT(lfs->size(), 2u);
}

TEST_F(AutoLfTest, RejectsBadInput) {
  EXPECT_FALSE(SynthesizeLfs(train_, *space_, {}, {}).ok());
  EXPECT_FALSE(SynthesizeLfs(train_, *space_, {0, 1}, {0}).ok());
  EXPECT_FALSE(
      SynthesizeLfs(train_, *space_, {train_.size() + 5}, {0}).ok());
}

TEST_F(AutoLfTest, ImpossibleBarFailsCleanly) {
  const SeedSet seed = DrawSeed(train_, 40, 23);
  AutoLfOptions options;
  options.min_seed_accuracy = 1.01;
  options.wilson_z = 0.0;
  EXPECT_EQ(SynthesizeLfs(train_, *space_, seed.rows, seed.labels, options)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace activedp
