// The guarded background retrainer of the LearnGuard loop
// (online/retrainer.h): cycle outcomes, quarantine semantics, the
// strictly-better validation gate, lineage of published candidates, and the
// auto-rollback publish path. The expensive pipeline fixture is built once
// per suite (mirroring serve_test).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "online/event_log.h"
#include "online/learn_scenario.h"
#include "online/retrainer.h"
#include "serve/prediction_service.h"
#include "serve/snapshot_registry.h"
#include "util/fault.h"

namespace activedp {
namespace {

class RetrainerTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string dir = testing::TempDir() + "/retrainer_fixture";
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    Result<LearnChaosFixture> built = BuildLearnChaosFixture(
        dir, "youtube", 0.1, /*seed=*/7, /*base_steps=*/6, /*trace_size=*/48);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    fixture_ = new LearnChaosFixture(std::move(*built));
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }

  /// A fresh log + registry (base registered and active) + service per test.
  struct Harness {
    std::unique_ptr<EventLog> log;
    std::unique_ptr<SnapshotRegistry> registry;
    std::unique_ptr<PredictionService> service;
    int64_t base_id = -1;
    std::string dir;

    Retrainer::Config Config() const {
      Retrainer::Config config;
      config.log = log.get();
      config.registry = registry.get();
      config.service = service.get();
      config.features = &fixture_->features;
      config.holdout = &fixture_->holdout;
      config.holdout_labels = &fixture_->holdout_labels;
      config.rollout_trace = &fixture_->trace;
      return config;
    }
  };

  Harness MakeHarness(const std::string& name) {
    Harness h;
    h.dir = testing::TempDir() + "/retrainer_" + name;
    std::error_code ec;
    std::filesystem::remove_all(h.dir, ec);
    EventLogOptions log_options;
    log_options.max_records_per_segment = 32;
    Result<std::unique_ptr<EventLog>> log =
        EventLog::Open(h.dir + "/log", log_options);
    EXPECT_TRUE(log.ok());
    h.log = std::move(*log);
    Result<SnapshotRegistry> registry =
        SnapshotRegistry::Open(h.dir + "/registry.manifest");
    EXPECT_TRUE(registry.ok());
    h.registry = std::make_unique<SnapshotRegistry>(std::move(*registry));
    const Result<int64_t> base =
        h.registry->Register(fixture_->snapshot_path, -1, "test base");
    EXPECT_TRUE(base.ok());
    h.base_id = *base;
    EXPECT_TRUE(h.registry->Activate(h.base_id).ok());
    PredictionServiceOptions service_options;
    service_options.max_batch_size = 8;
    service_options.max_batch_delay_ms = 0.2;
    h.service = std::make_unique<PredictionService>(service_options);
    h.service->LoadSnapshot(fixture_->snapshot);
    return h;
  }

  RetrainerOptions MakeOptions(const Harness& h) {
    RetrainerOptions options;
    options.min_training_rows = 4;
    options.lr.epochs = 25;
    options.lr.seed = 13;
    options.min_accuracy_gain = -1.0;  // publishable by default in tests
    options.retry.max_attempts = 2;
    options.rollout.canary_fraction = 0.3;
    options.rollout.window =
        std::min<int>(64, static_cast<int>(fixture_->trace.size()));
    options.rollout.min_canary_samples = 4;
    options.rollout.seed = 0x1ea4;
    options.snapshot_dir = h.dir + "/candidates";
    return options;
  }

  void FeedExactLabels(Harness& h, int count) {
    for (int i = 0; i < count; ++i) {
      FeedbackEvent event;
      event.type = FeedbackType::kExactLabel;
      event.row = i;
      event.label = fixture_->corpus_labels[i];
      ASSERT_TRUE(h.log->Append(event).ok());
    }
  }

  static LearnChaosFixture* fixture_;
};

LearnChaosFixture* RetrainerTest::fixture_ = nullptr;

TEST_F(RetrainerTest, EmptyLogIsNoData) {
  Harness h = MakeHarness("nodata");
  Retrainer retrainer(h.Config(), MakeOptions(h));
  const Result<RetrainReport> report = retrainer.RunOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, RetrainOutcome::kNoData);
  EXPECT_EQ(report->events_seen, 0);
  EXPECT_EQ(h.service->snapshot(), fixture_->snapshot);
}

TEST_F(RetrainerTest, PublishesWithLineageAndSwapsTheService) {
  Harness h = MakeHarness("publish");
  FeedExactLabels(h, 150);
  Retrainer retrainer(h.Config(), MakeOptions(h));
  const Result<RetrainReport> report = retrainer.RunOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->outcome, RetrainOutcome::kPublished) << report->detail;
  EXPECT_EQ(report->events_seen, 150);
  EXPECT_EQ(report->training_rows, 150);
  EXPECT_GT(report->segments_consumed, 0);

  // The candidate is a registered child of the base, now active...
  ASSERT_GE(report->candidate_id, 0);
  const Result<SnapshotRecord> record = h.registry->Get(report->candidate_id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->parent_id, h.base_id);
  EXPECT_EQ(record->status, SnapshotStatus::kActive);
  EXPECT_EQ(h.registry->active_id(), report->candidate_id);
  // ...and the service was hot-swapped onto it.
  EXPECT_NE(h.service->snapshot(), fixture_->snapshot);

  // The consumed segments do not retrain again: the next cycle is no-data.
  const Result<RetrainReport> again = retrainer.RunOnce();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->outcome, RetrainOutcome::kNoData);
  EXPECT_EQ(retrainer.stats().published, 1);
}

TEST_F(RetrainerTest, ImpossibleGainGateRejectsButCommitsTheFeedback) {
  Harness h = MakeHarness("rejected");
  FeedExactLabels(h, 100);
  RetrainerOptions options = MakeOptions(h);
  options.min_accuracy_gain = 1.0;  // no candidate can clear +100%
  Retrainer retrainer(h.Config(), options);
  const Result<RetrainReport> report = retrainer.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, RetrainOutcome::kRejected);
  // Rejection is a model verdict, not a data problem: nothing quarantined,
  // the service untouched, and the segments consumed (not replayed forever).
  EXPECT_EQ(report->segments_quarantined, 0);
  EXPECT_EQ(h.service->snapshot(), fixture_->snapshot);
  EXPECT_EQ(h.registry->active_id(), h.base_id);
  const Result<RetrainReport> again = retrainer.RunOnce();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->outcome, RetrainOutcome::kNoData);
}

TEST_F(RetrainerTest, LfVotesFoldInAndExactLabelsWin) {
  Harness h = MakeHarness("votes");
  // LF votes for rows 0..2, exact labels for rows 1 and 3: the training set
  // is the union (4 rows), with the exact label overriding row 1's vote.
  for (int row : {0, 1, 2}) {
    FeedbackEvent vote;
    vote.type = FeedbackType::kLfVote;
    vote.row = row;
    vote.label = fixture_->corpus_labels[row];
    vote.lf_id = 2;
    ASSERT_TRUE(h.log->Append(vote).ok());
  }
  for (int row : {1, 3}) {
    FeedbackEvent exact;
    exact.type = FeedbackType::kExactLabel;
    exact.row = row;
    exact.label = fixture_->corpus_labels[row];
    ASSERT_TRUE(h.log->Append(exact).ok());
  }
  RetrainerOptions options = MakeOptions(h);
  options.min_accuracy_gain = 1.0;  // force the rejected path; we only care
                                    // about the folded training set
  Retrainer retrainer(h.Config(), options);
  const Result<RetrainReport> report = retrainer.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, RetrainOutcome::kRejected);
  EXPECT_EQ(report->events_seen, 5);
  EXPECT_EQ(report->training_rows, 4);
}

TEST_F(RetrainerTest, UnreplayableSegmentIsQuarantinedAloneAndTheRestTrains) {
  Harness h = MakeHarness("quarantine_one");
  FeedExactLabels(h, 64);  // two 32-record segments
  ASSERT_TRUE(h.log->Rotate().ok());
  const std::vector<std::string> segments = h.log->SealedSegments();
  ASSERT_EQ(segments.size(), 2u);
  // Corrupt the second segment on disk: a mid-record bit flip.
  {
    std::ifstream in(segments[1], std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    bytes[bytes.size() / 2] ^= 0x04;
    std::ofstream out(segments[1], std::ios::trunc | std::ios::binary);
    out << bytes;
  }
  Retrainer retrainer(h.Config(), MakeOptions(h));
  const Result<RetrainReport> report = retrainer.RunOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The bad segment is sidelined; the 32 good rows still retrain + publish.
  ASSERT_EQ(report->outcome, RetrainOutcome::kPublished) << report->detail;
  EXPECT_EQ(report->segments_quarantined, 1);
  EXPECT_EQ(report->training_rows, 32);
  ASSERT_EQ(retrainer.quarantine().size(), 1u);
  EXPECT_EQ(retrainer.quarantine()[0].segment, segments[1]);
  // A quarantined segment is never retried.
  const Result<RetrainReport> again = retrainer.RunOnce();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->outcome, RetrainOutcome::kNoData);
}

TEST_F(RetrainerTest, FitFaultIsAbsorbedAndQuarantined) {
  Harness h = MakeHarness("fit_fault");
  FeedExactLabels(h, 64);
  Retrainer retrainer(h.Config(), MakeOptions(h));
  {
    FaultScope scope("retrain.fit", FaultKind::kError);
    const Result<RetrainReport> report = retrainer.RunOnce();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->outcome, RetrainOutcome::kFitFailed);
    EXPECT_GT(report->segments_quarantined, 0);
    // Both retry attempts hit the armed site before the cycle gave up.
    EXPECT_EQ(scope.fire_count(), 2);
  }
  EXPECT_EQ(h.service->snapshot(), fixture_->snapshot);
  EXPECT_EQ(h.registry->active_id(), h.base_id);
  EXPECT_EQ(retrainer.stats().fit_failures, 1);
}

TEST_F(RetrainerTest, NanFitIsRejectedByTheFiniteGuard) {
  Harness h = MakeHarness("fit_nan");
  FeedExactLabels(h, 64);
  Retrainer retrainer(h.Config(), MakeOptions(h));
  FaultScope scope("retrain.fit", FaultKind::kNan);
  const Result<RetrainReport> report = retrainer.RunOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The injected NaN poisons the warm start; LogisticRegression's own
  // finite guard is what rejects the diverged fit.
  EXPECT_EQ(report->outcome, RetrainOutcome::kFitFailed);
  EXPECT_EQ(h.service->snapshot(), fixture_->snapshot);
}

TEST_F(RetrainerTest, ExpiredFitBudgetFailsTheCycleNotTheService) {
  Harness h = MakeHarness("fit_budget");
  FeedExactLabels(h, 64);
  RetrainerOptions options = MakeOptions(h);
  options.fit_budget_seconds = 0.0;  // the watchdog/deadline kill every fit
  Retrainer retrainer(h.Config(), options);
  const Result<RetrainReport> report = retrainer.RunOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, RetrainOutcome::kFitFailed);
  EXPECT_EQ(h.service->snapshot(), fixture_->snapshot);
  EXPECT_EQ(retrainer.stats().fit_failures, 1);
}

TEST_F(RetrainerTest, ValidationFaultQuarantinesTheCandidate) {
  Harness h = MakeHarness("validate_fault");
  FeedExactLabels(h, 64);
  Retrainer retrainer(h.Config(), MakeOptions(h));
  FaultScope scope("retrain.validate", FaultKind::kError);
  const Result<RetrainReport> report = retrainer.RunOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, RetrainOutcome::kQuarantined);
  EXPECT_GT(report->segments_quarantined, 0);
  EXPECT_EQ(h.service->snapshot(), fixture_->snapshot);
  EXPECT_EQ(h.registry->active_id(), h.base_id);
}

TEST_F(RetrainerTest, CanaryFailureAutoRollsBackAndQuarantines) {
  Harness h = MakeHarness("rollback");
  FeedExactLabels(h, 150);
  Retrainer retrainer(h.Config(), MakeOptions(h));
  {
    // The candidate reaches the staged rollout, whose canary arm fails —
    // the rollout gate must roll back, the retrainer must quarantine.
    FaultScope scope("rollout.canary", FaultKind::kError);
    const Result<RetrainReport> report = retrainer.RunOnce();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->outcome, RetrainOutcome::kRolledBack) << report->detail;
    EXPECT_GT(report->segments_quarantined, 0);
    // The rolled-back candidate is condemned in the registry.
    ASSERT_GE(report->candidate_id, 0);
    const Result<SnapshotRecord> record =
        h.registry->Get(report->candidate_id);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record->status, SnapshotStatus::kFailed);
  }
  // Serving never left the base snapshot.
  EXPECT_EQ(h.service->snapshot(), fixture_->snapshot);
  EXPECT_EQ(h.registry->active_id(), h.base_id);
  EXPECT_EQ(retrainer.stats().rolled_back, 1);

  const Result<ServedPrediction> served =
      h.service->Predict(fixture_->trace[0]);
  ASSERT_TRUE(served.ok());
}

TEST_F(RetrainerTest, PoisonedLogSurfacesAsInfrastructureError) {
  Harness h = MakeHarness("poisoned");
  FeedExactLabels(h, 16);
  {
    FaultSpec spec;
    spec.kind = FaultKind::kTruncateWrite;
    FaultScope scope("eventlog.append", spec);
    FeedbackEvent event;
    event.type = FeedbackType::kExactLabel;
    event.row = 0;
    event.label = fixture_->corpus_labels[0];
    EXPECT_TRUE(h.log->Append(event).ok());  // the simulated crash
  }
  Retrainer retrainer(h.Config(), MakeOptions(h));
  // The loop cannot rotate a poisoned handle: this is not a handled report
  // but an infrastructure error the owner must react to (reopen the log).
  const Result<RetrainReport> report = retrainer.RunOnce();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(h.service->snapshot(), fixture_->snapshot);
}

TEST_F(RetrainerTest, BackgroundLoopPublishesOnItsOwnThread) {
  Harness h = MakeHarness("background");
  FeedExactLabels(h, 150);
  RetrainerOptions options = MakeOptions(h);
  options.poll_interval_seconds = 0.005;
  Retrainer retrainer(h.Config(), options);
  retrainer.Start();
  for (int i = 0; i < 2000 && retrainer.stats().published == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  retrainer.Stop();
  EXPECT_EQ(retrainer.stats().published, 1);
  EXPECT_NE(h.service->snapshot(), fixture_->snapshot);
  EXPECT_EQ(retrainer.stats().loop_errors, 0);
}

}  // namespace
}  // namespace activedp
