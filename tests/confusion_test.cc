#include "core/confusion.h"

#include <gtest/gtest.h>

#include "math/vector_ops.h"
#include "util/rng.h"

namespace activedp {
namespace {

TEST(ConFusionAggregateTest, EquationOneCases) {
  // Row 0: confident AL -> AL wins.
  // Row 1: unconfident AL, LM active -> LM wins.
  // Row 2: unconfident AL, LM inactive -> rejected.
  // Row 3: no AL prediction, LM active -> LM.
  // Row 4: no AL prediction, LM inactive -> rejected.
  const std::vector<std::vector<double>> al = {
      {0.1, 0.9}, {0.55, 0.45}, {0.55, 0.45}, {}, {}};
  const std::vector<std::vector<double>> lm = {
      {0.8, 0.2}, {0.2, 0.8}, {0.5, 0.5}, {0.9, 0.1}, {0.5, 0.5}};
  const std::vector<bool> active = {true, true, false, true, false};
  const AggregatedLabels out = ConFusion::Aggregate(al, lm, active, 0.7);
  EXPECT_EQ(out.source[0], LabelSource::kActiveLearning);
  EXPECT_EQ(out.hard[0], 1);
  EXPECT_EQ(out.source[1], LabelSource::kLabelModel);
  EXPECT_EQ(out.hard[1], 1);
  EXPECT_EQ(out.source[2], LabelSource::kRejected);
  EXPECT_EQ(out.hard[2], kAbstain);
  EXPECT_TRUE(out.soft[2].empty());
  EXPECT_EQ(out.source[3], LabelSource::kLabelModel);
  EXPECT_EQ(out.source[4], LabelSource::kRejected);
  EXPECT_DOUBLE_EQ(out.coverage, 0.6);
}

TEST(ConFusionAggregateTest, ThresholdZeroIsPureActiveLearning) {
  // τ = 0 makes ActiveDP "fall back to active learning" (§3.2) on every row
  // with an AL prediction.
  const std::vector<std::vector<double>> al = {{0.5, 0.5}, {0.6, 0.4}};
  const std::vector<std::vector<double>> lm = {{0.9, 0.1}, {0.9, 0.1}};
  const std::vector<bool> active = {true, true};
  const AggregatedLabels out = ConFusion::Aggregate(al, lm, active, 0.0);
  EXPECT_EQ(out.source[0], LabelSource::kActiveLearning);
  EXPECT_EQ(out.source[1], LabelSource::kActiveLearning);
}

TEST(ConFusionAggregateTest, ThresholdAboveOneIsPureLabelModel) {
  const std::vector<std::vector<double>> al = {{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<std::vector<double>> lm = {{0.9, 0.1}, {0.9, 0.1}};
  const std::vector<bool> active = {true, false};
  const AggregatedLabels out = ConFusion::Aggregate(al, lm, active, 1.01);
  EXPECT_EQ(out.source[0], LabelSource::kLabelModel);
  EXPECT_EQ(out.source[1], LabelSource::kRejected);
}

TEST(ConFusionAggregateTest, CoverageMonotoneDecreasingInThreshold) {
  Rng rng(3);
  const int n = 200;
  std::vector<std::vector<double>> al(n), lm(n);
  std::vector<bool> active(n);
  for (int i = 0; i < n; ++i) {
    const double p = rng.Uniform(0.5, 1.0);
    al[i] = {p, 1.0 - p};
    lm[i] = {0.5, 0.5};
    active[i] = rng.Bernoulli(0.5);
  }
  double previous = 2.0;
  for (double tau : {0.0, 0.6, 0.7, 0.8, 0.9, 1.01}) {
    const AggregatedLabels out = ConFusion::Aggregate(al, lm, active, tau);
    EXPECT_LE(out.coverage, previous + 1e-12);
    previous = out.coverage;
  }
}

/// Randomized consistency check: the tuner's chosen threshold must achieve
/// the maximum validation accuracy among all candidate thresholds when
/// re-evaluated with Aggregate.
class TuneThresholdPropertyTest : public testing::TestWithParam<int> {};

TEST_P(TuneThresholdPropertyTest, ChosenThresholdIsArgmax) {
  Rng rng(GetParam());
  const int n = 150;
  std::vector<std::vector<double>> al(n), lm(n);
  std::vector<bool> active(n);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
    if (rng.Bernoulli(0.9)) {
      const double p = rng.Uniform(0.5, 1.0);
      const bool correct = rng.Bernoulli(p);  // calibrated-ish AL
      const int pred = correct ? labels[i] : 1 - labels[i];
      al[i] = pred == 1 ? std::vector<double>{1.0 - p, p}
                        : std::vector<double>{p, 1.0 - p};
    }
    active[i] = rng.Bernoulli(0.7);
    const bool lm_correct = rng.Bernoulli(0.8);
    const int lm_pred = lm_correct ? labels[i] : 1 - labels[i];
    lm[i] = lm_pred == 1 ? std::vector<double>{0.3, 0.7}
                         : std::vector<double>{0.7, 0.3};
  }
  const double tau = ConFusion::TuneThreshold(al, lm, active, labels);

  auto accuracy_at = [&](double threshold) {
    const AggregatedLabels out =
        ConFusion::Aggregate(al, lm, active, threshold);
    int covered = 0, correct = 0;
    for (int i = 0; i < n; ++i) {
      if (out.hard[i] == kAbstain) continue;
      ++covered;
      correct += out.hard[i] == labels[i];
    }
    return covered == 0 ? 0.0 : static_cast<double>(correct) / covered;
  };

  const double chosen_accuracy = accuracy_at(tau);
  // Compare against a dense grid of alternatives.
  for (double alt = 0.0; alt <= 1.0; alt += 0.01) {
    EXPECT_GE(chosen_accuracy + 1e-9, accuracy_at(alt))
        << "tau=" << tau << " beaten by " << alt;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TuneThresholdPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TuneThresholdTest, PicksHighThresholdWhenAlIsBad) {
  // AL always wrong, LM always right: tuning must push AL out entirely.
  const int n = 60;
  std::vector<std::vector<double>> al(n), lm(n);
  std::vector<bool> active(n, true);
  std::vector<int> labels(n, 1);
  for (int i = 0; i < n; ++i) {
    al[i] = {0.8, 0.2};  // predicts 0, confidence 0.8 -> wrong
    lm[i] = {0.1, 0.9};  // predicts 1 -> right
  }
  const double tau = ConFusion::TuneThreshold(al, lm, active, labels);
  EXPECT_GT(tau, 0.8);
  const AggregatedLabels out = ConFusion::Aggregate(al, lm, active, tau);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out.source[i], LabelSource::kLabelModel);
  }
}

TEST(TuneThresholdTest, PicksLowThresholdWhenAlIsPerfect) {
  const int n = 60;
  std::vector<std::vector<double>> al(n), lm(n);
  std::vector<bool> active(n, false);  // LM covers nothing
  std::vector<int> labels(n, 0);
  for (int i = 0; i < n; ++i) {
    al[i] = {0.7, 0.3};
    lm[i] = {0.5, 0.5};
  }
  const double tau = ConFusion::TuneThreshold(al, lm, active, labels);
  // AL perfect: any τ <= 0.7 gives accuracy 1 with full coverage; the
  // coverage tie-break keeps AL in play.
  const AggregatedLabels out = ConFusion::Aggregate(al, lm, active, tau);
  EXPECT_DOUBLE_EQ(out.coverage, 1.0);
}

TEST(TuneThresholdTest, CoverageObjectiveSelectsTauZero) {
  // §3.2: maximizing coverage degenerates to τ = 0 whenever the AL model
  // predicts everywhere.
  Rng rng(9);
  const int n = 80;
  std::vector<std::vector<double>> al(n), lm(n);
  std::vector<bool> active(n);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    const double p = rng.Uniform(0.5, 1.0);
    al[i] = {p, 1.0 - p};
    lm[i] = {0.6, 0.4};
    active[i] = rng.Bernoulli(0.4);
    labels[i] = rng.Bernoulli(0.5);
  }
  const double tau = ConFusion::TuneThreshold(
      al, lm, active, labels, ConFusionObjective::kCoverage);
  EXPECT_DOUBLE_EQ(tau, 0.0);
}

}  // namespace
}  // namespace activedp
