// Durability semantics of the LearnGuard feedback log (online/event_log.h):
// append-only checksummed records in rotated segments, fsync'd before the
// append returns. The contracts under test: a torn tail (a crash mid-append)
// is recovered by truncation on reopen, a mid-record bit flip is *rejected*
// (never truncated away), rotation never changes what a replay yields, and a
// poisoned handle refuses work until a fresh Open().

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "online/event_log.h"
#include "util/fault.h"

namespace activedp {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

FeedbackEvent MakeEvent(FeedbackType type, int64_t row, int label,
                        int lf_id = -1) {
  FeedbackEvent event;
  event.type = type;
  event.row = row;
  event.label = label;
  event.lf_id = lf_id;
  return event;
}

Result<std::unique_ptr<EventLog>> OpenLog(const std::string& dir,
                                          int max_records = 1024) {
  EventLogOptions options;
  options.max_records_per_segment = max_records;
  return EventLog::Open(dir, options);
}

TEST(EventLogTest, AppendRotateReplayRoundTrip) {
  const std::string dir = FreshDir("event_log_roundtrip");
  auto log = OpenLog(dir);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->next_seq(), 0u);

  ASSERT_TRUE((*log)->Append(MakeEvent(FeedbackType::kPrediction, 3, 1)).ok());
  ASSERT_TRUE((*log)->Append(MakeEvent(FeedbackType::kExactLabel, 7, 0)).ok());
  ASSERT_TRUE(
      (*log)->Append(MakeEvent(FeedbackType::kLfVote, 11, 1, 4)).ok());
  // The open segment is not replayable until sealed.
  EXPECT_TRUE((*log)->SealedSegments().empty());
  ASSERT_TRUE((*log)->Rotate().ok());
  ASSERT_EQ((*log)->SealedSegments().size(), 1u);

  const Result<std::vector<FeedbackEvent>> events = (*log)->ReplayAll();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ((*events)[0].seq, 0u);
  EXPECT_EQ((*events)[0].type, FeedbackType::kPrediction);
  EXPECT_EQ((*events)[0].row, 3);
  EXPECT_EQ((*events)[0].label, 1);
  EXPECT_EQ((*events)[2].seq, 2u);
  EXPECT_EQ((*events)[2].type, FeedbackType::kLfVote);
  EXPECT_EQ((*events)[2].lf_id, 4);
  EXPECT_EQ((*log)->next_seq(), 3u);
}

TEST(EventLogTest, ReopenSealsTheOpenSegmentAndContinuesSequence) {
  const std::string dir = FreshDir("event_log_reopen");
  {
    auto log = OpenLog(dir);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          (*log)->Append(MakeEvent(FeedbackType::kExactLabel, i, 1)).ok());
    }
    // Destroyed with an open, un-sealed segment — like a process exit.
  }
  auto reopened = OpenLog(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->next_seq(), 5u);
  ASSERT_EQ((*reopened)->SealedSegments().size(), 1u);
  ASSERT_TRUE(
      (*reopened)->Append(MakeEvent(FeedbackType::kExactLabel, 9, 0)).ok());
  ASSERT_TRUE((*reopened)->Rotate().ok());
  const Result<std::vector<FeedbackEvent>> events = (*reopened)->ReplayAll();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 6u);
  EXPECT_EQ(events->back().seq, 5u);
}

TEST(EventLogTest, TornTailIsTruncatedOnReopen) {
  const std::string dir = FreshDir("event_log_torn_tail");
  std::string segment;
  {
    auto log = OpenLog(dir);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*log)->Append(MakeEvent(FeedbackType::kExactLabel, i, 1)).ok());
    }
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    segment = entry.path().string();
  }
  ASSERT_FALSE(segment.empty());
  {
    // A crash mid-append leaves a final record without its newline.
    std::ofstream out(segment, std::ios::app | std::ios::binary);
    out << "evt 3 1 99 1 -1 #crc64 deadbeef";  // torn: no trailing '\n'
  }
  // Strict replay rejects the torn tail...
  const Result<SegmentReplay> strict =
      EventLog::ReplaySegment(segment, /*allow_torn_tail=*/false);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  // ...while Open() recovers: the tail is physically truncated, the three
  // durable records survive, and the sequence continues where it left off.
  auto reopened = OpenLog(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->next_seq(), 3u);
  const Result<std::vector<FeedbackEvent>> events = (*reopened)->ReplayAll();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 3u);
  const Result<SegmentReplay> after =
      EventLog::ReplaySegment(segment, /*allow_torn_tail=*/false);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->truncated_records, 0);
}

TEST(EventLogTest, MidRecordBitFlipIsRejectedNotTruncated) {
  const std::string dir = FreshDir("event_log_bit_flip");
  auto log = OpenLog(dir);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        (*log)->Append(MakeEvent(FeedbackType::kExactLabel, i, 1)).ok());
  }
  ASSERT_TRUE((*log)->Rotate().ok());
  const std::string segment = (*log)->SealedSegments()[0];

  std::string bytes;
  {
    std::ifstream in(segment, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  bytes[bytes.size() / 2] ^= 0x04;  // a complete record's byte, not the tail
  {
    std::ofstream out(segment, std::ios::trunc | std::ios::binary);
    out << bytes;
  }

  // Corruption in the middle of the log is data loss the checksum must
  // surface — torn-tail recovery must NOT paper over it.
  const Result<SegmentReplay> strict =
      EventLog::ReplaySegment(segment, /*allow_torn_tail=*/false);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  const Result<SegmentReplay> lenient =
      EventLog::ReplaySegment(segment, /*allow_torn_tail=*/true);
  ASSERT_FALSE(lenient.ok());
  log->reset();
  auto reopened = OpenLog(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(EventLogTest, TornTailOnANonLastSegmentIsRejected) {
  const std::string dir = FreshDir("event_log_torn_middle");
  {
    auto log = OpenLog(dir, /*max_records=*/2);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          (*log)->Append(MakeEvent(FeedbackType::kExactLabel, i, 1)).ok());
    }
    ASSERT_EQ((*log)->SealedSegments().size(), 2u);
    // Drop the first (sealed, non-last) segment's trailing newline: a torn
    // tail there cannot be a crash artifact — later segments were written
    // after it — so Open() must refuse rather than silently drop records.
    const std::string first = (*log)->SealedSegments()[0];
    std::filesystem::resize_file(first,
                                 std::filesystem::file_size(first) - 1);
  }
  auto reopened = OpenLog(dir, /*max_records=*/2);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(EventLogTest, MissingSegmentIsASequenceGap) {
  const std::string dir = FreshDir("event_log_gap");
  {
    auto log = OpenLog(dir, /*max_records=*/2);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          (*log)->Append(MakeEvent(FeedbackType::kExactLabel, i, 1)).ok());
    }
    ASSERT_EQ((*log)->SealedSegments().size(), 3u);
    std::filesystem::remove((*log)->SealedSegments()[1]);
  }
  auto reopened = OpenLog(dir, /*max_records=*/2);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(EventLogTest, RotationNeverChangesTheReplay) {
  // The same events through small segments and through one big segment must
  // replay to the same digest — rotation is invisible to consumers.
  const std::string small_dir = FreshDir("event_log_rot_small");
  const std::string big_dir = FreshDir("event_log_rot_big");
  auto small = OpenLog(small_dir, /*max_records=*/3);
  auto big = OpenLog(big_dir, /*max_records=*/1024);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  for (int i = 0; i < 11; ++i) {
    const FeedbackEvent event =
        MakeEvent(i % 2 == 0 ? FeedbackType::kExactLabel
                             : FeedbackType::kLfVote,
                  i * 3, i % 4, i % 5);
    ASSERT_TRUE((*small)->Append(event).ok());
    ASSERT_TRUE((*big)->Append(event).ok());
  }
  ASSERT_TRUE((*small)->Rotate().ok());
  ASSERT_TRUE((*big)->Rotate().ok());
  EXPECT_GT((*small)->SealedSegments().size(), 1u);

  const Result<std::vector<FeedbackEvent>> from_small = (*small)->ReplayAll();
  const Result<std::vector<FeedbackEvent>> from_big = (*big)->ReplayAll();
  ASSERT_TRUE(from_small.ok());
  ASSERT_TRUE(from_big.ok());
  EXPECT_EQ(EventLog::ReplayDigest(*from_small),
            EventLog::ReplayDigest(*from_big));

  // ...and the digest survives a close + reopen of the rotated log.
  small->reset();
  auto reopened = OpenLog(small_dir, /*max_records=*/3);
  ASSERT_TRUE(reopened.ok());
  const Result<std::vector<FeedbackEvent>> after = (*reopened)->ReplayAll();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(EventLog::ReplayDigest(*after), EventLog::ReplayDigest(*from_big));
}

TEST(EventLogTest, InjectedAppendErrorIsCleanAndLeavesNoGap) {
  const std::string dir = FreshDir("event_log_fault_error");
  auto log = OpenLog(dir);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->Append(MakeEvent(FeedbackType::kExactLabel, 0, 1)).ok());
  {
    FaultScope scope("eventlog.append", FaultKind::kError);
    const Result<uint64_t> rejected =
        (*log)->Append(MakeEvent(FeedbackType::kExactLabel, 1, 1));
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kInternal);
    EXPECT_EQ(scope.fire_count(), 1);
  }
  // A failed append consumed nothing: the next one gets the next seq.
  const Result<uint64_t> seq =
      (*log)->Append(MakeEvent(FeedbackType::kExactLabel, 2, 0));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 1u);
  ASSERT_TRUE((*log)->Rotate().ok());
  const Result<std::vector<FeedbackEvent>> events = (*log)->ReplayAll();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
}

TEST(EventLogTest, TornAppendPoisonsTheHandleUntilReopened) {
  const std::string dir = FreshDir("event_log_fault_torn");
  auto log = OpenLog(dir);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        (*log)->Append(MakeEvent(FeedbackType::kExactLabel, i, 1)).ok());
  }
  {
    FaultSpec spec;
    spec.kind = FaultKind::kTruncateWrite;
    FaultScope scope("eventlog.append", spec);
    // The torn append itself reports success — a killed process reports
    // nothing, and the caller cannot tell.
    EXPECT_TRUE(
        (*log)->Append(MakeEvent(FeedbackType::kExactLabel, 3, 1)).ok());
    EXPECT_EQ(scope.fire_count(), 1);
  }
  // But the handle knows it is no longer trustworthy.
  const Result<uint64_t> after =
      (*log)->Append(MakeEvent(FeedbackType::kExactLabel, 4, 1));
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ((*log)->Rotate().code(), StatusCode::kUnavailable);

  // Recovery is a fresh Open(): the torn record is gone, the three durable
  // ones survive, and appends resume.
  log->reset();
  auto reopened = OpenLog(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->next_seq(), 3u);
  ASSERT_TRUE(
      (*reopened)->Append(MakeEvent(FeedbackType::kExactLabel, 5, 0)).ok());
  ASSERT_TRUE((*reopened)->Rotate().ok());
  const Result<std::vector<FeedbackEvent>> events = (*reopened)->ReplayAll();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 4u);
  EXPECT_EQ(events->back().seq, 3u);
  EXPECT_EQ(events->back().row, 5);
}

TEST(EventLogTest, InjectedReplayCorruptionIsCaughtByTheChecksum) {
  const std::string dir = FreshDir("event_log_fault_corrupt");
  auto log = OpenLog(dir);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        (*log)->Append(MakeEvent(FeedbackType::kExactLabel, i, 1)).ok());
  }
  ASSERT_TRUE((*log)->Rotate().ok());
  const std::string segment = (*log)->SealedSegments()[0];
  {
    FaultScope scope("eventlog.replay", FaultKind::kCorrupt);
    const Result<SegmentReplay> replay =
        EventLog::ReplaySegment(segment, /*allow_torn_tail=*/false);
    ASSERT_FALSE(replay.ok());
    EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(scope.fire_count(), 1);
  }
  // The bytes on disk were never touched: a clean replay still works.
  const Result<SegmentReplay> clean =
      EventLog::ReplaySegment(segment, /*allow_torn_tail=*/false);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->events.size(), 8u);
}

}  // namespace
}  // namespace activedp
