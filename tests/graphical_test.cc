#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graphical/graphical_lasso.h"
#include "graphical/lasso.h"
#include "graphical/markov_blanket.h"
#include "math/linalg.h"
#include "math/stats.h"
#include "util/rng.h"

namespace activedp {
namespace {

TEST(SoftThresholdTest, ClosedForm) {
  EXPECT_DOUBLE_EQ(SoftThreshold(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-3.0, 1.0), -2.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-0.5, 1.0), 0.0);
}

TEST(LassoTest, ZeroPenaltyRecoversLeastSquares) {
  // y = 2 x0 - x1 exactly; lambda 0 should recover the coefficients.
  Rng rng(3);
  const int n = 200;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    y[i] = 2.0 * x(i, 0) - x(i, 1);
  }
  LassoOptions options;
  options.lambda = 0.0;
  Result<std::vector<double>> beta = LassoRegression(x, y, options);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 2.0, 1e-4);
  EXPECT_NEAR((*beta)[1], -1.0, 1e-4);
}

TEST(LassoTest, PenaltyShrinksAndSparsifies) {
  Rng rng(5);
  const int n = 300;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 3; ++j) x(i, j) = rng.Normal();
    // x2 is irrelevant.
    y[i] = 1.5 * x(i, 0) + 0.8 * x(i, 1) + rng.Normal(0.0, 0.1);
  }
  LassoOptions options;
  options.lambda = 0.3;
  Result<std::vector<double>> beta = LassoRegression(x, y, options);
  ASSERT_TRUE(beta.ok());
  EXPECT_DOUBLE_EQ((*beta)[2], 0.0);  // irrelevant feature zeroed
  EXPECT_GT((*beta)[0], 0.5);
  EXPECT_LT((*beta)[0], 1.5);  // shrunk
}

TEST(LassoTest, LargePenaltyZeroesEverything) {
  Rng rng(7);
  Matrix x(50, 2);
  std::vector<double> y(50);
  for (int i = 0; i < 50; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    y[i] = x(i, 0);
  }
  LassoOptions options;
  options.lambda = 100.0;
  Result<std::vector<double>> beta = LassoRegression(x, y, options);
  ASSERT_TRUE(beta.ok());
  EXPECT_DOUBLE_EQ((*beta)[0], 0.0);
  EXPECT_DOUBLE_EQ((*beta)[1], 0.0);
}

TEST(LassoQuadraticTest, SolvesUnpenalizedQuadratic) {
  // min 1/2 b'Wb - s'b with W = I has solution b = s.
  const Matrix w = Matrix::Identity(3);
  const std::vector<double> s = {1.0, -2.0, 0.5};
  const std::vector<double> beta = LassoQuadratic(w, s, 0.0, 500, 1e-10);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(beta[i], s[i], 1e-8);
}

/// Generates samples from a Gaussian with a known sparse precision matrix
/// (tridiagonal chain: 0-1-2-3-4) and returns the sample covariance.
Matrix ChainCovariance(int n, int p, Rng& rng, Matrix* precision_out) {
  Matrix precision(p, p);
  for (int i = 0; i < p; ++i) precision(i, i) = 1.0;
  for (int i = 0; i + 1 < p; ++i) {
    precision(i, i + 1) = -0.4;
    precision(i + 1, i) = -0.4;
  }
  if (precision_out != nullptr) *precision_out = precision;
  // Sample via x = L^{-T} z where precision = L L^T.
  const Matrix l = *Cholesky(precision);
  Matrix data(n, p);
  std::vector<double> z(p);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < p; ++j) z[j] = rng.Normal();
    const std::vector<double> x = BackwardSubstitute(l, z);
    for (int j = 0; j < p; ++j) data(i, j) = x[j];
  }
  return CovarianceMatrix(data);
}

TEST(GraphicalLassoTest, RecoversChainStructure) {
  Rng rng(11);
  Matrix truth;
  const Matrix cov = ChainCovariance(4000, 5, rng, &truth);
  GraphicalLassoOptions options;
  options.rho = 0.05;
  Result<GraphicalLassoResult> result = GraphicalLasso(cov, options);
  ASSERT_TRUE(result.ok());
  const Matrix& theta = result->precision;
  // Chain edges present, non-edges (distance >= 2) absent.
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      if (j == i + 1) {
        EXPECT_GT(std::fabs(theta(i, j)), 0.05) << i << "," << j;
      } else {
        EXPECT_LT(std::fabs(theta(i, j)), 0.04) << i << "," << j;
      }
    }
  }
}

TEST(GraphicalLassoTest, PrecisionApproximatesInverseAtZeroPenalty) {
  Rng rng(13);
  const Matrix cov = ChainCovariance(8000, 4, rng, nullptr);
  GraphicalLassoOptions options;
  options.rho = 1e-4;
  Result<GraphicalLassoResult> result = GraphicalLasso(cov, options);
  ASSERT_TRUE(result.ok());
  const Result<Matrix> direct = InverseSpd(cov);
  ASSERT_TRUE(direct.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(result->precision, *direct), 0.05);
}

TEST(GraphicalLassoTest, HandlesDegenerateCovariance) {
  // A constant column makes the sample covariance singular; the ridge on
  // the diagonal must keep the algorithm stable.
  Matrix cov(3, 3);
  cov(0, 0) = 1.0;
  cov(1, 1) = 0.0;  // constant variable
  cov(2, 2) = 1.0;
  cov(0, 2) = 0.5;
  cov(2, 0) = 0.5;
  GraphicalLassoOptions options;
  options.rho = 0.1;
  EXPECT_TRUE(GraphicalLasso(cov, options).ok());
}

TEST(GraphicalLassoTest, RejectsBadInput) {
  EXPECT_FALSE(GraphicalLasso(Matrix(2, 3), {}).ok());
  EXPECT_FALSE(GraphicalLasso(Matrix(1, 1), {}).ok());
  GraphicalLassoOptions negative;
  negative.rho = -1.0;
  EXPECT_FALSE(GraphicalLasso(Matrix::Identity(3), negative).ok());
}

TEST(BlanketFromPrecisionTest, ThresholdsEdges) {
  Matrix theta = Matrix::Identity(3);
  theta(0, 2) = 0.5;
  theta(2, 0) = 0.5;
  theta(1, 2) = 1e-9;
  theta(2, 1) = 1e-9;
  EXPECT_EQ(BlanketFromPrecision(theta, 2, 1e-6), (std::vector<int>{0}));
}

class MarkovBlanketMethodTest
    : public testing::TestWithParam<BlanketMethod> {};

TEST_P(MarkovBlanketMethodTest, FindsParentsOfTarget) {
  // Y = X0 + X1 + noise; X2, X3 independent noise.
  Rng rng(17);
  const int n = 1500;
  Matrix data(n, 5);
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.Normal();
    const double x1 = rng.Normal();
    data(i, 0) = x0;
    data(i, 1) = x1;
    data(i, 2) = rng.Normal();
    data(i, 3) = rng.Normal();
    data(i, 4) = x0 + x1 + rng.Normal(0.0, 0.5);  // target
  }
  MarkovBlanketOptions options;
  options.method = GetParam();
  options.penalty = 0.05;
  Result<std::vector<int>> blanket = MarkovBlanket(data, 4, options);
  ASSERT_TRUE(blanket.ok());
  EXPECT_TRUE(std::find(blanket->begin(), blanket->end(), 0) !=
              blanket->end());
  EXPECT_TRUE(std::find(blanket->begin(), blanket->end(), 1) !=
              blanket->end());
  EXPECT_TRUE(std::find(blanket->begin(), blanket->end(), 2) ==
              blanket->end());
  EXPECT_TRUE(std::find(blanket->begin(), blanket->end(), 3) ==
              blanket->end());
}

TEST_P(MarkovBlanketMethodTest, ConstantColumnsNeverEnterBlanket) {
  Rng rng(19);
  const int n = 400;
  Matrix data(n, 3);
  for (int i = 0; i < n; ++i) {
    data(i, 0) = 5.0;  // constant
    data(i, 1) = rng.Normal();
    data(i, 2) = data(i, 1) + rng.Normal(0.0, 0.3);
  }
  MarkovBlanketOptions options;
  options.method = GetParam();
  Result<std::vector<int>> blanket = MarkovBlanket(data, 2, options);
  ASSERT_TRUE(blanket.ok());
  EXPECT_TRUE(std::find(blanket->begin(), blanket->end(), 0) ==
              blanket->end());
}

INSTANTIATE_TEST_SUITE_P(BothMethods, MarkovBlanketMethodTest,
                         testing::Values(BlanketMethod::kGraphicalLasso,
                                         BlanketMethod::kNeighborhoodSelection));

TEST(MarkovBlanketTest, RejectsBadArguments) {
  Matrix data(5, 1);
  EXPECT_FALSE(MarkovBlanket(data, 0, {}).ok());
  Matrix small(2, 3);
  EXPECT_FALSE(MarkovBlanket(small, 0, {}).ok());
  Matrix ok_data(10, 3);
  EXPECT_FALSE(MarkovBlanket(ok_data, 7, {}).ok());
}

}  // namespace
}  // namespace activedp
