#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "math/linalg.h"
#include "math/matrix.h"
#include "math/stats.h"
#include "math/vector_ops.h"

namespace activedp {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, Identity) {
  const Matrix id = Matrix::Identity(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 5;
  m(1, 1) = -2;
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_DOUBLE_EQ(t(2, 0), 5);
  EXPECT_NEAR(Matrix::MaxAbsDiff(t.Transpose(), m), 0.0, 1e-15);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, MultiplyIdentityIsNoop) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) a(i, j) = i * 3 + j;
  EXPECT_NEAR(Matrix::MaxAbsDiff(a.Multiply(Matrix::Identity(3)), a), 0.0,
              1e-15);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const std::vector<double> y = a.MultiplyVector({1.0, 0.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a(1, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  Matrix b(1, 2);
  b(0, 0) = 10;
  b(0, 1) = 20;
  EXPECT_DOUBLE_EQ(a.Add(b)(0, 1), 22);
  EXPECT_DOUBLE_EQ(b.Subtract(a)(0, 0), 9);
  EXPECT_DOUBLE_EQ(a.Scale(-2.0)(0, 1), -4);
}

TEST(VectorOpsTest, DotAxpyNorm) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  Axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
}

TEST(VectorOpsTest, MeanVariance) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.571428571, 1e-6);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
}

TEST(VectorOpsTest, SoftmaxSumsToOneAndIsStable) {
  const std::vector<double> p = Softmax({1000.0, 1001.0});
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GT(p[1], p[0]);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(VectorOpsTest, SoftmaxMatchesClosedForm) {
  const std::vector<double> p = Softmax({0.0, std::log(3.0)});
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[1], 0.75, 1e-12);
}

TEST(VectorOpsTest, LogSumExp) {
  EXPECT_NEAR(LogSumExp({std::log(1.0), std::log(3.0)}), std::log(4.0), 1e-12);
}

TEST(VectorOpsTest, EntropyCases) {
  EXPECT_DOUBLE_EQ(Entropy({1.0, 0.0}), 0.0);
  EXPECT_NEAR(Entropy({0.5, 0.5}), std::log(2.0), 1e-12);
  // Entropy of uniform over k outcomes is log k and is the maximum.
  EXPECT_NEAR(Entropy({0.25, 0.25, 0.25, 0.25}), std::log(4.0), 1e-12);
  EXPECT_LT(Entropy({0.7, 0.1, 0.1, 0.1}), std::log(4.0));
}

TEST(VectorOpsTest, ArgMaxFirstOnTies) {
  EXPECT_EQ(ArgMax({1.0, 3.0, 3.0}), 1);
  EXPECT_EQ(ArgMax({5.0}), 0);
  EXPECT_DOUBLE_EQ(Max({1.0, 9.0, 2.0}), 9.0);
}

TEST(LinalgTest, CholeskyOfKnownMatrix) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  Result<Matrix> l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
  // L L^T reconstructs A.
  EXPECT_NEAR(Matrix::MaxAbsDiff(l->Multiply(l->Transpose()), a), 0.0, 1e-12);
}

TEST(LinalgTest, CholeskyRejectsNonSpd) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky(a).ok());
}

TEST(LinalgTest, SolveSpdRecoversSolution) {
  Matrix a(3, 3);
  // Diagonally dominant SPD matrix.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a(i, j) = i == j ? 5.0 : 1.0;
  }
  const std::vector<double> x_true = {1.0, -2.0, 0.5};
  const std::vector<double> b = a.MultiplyVector(x_true);
  Result<std::vector<double>> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-10);
}

TEST(LinalgTest, InverseSpdTimesOriginalIsIdentity) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a(i, j) = i == j ? 4.0 : 0.5;
  }
  Result<Matrix> inv = InverseSpd(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_NEAR(Matrix::MaxAbsDiff(a.Multiply(*inv), Matrix::Identity(3)), 0.0,
              1e-10);
}

TEST(StatsTest, ColumnMeans) {
  Matrix data(2, 2);
  data(0, 0) = 1;
  data(0, 1) = 10;
  data(1, 0) = 3;
  data(1, 1) = 30;
  const std::vector<double> means = ColumnMeans(data);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
}

TEST(StatsTest, CovarianceOfKnownData) {
  // Perfectly correlated columns.
  Matrix data(3, 2);
  for (int i = 0; i < 3; ++i) {
    data(i, 0) = i;
    data(i, 1) = 2.0 * i;
  }
  const Matrix cov = CovarianceMatrix(data);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov(1, 0), cov(0, 1), 1e-15);
}

TEST(StatsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, BinaryEntropy) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.0), 0.0);
  EXPECT_NEAR(BinaryEntropy(0.5), std::log(2.0), 1e-12);
  EXPECT_NEAR(BinaryEntropy(0.2), BinaryEntropy(0.8), 1e-12);
}

TEST(StatsTest, BinaryEntropyDefinedOnDegenerateInputs) {
  // Off-by-epsilon probabilities from upstream float error and outright
  // NaNs must yield 0, never NaN or negative entropy.
  EXPECT_DOUBLE_EQ(BinaryEntropy(-1e-17), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.0 + 1e-17), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(std::numeric_limits<double>::quiet_NaN()),
                   0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(std::numeric_limits<double>::infinity()),
                   0.0);
}

TEST(StatsTest, PearsonCorrelationDefinedOnDegenerateInputs) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
  // Both sides constant: no variance, correlation defined as 0.
  EXPECT_DOUBLE_EQ(PearsonCorrelation({5, 5, 5}, {7, 7, 7}), 0.0);
}

TEST(StatsTest, ColumnMeansOfEmptyMatrixAreZero) {
  const std::vector<double> means = ColumnMeans(Matrix(0, 3));
  ASSERT_EQ(means.size(), 3u);
  for (double m : means) EXPECT_DOUBLE_EQ(m, 0.0);
}

}  // namespace
}  // namespace activedp
