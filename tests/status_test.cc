#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace activedp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad k").ToString(),
            "InvalidArgument: bad k");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Caller(int x, bool* reached_end) {
  RETURN_IF_ERROR(FailIfNegative(x));
  *reached_end = true;
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  bool reached = false;
  EXPECT_FALSE(Caller(-1, &reached).ok());
  EXPECT_FALSE(reached);
  EXPECT_TRUE(Caller(1, &reached).ok());
  EXPECT_TRUE(reached);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ASSIGN_OR_RETURN(int half, Half(x));
  ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // second Half fails
  EXPECT_FALSE(Quarter(5).ok());  // first Half fails
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace activedp
