#include "serve/snapshot_registry.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "util/atomic_file.h"
#include "util/fault.h"

namespace activedp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

/// The registry only reads snapshot bytes for checksumming, so any file
/// stands in for an exported snapshot here.
std::string FakeSnapshot(const std::string& name, const std::string& body) {
  const std::string path = TempPath(name);
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << body;
  EXPECT_TRUE(out.good());
  return path;
}

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    manifest_ = TempPath("registry_test.manifest");
    std::remove(manifest_.c_str());
    snapshot_a_ = FakeSnapshot("registry_snap_a", "model-a v1 weights\n");
    snapshot_b_ = FakeSnapshot("registry_snap_b", "model-b v2 weights\n");
    snapshot_c_ = FakeSnapshot("registry_snap_c", "model-c v3 weights\n");
  }

  std::string manifest_;
  std::string snapshot_a_, snapshot_b_, snapshot_c_;
};

TEST_F(RegistryTest, RegisterActivateAndLineage) {
  Result<SnapshotRegistry> opened = SnapshotRegistry::Open(manifest_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  SnapshotRegistry registry = std::move(*opened);
  EXPECT_FALSE(registry.active_id().has_value());

  Result<int64_t> a = registry.Register(snapshot_a_, -1, "steps=10");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  Result<int64_t> b = registry.Register(snapshot_b_, *a, "steps=20");
  ASSERT_TRUE(b.ok());
  Result<int64_t> c = registry.Register(snapshot_c_, *b, "steps=30");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(*c, 3);

  ASSERT_TRUE(registry.Activate(*a).ok());
  EXPECT_EQ(registry.active_id(), *a);
  ASSERT_TRUE(registry.Activate(*b).ok());
  EXPECT_EQ(registry.active_id(), *b);
  // The previous active was retired, not forgotten.
  EXPECT_EQ(registry.Get(*a)->status, SnapshotStatus::kRetired);
  EXPECT_EQ(registry.history(), (std::vector<int64_t>{*a, *b}));

  EXPECT_EQ(registry.Lineage(*c), (std::vector<int64_t>{*c, *b, *a}));
  EXPECT_EQ(registry.Get(*c)->context, "steps=30");
}

TEST_F(RegistryTest, RejectsUnknownParentAndMissingSnapshot) {
  SnapshotRegistry registry = *SnapshotRegistry::Open(manifest_);
  const Result<int64_t> orphan = registry.Register(snapshot_a_, 42, "x");
  EXPECT_EQ(orphan.status().code(), StatusCode::kInvalidArgument);
  const Result<int64_t> missing =
      registry.Register(TempPath("no_such_snapshot"), -1, "x");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(RegistryTest, RollbackReactivatesPreviousHealthySnapshot) {
  SnapshotRegistry registry = *SnapshotRegistry::Open(manifest_);
  const int64_t a = *registry.Register(snapshot_a_, -1, "a");
  const int64_t b = *registry.Register(snapshot_b_, a, "b");
  ASSERT_TRUE(registry.Activate(a).ok());
  ASSERT_TRUE(registry.Activate(b).ok());

  const Result<int64_t> back = registry.Rollback();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, a);
  EXPECT_EQ(registry.active_id(), a);
  // The condemned snapshot is failed, and failed snapshots are never
  // re-activated: a second rollback has nowhere healthy to go.
  EXPECT_EQ(registry.Get(b)->status, SnapshotStatus::kFailed);
  EXPECT_EQ(registry.Rollback().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Activate(b).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RegistryTest, RollbackSkipsFailedPredecessors) {
  SnapshotRegistry registry = *SnapshotRegistry::Open(manifest_);
  const int64_t a = *registry.Register(snapshot_a_, -1, "a");
  const int64_t b = *registry.Register(snapshot_b_, a, "b");
  const int64_t c = *registry.Register(snapshot_c_, b, "c");
  ASSERT_TRUE(registry.Activate(a).ok());
  ASSERT_TRUE(registry.Activate(b).ok());
  ASSERT_TRUE(registry.Activate(c).ok());
  ASSERT_TRUE(registry.MarkFailed(b).ok());

  const Result<int64_t> back = registry.Rollback();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, a) << "rollback must skip the failed predecessor b";
  EXPECT_EQ(registry.Get(c)->status, SnapshotStatus::kFailed);
}

TEST_F(RegistryTest, PersistsAcrossReopen) {
  {
    SnapshotRegistry registry = *SnapshotRegistry::Open(manifest_);
    const int64_t a = *registry.Register(snapshot_a_, -1, "dataset=youtube");
    const int64_t b = *registry.Register(snapshot_b_, a, "dataset=youtube");
    ASSERT_TRUE(registry.Activate(a).ok());
    ASSERT_TRUE(registry.Activate(b).ok());
    ASSERT_TRUE(registry.Rollback().ok());
  }
  Result<SnapshotRegistry> reopened = SnapshotRegistry::Open(manifest_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->active_id(), 1);
  EXPECT_EQ(reopened->Get(2)->status, SnapshotStatus::kFailed);
  EXPECT_EQ(reopened->Get(1)->context, "dataset=youtube");
  EXPECT_EQ(reopened->history(), (std::vector<int64_t>{1, 2, 1}));
  // Ids keep counting from where the previous process stopped.
  const Result<int64_t> next = reopened->Register(snapshot_c_, 1, "later");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 3);
}

TEST_F(RegistryTest, VerifyDetectsSnapshotDrift) {
  SnapshotRegistry registry = *SnapshotRegistry::Open(manifest_);
  const int64_t a = *registry.Register(snapshot_a_, -1, "a");
  EXPECT_TRUE(registry.Verify(a).ok());
  WriteFileOrDie(snapshot_a_, "model-a v1 weights TAMPERED\n");
  EXPECT_EQ(registry.Verify(a).code(), StatusCode::kInvalidArgument);
  std::remove(snapshot_a_.c_str());
  EXPECT_EQ(registry.Verify(a).code(), StatusCode::kNotFound);
}

TEST_F(RegistryTest, FailedManifestWriteLeavesNoPartialState) {
  SnapshotRegistry registry = *SnapshotRegistry::Open(manifest_);
  const int64_t a = *registry.Register(snapshot_a_, -1, "a");
  ASSERT_TRUE(registry.Activate(a).ok());
  {
    FaultScope scope("registry.save", FaultKind::kError);
    const Result<int64_t> blocked = registry.Register(snapshot_b_, a, "b");
    EXPECT_EQ(blocked.status().code(), StatusCode::kInternal);
    EXPECT_EQ(registry.records().size(), 1u);
    EXPECT_EQ(registry.active_id(), a);
    EXPECT_GT(scope.fire_count(), 0);
  }
  // Disk agrees with memory, and the registry works again once the fault
  // clears — including the id the failed attempt never consumed durably.
  Result<SnapshotRegistry> reopened = SnapshotRegistry::Open(manifest_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->records().size(), 1u);
  const Result<int64_t> b = registry.Register(snapshot_b_, a, "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 2);
}

TEST_F(RegistryTest, TornManifestWriteIsDetectedOnReopen) {
  SnapshotRegistry registry = *SnapshotRegistry::Open(manifest_);
  const int64_t a = *registry.Register(snapshot_a_, -1, "a");
  ASSERT_TRUE(registry.Activate(a).ok());
  {
    // A torn write reports success (that is the point of the fault kind);
    // the checksum footer must catch it on the next open.
    FaultScope scope("registry.save", FaultKind::kTruncateWrite);
    ASSERT_TRUE(registry.Register(snapshot_b_, a, "b").ok());
    EXPECT_GT(scope.fire_count(), 0);
  }
  const Result<SnapshotRegistry> reopened = SnapshotRegistry::Open(manifest_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RegistryTest, RejectsFutureVersionAndMalformedManifests) {
  // Each body gets a *valid* checksum footer: the parser, not the checksum,
  // must reject these.
  const struct {
    const char* name;
    const char* body;
  } kCases[] = {
      {"future version", "activedp-registry v99\nend\n"},
      {"duplicate id",
       "activedp-registry v1\n"
       "snapshot 1 -1 active abc /tmp/x -\n"
       "snapshot 1 -1 candidate abc /tmp/y -\n"
       "history 1\nend\n"},
      {"unknown status",
       "activedp-registry v1\n"
       "snapshot 1 -1 sparkling abc /tmp/x -\nhistory\nend\n"},
      {"non-positive id",
       "activedp-registry v1\n"
       "snapshot 0 -1 active abc /tmp/x -\nhistory\nend\n"},
      {"history references unknown id",
       "activedp-registry v1\n"
       "snapshot 1 -1 active abc /tmp/x -\nhistory 1 7\nend\n"},
      {"two active snapshots",
       "activedp-registry v1\n"
       "snapshot 1 -1 active abc /tmp/x -\n"
       "snapshot 2 1 active abc /tmp/y -\n"
       "history 1 2\nend\n"},
      {"missing terminator",
       "activedp-registry v1\nsnapshot 1 -1 active abc /tmp/x -\nhistory 1\n"},
      {"not a registry", "something else entirely\n"},
  };
  for (const auto& test_case : kCases) {
    WriteFileOrDie(manifest_, WithChecksumFooter(test_case.body));
    const Result<SnapshotRegistry> opened = SnapshotRegistry::Open(manifest_);
    EXPECT_FALSE(opened.ok()) << test_case.name;
    EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument)
        << test_case.name << ": " << opened.status().ToString();
  }
}

}  // namespace
}  // namespace activedp
