#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ml/featurizer.h"
#include "data/synthetic_tabular.h"

namespace activedp {
namespace {

TEST(MetricsTest, AccuracyIgnoresAbstains) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, -1, 1}, {0, 0, 0, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({-1, -1}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, Coverage) {
  EXPECT_DOUBLE_EQ(Coverage({0, -1, 1, -1}), 0.5);
  EXPECT_DOUBLE_EQ(Coverage({}), 0.0);
  EXPECT_DOUBLE_EQ(Coverage({-1, -1}), 0.0);
}

TEST(MetricsTest, ConfusionCounts) {
  const Matrix counts = ConfusionCounts({0, 1, 1, -1, 0}, {0, 1, 0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(counts(0, 0), 1.0);  // truth 0 pred 0
  EXPECT_DOUBLE_EQ(counts(0, 1), 1.0);  // truth 0 pred 1
  EXPECT_DOUBLE_EQ(counts(1, 0), 1.0);  // truth 1 pred 0
  EXPECT_DOUBLE_EQ(counts(1, 1), 1.0);  // truth 1 pred 1
}

TEST(MetricsTest, BinaryPrf) {
  // preds: P P N N ; truth: P N P N (positive class = 1)
  const PrecisionRecallF1 prf = BinaryPrf({1, 1, 0, 0}, {1, 0, 1, 0}, 1);
  EXPECT_DOUBLE_EQ(prf.precision, 0.5);
  EXPECT_DOUBLE_EQ(prf.recall, 0.5);
  EXPECT_DOUBLE_EQ(prf.f1, 0.5);
}

TEST(MetricsTest, BinaryPrfSkipsAbstains) {
  // Regression: abstains (-1) used to count as negative predictions,
  // inflating fn and depressing recall. With the two abstains skipped this
  // is the same confusion as the BinaryPrf test above: tp=1 fp=1 fn=1.
  const PrecisionRecallF1 prf =
      BinaryPrf({1, -1, 1, 0, -1, 0}, {1, 1, 0, 1, 0, 0}, 1);
  EXPECT_DOUBLE_EQ(prf.precision, 0.5);
  EXPECT_DOUBLE_EQ(prf.recall, 0.5);
  EXPECT_DOUBLE_EQ(prf.f1, 0.5);

  // All-abstain input yields zeros, not a division crash.
  const PrecisionRecallF1 empty = BinaryPrf({-1, -1}, {1, 0}, 1);
  EXPECT_DOUBLE_EQ(empty.precision, 0.0);
  EXPECT_DOUBLE_EQ(empty.recall, 0.0);
  EXPECT_DOUBLE_EQ(empty.f1, 0.0);
}

TEST(MetricsTest, BinaryPrfDegenerate) {
  const PrecisionRecallF1 prf = BinaryPrf({0, 0}, {0, 0}, 1);
  EXPECT_DOUBLE_EQ(prf.precision, 0.0);
  EXPECT_DOUBLE_EQ(prf.recall, 0.0);
  EXPECT_DOUBLE_EQ(prf.f1, 0.0);
}

TEST(MetricsTest, CurveAverage) {
  EXPECT_DOUBLE_EQ(CurveAverage({0.5, 0.7, 0.9}), 0.7);
  EXPECT_DOUBLE_EQ(CurveAverage({}), 0.0);
}

TEST(MetricsTest, BrierScorePerfectAndWorst) {
  // Perfect one-hot predictions score 0.
  EXPECT_DOUBLE_EQ(BrierScore({{1.0, 0.0}, {0.0, 1.0}}, {0, 1}), 0.0);
  // Completely wrong confident predictions score 2 (binary).
  EXPECT_DOUBLE_EQ(BrierScore({{0.0, 1.0}}, {0}), 2.0);
  // Uniform predictions on binary: 0.25 + 0.25 = 0.5.
  EXPECT_DOUBLE_EQ(BrierScore({{0.5, 0.5}}, {1}), 0.5);
  EXPECT_DOUBLE_EQ(BrierScore({}, {}), 0.0);
}

TEST(MetricsTest, EceZeroForPerfectlyCalibrated) {
  // Confidence 1.0 and always right -> ECE 0.
  std::vector<std::vector<double>> proba(50, {1.0, 0.0});
  std::vector<int> labels(50, 0);
  EXPECT_NEAR(ExpectedCalibrationError(proba, labels), 0.0, 1e-12);
}

TEST(MetricsTest, EceDetectsOverconfidence) {
  // Always 0.95-confident class 1 but only right half the time:
  // |0.5 - 0.95| = 0.45.
  std::vector<std::vector<double>> proba(100, {0.05, 0.95});
  std::vector<int> labels(100);
  for (int i = 0; i < 100; ++i) labels[i] = i % 2;
  EXPECT_NEAR(ExpectedCalibrationError(proba, labels), 0.45, 1e-9);
}

TEST(MetricsTest, BrierScoreStaysFiniteUnderNanRows) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // A poisoned row scores like an uncovered row instead of turning the
  // whole aggregate into NaN.
  const double score = BrierScore({{1.0, 0.0}, {nan, 0.5}, {inf, 0.0}},
                                  {0, 0, 1});
  EXPECT_TRUE(std::isfinite(score));
  EXPECT_DOUBLE_EQ(score, 0.0);
  // Empty rows ("no prediction") are likewise defined.
  EXPECT_DOUBLE_EQ(BrierScore({{}, {1.0, 0.0}}, {0, 0}), 0.0);
}

TEST(MetricsTest, EceStaysFiniteUnderDegenerateRows) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // All rows empty or non-finite -> no scored rows -> 0, not NaN.
  EXPECT_DOUBLE_EQ(
      ExpectedCalibrationError({{}, {nan, nan}}, {0, 1}), 0.0);
  // Degenerate rows are skipped; the remaining row is perfectly calibrated.
  EXPECT_NEAR(ExpectedCalibrationError({{}, {1.0, 0.0}, {nan, 0.5}}, {0, 0, 0}),
              0.0, 1e-12);
  // Negative "confidence" (broken upstream) must not index out of range.
  EXPECT_TRUE(std::isfinite(
      ExpectedCalibrationError({{-0.5, -2.0}}, {0})));
}

TEST(FeaturizerTest, TabularStandardizesTrainingData) {
  SyntheticTabularConfig config;
  config.num_examples = 500;
  config.num_features = 3;
  config.informative_features = 2;
  Rng rng(3);
  const Dataset dataset = GenerateSyntheticTabular(config, rng);
  TabularFeaturizer featurizer(dataset);
  EXPECT_EQ(featurizer.dim(), 3);
  // Transformed features should have ~zero mean, ~unit variance.
  std::vector<double> sums(3, 0.0), sq(3, 0.0);
  for (const auto& e : dataset.examples()) {
    const SparseVector v = featurizer.Transform(e);
    for (int k = 0; k < v.nnz(); ++k) {
      sums[v.indices[k]] += v.values[k];
      sq[v.indices[k]] += v.values[k] * v.values[k];
    }
  }
  for (int j = 0; j < 3; ++j) {
    const double mean = sums[j] / dataset.size();
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(sq[j] / dataset.size() - mean * mean, 1.0, 0.02);
  }
}

TEST(FeaturizerTest, MakeFeaturizerDispatchesOnTask) {
  SyntheticTabularConfig config;
  config.num_examples = 50;
  Rng rng(5);
  const Dataset tabular = GenerateSyntheticTabular(config, rng);
  EXPECT_NE(dynamic_cast<TabularFeaturizer*>(MakeFeaturizer(tabular).get()),
            nullptr);
}

TEST(FeaturizerTest, FeaturizeAllAlignsWithDataset) {
  SyntheticTabularConfig config;
  config.num_examples = 40;
  Rng rng(7);
  const Dataset dataset = GenerateSyntheticTabular(config, rng);
  const auto featurizer = MakeFeaturizer(dataset);
  const std::vector<SparseVector> features =
      FeaturizeAll(*featurizer, dataset);
  EXPECT_EQ(static_cast<int>(features.size()), dataset.size());
}

}  // namespace
}  // namespace activedp
