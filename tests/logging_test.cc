// Tests for the pluggable log sink and ACTIVEDP_LOG_LEVEL handling
// (util/logging.h): severity filtering, CapturedLogs, custom sinks, the
// severity parser, and re-initialization from the environment.

#include "util/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace activedp {
namespace {

// Every test here mutates process-wide logging state; this fixture restores
// the defaults (kInfo, stderr sink, no env override) afterwards.
class LoggingTest : public testing::Test {
 protected:
  void TearDown() override {
    unsetenv("ACTIVEDP_LOG_LEVEL");
    internal::ReinitLogLevelFromEnvForTesting();
    SetLogSink(nullptr);
  }
};

TEST_F(LoggingTest, CapturedLogsSeesFormattedLines) {
  SetMinLogSeverity(LogSeverity::kInfo);
  CapturedLogs captured;
  LOG(Info) << "hello " << 42;
  const std::vector<std::string> lines = captured.lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_NE(line.find("hello 42"), std::string::npos);
  EXPECT_NE(line.find("[I "), std::string::npos);          // severity tag
  EXPECT_NE(line.find("logging_test.cc:"), std::string::npos);  // file:line
  EXPECT_TRUE(captured.Contains("hello"));
  EXPECT_FALSE(captured.Contains("absent"));
}

TEST_F(LoggingTest, MinSeverityFiltersBelowThreshold) {
  SetMinLogSeverity(LogSeverity::kWarning);
  CapturedLogs captured;
  LOG(Debug) << "too quiet";
  LOG(Info) << "still too quiet";
  LOG(Warning) << "loud enough";
  LOG(Error) << "definitely";
  EXPECT_EQ(captured.lines().size(), 2u);
  EXPECT_FALSE(captured.Contains("quiet"));
  EXPECT_TRUE(captured.Contains("loud enough"));
  EXPECT_TRUE(captured.Contains("definitely"));
  SetMinLogSeverity(LogSeverity::kInfo);
}

TEST_F(LoggingTest, CustomSinkReceivesSeverityAndLine) {
  SetMinLogSeverity(LogSeverity::kInfo);
  std::vector<std::pair<LogSeverity, std::string>> received;
  SetLogSink([&received](LogSeverity severity, std::string_view line) {
    received.emplace_back(severity, std::string(line));
  });
  LOG(Warning) << "routed";
  SetLogSink(nullptr);  // restore default before asserting
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, LogSeverity::kWarning);
  EXPECT_NE(received[0].second.find("routed"), std::string::npos);
}

TEST_F(LoggingTest, ParseLogSeverityAcceptsNamesAndNumbers) {
  LogSeverity severity;
  ASSERT_TRUE(internal::ParseLogSeverity("debug", &severity));
  EXPECT_EQ(severity, LogSeverity::kDebug);
  ASSERT_TRUE(internal::ParseLogSeverity("INFO", &severity));
  EXPECT_EQ(severity, LogSeverity::kInfo);
  ASSERT_TRUE(internal::ParseLogSeverity("Warning", &severity));
  EXPECT_EQ(severity, LogSeverity::kWarning);
  ASSERT_TRUE(internal::ParseLogSeverity("warn", &severity));
  EXPECT_EQ(severity, LogSeverity::kWarning);
  ASSERT_TRUE(internal::ParseLogSeverity(" error ", &severity));  // trimmed
  EXPECT_EQ(severity, LogSeverity::kError);
  ASSERT_TRUE(internal::ParseLogSeverity("0", &severity));
  EXPECT_EQ(severity, LogSeverity::kDebug);
  ASSERT_TRUE(internal::ParseLogSeverity("3", &severity));
  EXPECT_EQ(severity, LogSeverity::kError);

  EXPECT_FALSE(internal::ParseLogSeverity("", &severity));
  EXPECT_FALSE(internal::ParseLogSeverity("verbose", &severity));
  EXPECT_FALSE(internal::ParseLogSeverity("4", &severity));
}

TEST_F(LoggingTest, EnvVariableSetsMinSeverity) {
  setenv("ACTIVEDP_LOG_LEVEL", "error", 1);
  internal::ReinitLogLevelFromEnvForTesting();
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  CapturedLogs captured;
  LOG(Warning) << "suppressed by env";
  LOG(Error) << "passes the env level";
  EXPECT_EQ(captured.lines().size(), 1u);
  EXPECT_TRUE(captured.Contains("passes the env level"));
}

TEST_F(LoggingTest, InvalidEnvValueFallsBackToInfo) {
  setenv("ACTIVEDP_LOG_LEVEL", "shouty", 1);
  internal::ReinitLogLevelFromEnvForTesting();
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kInfo);
}

TEST_F(LoggingTest, ExplicitSetterWinsOverEnvironment) {
  setenv("ACTIVEDP_LOG_LEVEL", "error", 1);
  internal::ReinitLogLevelFromEnvForTesting();
  SetMinLogSeverity(LogSeverity::kDebug);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kDebug);
}

TEST_F(LoggingTest, ConcurrentLoggingThroughCaptureIsSafe) {
  SetMinLogSeverity(LogSeverity::kInfo);
  CapturedLogs captured;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t]() {
      for (int i = 0; i < kPerThread; ++i) {
        LOG(Info) << "thread " << t << " line " << i;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(captured.lines().size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace activedp
