#include <gtest/gtest.h>

#include "lf/label_function.h"
#include "lf/lf_applier.h"

namespace activedp {
namespace {

Example TextExample(std::vector<std::pair<int, int>> term_counts, int label) {
  Example e;
  e.term_counts = std::move(term_counts);
  e.label = label;
  return e;
}

Example TabularExample(std::vector<double> features, int label) {
  Example e;
  e.features = std::move(features);
  e.label = label;
  return e;
}

TEST(KeywordLfTest, FiresOnKeywordPresence) {
  const KeywordLf lf(/*token_id=*/3, "check", /*label=*/1);
  EXPECT_EQ(lf.Apply(TextExample({{1, 1}, {3, 2}}, 0)), 1);
  EXPECT_EQ(lf.Apply(TextExample({{1, 1}, {4, 1}}, 0)), kAbstain);
  EXPECT_EQ(lf.label(), 1);
  EXPECT_EQ(lf.Name(), "check -> class1");
  EXPECT_EQ(lf.Key(), "kw:3:1");
}

TEST(ThresholdLfTest, FiresByOperator) {
  const ThresholdLf le(/*feature=*/0, 2.0, StumpOp::kLessEqual, 0);
  EXPECT_EQ(le.Apply(TabularExample({1.5}, 0)), 0);
  EXPECT_EQ(le.Apply(TabularExample({2.0}, 0)), 0);  // boundary included
  EXPECT_EQ(le.Apply(TabularExample({2.5}, 0)), kAbstain);
  const ThresholdLf ge(0, 2.0, StumpOp::kGreaterEqual, 1);
  EXPECT_EQ(ge.Apply(TabularExample({2.0}, 0)), 1);
  EXPECT_EQ(ge.Apply(TabularExample({1.0}, 0)), kAbstain);
}

TEST(ThresholdLfTest, KeysDistinguishOperatorAndClass) {
  const ThresholdLf a(0, 1.0, StumpOp::kLessEqual, 0);
  const ThresholdLf b(0, 1.0, StumpOp::kGreaterEqual, 0);
  const ThresholdLf c(0, 1.0, StumpOp::kLessEqual, 1);
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_NE(a.Key(), c.Key());
}

Dataset TinyDataset() {
  DatasetMeta meta;
  meta.num_classes = 2;
  std::vector<Example> examples = {
      TextExample({{0, 1}}, 1),          // contains token 0
      TextExample({{1, 1}}, 0),          // contains token 1
      TextExample({{0, 1}, {1, 1}}, 1),  // both
      TextExample({{2, 1}}, 0),          // neither
  };
  return Dataset(meta, std::move(examples));
}

TEST(LfApplierTest, ApplyLfProducesColumn) {
  const Dataset dataset = TinyDataset();
  const KeywordLf lf(0, "w0", 1);
  const std::vector<int8_t> column = ApplyLf(lf, dataset);
  EXPECT_EQ(column, (std::vector<int8_t>{1, -1, 1, -1}));
}

TEST(LfApplierTest, ApplyLfsBuildsMatrix) {
  const Dataset dataset = TinyDataset();
  std::vector<LfPtr> lfs = {std::make_shared<KeywordLf>(0, "w0", 1),
                            std::make_shared<KeywordLf>(1, "w1", 0)};
  const LabelMatrix matrix = ApplyLfs(lfs, dataset);
  EXPECT_EQ(matrix.num_rows(), 4);
  EXPECT_EQ(matrix.num_cols(), 2);
  EXPECT_EQ(matrix.At(2, 0), 1);
  EXPECT_EQ(matrix.At(2, 1), 0);
  EXPECT_EQ(matrix.At(3, 0), kAbstain);
}

TEST(LabelMatrixTest, RowAndActivity) {
  LabelMatrix matrix(3);
  matrix.AddColumn({1, -1, 0});
  matrix.AddColumn({-1, -1, 1});
  EXPECT_EQ(matrix.Row(0), (std::vector<int>{1, -1}));
  EXPECT_EQ(matrix.Row(2), (std::vector<int>{0, 1}));
  EXPECT_TRUE(matrix.AnyActive(0));
  EXPECT_FALSE(matrix.AnyActive(1));
  EXPECT_TRUE(matrix.AnyActive(2));
  EXPECT_FALSE(matrix.AnyActive(1, {0, 1}));
  EXPECT_TRUE(matrix.AnyActive(0, {0}));
  EXPECT_FALSE(matrix.AnyActive(0, {1}));
}

TEST(LabelMatrixTest, RowRestrictedToColumns) {
  LabelMatrix matrix(1);
  matrix.AddColumn({0});
  matrix.AddColumn({1});
  matrix.AddColumn({-1});
  EXPECT_EQ(matrix.Row(0, {2, 0}), (std::vector<int>{-1, 0}));
}

TEST(LabelMatrixTest, SelectColumnsAndRows) {
  LabelMatrix matrix(3);
  matrix.AddColumn({1, 0, -1});
  matrix.AddColumn({-1, 1, 0});
  const LabelMatrix cols = matrix.SelectColumns({1});
  EXPECT_EQ(cols.num_cols(), 1);
  EXPECT_EQ(cols.At(1, 0), 1);
  const LabelMatrix rows = matrix.SelectRows({2, 0});
  EXPECT_EQ(rows.num_rows(), 2);
  EXPECT_EQ(rows.At(0, 0), -1);
  EXPECT_EQ(rows.At(1, 0), 1);
}

TEST(LabelMatrixTest, SetOverwritesEntry) {
  LabelMatrix matrix(2);
  matrix.AddColumn({1, -1});
  matrix.Set(1, 0, 0);
  EXPECT_EQ(matrix.At(1, 0), 0);
}

TEST(LabelMatrixTest, OverallCoverage) {
  LabelMatrix matrix(4);
  matrix.AddColumn({1, -1, -1, -1});
  matrix.AddColumn({-1, 0, -1, -1});
  EXPECT_DOUBLE_EQ(matrix.OverallCoverage(), 0.5);
}

TEST(ColumnStatsTest, CoverageAndAccuracy) {
  const std::vector<int8_t> column = {1, 1, -1, 0};
  const std::vector<int> labels = {1, 0, 1, 0};
  const LfColumnStats stats = ComputeColumnStats(column, labels);
  EXPECT_EQ(stats.activations, 3);
  EXPECT_DOUBLE_EQ(stats.coverage, 0.75);
  EXPECT_NEAR(stats.accuracy, 2.0 / 3.0, 1e-12);
}

TEST(ColumnStatsTest, NeverFiring) {
  const LfColumnStats stats = ComputeColumnStats({-1, -1}, {0, 1});
  EXPECT_EQ(stats.activations, 0);
  EXPECT_DOUBLE_EQ(stats.coverage, 0.0);
  EXPECT_DOUBLE_EQ(stats.accuracy, 0.0);
}

}  // namespace
}  // namespace activedp
