#include "lf/oracle.h"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic_tabular.h"
#include "data/synthetic_text.h"

namespace activedp {
namespace {

Dataset TextData(uint64_t seed = 3) {
  SyntheticTextConfig config;
  config.num_examples = 400;
  config.label_noise = 0.0;
  Rng rng(seed);
  return GenerateSyntheticText(config, rng);
}

TEST(SimulatedUserTest, ReturnedLfFiresOnQueryAndVotesItsLabel) {
  const Dataset train = TextData();
  SimulatedUser user(train, {});
  for (int q = 0; q < 50; ++q) {
    std::optional<LfCandidate> response = user.CreateLf(q);
    if (!response.has_value()) continue;
    EXPECT_EQ(response->lf->Apply(train.example(q)), response->lf->label());
    // Without injected noise the LF votes the query's true label (§3.1).
    EXPECT_EQ(response->lf->label(), train.example(q).label);
    EXPECT_GT(response->train_accuracy, 0.6);
  }
}

TEST(SimulatedUserTest, NeverReturnsDuplicateLfs) {
  const Dataset train = TextData();
  SimulatedUser user(train, {});
  std::set<std::string> keys;
  for (int q = 0; q < 100; ++q) {
    std::optional<LfCandidate> response = user.CreateLf(q);
    if (!response.has_value()) continue;
    EXPECT_TRUE(keys.insert(response->lf->Key()).second)
        << "duplicate " << response->lf->Name();
  }
}

TEST(SimulatedUserTest, DeterministicForSeed) {
  const Dataset train = TextData();
  SimulatedUserOptions options;
  options.seed = 99;
  SimulatedUser a(train, options), b(train, options);
  for (int q = 0; q < 20; ++q) {
    const auto ra = a.CreateLf(q);
    const auto rb = b.CreateLf(q);
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (ra.has_value()) EXPECT_EQ(ra->lf->Key(), rb->lf->Key());
  }
}

TEST(SimulatedUserTest, LabelNoiseProducesMisfiringLfs) {
  const Dataset train = TextData();
  SimulatedUserOptions options;
  options.label_noise = 1.0;  // every query flipped
  options.seed = 7;
  SimulatedUser user(train, options);
  int answered = 0, wrong_on_query = 0;
  for (int q = 0; q < 200; ++q) {
    std::optional<LfCandidate> response = user.CreateLf(q);
    if (!response.has_value()) continue;
    ++answered;
    // The LF votes the flipped label, so it disagrees with the query's
    // ground truth...
    if (response->lf->label() != train.example(q).label) ++wrong_on_query;
    // ...but still clears the global accuracy threshold (§4.3.3).
    EXPECT_GT(response->train_accuracy, 0.6);
  }
  ASSERT_GT(answered, 0);
  EXPECT_EQ(wrong_on_query, answered);
}

TEST(SimulatedUserTest, VerifyLfUsesThreshold) {
  const Dataset train = TextData();
  SimulatedUser user(train, {});
  LfCandidate good;
  good.train_accuracy = 0.9;
  LfCandidate bad;
  bad.train_accuracy = 0.55;
  EXPECT_TRUE(user.VerifyLf(good));
  EXPECT_FALSE(user.VerifyLf(bad));
}

TEST(SimulatedUserTest, LabelInstanceReturnsGroundTruth) {
  const Dataset train = TextData();
  SimulatedUser user(train, {});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(user.LabelInstance(i), train.example(i).label);
  }
}

TEST(SimulatedUserTest, WorksOnTabularData) {
  SyntheticTabularConfig config;
  config.num_examples = 300;
  Rng rng(5);
  const Dataset train = GenerateSyntheticTabular(config, rng);
  SimulatedUser user(train, {});
  int answered = 0;
  for (int q = 0; q < 50; ++q) {
    std::optional<LfCandidate> response = user.CreateLf(q);
    if (!response.has_value()) continue;
    ++answered;
    EXPECT_EQ(response->lf->Apply(train.example(q)), response->lf->label());
    EXPECT_GT(response->train_accuracy, 0.6);
  }
  EXPECT_GT(answered, 10);
}

TEST(SimulatedUserTest, CountsQueries) {
  const Dataset train = TextData();
  SimulatedUser user(train, {});
  (void)user.CreateLf(0);
  (void)user.CreateLf(1);
  EXPECT_EQ(user.num_queries_answered(), 2);
}

}  // namespace
}  // namespace activedp
