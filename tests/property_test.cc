// Randomized property tests across module boundaries: invariants that must
// hold for arbitrary seeds/inputs rather than hand-picked cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>

#include "core/confusion.h"
#include "core/label_pick.h"
#include "data/synthetic_text.h"
#include "labelmodel/metal_completion.h"
#include "labelmodel/metal_model.h"
#include "labelmodel/spin_utils.h"
#include "math/vector_ops.h"
#include "text/tokenizer.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace activedp {
namespace {

class SeededPropertyTest : public testing::TestWithParam<int> {};

TEST_P(SeededPropertyTest, CsvRoundTripsArbitraryFields) {
  Rng rng(GetParam());
  const int cols = rng.UniformInt(1, 5);
  std::vector<std::string> header;
  for (int c = 0; c < cols; ++c) header.push_back("c" + std::to_string(c));
  CsvWriter writer(header);
  std::vector<std::vector<std::string>> rows;
  const char kAlphabet[] = "ab,\"x ;'|";
  for (int r = 0; r < 20; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < cols; ++c) {
      std::string field;
      const int len = rng.UniformInt(0, 8);
      for (int k = 0; k < len; ++k) {
        field += kAlphabet[rng.UniformInt(
            static_cast<int>(sizeof(kAlphabet)) - 1)];
      }
      row.push_back(field);
    }
    rows.push_back(row);
    writer.AddRow(std::move(row));
  }
  Result<std::vector<std::vector<std::string>>> parsed =
      ParseCsv(writer.ToString());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), rows.size() + 1);
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ((*parsed)[r + 1], rows[r]);
  }
}

TEST_P(SeededPropertyTest, SoftmaxIsDistributionForRandomLogits) {
  Rng rng(GetParam());
  std::vector<double> logits(rng.UniformInt(2, 6));
  for (double& l : logits) l = rng.Uniform(-50.0, 50.0);
  const std::vector<double> p = Softmax(logits);
  double total = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(ArgMax(p), ArgMax(logits));
}

TEST_P(SeededPropertyTest, TokenizerEmitsOnlyLowercaseAlnum) {
  Rng rng(GetParam());
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += static_cast<char>(rng.UniformInt(32, 126));
  }
  Tokenizer tokenizer;
  for (const auto& token : tokenizer.Tokenize(text)) {
    EXPECT_FALSE(token.empty());
    for (char c : token) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
      EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)));
    }
  }
}

TEST_P(SeededPropertyTest, SpinNaiveBayesClassSymmetry) {
  // Flipping every vote and the prior must flip the posterior.
  Rng rng(GetParam());
  const int m = rng.UniformInt(1, 10);
  std::vector<double> accuracies(m);
  std::vector<int> votes(m), flipped(m);
  for (int j = 0; j < m; ++j) {
    accuracies[j] = rng.Uniform(-0.9, 0.9);
    const int v = rng.UniformInt(3) - 1;  // -1 (abstain), 0, 1
    votes[j] = v;
    flipped[j] = v == kAbstain ? kAbstain : 1 - v;
  }
  const double prior = rng.Uniform(0.05, 0.95);
  const std::vector<double> p = SpinNaiveBayesProba(accuracies, prior, votes);
  const std::vector<double> q =
      SpinNaiveBayesProba(accuracies, 1.0 - prior, flipped);
  EXPECT_NEAR(p[1], q[0], 1e-9);
  EXPECT_NEAR(p[0], q[1], 1e-9);
}

TEST_P(SeededPropertyTest, ConFusionSourcesAreConsistentWithInputs) {
  Rng rng(GetParam());
  const int n = 100;
  std::vector<std::vector<double>> al(n), lm(n);
  std::vector<bool> active(n);
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.8)) {
      const double p = rng.Uniform(0.5, 1.0);
      al[i] = {p, 1.0 - p};
    }
    const double q = rng.Uniform(0.0, 1.0);
    lm[i] = {q, 1.0 - q};
    active[i] = rng.Bernoulli(0.6);
  }
  const double tau = rng.Uniform(0.0, 1.0);
  const AggregatedLabels out = ConFusion::Aggregate(al, lm, active, tau);
  for (int i = 0; i < n; ++i) {
    switch (out.source[i]) {
      case LabelSource::kActiveLearning:
        ASSERT_FALSE(al[i].empty());
        EXPECT_GE(Max(al[i]), tau);
        EXPECT_EQ(out.soft[i], al[i]);
        break;
      case LabelSource::kLabelModel:
        EXPECT_TRUE(active[i]);
        EXPECT_TRUE(al[i].empty() || Max(al[i]) < tau);
        EXPECT_EQ(out.soft[i], lm[i]);
        break;
      case LabelSource::kRejected:
        EXPECT_FALSE(active[i]);
        EXPECT_TRUE(out.soft[i].empty());
        EXPECT_EQ(out.hard[i], kAbstain);
        break;
    }
  }
}

TEST_P(SeededPropertyTest, EncodeWeakLabelIsAntisymmetricForBinary) {
  EXPECT_DOUBLE_EQ(EncodeWeakLabel(0, 2), -EncodeWeakLabel(1, 2));
  // And centred for any class count.
  const int classes = 2 + (GetParam() % 4);
  double total = 0.0;
  for (int c = 0; c < classes; ++c) total += EncodeWeakLabel(c, classes);
  EXPECT_NEAR(total, 0.0, 1e-9);
}

TEST_P(SeededPropertyTest, GeneratedTextDatasetsAreWellFormed) {
  Rng rng(GetParam());
  SyntheticTextConfig config;
  config.num_examples = 120;
  config.signal_group_size = 1 + (GetParam() % 5);
  config.groups_per_doc = 1 + (GetParam() % 4);
  const Dataset dataset = GenerateSyntheticText(config, rng);
  EXPECT_EQ(dataset.size(), 120);
  const std::vector<double> balance = dataset.ClassBalance();
  EXPECT_NEAR(balance[0] + balance[1], 1.0, 1e-9);
  for (const auto& e : dataset.examples()) {
    // Term counts consistent with text.
    int tokens_in_text = 1;
    for (char c : e.text) tokens_in_text += (c == ' ');
    int counted = 0;
    for (const auto& [id, count] : e.term_counts) counted += count;
    EXPECT_LE(counted, tokens_in_text);  // OOV tokens may be dropped
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         testing::Range(1, 9));

TEST(LabelModelRobustnessTest, DuplicatedLfInflatesCompletionNotTriplets) {
  // Fragility documentation: present one LF ten times. The faithful
  // matrix-completion estimator trusts the (violated) independence
  // assumption and inflates its accuracy estimates relative to the robust
  // median-of-triplets estimator.
  Rng rng(99);
  const int n = 4000;
  std::vector<int> labels(n);
  for (auto& y : labels) y = rng.Bernoulli(0.5);
  // The underlying LF: accuracy 0.7, coverage 0.8.
  std::vector<int8_t> base(n, kAbstain);
  for (int i = 0; i < n; ++i) {
    if (!rng.Bernoulli(0.8)) continue;
    base[i] = static_cast<int8_t>(rng.Bernoulli(0.7) ? labels[i]
                                                     : 1 - labels[i]);
  }
  LabelMatrix matrix(n);
  for (int copies = 0; copies < 10; ++copies) matrix.AddColumn(base);

  MetalModel triplets;
  ASSERT_TRUE(triplets.Fit(matrix, 2).ok());
  MetalCompletionModel completion;
  ASSERT_TRUE(completion.Fit(matrix, 2).ok());
  ASSERT_FALSE(completion.used_fallback());

  // True a = 2*0.7-1 = 0.4. The completion estimate should be the (more)
  // inflated of the two — exact duplication is the extreme dependence case.
  EXPECT_GE(completion.accuracy_param(0) + 1e-9, triplets.accuracy_param(0));
  EXPECT_GT(completion.accuracy_param(0), 0.55);
}

}  // namespace
}  // namespace activedp
