#include "data/csv_loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace activedp {
namespace {

std::string WriteTempCsv(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  return path;
}

TEST(LoadTextCsvTest, LoadsDocumentsAndLabels) {
  const std::string path = WriteTempCsv("text.csv",
                                        "text,label\n"
                                        "check out my channel,spam\n"
                                        "nice song,ham\n"
                                        "check the lyrics,ham\n"
                                        "subscribe to my channel now,spam\n");
  Result<Dataset> dataset = LoadTextCsv(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 4);
  EXPECT_EQ(dataset->meta().task, TaskType::kTextClassification);
  EXPECT_EQ(dataset->meta().num_classes, 2);
  // First-appearance label order: spam=0, ham=1.
  EXPECT_EQ(dataset->meta().class_names[0], "spam");
  EXPECT_EQ(dataset->example(0).label, 0);
  EXPECT_EQ(dataset->example(1).label, 1);
  // Vocabulary built with min_doc_count=2: "check" (2 docs) and
  // "channel"/"my" (2 docs) survive.
  EXPECT_NE(dataset->vocabulary().GetId("check"), Vocabulary::kUnknownId);
  EXPECT_NE(dataset->vocabulary().GetId("channel"), Vocabulary::kUnknownId);
  EXPECT_EQ(dataset->vocabulary().GetId("lyrics"), Vocabulary::kUnknownId);
  // Term counts populated.
  const int check = dataset->vocabulary().GetId("check");
  EXPECT_TRUE(dataset->example(0).HasToken(check));
  EXPECT_FALSE(dataset->example(1).HasToken(check));
  std::remove(path.c_str());
}

TEST(LoadTextCsvTest, QuotedTextWithCommas) {
  const std::string path = WriteTempCsv(
      "quoted.csv",
      "text,label\n\"hello, world\",a\n\"bye, moon\",b\n");
  Result<Dataset> dataset = LoadTextCsv(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->example(0).text, "hello, world");
  std::remove(path.c_str());
}

TEST(LoadTextCsvTest, CustomColumnNames) {
  const std::string path = WriteTempCsv(
      "cols.csv", "body,y,extra\nfoo bar,1,x\nbaz foo,0,y\n");
  CsvLoadOptions options;
  options.text_column = "body";
  options.label_column = "y";
  options.min_doc_count = 1;
  Result<Dataset> dataset = LoadTextCsv(path, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 2);
  std::remove(path.c_str());
}

TEST(LoadTextCsvTest, ErrorsAreReported) {
  EXPECT_EQ(LoadTextCsv("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
  const std::string missing_col =
      WriteTempCsv("missing.csv", "body,label\nx,1\ny,0\n");
  EXPECT_EQ(LoadTextCsv(missing_col).status().code(), StatusCode::kNotFound);
  const std::string one_class =
      WriteTempCsv("oneclass.csv", "text,label\nx,1\ny,1\n");
  EXPECT_FALSE(LoadTextCsv(one_class).ok());
  const std::string header_only = WriteTempCsv("header.csv", "text,label\n");
  EXPECT_FALSE(LoadTextCsv(header_only).ok());
  std::remove(missing_col.c_str());
  std::remove(one_class.c_str());
  std::remove(header_only.c_str());
}

TEST(LoadTabularCsvTest, LoadsFeaturesAndLabels) {
  const std::string path = WriteTempCsv("tab.csv",
                                        "age,income,label\n"
                                        "25,50000,0\n"
                                        "53,120000,1\n"
                                        "31,-10.5,0\n");
  Result<Dataset> dataset = LoadTabularCsv(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 3);
  EXPECT_EQ(dataset->meta().task, TaskType::kTabularClassification);
  EXPECT_EQ(dataset->meta().num_features, 2);
  EXPECT_EQ(dataset->feature_names(),
            (std::vector<std::string>{"age", "income"}));
  EXPECT_DOUBLE_EQ(dataset->example(2).features[1], -10.5);
  EXPECT_EQ(dataset->example(1).label, 1);
  std::remove(path.c_str());
}

TEST(LoadTabularCsvTest, RejectsNonNumericFeatures) {
  const std::string path = WriteTempCsv(
      "bad.csv", "age,label\ntwenty,0\n30,1\n");
  EXPECT_FALSE(LoadTabularCsv(path).ok());
  std::remove(path.c_str());
}

TEST(LoadTabularCsvTest, RejectsRaggedRows) {
  const std::string path =
      WriteTempCsv("ragged.csv", "a,b,label\n1,2,0\n1,1\n");
  EXPECT_FALSE(LoadTabularCsv(path).ok());
  std::remove(path.c_str());
}

TEST(LoadTabularCsvTest, StringLabelsMapped) {
  const std::string path = WriteTempCsv(
      "strlab.csv", "x,label\n1,yes\n2,no\n3,yes\n");
  Result<Dataset> dataset = LoadTabularCsv(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->meta().num_classes, 2);
  EXPECT_EQ(dataset->example(0).label, dataset->example(2).label);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace activedp
