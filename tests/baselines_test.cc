// Integration tests of the four baseline frameworks.

#include "core/baselines.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "data/dataset_zoo.h"
#include "math/vector_ops.h"

namespace activedp {
namespace {

class BaselinesTest : public testing::Test {
 protected:
  void SetUp() override {
    Result<DataSplit> split = MakeZooDataset("youtube", 0.4, 202);
    ASSERT_TRUE(split.ok());
    split_ = std::move(*split);
    context_ = FrameworkContext::Build(split_);
    options_.seed = 5;
  }

  LabelQuality RunAndMeasure(InteractiveFramework& framework, int steps) {
    for (int t = 0; t < steps; ++t) {
      const Status status = framework.Step();
      if (!status.ok()) break;
    }
    return MeasureLabelQuality(framework.CurrentTrainingLabels(),
                               split_.train);
  }

  DataSplit split_;
  FrameworkContext context_;
  BaselineOptions options_;
};

TEST_F(BaselinesTest, NemoProducesUsefulLabels) {
  NemoFramework nemo(context_, options_);
  const LabelQuality quality = RunAndMeasure(nemo, 30);
  EXPECT_GT(nemo.num_lfs(), 20);
  EXPECT_GT(quality.accuracy, 0.7);
  EXPECT_GT(quality.coverage, 0.3);
}

TEST_F(BaselinesTest, NemoLabelsComeFromLfCoverageOnly) {
  NemoFramework nemo(context_, options_);
  for (int t = 0; t < 10; ++t) ASSERT_TRUE(nemo.Step().ok());
  const std::vector<std::vector<double>> labels =
      nemo.CurrentTrainingLabels();
  int covered = 0;
  for (const auto& soft : labels) covered += !soft.empty();
  // With 10 keyword LFs coverage is partial.
  EXPECT_GT(covered, 0);
  EXPECT_LT(covered, split_.train.size());
}

TEST_F(BaselinesTest, IwsVerifiesOneCandidatePerStep) {
  IwsFramework iws(context_, options_);
  for (int t = 0; t < 20; ++t) ASSERT_TRUE(iws.Step().ok());
  EXPECT_EQ(iws.num_verified(), 20);
}

TEST_F(BaselinesTest, IwsLabelsImproveWithBudget) {
  IwsFramework iws(context_, options_);
  const LabelQuality early = RunAndMeasure(iws, 15);
  const LabelQuality late = RunAndMeasure(iws, 85);
  // More verifications -> coverage should not collapse; accuracy decent.
  EXPECT_GE(late.coverage, early.coverage * 0.5);
  EXPECT_GT(late.accuracy, 0.6);
}

TEST_F(BaselinesTest, RlfCorrectsLfOutputsOnLabelledRows) {
  RlfFramework rlf(context_, options_);
  const LabelQuality quality = RunAndMeasure(rlf, 30);
  EXPECT_EQ(rlf.num_labeled(), 30);
  EXPECT_GT(rlf.num_lfs(), 20);
  EXPECT_GT(quality.accuracy, 0.7);
  // RLF is label-model-only: every covered row has a proper soft label.
  const std::vector<std::vector<double>> labels =
      rlf.CurrentTrainingLabels();
  for (int i = 0; i < split_.train.size(); ++i) {
    if (labels[i].empty()) continue;
    EXPECT_NEAR(labels[i][0] + labels[i][1], 1.0, 1e-9);
  }
}

TEST_F(BaselinesTest, ActiveWeasulStepsAndImproves) {
  ActiveWeasulFramework aw(context_, options_);
  const LabelQuality quality = RunAndMeasure(aw, 40);
  EXPECT_EQ(aw.num_labeled(), 40);
  EXPECT_GT(aw.num_lfs(), 25);
  EXPECT_GT(quality.accuracy, 0.7);
  EXPECT_GT(quality.coverage, 0.3);
}

TEST_F(BaselinesTest, ActiveWeasulLabelsAreLfOnly) {
  // Rows with no active LF must stay uncovered even after many expert
  // labels — Active WeaSuL predicts through the label model only.
  ActiveWeasulFramework aw(context_, options_);
  for (int t = 0; t < 20; ++t) ASSERT_TRUE(aw.Step().ok());
  const std::vector<std::vector<double>> labels = aw.CurrentTrainingLabels();
  int covered = 0;
  for (const auto& soft : labels) covered += !soft.empty();
  EXPECT_GT(covered, 0);
  EXPECT_LT(covered, split_.train.size());
}

TEST(SemiSupervisedDawidSkeneTest, AnchorsOverrideVotes) {
  // One strongly wrong LF; anchoring a batch of rows to the truth must pull
  // the learned confusion toward reality.
  Rng rng(41);
  const int n = 800;
  std::vector<int> labels(n);
  for (auto& y : labels) y = rng.Bernoulli(0.5);
  LabelMatrix matrix(n);
  std::vector<int8_t> column(n);
  for (int i = 0; i < n; ++i) {
    // LF is only 55% accurate.
    column[i] = static_cast<int8_t>(rng.Bernoulli(0.55) ? labels[i]
                                                        : 1 - labels[i]);
  }
  matrix.AddColumn(std::move(column));
  std::vector<int> anchor_rows, anchor_values;
  for (int i = 0; i < 200; ++i) {
    anchor_rows.push_back(i);
    anchor_values.push_back(labels[i]);
  }
  DawidSkeneModel semi;
  ASSERT_TRUE(
      semi.FitSemiSupervised(matrix, 2, anchor_rows, anchor_values).ok());
  DawidSkeneModel unsupervised;
  ASSERT_TRUE(unsupervised.Fit(matrix, 2).ok());
  // Unsupervised EM on a single LF is self-confirming (the vote is the only
  // evidence, so the learned accuracy is near 1); the anchors reveal the LF
  // is really ~55% accurate and must pull the estimate down substantially.
  EXPECT_LT(semi.confusion(0)(0, 0) + 0.05, unsupervised.confusion(0)(0, 0));
  EXPECT_LT(semi.confusion(0)(1, 1) + 0.05, unsupervised.confusion(0)(1, 1));
  EXPECT_LT(semi.confusion(0)(0, 0), 0.9);
}

TEST(SemiSupervisedDawidSkeneTest, RejectsBadAnchors) {
  LabelMatrix matrix(3);
  matrix.AddColumn({0, 1, -1});
  DawidSkeneModel model;
  EXPECT_FALSE(model.FitSemiSupervised(matrix, 2, {5}, {0}).ok());
  EXPECT_FALSE(model.FitSemiSupervised(matrix, 2, {0}, {7}).ok());
  EXPECT_FALSE(model.FitSemiSupervised(matrix, 2, {0, 1}, {0}).ok());
}

TEST_F(BaselinesTest, UncertaintyLabelsExactlyTheQueriedRows) {
  UncertaintyFramework us(context_, options_);
  for (int t = 0; t < 25; ++t) ASSERT_TRUE(us.Step().ok());
  EXPECT_EQ(us.num_labeled(), 25);
  const std::vector<std::vector<double>> labels = us.CurrentTrainingLabels();
  int covered = 0;
  for (int i = 0; i < split_.train.size(); ++i) {
    if (labels[i].empty()) continue;
    ++covered;
    // One-hot ground truth.
    EXPECT_DOUBLE_EQ(labels[i][split_.train.example(i).label], 1.0);
  }
  EXPECT_EQ(covered, 25);
}

TEST_F(BaselinesTest, UncertaintyLabelQualityIsPerfect) {
  UncertaintyFramework us(context_, options_);
  const LabelQuality quality = RunAndMeasure(us, 20);
  EXPECT_DOUBLE_EQ(quality.accuracy, 1.0);
  EXPECT_NEAR(quality.coverage, 20.0 / split_.train.size(), 1e-12);
}

TEST_F(BaselinesTest, FactoryBuildsEveryFramework) {
  ActiveDpOptions adp;
  adp.seed = 7;
  for (FrameworkType type :
       {FrameworkType::kActiveDp, FrameworkType::kNemo, FrameworkType::kIws,
        FrameworkType::kRlf, FrameworkType::kUs}) {
    std::unique_ptr<InteractiveFramework> framework =
        MakeFramework(type, context_, adp);
    ASSERT_NE(framework, nullptr);
    EXPECT_TRUE(framework->Step().ok()) << FrameworkDisplayName(type);
  }
}

TEST_F(BaselinesTest, ParseFrameworkNames) {
  const auto parse = [](const std::string& name) {
    Result<FrameworkType> parsed = ParseFrameworkType(name);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return parsed.ok() ? *parsed : FrameworkType::kActiveDp;
  };
  EXPECT_EQ(parse("nemo"), FrameworkType::kNemo);
  EXPECT_EQ(parse("IWS"), FrameworkType::kIws);
  EXPECT_EQ(parse("rlf"), FrameworkType::kRlf);
  EXPECT_EQ(parse("us"), FrameworkType::kUs);
  EXPECT_EQ(parse("activedp"), FrameworkType::kActiveDp);
  EXPECT_EQ(parse("ActiveDP"), FrameworkType::kActiveDp);
}

TEST_F(BaselinesTest, ParseFrameworkRejectsUnknownNames) {
  // No silent default: a typo must surface, not benchmark ActiveDP.
  for (const std::string bad : {"", "actvedp", "snorkel", "nemo2"}) {
    const Result<FrameworkType> parsed = ParseFrameworkType(bad);
    ASSERT_FALSE(parsed.ok()) << "'" << bad << "' unexpectedly parsed";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find("framework"), std::string::npos);
  }
}

}  // namespace
}  // namespace activedp
