#include "ml/linear_model.h"

#include <gtest/gtest.h>

#include "ml/featurizer.h"
#include "util/rng.h"

namespace activedp {
namespace {

SparseVector Dense2(double a, double b) {
  SparseVector v;
  v.PushBack(0, a);
  v.PushBack(1, b);
  return v;
}

/// Linearly separable 2-D blobs.
void MakeBlobs(int n, double sep, Rng& rng, std::vector<SparseVector>* x,
               std::vector<int>* y) {
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    const double sign = label == 1 ? 1.0 : -1.0;
    x->push_back(
        Dense2(rng.Normal(sign * sep, 1.0), rng.Normal(sign * sep, 1.0)));
    y->push_back(label);
  }
}

TEST(LogisticRegressionTest, LearnsSeparableProblem) {
  Rng rng(3);
  std::vector<SparseVector> x;
  std::vector<int> y;
  MakeBlobs(300, 2.0, rng, &x, &y);
  Result<LogisticRegression> model = LogisticRegression::FitHard(x, y, 2, 2);
  ASSERT_TRUE(model.ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) correct += model->Predict(x[i]) == y[i];
  EXPECT_GT(correct / static_cast<double>(x.size()), 0.95);
}

TEST(LogisticRegressionTest, ProbabilitiesSumToOne) {
  Rng rng(5);
  std::vector<SparseVector> x;
  std::vector<int> y;
  MakeBlobs(100, 1.0, rng, &x, &y);
  Result<LogisticRegression> model = LogisticRegression::FitHard(x, y, 2, 2);
  ASSERT_TRUE(model.ok());
  for (int i = 0; i < 10; ++i) {
    const std::vector<double> p = model->PredictProba(x[i]);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
    EXPECT_GE(p[0], 0.0);
    EXPECT_GE(p[1], 0.0);
  }
}

TEST(LogisticRegressionTest, SoftLabelTrainingMatchesHardOnOneHot) {
  Rng rng(7);
  std::vector<SparseVector> x;
  std::vector<int> y;
  MakeBlobs(200, 1.5, rng, &x, &y);
  std::vector<std::vector<double>> soft(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    soft[i] = {y[i] == 0 ? 1.0 : 0.0, y[i] == 1 ? 1.0 : 0.0};
  }
  LogisticRegressionOptions options;
  options.seed = 9;
  Result<LogisticRegression> hard =
      LogisticRegression::FitHard(x, y, 2, 2, options);
  Result<LogisticRegression> softm =
      LogisticRegression::Fit(x, soft, 2, 2, options);
  ASSERT_TRUE(hard.ok());
  ASSERT_TRUE(softm.ok());
  // Same data, same seed -> identical predictions.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(hard->Predict(x[i]), softm->Predict(x[i]));
  }
}

TEST(LogisticRegressionTest, UncertainSoftLabelsYieldUncertainModel) {
  // All targets 50/50 -> predictions should stay near 0.5.
  std::vector<SparseVector> x;
  std::vector<std::vector<double>> soft;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    x.push_back(Dense2(rng.Normal(), rng.Normal()));
    soft.push_back({0.5, 0.5});
  }
  Result<LogisticRegression> model = LogisticRegression::Fit(x, soft, 2, 2);
  ASSERT_TRUE(model.ok());
  const std::vector<double> p = model->PredictProba(Dense2(0.3, -0.2));
  EXPECT_NEAR(p[1], 0.5, 0.1);
}

TEST(LogisticRegressionTest, SampleWeightsZeroExcludesExamples) {
  // Two contradictory clusters; zero-weighting one side flips the model.
  std::vector<SparseVector> x = {Dense2(1, 1), Dense2(1.1, 0.9),
                                 Dense2(1, 0.8), Dense2(0.9, 1.2)};
  std::vector<std::vector<double>> y = {
      {0.0, 1.0}, {0.0, 1.0}, {1.0, 0.0}, {1.0, 0.0}};
  LogisticRegressionOptions options;
  options.epochs = 80;
  Result<LogisticRegression> pos = LogisticRegression::Fit(
      x, y, 2, 2, options, /*sample_weights=*/{1.0, 1.0, 0.0, 0.0});
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos->Predict(Dense2(1, 1)), 1);
  Result<LogisticRegression> neg = LogisticRegression::Fit(
      x, y, 2, 2, options, /*sample_weights=*/{0.0, 0.0, 1.0, 1.0});
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->Predict(Dense2(1, 1)), 0);
}

TEST(LogisticRegressionTest, MulticlassSoftmax) {
  // Three separable clusters on a line.
  Rng rng(13);
  std::vector<SparseVector> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    const int label = rng.UniformInt(3);
    x.push_back(Dense2(rng.Normal(3.0 * label, 0.5), 0.0));
    y.push_back(label);
  }
  Result<LogisticRegression> model = LogisticRegression::FitHard(x, y, 3, 2);
  ASSERT_TRUE(model.ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) correct += model->Predict(x[i]) == y[i];
  EXPECT_GT(correct / static_cast<double>(x.size()), 0.9);
}

TEST(LogisticRegressionTest, InvalidInputsRejected) {
  EXPECT_FALSE(LogisticRegression::FitHard({}, {}, 2, 2).ok());
  std::vector<SparseVector> x = {Dense2(1, 1)};
  EXPECT_FALSE(LogisticRegression::FitHard(x, {0, 1}, 2, 2).ok());
  EXPECT_FALSE(LogisticRegression::FitHard(x, {5}, 2, 2).ok());
  EXPECT_FALSE(LogisticRegression::FitHard(x, {0}, 1, 2).ok());
}

TEST(LogisticRegressionTest, DeterministicForSeed) {
  Rng rng(17);
  std::vector<SparseVector> x;
  std::vector<int> y;
  MakeBlobs(100, 0.5, rng, &x, &y);
  LogisticRegressionOptions options;
  options.seed = 21;
  Result<LogisticRegression> a =
      LogisticRegression::FitHard(x, y, 2, 2, options);
  Result<LogisticRegression> b =
      LogisticRegression::FitHard(x, y, 2, 2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a->PredictProba(x[i]), b->PredictProba(x[i]));
  }
}

}  // namespace
}  // namespace activedp
