#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "util/deadline.h"
#include "util/status.h"
#include "util/timer.h"

namespace activedp {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  // Destroying the pool with a deep queue must run every queued task (a
  // dropped task would lose an experiment seed's result silently).
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    // No Wait(): the destructor itself is the drain under test.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ErrorStatusTasksDoNotPoisonThePool) {
  // The seed-parallel experiment runner stores one Status per task; a task
  // that fails must report through its slot while the rest keep running.
  ThreadPool pool(4);
  std::vector<Status> statuses(32, Status::Ok());
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&statuses, i] {
      statuses[i] = (i % 3 == 0)
                        ? Status::Internal("task " + std::to_string(i))
                        : Status::Ok();
    });
  }
  pool.Wait();
  int failed = 0;
  for (int i = 0; i < 32; ++i) {
    if (!statuses[i].ok()) {
      ++failed;
      EXPECT_EQ(statuses[i].code(), StatusCode::kInternal);
    }
  }
  EXPECT_EQ(failed, 11);  // i = 0, 3, 6, ..., 30

  // The pool is still usable after error-status tasks.
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(200);
  ParallelFor(&pool, 200, [&](int i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&](int) { called = true; });
  EXPECT_FALSE(called);
}

// --- Batch-scoped waiting (regression: Wait used to latch a pool-global
// pending counter, so concurrent batches waited on each other's tasks and a
// nested batch deadlocked). ---

TEST(TaskBatchTest, WaitDoesNotBlockOnOtherBatchesTasks) {
  ThreadPool pool(4);
  // Batch B parks a task on a promise that is only released *after* batch
  // A's Wait() returns. With a pool-global counter this deadlocks; with
  // per-batch latches A's Wait sees only A's tasks.
  std::promise<void> release_b;
  std::shared_future<void> gate(release_b.get_future());
  TaskBatch batch_b(&pool);
  batch_b.Submit([gate] { gate.wait(); });

  std::atomic<int> a_count{0};
  TaskBatch batch_a(&pool);
  for (int i = 0; i < 8; ++i) {
    batch_a.Submit([&a_count] { a_count.fetch_add(1); });
  }
  batch_a.Wait();  // must return while B's task is still parked
  EXPECT_EQ(a_count.load(), 8);

  release_b.set_value();
  batch_b.Wait();
}

TEST(ThreadPoolTest, ConcurrentParallelForBatchesComplete) {
  // Two threads drive independent ParallelFor batches over one pool; both
  // must finish promptly (the issue's regression deadline: well under 5s).
  ThreadPool pool(4);
  Timer timer;
  std::atomic<int> total{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 2; ++t) {
    drivers.emplace_back([&pool, &total] {
      ParallelFor(&pool, 200, [&total](int) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        total.fetch_add(1);
      });
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(total.load(), 400);
  EXPECT_LT(timer.ElapsedSeconds(), 5.0);
}

TEST(ParallelForTest, NestedCallFallsBackToInline) {
  // A ParallelFor issued from inside a worker of the same pool must not
  // block that worker on work only workers can run. With 2 workers and 4
  // outer iterations, the old design deadlocked; the new one runs the inner
  // loops inline.
  ThreadPool pool(2);
  Timer timer;
  std::atomic<int> inner_total{0};
  ParallelFor(&pool, 4, [&pool, &inner_total](int) {
    ParallelFor(&pool, 8, [&inner_total](int) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_LT(timer.ElapsedSeconds(), 5.0);
}

// --- Exception safety (regression: a throwing body escaped the worker
// thread and called std::terminate). ---

TEST(ParallelForTest, ThrowingBodyRethrowsInCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [](int i) {
                    if (i == 13) throw std::runtime_error("body failed");
                  }),
      std::runtime_error);

  // The pool survives and the next batch is clean.
  std::atomic<int> counter{0};
  ParallelFor(&pool, 10, [&counter](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, ThrowingBodyRethrowsInlineToo) {
  EXPECT_THROW(ParallelFor(nullptr, 5,
                           [](int i) {
                             if (i == 2) throw std::runtime_error("inline");
                           }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SubmitWaitRethrowsFirstException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("legacy submit"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);

  // Usable after the failed wave.
  std::atomic<int> counter{0};
  for (int i = 0; i < 4; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 4);
}

TEST(TaskBatchTest, CancelSkipsBodiesNotYetStarted) {
  ThreadPool pool(2);
  TaskBatch batch(&pool);
  batch.Cancel();
  std::atomic<int> ran{0};
  batch.Submit([&ran] { ran.fetch_add(1); });
  batch.Wait();
  EXPECT_EQ(ran.load(), 0);
}

// --- Chunked loops: RunLimits per chunk, deterministic boundaries. ---

TEST(ParallelForChunksTest, HonorsCancellationPerChunk) {
  ThreadPool pool(2);
  CancellationSource source;
  source.Cancel();
  RunLimits limits;
  limits.cancel = source.token();
  std::atomic<int> ran{0};
  const Status status =
      ParallelForChunks(&pool, 100, 10, limits, "test.stage",
                        [&ran](int, int, int) { ran.fetch_add(1); });
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForChunksTest, HonorsDeadlinePerChunk) {
  ThreadPool pool(2);
  RunLimits limits;
  limits.deadline = Deadline::After(0.0);
  const Status status = ParallelForChunks(&pool, 100, 10, limits,
                                          "test.stage", [](int, int, int) {});
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ParallelForChunksTest, ChunkBoundariesIndependentOfThreadCount) {
  auto collect = [](ThreadPool* pool) {
    std::mutex mutex;
    std::vector<std::tuple<int, int, int>> chunks;
    const Status status = ParallelForChunks(
        pool, 1003, 64, RunLimits::Unlimited(), "test.stage",
        [&](int chunk, int begin, int end) {
          std::lock_guard<std::mutex> lock(mutex);
          chunks.emplace_back(chunk, begin, end);
        });
    EXPECT_TRUE(status.ok());
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  ThreadPool pool(4);
  EXPECT_EQ(collect(nullptr), collect(&pool));
}

TEST(ParallelForChunksTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(517);
  const Status status = ParallelForChunks(
      &pool, 517, 32, RunLimits::Unlimited(), "test.stage",
      [&counts](int, int begin, int end) {
        for (int i = begin; i < end; ++i) counts[i].fetch_add(1);
      });
  EXPECT_TRUE(status.ok());
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(BoundedGrainTest, CapsChunkCountAndRespectsMinimum) {
  EXPECT_EQ(BoundedGrain(100, 10, 4), 25);   // 4 chunks of 25
  EXPECT_EQ(BoundedGrain(100, 50, 4), 50);   // min_grain dominates
  EXPECT_EQ(NumChunks(100, 25), 4);
  EXPECT_EQ(NumChunks(0, 25), 0);
  EXPECT_EQ(NumChunks(1, 25), 1);
}

TEST(ComputePoolTest, SerialByDefaultAndReconfigurable) {
  EXPECT_GE(ComputePoolThreads(), 1);
  SetComputePoolThreads(3);
  EXPECT_EQ(ComputePoolThreads(), 3);
  ASSERT_NE(ComputePool(), nullptr);
  std::atomic<int> counter{0};
  ParallelFor(ComputePool(), 50, [&counter](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
  SetComputePoolThreads(1);
  EXPECT_EQ(ComputePool(), nullptr);
}

}  // namespace
}  // namespace activedp
