#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/status.h"

namespace activedp {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  // Destroying the pool with a deep queue must run every queued task (a
  // dropped task would lose an experiment seed's result silently).
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    // No Wait(): the destructor itself is the drain under test.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ErrorStatusTasksDoNotPoisonThePool) {
  // The seed-parallel experiment runner stores one Status per task; a task
  // that fails must report through its slot while the rest keep running.
  ThreadPool pool(4);
  std::vector<Status> statuses(32, Status::Ok());
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&statuses, i] {
      statuses[i] = (i % 3 == 0)
                        ? Status::Internal("task " + std::to_string(i))
                        : Status::Ok();
    });
  }
  pool.Wait();
  int failed = 0;
  for (int i = 0; i < 32; ++i) {
    if (!statuses[i].ok()) {
      ++failed;
      EXPECT_EQ(statuses[i].code(), StatusCode::kInternal);
    }
  }
  EXPECT_EQ(failed, 11);  // i = 0, 3, 6, ..., 30

  // The pool is still usable after error-status tasks.
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(200);
  ParallelFor(&pool, 200, [&](int i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&](int) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace activedp
