#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace activedp {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(200);
  ParallelFor(&pool, 200, [&](int i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&](int) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace activedp
