#include "lf/lf_candidates.h"

#include <gtest/gtest.h>

#include <map>

#include "data/synthetic_tabular.h"
#include "data/synthetic_text.h"
#include "lf/lf_applier.h"
#include "util/rng.h"

namespace activedp {
namespace {

Dataset SmallTextDataset() {
  SyntheticTextConfig config;
  config.num_examples = 300;
  config.label_noise = 0.0;
  Rng rng(3);
  return GenerateSyntheticText(config, rng);
}

Dataset SmallTabularDataset() {
  SyntheticTabularConfig config;
  config.num_examples = 250;
  config.num_features = 4;
  Rng rng(5);
  return GenerateSyntheticTabular(config, rng);
}

TEST(TextLfSpaceTest, CandidateStatsMatchBruteForce) {
  const Dataset dataset = SmallTextDataset();
  const auto space = BuildLfSpace(dataset);
  const std::vector<int> labels = dataset.Labels();
  const std::vector<LfCandidate> candidates =
      space->CandidatesFor(dataset.example(0), /*min_accuracy=*/-1.0,
                           /*target_label=*/-1);
  ASSERT_FALSE(candidates.empty());
  for (const auto& candidate : candidates) {
    const LfColumnStats stats =
        ComputeColumnStats(ApplyLf(*candidate.lf, dataset), labels);
    EXPECT_NEAR(candidate.coverage, stats.coverage, 1e-12)
        << candidate.lf->Name();
    EXPECT_NEAR(candidate.train_accuracy, stats.accuracy, 1e-12)
        << candidate.lf->Name();
  }
}

TEST(TextLfSpaceTest, CandidatesAnchoredAtExample) {
  const Dataset dataset = SmallTextDataset();
  const auto space = BuildLfSpace(dataset);
  const Example& x = dataset.example(7);
  for (const auto& candidate :
       space->CandidatesFor(x, -1.0, /*target_label=*/-1)) {
    // Every candidate must fire on the anchor example.
    EXPECT_NE(candidate.lf->Apply(x), kAbstain) << candidate.lf->Name();
  }
}

TEST(TextLfSpaceTest, AccuracyThresholdFilters) {
  const Dataset dataset = SmallTextDataset();
  const auto space = BuildLfSpace(dataset);
  for (const auto& candidate :
       space->CandidatesFor(dataset.example(0), 0.6, -1)) {
    EXPECT_GT(candidate.train_accuracy, 0.6);
  }
}

TEST(TextLfSpaceTest, TargetLabelFilters) {
  const Dataset dataset = SmallTextDataset();
  const auto space = BuildLfSpace(dataset);
  for (const auto& candidate :
       space->CandidatesFor(dataset.example(0), -1.0, /*target_label=*/1)) {
    EXPECT_EQ(candidate.lf->label(), 1);
  }
}

TEST(TextLfSpaceTest, AllCandidatesRespectMinCoverage) {
  const Dataset dataset = SmallTextDataset();
  const auto space = BuildLfSpace(dataset);
  const std::vector<LfCandidate> pool = space->AllCandidates(0.05);
  ASSERT_FALSE(pool.empty());
  for (const auto& candidate : pool) {
    EXPECT_GE(candidate.coverage, 0.05);
  }
  // Lower threshold yields at least as many candidates.
  EXPECT_GE(space->AllCandidates(0.01).size(), pool.size());
}

TEST(TabularLfSpaceTest, CandidateStatsMatchBruteForce) {
  const Dataset dataset = SmallTabularDataset();
  const auto space = BuildLfSpace(dataset);
  const std::vector<int> labels = dataset.Labels();
  const std::vector<LfCandidate> candidates =
      space->CandidatesFor(dataset.example(3), -1.0, -1);
  // 4 features x 2 ops x 2 classes, minus zero-coverage ones.
  EXPECT_GT(candidates.size(), 8u);
  for (const auto& candidate : candidates) {
    const LfColumnStats stats =
        ComputeColumnStats(ApplyLf(*candidate.lf, dataset), labels);
    EXPECT_NEAR(candidate.coverage, stats.coverage, 1e-12)
        << candidate.lf->Name();
    EXPECT_NEAR(candidate.train_accuracy, stats.accuracy, 1e-12)
        << candidate.lf->Name();
  }
}

TEST(TabularLfSpaceTest, StumpsAnchoredAtExampleValues) {
  const Dataset dataset = SmallTabularDataset();
  const auto space = BuildLfSpace(dataset);
  const Example& x = dataset.example(11);
  for (const auto& candidate : space->CandidatesFor(x, -1.0, -1)) {
    const auto* stump =
        dynamic_cast<const ThresholdLf*>(candidate.lf.get());
    ASSERT_NE(stump, nullptr);
    EXPECT_DOUBLE_EQ(stump->threshold(), x.features[stump->feature()]);
    EXPECT_NE(candidate.lf->Apply(x), kAbstain);
  }
}

TEST(TabularLfSpaceTest, DecileGridStatsMatchBruteForce) {
  const Dataset dataset = SmallTabularDataset();
  const auto space = BuildLfSpace(dataset);
  const std::vector<int> labels = dataset.Labels();
  for (const auto& candidate : space->AllCandidates(0.0)) {
    const LfColumnStats stats =
        ComputeColumnStats(ApplyLf(*candidate.lf, dataset), labels);
    EXPECT_NEAR(candidate.coverage, stats.coverage, 1e-12);
    EXPECT_NEAR(candidate.train_accuracy, stats.accuracy, 1e-12);
  }
}

}  // namespace
}  // namespace activedp
