// Fault-injection suite: unit tests of the injector itself, then the
// end-to-end degradation matrix — every armed site must leave the ActiveDP
// pipeline running (no abort), leave a structured recovery record, and keep
// final label accuracy within 5 points of the fault-free run.

#include "util/fault.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/activedp.h"
#include "core/session_io.h"
#include "data/dataset_zoo.h"
#include "ml/metrics.h"

namespace activedp {
namespace {

// ------------------------------------------------------------- injector ----

TEST(FaultInjectorTest, DisarmedSiteReturnsNone) {
  FaultInjector::Global().DisarmAll();
  EXPECT_FALSE(FaultInjector::Global().any_armed());
  EXPECT_EQ(CheckFault("glasso.solve"), FaultKind::kNone);
}

TEST(FaultInjectorTest, ArmedSiteFiresAndCounts) {
  FaultScope fault("test.site", FaultKind::kError);
  EXPECT_TRUE(FaultInjector::Global().any_armed());
  EXPECT_EQ(CheckFault("test.site"), FaultKind::kError);
  EXPECT_EQ(CheckFault("test.other"), FaultKind::kNone);
  EXPECT_EQ(fault.fire_count(), 1);
  EXPECT_EQ(FaultInjector::Global().hit_count("test.site"), 1);
}

TEST(FaultInjectorTest, TriggerAfterSkipsEarlyHits) {
  FaultSpec spec;
  spec.kind = FaultKind::kNan;
  spec.trigger_after = 2;
  FaultScope fault("test.site", spec);
  EXPECT_EQ(CheckFault("test.site"), FaultKind::kNone);
  EXPECT_EQ(CheckFault("test.site"), FaultKind::kNone);
  EXPECT_EQ(CheckFault("test.site"), FaultKind::kNan);
  EXPECT_EQ(fault.fire_count(), 1);
}

TEST(FaultInjectorTest, MaxFiresLimitsInjections) {
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.max_fires = 2;
  FaultScope fault("test.site", spec);
  EXPECT_EQ(CheckFault("test.site"), FaultKind::kError);
  EXPECT_EQ(CheckFault("test.site"), FaultKind::kError);
  EXPECT_EQ(CheckFault("test.site"), FaultKind::kNone);
  EXPECT_EQ(fault.fire_count(), 2);
  EXPECT_EQ(FaultInjector::Global().hit_count("test.site"), 3);
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicGivenSeed) {
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 0.5;
  spec.seed = 99;
  std::vector<FaultKind> first, second;
  {
    FaultScope fault("test.site", spec);
    for (int i = 0; i < 32; ++i) first.push_back(CheckFault("test.site"));
  }
  {
    FaultScope fault("test.site", spec);
    for (int i = 0; i < 32; ++i) second.push_back(CheckFault("test.site"));
  }
  EXPECT_EQ(first, second);
  int fires = 0;
  for (FaultKind kind : first) fires += (kind == FaultKind::kError);
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 32);
}

TEST(FaultInjectorTest, FaultScopeDisarmsOnDestruction) {
  {
    FaultScope fault("test.site", FaultKind::kError);
    EXPECT_EQ(CheckFault("test.site"), FaultKind::kError);
  }
  EXPECT_EQ(CheckFault("test.site"), FaultKind::kNone);
  EXPECT_FALSE(FaultInjector::Global().any_armed());
}

TEST(FaultInjectorTest, FaultScopeArmsSeveralSites) {
  FaultScope scope("test.a", FaultKind::kError);
  scope.Arm("test.b", FaultKind::kNan);
  EXPECT_EQ(CheckFault("test.a"), FaultKind::kError);
  EXPECT_EQ(CheckFault("test.b"), FaultKind::kNan);
  EXPECT_EQ(CheckFault("test.b"), FaultKind::kNan);
  EXPECT_EQ(scope.fire_count("test.a"), 1);
  EXPECT_EQ(scope.fire_count("test.b"), 2);
  EXPECT_EQ(scope.total_fires(), 3);
}

TEST(FaultInjectorTest, UnhonoredKindDoesNotFire) {
  // A site only honors the kinds it can express: an armed-but-unhonored
  // kind neither fires nor counts as a fire (it still counts as a hit) —
  // the invariant the chaos sweep's "every fire leaves evidence" check
  // rests on.
  FaultScope fault("test.site", FaultKind::kTruncateWrite);
  EXPECT_EQ(CheckFault("test.site", {FaultKind::kError, FaultKind::kNan}),
            FaultKind::kNone);
  EXPECT_EQ(fault.fire_count(), 0);
  EXPECT_EQ(FaultInjector::Global().hit_count("test.site"), 1);
  // The same armed kind fires once a caller honors it.
  EXPECT_EQ(CheckFault("test.site", {FaultKind::kTruncateWrite}),
            FaultKind::kTruncateWrite);
  EXPECT_EQ(fault.fire_count(), 1);
}

// ------------------------------------------------- degradation matrix -----

/// Pipeline accuracy must stay within this many points of the fault-free
/// run under any single injected fault (acceptance bound of the suite).
constexpr double kAccuracyBound = 0.05;
constexpr int kSteps = 60;

class FaultPipelineTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    Result<DataSplit> split = MakeZooDataset("youtube", 1.0, 101);
    ASSERT_TRUE(split.ok());
    split_ = std::move(*split);
    context_ = FrameworkContext::Build(split_);
  }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  ActiveDpOptions Options() const {
    ActiveDpOptions options;
    options.seed = 7;
    return options;
  }

  /// Runs kSteps interactions; every Step() must succeed (the pipeline
  /// never aborts under injected faults). Returns final label accuracy.
  double RunToCompletion(ActiveDp& pipeline) {
    for (int t = 0; t < kSteps; ++t) {
      const Status status = pipeline.Step();
      if (!status.ok()) {
        ADD_FAILURE() << "Step " << t << " failed: " << status.ToString();
        break;
      }
    }
    return MeasureLabelQuality(pipeline.CurrentTrainingLabels(), split_.train)
        .accuracy;
  }

  double FaultFreeAccuracy(const ActiveDpOptions& options) {
    ActiveDp pipeline(context_, options);
    const double accuracy = RunToCompletion(pipeline);
    EXPECT_TRUE(pipeline.recovery().empty())
        << pipeline.recovery().Summary();
    return accuracy;
  }

  DataSplit split_;
  FrameworkContext context_;
};

TEST_F(FaultPipelineTest, GlassoFailureDegradesToPruningOnlyLabelPick) {
  ActiveDpOptions options = Options();
  options.label_pick.blanket.method = BlanketMethod::kGraphicalLasso;
  const double baseline = FaultFreeAccuracy(options);

  FaultScope fault("glasso.solve", FaultKind::kError);
  ActiveDp pipeline(context_, options);
  const double accuracy = RunToCompletion(pipeline);
  EXPECT_GT(fault.fire_count(), 0);
  // Retry-before-degrade: the solve was retried at full quality before the
  // neighborhood-selection fallback fired.
  EXPECT_GT(pipeline.retry_log().count("glasso.solve"), 0)
      << pipeline.retry_log().Summary();
  EXPECT_GT(pipeline.recovery().count("glasso"), 0)
      << pipeline.recovery().Summary();
  EXPECT_NEAR(accuracy, baseline, kAccuracyBound);
}

TEST_F(FaultPipelineTest, MetalNanDegradesToMajorityVote) {
  const ActiveDpOptions options = Options();
  const double baseline = FaultFreeAccuracy(options);

  FaultScope fault("metal.fit", FaultKind::kNan);
  ActiveDp pipeline(context_, options);
  const double accuracy = RunToCompletion(pipeline);
  EXPECT_GT(fault.fire_count(), 0);
  EXPECT_TRUE(pipeline.has_label_model());
  EXPECT_TRUE(pipeline.using_fallback_label_model());
  EXPECT_GT(pipeline.recovery().count("label_model"), 0)
      << pipeline.recovery().Summary();
  EXPECT_NEAR(accuracy, baseline, kAccuracyBound);
}

TEST_F(FaultPipelineTest, MetalTransientFaultAbsorbedByRetry) {
  // A transient fault (two fires, then clear) is absorbed inside one
  // retrain by the retry layer: the default policy's three attempts cover
  // both fires, so the degradation cascade never engages.
  FaultSpec spec;
  spec.kind = FaultKind::kNan;
  spec.max_fires = 2;
  FaultScope fault("metal.fit", spec);
  ActiveDp pipeline(context_, Options());
  RunToCompletion(pipeline);
  EXPECT_EQ(fault.fire_count(), 2);
  EXPECT_FALSE(pipeline.using_fallback_label_model());
  EXPECT_TRUE(pipeline.has_label_model());
  EXPECT_GE(pipeline.retry_log().count("label_model.fit"), 2)
      << pipeline.retry_log().Summary();
  EXPECT_GE(pipeline.retry_log().recovered_count("label_model.fit"), 2)
      << pipeline.retry_log().Summary();
  EXPECT_EQ(pipeline.recovery().count("label_model"), 0)
      << pipeline.recovery().Summary();
}

TEST_F(FaultPipelineTest, AlModelNonConvergenceDegradesToLabelModelOnly) {
  const ActiveDpOptions options = Options();
  const double baseline = FaultFreeAccuracy(options);

  FaultScope fault("lr.fit", FaultKind::kNoConverge);
  ActiveDp pipeline(context_, options);
  const double accuracy = RunToCompletion(pipeline);
  EXPECT_GT(fault.fire_count(), 0);
  EXPECT_FALSE(pipeline.has_al_model());
  EXPECT_TRUE(pipeline.has_label_model());
  EXPECT_GT(pipeline.recovery().count("al_model"), 0)
      << pipeline.recovery().Summary();
  EXPECT_NEAR(accuracy, baseline, kAccuracyBound);
}

TEST_F(FaultPipelineTest, EmptyOracleResponsesAreSpentInteractions) {
  const ActiveDpOptions options = Options();
  const double baseline = FaultFreeAccuracy(options);

  FaultSpec spec;
  spec.kind = FaultKind::kEmptyResponse;
  spec.trigger_after = 5;
  spec.max_fires = 3;
  FaultScope fault("oracle.create_lf", spec);
  ActiveDp pipeline(context_, options);
  const double accuracy = RunToCompletion(pipeline);
  EXPECT_EQ(fault.fire_count(), 3);
  // Each empty response consumed its interaction without yielding an LF
  // (no retry loop, no abort), so at most kSteps - 3 LFs exist.
  EXPECT_LE(pipeline.lfs().size() + 3, static_cast<size_t>(kSteps));
  // Injected empties are accounted in the recovery log (natural empties
  // from a fault-free oracle are not).
  EXPECT_GT(pipeline.recovery().count("oracle"), 0)
      << pipeline.recovery().Summary();
  EXPECT_NEAR(accuracy, baseline, kAccuracyBound);
}

TEST_F(FaultPipelineTest, ChaosRunSurvivesAllSitesArmedAtOnce) {
  ActiveDpOptions options = Options();
  options.label_pick.blanket.method = BlanketMethod::kGraphicalLasso;
  const double baseline = FaultFreeAccuracy(options);

  FaultScope glasso("glasso.solve", FaultKind::kError);
  FaultSpec metal;
  metal.kind = FaultKind::kNan;
  metal.max_fires = 2;
  FaultScope metal_fault("metal.fit", metal);
  FaultSpec lr;
  lr.kind = FaultKind::kNoConverge;
  lr.max_fires = 2;
  FaultScope lr_fault("lr.fit", lr);
  FaultSpec oracle;
  oracle.kind = FaultKind::kEmptyResponse;
  oracle.trigger_after = 4;
  oracle.max_fires = 2;
  FaultScope oracle_fault("oracle.create_lf", oracle);

  ActiveDp pipeline(context_, options);
  const double accuracy = RunToCompletion(pipeline);
  EXPECT_FALSE(pipeline.recovery().empty());
  EXPECT_NEAR(accuracy, baseline, kAccuracyBound);
}

// ------------------------------------------------- session truncation -----

SessionState SmallSession() {
  SessionState state;
  state.lfs.push_back(std::make_shared<KeywordLf>(3, "check", 1));
  state.lfs.push_back(std::make_shared<KeywordLf>(7, "song", 0));
  state.lfs.push_back(std::make_shared<ThresholdLf>(
      2, 0.25, StumpOp::kGreaterEqual, 1));
  state.query_indices = {4, 9, -1};
  state.pseudo_labels = {1, 0, -1};
  return state;
}

TEST(SessionFaultTest, TruncatedWriteIsDetectedAtLoad) {
  const std::string path = testing::TempDir() + "/truncated_session.txt";
  {
    FaultScope fault("session.save", FaultKind::kTruncateWrite);
    // The truncated write reports success — exactly what a process killed
    // mid-save would have observed.
    EXPECT_TRUE(SaveSession(SmallSession(), path).ok());
    EXPECT_EQ(fault.fire_count(), 1);
  }
  Result<SessionState> loaded = LoadSession(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
      << loaded.status().ToString();

  // A clean save over the same path heals it.
  ASSERT_TRUE(SaveSession(SmallSession(), path).ok());
  Result<SessionState> healed = LoadSession(path);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->lfs.size(), 3u);
}

TEST(SessionFaultTest, SaveErrorIsReportedNotFatal) {
  const std::string path = testing::TempDir() + "/error_session.txt";
  FaultScope fault("session.save", FaultKind::kError);
  const Status status = SaveSession(SmallSession(), path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace activedp
