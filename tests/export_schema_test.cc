// Export-schema tests: every machine-readable artifact the OpsPlane emits
// — Chrome trace JSON, the metrics JSON / Prometheus text expositions, the
// SLO status JSON, and incident dump manifests — parses under a strict
// checker, and the readers reject malformed or truncated inputs instead of
// mis-parsing them. These are the formats external tooling (Perfetto, a
// Prometheus scraper, the incident CLI in README.md) consumes, so schema
// drift must fail a test, not a dashboard.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "util/atomic_file.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace activedp {
namespace {

// Minimal recursive-descent JSON syntax checker (mirrors trace_test.cc) —
// enough to prove exported text is well-formed without a JSON dependency.
class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker checker(text);
    checker.SkipWs();
    if (!checker.Value()) return false;
    checker.SkipWs();
    return checker.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

RunTrace SampleTrace() {
  Tracer::Global().Enable();
  {
    TraceSpan outer("schema.outer");
    outer.AddArg("rows", 3);
    TraceSpan inner("schema.inner");
    TraceInstant("fault", "schema.site", "kind=error");
  }
  RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();
  return trace;
}

TEST(ExportSchemaTest, ChromeTraceJsonParses) {
  const RunTrace trace = SampleTrace();
  const std::string chrome = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker::Valid(chrome)) << chrome.substr(0, 200);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"i\""), std::string::npos);
  // Every JSONL line is itself a JSON object.
  std::istringstream lines(trace.ToJsonl());
  int checked = 0;
  for (std::string line; std::getline(lines, line);) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonChecker::Valid(line)) << line;
    ++checked;
  }
  EXPECT_GT(checked, 0);
  EXPECT_TRUE(JsonChecker::Valid(trace.Summary().ToJson()));
}

TEST(ExportSchemaTest, MetricsJsonAndPrometheusTextParse) {
  MetricsRegistry registry;
  registry.counter("schema.requests").Increment();
  registry.counter("schema.requests", {{"phase", "open"}}).Increment();
  registry.gauge("schema.age_seconds").Set(12.5);
  registry.histogram("schema.latency_ms", {{"phase", "closed"}}, {1, 5, 10})
      .Observe(3.0);

  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("schema.requests{phase="), std::string::npos) << json;

  const std::string prom = registry.ToPrometheusText();
  // Prometheus text exposition v0.0.4: "# TYPE" headers, sanitized names,
  // counters suffixed _total, histograms as cumulative _bucket/_sum/_count.
  EXPECT_NE(prom.find("# TYPE activedp_schema_requests_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("activedp_schema_requests_total{phase=\"open\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE activedp_schema_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("_bucket{"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("activedp_schema_latency_ms_count{"), std::string::npos);
  // Every non-comment line is "<name>{labels}? <value>".
  static const std::regex kSeries(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9eE+.inf]+$)");
  std::istringstream lines(prom);
  for (std::string line; std::getline(lines, line);) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_TRUE(std::regex_match(line, kSeries)) << line;
  }
}

TEST(ExportSchemaTest, SloStatusJsonParses) {
  SloEngine engine(DefaultServingSlos());
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"serve.requests", {}, 100});
  engine.TickWithSnapshot(0, snapshot);
  snapshot.counters[0].value = 200;
  engine.TickWithSnapshot(10'000'000, snapshot);
  const std::string json = engine.StatusJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"all_met\""), std::string::npos);
  EXPECT_NE(json.find("\"burn_short\""), std::string::npos);
}

class IncidentDumpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = FreshDir("schema_incident");
    FlightRecorder::Global().Enable({.incident_dir = dir_});
    TraceInstant("test", "schema_trigger", "cause=test");
    Result<std::string> dump =
        FlightRecorder::Global().TriggerIncident("schema.reason");
    ASSERT_TRUE(dump.ok()) << dump.status().ToString();
    dump_ = *dump;
    FlightRecorder::Global().Disable();
  }

  std::string ReadRaw(const std::string& name) {
    std::ifstream in(dump_ + "/" + name, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  void WriteRaw(const std::string& name, const std::string& content) {
    std::ofstream out(dump_ + "/" + name, std::ios::trunc | std::ios::binary);
    out << content;
  }

  std::string dir_;
  std::string dump_;
};

TEST_F(IncidentDumpFixture, ManifestAndPayloadsParse) {
  ASSERT_TRUE(VerifyIncidentDump(dump_).ok());
  const Result<IncidentManifest> manifest = ReadIncidentManifest(dump_);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->reason, "schema.reason");
  EXPECT_FALSE(manifest->files.empty());

  // Checksummed payloads are themselves schema-clean: the manifest and
  // metrics files are JSON, the timeline is JSONL.
  const Result<std::string> manifest_text =
      ReadFileVerifyingChecksum(dump_ + "/MANIFEST.json");
  ASSERT_TRUE(manifest_text.ok());
  EXPECT_TRUE(JsonChecker::Valid(*manifest_text)) << *manifest_text;
  const Result<std::string> metrics_text =
      ReadFileVerifyingChecksum(dump_ + "/metrics.json");
  ASSERT_TRUE(metrics_text.ok());
  EXPECT_TRUE(JsonChecker::Valid(*metrics_text));
  const Result<std::string> timeline =
      ReadFileVerifyingChecksum(dump_ + "/timeline.jsonl");
  ASSERT_TRUE(timeline.ok());
  std::istringstream lines(*timeline);
  for (std::string line; std::getline(lines, line);) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonChecker::Valid(line)) << line;
  }
}

TEST_F(IncidentDumpFixture, TruncatedManifestIsRejected) {
  const std::string original = ReadRaw("MANIFEST.json");
  WriteRaw("MANIFEST.json", original.substr(0, original.size() / 2));
  EXPECT_FALSE(VerifyIncidentDump(dump_).ok());
  EXPECT_FALSE(ReadIncidentManifest(dump_).ok());
}

TEST_F(IncidentDumpFixture, FlippedTimelineByteIsRejected) {
  std::string timeline = ReadRaw("timeline.jsonl");
  ASSERT_FALSE(timeline.empty());
  timeline[timeline.size() / 3] ^= 0x20;
  WriteRaw("timeline.jsonl", timeline);
  EXPECT_FALSE(VerifyIncidentDump(dump_).ok());
}

TEST_F(IncidentDumpFixture, MissingListedFileIsRejected) {
  std::filesystem::remove(dump_ + "/metrics.json");
  EXPECT_FALSE(VerifyIncidentDump(dump_).ok());
}

TEST_F(IncidentDumpFixture, GarbageManifestIsRejectedNotMisparsed) {
  WriteRaw("MANIFEST.json", "not json at all {{{");
  EXPECT_FALSE(ReadIncidentManifest(dump_).ok());
  EXPECT_FALSE(VerifyIncidentDump(dump_).ok());
}

TEST(ExportSchemaTest, WriteRunTraceEmitsChecksummedTriple) {
  const std::string dir = FreshDir("schema_run_trace");
  const RunTrace trace = SampleTrace();
  ASSERT_TRUE(WriteRunTrace(trace, dir, "SCHEMA").ok());
  for (const std::string name :
       {"SCHEMA.trace.jsonl", "SCHEMA.trace.chrome.json",
        "SCHEMA.trace.summary.json"}) {
    const Result<std::string> content =
        ReadFileVerifyingChecksum(dir + "/" + name);
    EXPECT_TRUE(content.ok()) << name;
  }
}

}  // namespace
}  // namespace activedp
