// Integration tests asserting the paper's qualitative claims (§4.2) on a
// small synthetic instance of the evaluation. These mirror the shapes the
// benchmark harness reports; see EXPERIMENTS.md for the full-size runs.

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace activedp {
namespace {

RunResult RunCell(FrameworkType framework, const std::string& dataset,
              double scale) {
  ExperimentSpec spec;
  spec.dataset = dataset;
  spec.framework = framework;
  spec.protocol.iterations = 60;
  spec.protocol.eval_every = 20;
  spec.data_scale = scale;
  spec.num_seeds = 2;
  spec.base_seed = 5;
  Result<RunResult> run = RunExperiment(spec);
  CHECK(run.ok()) << run.status().ToString();
  return *run;
}

TEST(PaperClaimsTest, ActiveDpBeatsUncertaintySamplingOnText) {
  // §4.2: "ActiveDP improves the downstream model's test set accuracy ...
  // compared to uncertainty sampling" — DP coverage gives it the early
  // advantage on text.
  const RunResult adp = RunCell(FrameworkType::kActiveDp, "youtube", 0.5);
  const RunResult us = RunCell(FrameworkType::kUs, "youtube", 0.5);
  EXPECT_GT(adp.average_test_accuracy, us.average_test_accuracy);
}

TEST(PaperClaimsTest, DpMethodsBeatPureAlAtSmallBudgets) {
  // §4.2: "when the label budget is small, ActiveDP, Nemo and Revising LF
  // outperform uncertainty sampling" — compare the first checkpoint.
  const RunResult adp = RunCell(FrameworkType::kActiveDp, "imdb", 0.1);
  const RunResult us = RunCell(FrameworkType::kUs, "imdb", 0.1);
  ASSERT_FALSE(adp.test_accuracy.empty());
  ASSERT_FALSE(us.test_accuracy.empty());
  EXPECT_GT(adp.test_accuracy.front(), us.test_accuracy.front());
}

TEST(PaperClaimsTest, IwsIsWeakEarly) {
  // §4.2: "IWS ... does not perform well in the early steps" — its first
  // checkpoint trails ActiveDP's.
  const RunResult adp = RunCell(FrameworkType::kActiveDp, "yelp", 0.1);
  const RunResult iws = RunCell(FrameworkType::kIws, "yelp", 0.1);
  ASSERT_FALSE(iws.test_accuracy.empty());
  EXPECT_LT(iws.test_accuracy.front(), adp.test_accuracy.front());
}

TEST(PaperClaimsTest, UncertaintySamplingImprovesWithBudget) {
  // §4.2: US "improves steadily" — its final checkpoint beats its first.
  const RunResult us = RunCell(FrameworkType::kUs, "census", 0.1);
  ASSERT_GE(us.test_accuracy.size(), 2u);
  EXPECT_GT(us.test_accuracy.back(), us.test_accuracy.front());
}

TEST(PaperClaimsTest, ActiveDpStrongOnTabular) {
  // §4.2: "ActiveDP maintains good performance with only a few queries"
  // on tabular data (α = 0.99 leans on the AL model).
  const RunResult adp = RunCell(FrameworkType::kActiveDp, "occupancy", 0.1);
  EXPECT_GT(adp.average_test_accuracy, 0.9);
}

TEST(PaperClaimsTest, LabelNoiseDegradesGracefully) {
  // §4.3.3: moderate injected noise must not collapse ActiveDP.
  ExperimentSpec spec;
  spec.dataset = "youtube";
  spec.framework = FrameworkType::kActiveDp;
  spec.protocol.iterations = 60;
  spec.protocol.eval_every = 20;
  spec.data_scale = 0.5;
  spec.num_seeds = 2;
  spec.base_seed = 9;
  Result<RunResult> clean = RunExperiment(spec);
  spec.adp.user.label_noise = 0.10;
  Result<RunResult> noisy = RunExperiment(spec);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(noisy.ok());
  EXPECT_GT(noisy->average_test_accuracy,
            clean->average_test_accuracy - 0.10);
}

}  // namespace
}  // namespace activedp
