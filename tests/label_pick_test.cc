#include "core/label_pick.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace activedp {
namespace {

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(EncodeWeakLabelTest, BinarySpinEncoding) {
  EXPECT_DOUBLE_EQ(EncodeWeakLabel(kAbstain, 2), 0.0);
  EXPECT_DOUBLE_EQ(EncodeWeakLabel(0, 2), -1.0);
  EXPECT_DOUBLE_EQ(EncodeWeakLabel(1, 2), 1.0);
}

TEST(EncodeWeakLabelTest, MulticlassCentered) {
  EXPECT_DOUBLE_EQ(EncodeWeakLabel(kAbstain, 3), 0.0);
  EXPECT_DOUBLE_EQ(EncodeWeakLabel(0, 3), -1.0);
  EXPECT_DOUBLE_EQ(EncodeWeakLabel(1, 3), 0.0);
  EXPECT_DOUBLE_EQ(EncodeWeakLabel(2, 3), 1.0);
}

struct PickFixtureResult {
  LabelMatrix valid{0};
  std::vector<int> valid_labels;
  LabelMatrix queries{0};
  std::vector<int> pseudo_labels;
};

/// Builds a scenario with 4 LFs:
///   0: accurate, informative
///   1: exact duplicate of 0 (redundant)
///   2: accurate, independent information
///   3: worse than random on validation
PickFixtureResult MakeScenario(int n_valid, int n_query, uint64_t seed) {
  Rng rng(seed);
  PickFixtureResult out;
  out.valid = LabelMatrix(n_valid);
  out.queries = LabelMatrix(n_query);

  std::vector<int> valid_labels(n_valid), query_labels(n_query);
  for (auto& y : valid_labels) y = rng.Bernoulli(0.5);
  for (auto& y : query_labels) y = rng.Bernoulli(0.5);

  auto make_column = [&](const std::vector<int>& labels, double accuracy,
                         Rng& r) {
    std::vector<int8_t> column(labels.size());
    for (size_t i = 0; i < labels.size(); ++i) {
      const bool correct = r.Bernoulli(accuracy);
      column[i] = static_cast<int8_t>(correct ? labels[i] : 1 - labels[i]);
    }
    return column;
  };

  // LF0 and its duplicate share one RNG stream so they agree exactly.
  Rng lf0_valid_rng(seed ^ 1), lf0_query_rng(seed ^ 2);
  const auto v0 = make_column(valid_labels, 0.9, lf0_valid_rng);
  const auto q0 = make_column(query_labels, 0.9, lf0_query_rng);
  out.valid.AddColumn(v0);
  out.queries.AddColumn(q0);
  out.valid.AddColumn(v0);  // duplicate
  out.queries.AddColumn(q0);
  Rng rest(seed ^ 3);
  out.valid.AddColumn(make_column(valid_labels, 0.85, rest));
  out.queries.AddColumn(make_column(query_labels, 0.85, rest));
  out.valid.AddColumn(make_column(valid_labels, 0.3, rest));  // harmful
  out.queries.AddColumn(make_column(query_labels, 0.3, rest));

  out.valid_labels = valid_labels;
  out.pseudo_labels = query_labels;
  return out;
}

TEST(LabelPickTest, PrunesWorseThanRandomLfs) {
  const PickFixtureResult scenario = MakeScenario(200, 60, 7);
  LabelPickOptions options;
  options.select_markov_blanket = false;  // isolate step 1
  Result<std::vector<int>> picked =
      LabelPick(4, 2, scenario.valid, scenario.valid_labels, scenario.queries,
                scenario.pseudo_labels, options);
  ASSERT_TRUE(picked.ok());
  EXPECT_TRUE(Contains(*picked, 0));
  EXPECT_TRUE(Contains(*picked, 2));
  EXPECT_FALSE(Contains(*picked, 3)) << "harmful LF survived";
}

TEST(LabelPickTest, BlanketDropsExactDuplicate) {
  const PickFixtureResult scenario = MakeScenario(300, 120, 11);
  LabelPickOptions options;
  options.blanket.method = BlanketMethod::kNeighborhoodSelection;
  options.blanket.penalty = 0.02;
  Result<std::vector<int>> picked =
      LabelPick(4, 2, scenario.valid, scenario.valid_labels, scenario.queries,
                scenario.pseudo_labels, options);
  ASSERT_TRUE(picked.ok());
  // The informative LFs stay; the duplicate pair 0/1 need not both stay.
  EXPECT_TRUE(Contains(*picked, 0) || Contains(*picked, 1));
  EXPECT_TRUE(Contains(*picked, 2));
  EXPECT_FALSE(Contains(*picked, 3));
  EXPECT_LT(picked->size(), 4u);
}

TEST(LabelPickTest, FewQueriesSkipBlanket) {
  const PickFixtureResult scenario = MakeScenario(100, 4, 13);
  LabelPickOptions options;
  options.min_queries_for_blanket = 10;
  Result<std::vector<int>> picked =
      LabelPick(4, 2, scenario.valid, scenario.valid_labels, scenario.queries,
                scenario.pseudo_labels, options);
  ASSERT_TRUE(picked.ok());
  // Only step-1 pruning applies.
  EXPECT_EQ(picked->size(), 3u);
}

TEST(LabelPickTest, NeverReturnsEmpty) {
  // All LFs worse than random: fall back to keeping everything.
  Rng rng(17);
  LabelMatrix valid(50);
  LabelMatrix queries(20);
  std::vector<int> valid_labels(50), pseudo(20, 1);
  for (auto& y : valid_labels) y = rng.Bernoulli(0.5);
  for (int j = 0; j < 2; ++j) {
    std::vector<int8_t> v(50), q(20, 1);
    for (int i = 0; i < 50; ++i) {
      v[i] = static_cast<int8_t>(1 - valid_labels[i]);  // always wrong
    }
    valid.AddColumn(std::move(v));
    queries.AddColumn(std::move(q));
  }
  Result<std::vector<int>> picked =
      LabelPick(2, 2, valid, valid_labels, queries, pseudo, {});
  ASSERT_TRUE(picked.ok());
  EXPECT_FALSE(picked->empty());
}

TEST(LabelPickTest, KeepsLfsThatNeverFireOnValidation) {
  Rng rng(19);
  LabelMatrix valid(50);
  LabelMatrix queries(30);
  std::vector<int> valid_labels(50), pseudo(30);
  for (auto& y : valid_labels) y = rng.Bernoulli(0.5);
  for (auto& y : pseudo) y = rng.Bernoulli(0.5);
  // LF that abstains everywhere on validation (unknown accuracy).
  valid.AddColumn(std::vector<int8_t>(50, kAbstain));
  std::vector<int8_t> q(30);
  for (int i = 0; i < 30; ++i) q[i] = static_cast<int8_t>(pseudo[i]);
  queries.AddColumn(std::move(q));
  LabelPickOptions options;
  options.select_markov_blanket = false;
  Result<std::vector<int>> picked =
      LabelPick(1, 2, valid, valid_labels, queries, pseudo, options);
  ASSERT_TRUE(picked.ok());
  EXPECT_TRUE(Contains(*picked, 0));
}

TEST(LabelPickTest, DisablingBothStepsKeepsAll) {
  const PickFixtureResult scenario = MakeScenario(100, 50, 23);
  LabelPickOptions options;
  options.prune_by_validation_accuracy = false;
  options.select_markov_blanket = false;
  Result<std::vector<int>> picked =
      LabelPick(4, 2, scenario.valid, scenario.valid_labels, scenario.queries,
                scenario.pseudo_labels, options);
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked->size(), 4u);
}

TEST(LabelPickTest, RejectsZeroLfs) {
  LabelMatrix empty(0);
  EXPECT_FALSE(LabelPick(0, 2, empty, {}, empty, {}, {}).ok());
}

}  // namespace
}  // namespace activedp
