// Serving quickstart: trains a small ActiveDP pipeline, exports the result
// as an immutable ModelSnapshot, persists it to disk (atomic write +
// checksum), reloads it, and serves predictions through the micro-batching
// PredictionService — including a live hot swap to a newer snapshot.
//
// Build & run:  cmake --build build && ./build/examples/serve_quickstart

#include <algorithm>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/activedp.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "serve/model_snapshot.h"
#include "serve/prediction_service.h"
#include "serve/snapshot_export.h"
#include "serve/snapshot_io.h"

using namespace activedp;  // NOLINT: example code

int main() {
  // 1. Train: same workflow as examples/quickstart, smaller budget.
  Result<DataSplit> split = MakeZooDataset("youtube", /*scale=*/0.25,
                                           /*seed=*/42);
  if (!split.ok()) {
    std::fprintf(stderr, "dataset: %s\n", split.status().ToString().c_str());
    return 1;
  }
  FrameworkContext context = FrameworkContext::Build(*split);
  ActiveDpOptions options;
  options.seed = 7;
  ActiveDp pipeline(context, options);
  for (int t = 0; t < 30; ++t) {
    if (!pipeline.Step().ok()) break;
  }

  // 2. Export: freeze the featurizer, selected LFs, label-model parameters,
  //    AL/end-model weights and the tuned ConFusion threshold into one
  //    immutable, versioned snapshot.
  Result<ModelSnapshot> exported = ExportSnapshot(pipeline, context);
  if (!exported.ok()) {
    std::fprintf(stderr, "export: %s\n",
                 exported.status().ToString().c_str());
    return 1;
  }
  std::printf("snapshot: %d classes, dim %d, %d LFs, tau=%.3f\n",
              exported->num_classes(), exported->feature_dim(),
              static_cast<int>(exported->state().lfs.size()),
              exported->threshold());

  // 3. Persist + reload. SaveSnapshot writes atomically with a checksum
  //    footer; LoadSnapshot rejects corrupt, truncated or future-version
  //    files. The loaded snapshot predicts bitwise-identically.
  const std::string path = "quickstart.snap";
  if (Status saved = SaveSnapshot(*exported, path); !saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  Result<ModelSnapshot> loaded = LoadSnapshot(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("saved and reloaded %s\n", path.c_str());

  // 4. Serve. The service micro-batches concurrent requests (flushing on
  //    batch size or max delay) and runs them on the compute pool. Served
  //    predictions are bitwise identical to offline ConFusion aggregation
  //    at any batch size or thread count.
  auto snapshot =
      std::make_shared<const ModelSnapshot>(std::move(*loaded));
  PredictionService service;
  service.LoadSnapshot(snapshot);

  // Raw text goes through the snapshot's own featurizer/tokenizer state —
  // exactly the same vocabulary and TF-IDF statistics as at training time.
  Result<Example> request =
      snapshot->MakeTextExample(split->train.example(0).text);
  if (!request.ok()) {
    std::fprintf(stderr, "featurize: %s\n",
                 request.status().ToString().c_str());
    return 1;
  }
  Result<ServedPrediction> response = service.Predict(*request);
  if (!response.ok()) {
    std::fprintf(stderr, "predict: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (response->label == kAbstain) {
    std::printf("served: abstain (ConFusion confidence below tau)\n");
  } else {
    std::printf("served: label=%d source=%d proba=[", response->label,
                static_cast<int>(response->source));
    for (size_t c = 0; c < response->proba.size(); ++c) {
      std::printf("%s%.3f", c ? ", " : "", response->proba[c]);
    }
    std::printf("]\n");
  }

  // A burst of async requests forms micro-batches.
  std::vector<std::future<Result<ServedPrediction>>> futures;
  const int burst = std::min(split->train.size(), 64);
  for (int i = 0; i < burst; ++i) {
    futures.push_back(service.PredictAsync(split->train.example(i)));
  }
  int ok = 0;
  for (auto& future : futures) ok += future.get().ok() ? 1 : 0;
  std::printf("burst: %d/%d requests served\n", ok, burst);

  // 5. Hot swap: train further, export a newer snapshot, publish it while
  //    the service stays up. In-flight batches drain on the old snapshot;
  //    new batches use the new one.
  for (int t = 0; t < 15; ++t) {
    if (!pipeline.Step().ok()) break;
  }
  Result<ModelSnapshot> updated = ExportSnapshot(pipeline, context);
  if (updated.ok()) {
    service.LoadSnapshot(
        std::make_shared<const ModelSnapshot>(std::move(*updated)));
    Result<ServedPrediction> after = service.Predict(*request);
    if (after.ok()) {
      std::printf("after hot swap: %s (no restart, no dropped requests)\n",
                  after->label == kAbstain
                      ? "abstain"
                      : ("label=" + std::to_string(after->label)).c_str());
    }
  }
  std::remove(path.c_str());
  return 0;
}
