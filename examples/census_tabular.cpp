// Tabular workflow on the Census-like income dataset: compares ActiveDP
// against pure active learning (uncertainty sampling) under the same
// interaction budget, reproducing the paper's tabular story — both improve
// steadily, ActiveDP is strong from the first checkpoints because decision
// stumps give it a warm start.
//
// Build & run:  cmake --build build && ./build/examples/census_tabular

#include <cstdio>

#include "core/experiment.h"
#include "data/dataset_zoo.h"

using namespace activedp;  // NOLINT: example code

int main() {
  Result<DataSplit> split = MakeZooDataset("census", /*scale=*/0.2,
                                           /*seed=*/11);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }
  std::printf("census-like dataset: train=%d valid=%d test=%d, %d features\n",
              split->train.size(), split->valid.size(), split->test.size(),
              split->train.meta().num_features);

  FrameworkContext context = FrameworkContext::Build(*split);
  ProtocolOptions protocol;
  protocol.iterations = 100;
  protocol.eval_every = 20;

  ActiveDpOptions options;
  options.seed = 3;
  // The ADP trade-off factor defaults to the paper's tabular setting
  // (alpha = 0.99, i.e. the sampler follows the AL model almost entirely).

  std::printf("\n%-10s", "budget");
  std::vector<RunResult> results;
  for (FrameworkType type : {FrameworkType::kActiveDp, FrameworkType::kUs}) {
    std::unique_ptr<InteractiveFramework> framework =
        MakeFramework(type, context, options);
    results.push_back(RunProtocol(*framework, context, protocol));
    std::printf("%-12s", FrameworkDisplayName(type).c_str());
  }
  std::printf("\n");
  for (size_t row = 0; row < results[0].budgets.size(); ++row) {
    std::printf("%-10d", results[0].budgets[row]);
    for (const auto& result : results) {
      std::printf("%-12.4f", result.test_accuracy[row]);
    }
    std::printf("\n");
  }
  std::printf("\naverage over the run: ActiveDP %.4f vs US %.4f\n",
              results[0].average_test_accuracy,
              results[1].average_test_accuracy);
  std::printf(
      "ActiveDP also reports its label quality: final accuracy %.3f at "
      "coverage %.3f\n",
      results[0].label_accuracy.back(), results[0].label_coverage.back());
  return 0;
}
