// Quickstart: walks the complete ActiveDP workflow of Fig. 1 on a small
// synthetic spam-like dataset — iterative LF creation in the training phase,
// ConFusion label aggregation at inference, then downstream-model training.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/activedp.h"
#include "core/end_model.h"
#include "core/experiment.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"

using namespace activedp;  // NOLINT: example code

int main() {
  // 1. Data. The zoo generates a synthetic stand-in for the paper's YouTube
  //    Spam dataset and splits it 80/10/10.
  Result<DataSplit> split = MakeZooDataset("youtube", /*scale=*/0.5,
                                           /*seed=*/42);
  if (!split.ok()) {
    std::fprintf(stderr, "dataset: %s\n", split.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: youtube-like  train=%d valid=%d test=%d\n",
              split->train.size(), split->valid.size(), split->test.size());

  // 2. Shared context: featurizer (TF-IDF) + featurized splits.
  FrameworkContext context = FrameworkContext::Build(*split);

  // 3. ActiveDP training phase: 60 interactive iterations. Each Step() asks
  //    the ADP sampler for a query instance and the (simulated) user for an
  //    LF; the pipeline maintains the pseudo-labelled set, the AL model and
  //    the LabelPick-filtered label model.
  ActiveDpOptions options;
  options.seed = 7;
  ActiveDp pipeline(context, options);
  for (int t = 1; t <= 60; ++t) {
    const Status status = pipeline.Step();
    if (!status.ok()) break;
    if (t % 20 == 0) {
      std::printf("iter %3d: %3d LFs collected, %2d selected by LabelPick\n",
                  t, static_cast<int>(pipeline.lfs().size()),
                  static_cast<int>(pipeline.selected_lfs().size()));
    }
  }

  // 4. Inference phase: ConFusion tunes the confidence threshold on the
  //    validation split and aggregates label-model + AL-model predictions.
  const std::vector<std::vector<double>> labels =
      pipeline.CurrentTrainingLabels();
  const LabelQuality quality = MeasureLabelQuality(labels, split->train);
  std::printf("aggregated labels: accuracy=%.3f coverage=%.3f (tau=%.3f)\n",
              quality.accuracy, quality.coverage, pipeline.last_threshold());

  // 5. Downstream model on the aggregated labels.
  Result<LogisticRegression> end_model =
      TrainEndModel(context.train_features, labels, context.num_classes,
                    context.feature_dim, EndModelOptions{});
  if (!end_model.ok()) {
    std::fprintf(stderr, "end model: %s\n",
                 end_model.status().ToString().c_str());
    return 1;
  }
  const double accuracy = EvaluateAccuracy(*end_model, context.test_features,
                                           context.test_labels);
  std::printf("downstream test accuracy: %.3f\n", accuracy);
  return 0;
}
