// Spam detection with hand-written label functions — the paper's Fig. 1
// running example, driven through the public LF / label-model API without
// the interactive loop. Shows how a user would bring their own rules:
//   "check"  -> SPAM,  "subscribe" -> SPAM,  "song" -> HAM, ...
// aggregates them with each label model, and trains a downstream classifier.
//
// Build & run:  cmake --build build && ./build/examples/spam_detection

#include <cstdio>

#include "core/end_model.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "labelmodel/label_model.h"
#include "lf/lf_applier.h"
#include "ml/featurizer.h"
#include "ml/metrics.h"

using namespace activedp;  // NOLINT: example code

int main() {
  // The synthetic YouTube-Spam stand-in. Class-1 keywords are named c1w<i>,
  // class-0 keywords c0w<i> (see data/synthetic_text.h); a real user would
  // write rules on words like "check" or "subscribe".
  Result<DataSplit> split = MakeZooDataset("youtube", 1.0, 7);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }
  const Dataset& train = split->train;
  const Vocabulary& vocab = train.vocabulary();

  // 1. Write keyword label functions against the vocabulary. We pick a few
  //    strong keywords per class, exactly what a domain expert would do
  //    after skimming some examples.
  std::vector<LfPtr> lfs;
  for (const char* word : {"c1w0", "c1w1", "c1w2", "c1w4", "c1w7"}) {
    const int id = vocab.GetId(word);
    if (id != Vocabulary::kUnknownId) {
      lfs.push_back(std::make_shared<KeywordLf>(id, word, /*label=*/1));
    }
  }
  for (const char* word : {"c0w0", "c0w1", "c0w3", "c0w5", "c0w8"}) {
    const int id = vocab.GetId(word);
    if (id != Vocabulary::kUnknownId) {
      lfs.push_back(std::make_shared<KeywordLf>(id, word, /*label=*/0));
    }
  }
  std::printf("wrote %zu label functions\n", lfs.size());

  // 2. Apply them to the unlabeled training set -> weak-label matrix.
  const LabelMatrix matrix = ApplyLfs(lfs, train);
  const std::vector<int> truth = train.Labels();
  std::printf("matrix: %d rows x %d LFs, coverage %.1f%%\n\n",
              matrix.num_rows(), matrix.num_cols(),
              100.0 * matrix.OverallCoverage());
  std::printf("%-28s %-9s %-9s\n", "LF", "coverage", "accuracy");
  for (int j = 0; j < matrix.num_cols(); ++j) {
    const LfColumnStats stats = ComputeColumnStats(matrix.column(j), truth);
    std::printf("%-28s %-9.3f %-9.3f\n", lfs[j]->Name().c_str(),
                stats.coverage, stats.accuracy);
  }

  // 3. Aggregate with each label model and compare label quality.
  std::printf("\n%-16s %-10s %-10s %-10s\n", "label model", "label-acc",
              "coverage", "end-acc");
  FrameworkContext context = FrameworkContext::Build(*split);
  for (LabelModelType type :
       {LabelModelType::kMajorityVote, LabelModelType::kDawidSkene,
        LabelModelType::kMetal}) {
    auto model = MakeLabelModel(type);
    const Status fit = model->Fit(matrix, train.meta().num_classes);
    if (!fit.ok()) {
      std::fprintf(stderr, "%s: %s\n", model->name().c_str(),
                   fit.ToString().c_str());
      continue;
    }
    const std::vector<int> predictions = model->PredictAll(matrix).value();
    const double label_accuracy = Accuracy(predictions, truth);
    const double coverage = Coverage(predictions);

    // Probabilistic labels on covered rows -> downstream model.
    std::vector<std::vector<double>> soft(train.size());
    for (int i = 0; i < train.size(); ++i) {
      if (matrix.AnyActive(i)) {
        soft[i] = model->PredictProba(matrix.Row(i)).value();
      }
    }
    double end_accuracy = 0.0;
    Result<LogisticRegression> end_model =
        TrainEndModel(context.train_features, soft, context.num_classes,
                      context.feature_dim, EndModelOptions{});
    if (end_model.ok()) {
      end_accuracy = EvaluateAccuracy(*end_model, context.test_features,
                                      context.test_labels);
    }
    std::printf("%-16s %-10.3f %-10.3f %-10.3f\n", model->name().c_str(),
                label_accuracy, coverage, end_accuracy);
  }
  return 0;
}
