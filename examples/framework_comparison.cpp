// Head-to-head comparison of all five interactive labelling frameworks on a
// sentiment-analysis-like dataset — a miniature of the paper's Figure 3 for
// one dataset, runnable in a few seconds.
//
// Build & run:  cmake --build build && ./build/examples/framework_comparison

#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "data/dataset_zoo.h"

using namespace activedp;  // NOLINT: example code

int main() {
  const char* kDataset = "imdb";
  Result<DataSplit> split = MakeZooDataset(kDataset, /*scale=*/0.15,
                                           /*seed=*/23);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }
  std::printf("%s-like dataset: train=%d valid=%d test=%d\n\n", kDataset,
              split->train.size(), split->valid.size(), split->test.size());

  FrameworkContext context = FrameworkContext::Build(*split);
  ProtocolOptions protocol;
  protocol.iterations = 80;
  protocol.eval_every = 20;

  ActiveDpOptions options;
  options.seed = 9;

  std::printf("%-12s", "framework");
  bool printed_header = false;
  for (FrameworkType type :
       {FrameworkType::kActiveDp, FrameworkType::kNemo, FrameworkType::kIws,
        FrameworkType::kRlf, FrameworkType::kUs,
        FrameworkType::kActiveWeasul}) {
    std::unique_ptr<InteractiveFramework> framework =
        MakeFramework(type, context, options);
    const RunResult result = RunProtocol(*framework, context, protocol);
    if (!printed_header) {
      for (int budget : result.budgets) std::printf("%8d", budget);
      std::printf("%10s\n", "avg");
      printed_header = true;
    }
    std::printf("%-12s", FrameworkDisplayName(type).c_str());
    for (double accuracy : result.test_accuracy) {
      std::printf("%8.3f", accuracy);
    }
    std::printf("%10.4f\n", result.average_test_accuracy);
  }
  std::printf(
      "\nEach column is the downstream model's test accuracy after that many\n"
      "user interactions (one LF designed, one LF verified, or one instance\n"
      "labelled, depending on the framework — the paper's §4.1.3 protocol).\n");
  return 0;
}
