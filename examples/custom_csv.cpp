// Bringing your own data: writes a small labelled CSV to a temp file (in a
// real setting you would point at your own file), loads it with the CSV
// loader, and runs the full ActiveDP loop on it. This is the path a
// downstream user takes to run the framework on a real corpus instead of
// the synthetic zoo.
//
// Build & run:  cmake --build build && ./build/examples/custom_csv

#include <cstdio>
#include <fstream>
#include <string>

#include "core/activedp.h"
#include "core/end_model.h"
#include "core/framework.h"
#include "data/csv_loader.h"
#include "data/synthetic_text.h"
#include "util/rng.h"

using namespace activedp;  // NOLINT: example code

int main() {
  // Materialize a demo corpus as CSV. (Substitute your own file here.)
  const std::string path = "/tmp/activedp_demo_corpus.csv";
  {
    SyntheticTextConfig config;
    config.num_examples = 1200;
    Rng rng(5);
    const Dataset demo = GenerateSyntheticText(config, rng);
    std::ofstream out(path, std::ios::trunc);
    out << "text,label\n";
    for (const auto& e : demo.examples()) {
      out << "\"" << e.text << "\"," << (e.label == 1 ? "spam" : "ham")
          << "\n";
    }
  }

  // 1. Load the CSV. String labels are mapped to class ids automatically.
  Result<Dataset> dataset = LoadTextCsv(path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %d documents, %d classes (%s/%s), vocabulary %d\n",
              dataset->size(), dataset->meta().num_classes,
              dataset->meta().class_names[0].c_str(),
              dataset->meta().class_names[1].c_str(),
              dataset->vocabulary().size());

  // 2. Split 80/10/10 and build the shared context.
  Rng split_rng(7);
  const DataSplit split = SplitDataset(*dataset, 0.8, 0.1, split_rng);
  FrameworkContext context = FrameworkContext::Build(split);

  // 3. Interactive labelling. The simulated user stands in for you; with a
  //    human in the loop you would drive SimulatedUser's pieces directly
  //    (LfSpace::CandidatesFor to suggest rules, your own choice of LF).
  ActiveDpOptions options;
  options.seed = 11;
  ActiveDp pipeline(context, options);
  for (int t = 0; t < 80; ++t) {
    if (!pipeline.Step().ok()) break;
  }
  const std::vector<std::vector<double>> labels =
      pipeline.CurrentTrainingLabels();
  const LabelQuality quality = MeasureLabelQuality(labels, split.train);
  std::printf("generated labels: accuracy %.3f, coverage %.3f\n",
              quality.accuracy, quality.coverage);

  // 4. Downstream model.
  Result<LogisticRegression> model =
      TrainEndModel(context.train_features, labels, context.num_classes,
                    context.feature_dim, EndModelOptions{});
  if (model.ok()) {
    std::printf("downstream test accuracy: %.3f\n",
                EvaluateAccuracy(*model, context.test_features,
                                 context.test_labels));
  }
  std::remove(path.c_str());
  return 0;
}
