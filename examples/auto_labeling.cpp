// Automatic labelling without a human in the loop: given a small labelled
// seed, Snuba-style LF synthesis (core/auto_lf.h) builds an LF set, a label
// model aggregates it over the full unlabelled corpus, and the downstream
// model trains on the result.
//
// The comparison this example runs is the paper's §1 argument in miniature:
//   1. seed-only training        — high-precision labels, tiny coverage
//   2. auto-LF weak supervision  — large coverage, but synthesized rules
//                                   carry correlated errors the downstream
//                                   model amplifies (Snuba's limitation)
//   3. ConFusion of (1) + (2)    — better labels, still bounded by the
//                                   synthesized LF quality
//   4. interactive ActiveDP      — the same interaction budget spent in the
//                                   loop (human-vetted rules + AL model)
//                                   wins, which is the paper's thesis
//
// Build & run:  cmake --build build && ./build/examples/auto_labeling

#include <cstdio>

#include "core/activedp.h"
#include "core/auto_lf.h"
#include "core/confusion.h"
#include "core/label_pick.h"
#include "core/end_model.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "labelmodel/label_model.h"
#include "lf/lf_applier.h"
#include "ml/metrics.h"
#include "util/rng.h"

using namespace activedp;  // NOLINT: example code

int main() {
  Result<DataSplit> split = MakeZooDataset("youtube", /*scale=*/1.0,
                                           /*seed=*/31);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }
  FrameworkContext context = FrameworkContext::Build(*split);
  const Dataset& train = split->train;

  // A seed of 120 labelled documents (here taken from ground truth; in
  // practice this is the small set you can afford to annotate).
  Rng rng(7);
  std::vector<int> seed_rows =
      rng.SampleWithoutReplacement(train.size(), 120);
  std::vector<int> seed_labels;
  for (int row : seed_rows) seed_labels.push_back(train.example(row).label);

  // Baseline: downstream model trained on the seed only.
  {
    std::vector<std::vector<double>> soft(train.size());
    for (size_t i = 0; i < seed_rows.size(); ++i) {
      soft[seed_rows[i]] = {0.0, 0.0};
      soft[seed_rows[i]][seed_labels[i]] = 1.0;
    }
    Result<LogisticRegression> model =
        TrainEndModel(context.train_features, soft, context.num_classes,
                      context.feature_dim, EndModelOptions{});
    if (model.ok()) {
      std::printf("seed-only training (120 labels): test accuracy %.3f\n",
                  EvaluateAccuracy(*model, context.test_features,
                                   context.test_labels));
    }
  }

  // Auto-LF: synthesize rules from the seed, aggregate, train.
  const auto space = BuildLfSpace(train);
  AutoLfOptions auto_options;
  auto_options.wilson_z = 1.0;  // small seed: relax the evidence bar
  auto_options.max_lfs = 60;    // diversity matters for the label model
  Result<std::vector<SynthesizedLf>> synthesized =
      SynthesizeLfs(train, *space, seed_rows, seed_labels, auto_options);
  if (!synthesized.ok()) {
    std::fprintf(stderr, "synthesis: %s\n",
                 synthesized.status().ToString().c_str());
    return 1;
  }
  std::printf("synthesized %zu LFs, e.g.:\n", synthesized->size());
  for (size_t k = 0; k < synthesized->size() && k < 5; ++k) {
    std::printf("  %-24s seed-acc %.2f coverage %.1f%%\n",
                (*synthesized)[k].lf->Name().c_str(),
                (*synthesized)[k].seed_accuracy,
                100.0 * (*synthesized)[k].coverage);
  }

  std::vector<LfPtr> all_lfs;
  for (const auto& s : *synthesized) all_lfs.push_back(s.lf);

  // LabelPick (§3.4) composes naturally with synthesis: prune the
  // statistical flukes against the validation holdout and keep the label's
  // Markov blanket, using the seed as the queried-instance table.
  Dataset seed_view(train.meta(), [&] {
    std::vector<Example> rows;
    for (int row : seed_rows) rows.push_back(train.example(row));
    return rows;
  }());
  Result<std::vector<int>> picked = LabelPick(
      static_cast<int>(all_lfs.size()), context.num_classes,
      ApplyLfs(all_lfs, split->valid), context.valid_labels,
      ApplyLfs(all_lfs, seed_view), seed_labels, LabelPickOptions{});
  std::vector<LfPtr> lfs;
  if (picked.ok()) {
    for (int j : *picked) lfs.push_back(all_lfs[j]);
    std::printf("LabelPick kept %zu of %zu synthesized LFs\n", lfs.size(),
                all_lfs.size());
  } else {
    lfs = all_lfs;
  }
  const LabelMatrix matrix = ApplyLfs(lfs, train);
  auto label_model = MakeLabelModel(LabelModelType::kMetal);
  if (!label_model->Fit(matrix, context.num_classes).ok()) return 1;

  std::vector<std::vector<double>> soft(train.size());
  for (int i = 0; i < train.size(); ++i) {
    if (matrix.AnyActive(i)) {
      soft[i] = label_model->PredictProba(matrix.Row(i)).value();
    }
  }
  // Keep the seed's exact labels too — they are known.
  for (size_t i = 0; i < seed_rows.size(); ++i) {
    soft[seed_rows[i]] = {0.0, 0.0};
    soft[seed_rows[i]][seed_labels[i]] = 1.0;
  }
  const LabelQuality quality = MeasureLabelQuality(soft, train);
  std::printf("weak labels: accuracy %.3f at coverage %.3f\n",
              quality.accuracy, quality.coverage);

  Result<LogisticRegression> model =
      TrainEndModel(context.train_features, soft, context.num_classes,
                    context.feature_dim, EndModelOptions{});
  if (model.ok()) {
    std::printf("auto-LF training: test accuracy %.3f\n",
                EvaluateAccuracy(*model, context.test_features,
                                 context.test_labels));
  }

  // The paper's thesis in miniature: neither source alone is best — combine
  // them with ConFusion (Eq. 1). The seed-trained model plays the AL model;
  // the threshold is tuned on the validation split.
  std::vector<SparseVector> seed_x;
  std::vector<int> seed_y;
  for (size_t i = 0; i < seed_rows.size(); ++i) {
    seed_x.push_back(context.train_features[seed_rows[i]]);
    seed_y.push_back(seed_labels[i]);
  }
  Result<LogisticRegression> seed_model = LogisticRegression::FitHard(
      seed_x, seed_y, context.num_classes, context.feature_dim);
  if (!seed_model.ok()) return 1;

  auto predict_all = [&](const std::vector<SparseVector>& features) {
    std::vector<std::vector<double>> proba(features.size());
    for (size_t i = 0; i < features.size(); ++i) {
      proba[i] = seed_model->PredictProba(features[i]);
    }
    return proba;
  };
  const LabelMatrix valid_matrix = ApplyLfs(lfs, split->valid);
  std::vector<std::vector<double>> lm_valid(split->valid.size());
  std::vector<bool> lm_valid_active(split->valid.size());
  for (int i = 0; i < split->valid.size(); ++i) {
    lm_valid[i] = label_model->PredictProba(valid_matrix.Row(i)).value();
    lm_valid_active[i] = valid_matrix.AnyActive(i);
  }
  const double tau = ConFusion::TuneThreshold(
      predict_all(context.valid_features), lm_valid, lm_valid_active,
      context.valid_labels);

  std::vector<std::vector<double>> lm_train(train.size());
  std::vector<bool> lm_train_active(train.size());
  for (int i = 0; i < train.size(); ++i) {
    lm_train[i] = label_model->PredictProba(matrix.Row(i)).value();
    lm_train_active[i] = matrix.AnyActive(i);
  }
  AggregatedLabels combined =
      ConFusion::Aggregate(predict_all(context.train_features), lm_train,
                           lm_train_active, tau);
  const LabelQuality combined_quality =
      MeasureLabelQuality(combined.soft, train);
  std::printf(
      "ConFusion(seed model + auto-LFs), tau=%.2f: labels %.3f at "
      "coverage %.3f\n",
      tau, combined_quality.accuracy, combined_quality.coverage);
  Result<LogisticRegression> combined_model =
      TrainEndModel(context.train_features, combined.soft,
                    context.num_classes, context.feature_dim,
                    EndModelOptions{});
  if (combined_model.ok()) {
    std::printf("combined training: test accuracy %.3f\n",
                EvaluateAccuracy(*combined_model, context.test_features,
                                 context.test_labels));
  }

  // 4. The interactive alternative: the same 120-interaction budget spent
  // in ActiveDP's loop (user-vetted LFs + pseudo-labelled AL model +
  // ConFusion) — the combination the paper advocates.
  ActiveDpOptions adp_options;
  adp_options.seed = 31;
  ActiveDp pipeline(context, adp_options);
  for (int t = 0; t < 120; ++t) {
    if (!pipeline.Step().ok()) break;
  }
  Result<LogisticRegression> adp_model = TrainEndModel(
      context.train_features, pipeline.CurrentTrainingLabels(),
      context.num_classes, context.feature_dim, EndModelOptions{});
  if (adp_model.ok()) {
    std::printf("interactive ActiveDP (120 queries): test accuracy %.3f\n",
                EvaluateAccuracy(*adp_model, context.test_features,
                                 context.test_labels));
  }
  return 0;
}
