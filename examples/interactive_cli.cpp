// A real human-in-the-loop labelling session on the terminal: ActiveDP's
// sampler picks query instances, YOU play the expert — choose one of the
// suggested keyword rules (or ask for a different query), and watch the
// label quality evolve. This is the workflow of the paper's Fig. 1 with the
// simulated user replaced by stdin.
//
// Build & run:  cmake --build build && ./build/examples/interactive_cli
// Non-interactive smoke test: pipe choices, e.g.
//   printf '1\n1\n1\n1\n1\nq\n' | ./build/examples/interactive_cli

#include <cstdio>
#include <iostream>
#include <algorithm>
#include <sstream>
#include <string>

#include "active/sampler.h"
#include "core/confusion.h"
#include "core/end_model.h"
#include "core/framework.h"
#include "core/label_pick.h"
#include "data/dataset_zoo.h"
#include "labelmodel/label_model.h"
#include "lf/lf_applier.h"
#include "lf/lf_candidates.h"
#include "util/rng.h"

using namespace activedp;  // NOLINT: example code

namespace {

/// Interactive state: mirrors ActiveDp's training loop, but the LF choice
/// comes from the terminal instead of the simulated user.
class Session {
 public:
  explicit Session(const DataSplit& split)
      : split_(&split),
        context_(FrameworkContext::Build(split)),
        lf_space_(BuildLfSpace(split.train)),
        sampler_(MakeSampler(SamplerType::kAdp)),
        rng_(123),
        train_matrix_(split.train.size()),
        queried_(split.train.size(), false),
        label_model_(MakeLabelModel(LabelModelType::kMetal)) {}

  /// Picks the next query instance with the ADP sampler.
  int NextQuery() {
    SamplerContext ctx;
    ctx.train = &split_->train;
    ctx.features = &context_.train_features;
    ctx.feature_dim = context_.feature_dim;
    ctx.lm_proba = lm_ready_ ? &lm_proba_ : nullptr;
    ctx.lm_active = lm_ready_ ? &lm_active_ : nullptr;
    ctx.queried = &queried_;
    ctx.lf_space = lf_space_.get();
    const int q = sampler_->SelectQuery(ctx, rng_);
    if (q >= 0) queried_[q] = true;
    return q;
  }

  /// Candidate rules anchored at the query (system view: ranked by
  /// coverage, no ground-truth accuracy involved).
  std::vector<LfCandidate> Suggestions(int query, int k) {
    std::vector<LfCandidate> all = lf_space_->CandidatesFor(
        split_->train.example(query), /*min_accuracy=*/-1.0,
        /*target_label=*/-1);
    std::sort(all.begin(), all.end(),
              [](const LfCandidate& a, const LfCandidate& b) {
                return a.coverage > b.coverage;
              });
    if (static_cast<int>(all.size()) > k) all.resize(k);
    return all;
  }

  void Accept(const LfPtr& lf) {
    lfs_.push_back(lf);
    train_matrix_.AddColumn(ApplyLf(*lf, split_->train));
    if (label_model_->Fit(train_matrix_, context_.num_classes).ok()) {
      lm_ready_ = true;
      lm_proba_.assign(train_matrix_.num_rows(), {});
      lm_active_.assign(train_matrix_.num_rows(), false);
      for (int i = 0; i < train_matrix_.num_rows(); ++i) {
        lm_proba_[i] =
            label_model_->PredictProba(train_matrix_.Row(i)).value();
        lm_active_[i] = train_matrix_.AnyActive(i);
      }
    }
  }

  void PrintStatus() {
    if (!lm_ready_) {
      std::printf("  (no label model yet)\n");
      return;
    }
    std::vector<std::vector<double>> soft(split_->train.size());
    for (int i = 0; i < split_->train.size(); ++i) {
      if (lm_active_[i]) soft[i] = lm_proba_[i];
    }
    const LabelQuality quality = MeasureLabelQuality(soft, split_->train);
    double end_accuracy = 0.0;
    Result<LogisticRegression> model =
        TrainEndModel(context_.train_features, soft, context_.num_classes,
                      context_.feature_dim, EndModelOptions{});
    if (model.ok()) {
      end_accuracy = EvaluateAccuracy(*model, context_.test_features,
                                      context_.test_labels);
    }
    std::printf(
        "  %zu LFs | label accuracy %.3f | coverage %.3f | downstream test "
        "accuracy %.3f\n",
        lfs_.size(), quality.accuracy, quality.coverage, end_accuracy);
  }

  const Dataset& train() const { return split_->train; }

 private:
  const DataSplit* split_;
  FrameworkContext context_;
  std::unique_ptr<LfSpace> lf_space_;
  std::unique_ptr<Sampler> sampler_;
  Rng rng_;
  std::vector<LfPtr> lfs_;
  LabelMatrix train_matrix_;
  std::vector<bool> queried_;
  std::unique_ptr<LabelModel> label_model_;
  bool lm_ready_ = false;
  std::vector<std::vector<double>> lm_proba_;
  std::vector<bool> lm_active_;
};

}  // namespace

int main() {
  Result<DataSplit> split = MakeZooDataset("youtube", 0.5, 99);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }
  Session session(*split);
  std::printf(
      "Interactive ActiveDP session (youtube-like data, %d train docs).\n"
      "For each query, pick a suggested rule by number, 's' to skip, 'q' to "
      "quit.\n\n",
      split->train.size());

  std::string line;
  while (true) {
    const int query = session.NextQuery();
    if (query < 0) break;
    const Example& x = session.train().example(query);
    std::printf("query: \"%.90s%s\"\n", x.text.c_str(),
                x.text.size() > 90 ? "..." : "");
    const std::vector<LfCandidate> suggestions = session.Suggestions(query, 5);
    for (size_t i = 0; i < suggestions.size(); ++i) {
      std::printf("  [%zu] %-24s (coverage %.1f%%)\n", i + 1,
                  suggestions[i].lf->Name().c_str(),
                  100.0 * suggestions[i].coverage);
    }
    std::printf("> ");
    if (!std::getline(std::cin, line)) break;
    if (line == "q" || line == "quit") break;
    if (line == "s" || line.empty()) continue;
    int choice = 0;
    std::istringstream(line) >> choice;
    if (choice >= 1 && choice <= static_cast<int>(suggestions.size())) {
      session.Accept(suggestions[choice - 1].lf);
      session.PrintStatus();
    } else {
      std::printf("  (unrecognized input, skipping)\n");
    }
  }
  std::printf("\nfinal state:\n");
  session.PrintStatus();
  return 0;
}
