#!/usr/bin/env bash
# Full verification gate for a PR:
#   1. tier-1 build + ctest (the suite every PR must keep green)
#   2. the observability suite (ctest -L trace: tracer, metrics, log sink)
#   3. the same suite under the ASan+UBSan preset
#   4. the thread-pool, parallel-stage and observability tests under TSan
#      (-DACTIVEDP_SANITIZE=thread), which is what certifies the
#      batch-scoped pool, the chunked reductions, and the tracer / metrics /
#      retry-log write paths race-free
#   5. a tier-1 build + ctest with -DACTIVEDP_SIMD=OFF, which certifies the
#      scalar kernel fallback (the SIMD translation units compiled out)
#      produces the same green suite — the other half of the kernels'
#      bitwise-interchangeability contract
#   6. the pipeline perf benchmark at smoke size (ctest -L perf), which
#      asserts bitwise determinism across compute-pool thread counts, SIMD
#      levels and repeats, and writes BENCH_pipeline.json; each run is
#      archived to bench-archive/ and the serial stage times + end-to-end
#      are compared against the previous archive — the gate FAILS when any
#      stage regresses more than ACTIVEDP_PERF_REGRESSION_PCT percent
#      (default 15) unless both samples are below the
#      ACTIVEDP_PERF_MIN_SECONDS noise floor (default 0.005s); the
#      comparison is archived as a regression report next to the JSON
#   7. the serving suite (ctest -L serve: snapshot export/IO round-trips,
#      the batched prediction service, and the serve_bench smoke run, whose
#      determinism gate asserts served == offline bitwise across batch
#      sizes, thread counts and a mid-load hot swap; BENCH_serving.json is
#      archived to bench-archive/)
#   8. a small-budget chaos sweep (fault sites x kinds x seeds, with
#      fault accounting and resumability checks; see bench/chaos_sweep.cc)
#   9. the serving chaos gate (bench/serve_chaos: the full serve.* fault
#      matrix — every injected fault cleanly rejected or auto-recovered,
#      zero served-digest divergence on the surviving path, the rollback
#      visible in the RunTrace timeline; BENCH_serve_chaos.json is archived
#      to bench-archive/)
#  10. the continuous-learning gate (bench/learn_chaos: the LearnGuard
#      fault matrix — every injected fault ends in a clean rejection,
#      quarantine or auto-rollback, and the loop keeps publishing once the
#      fault clears; then bench/continuous_bench: live traffic + drifting
#      feedback with >= 3 published retrains, each strictly improving
#      holdout accuracy, zero failed client requests and zero served-digest
#      divergence; BENCH_learn_chaos.json and BENCH_online.json are
#      archived to bench-archive/)
#  11. the OpsPlane gate (ctest -L obs: flight-recorder ring/dump/verify and
#      SLO burn-rate engine tests; then the serve/learn chaos matrices,
#      whose per-scenario incident assertions require exactly one verified,
#      checksummed dump per breaker-trip/rollback/quarantine trigger and
#      zero dumps everywhere else; then a clean serve_bench run that must
#      produce zero dumps with every SLO met — its SLO status JSON and
#      Prometheus exposition are archived to bench-archive/)
#  12. the TenantMesh gate (tests/shard_router_test: consistent-hash
#      stability, tenant isolation under one-tenant overload, per-tenant
#      rollout promote/rollback; then the serve_mt_storm smoke run: the
#      open-loop multi-tenant storm with its per-tenant served==offline
#      digest gates, thread-count-independence sweep, isolation and
#      mid-storm rollout assertions; BENCH_serving_mt.json is archived to
#      bench-archive/)
#
# Usage: scripts/verify.sh [--skip-asan] [--skip-tsan] [--skip-simd]
#                          [--skip-perf] [--skip-chaos] [--skip-trace]
#                          [--skip-serve] [--skip-serve-chaos] [--skip-learn]
#                          [--skip-obs] [--skip-mt] [--only <gate>]
# --only runs a single gate (tier1, trace, asan, tsan, simd, perf, serve,
# chaos, serve-chaos, learn, obs, mt) after the shared tier-1 build,
# skipping everything else. Runs from any directory; build trees live next
# to the sources as build/, build-asan/, build-tsan/ and build-nosimd/.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_ASAN=0
SKIP_TSAN=0
SKIP_SIMD=0
SKIP_PERF=0
SKIP_CHAOS=0
SKIP_TRACE=0
SKIP_SERVE=0
SKIP_SERVE_CHAOS=0
SKIP_LEARN=0
SKIP_OBS=0
SKIP_MT=0
ONLY=""
EXPECT_ONLY=0
for arg in "$@"; do
  if [[ "$EXPECT_ONLY" -eq 1 ]]; then
    ONLY="$arg"
    EXPECT_ONLY=0
    continue
  fi
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-simd) SKIP_SIMD=1 ;;
    --skip-perf) SKIP_PERF=1 ;;
    --skip-chaos) SKIP_CHAOS=1 ;;
    --skip-trace) SKIP_TRACE=1 ;;
    --skip-serve) SKIP_SERVE=1 ;;
    --skip-serve-chaos) SKIP_SERVE_CHAOS=1 ;;
    --skip-learn) SKIP_LEARN=1 ;;
    --skip-obs) SKIP_OBS=1 ;;
    --skip-mt) SKIP_MT=1 ;;
    --only) EXPECT_ONLY=1 ;;
    --only=*) ONLY="${arg#--only=}" ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done
if [[ "$EXPECT_ONLY" -eq 1 ]]; then
  echo "--only requires a gate name" >&2; exit 2
fi
case "$ONLY" in
  ""|tier1|trace|asan|tsan|simd|perf|serve|chaos|serve-chaos|learn|obs|mt) ;;
  *) echo "unknown gate for --only: $ONLY" >&2; exit 2 ;;
esac

# True when the named gate should run: either it was picked with --only, or
# no --only was given and its --skip flag is unset ($2).
gate_enabled() {
  if [[ -n "$ONLY" ]]; then [[ "$ONLY" == "$1" ]]; else [[ "$2" -eq 0 ]]; fi
}

# Prints "stage seconds" pairs (plus an "end_to_end" pseudo-stage) for the
# serial (first) run row of a BENCH_pipeline.json report.
stage_times() {
  grep -m1 '"stages"' "$1" \
    | grep -oE '"[a-z_]+": \{"seconds": [0-9.eE+-]+' \
    | sed -E 's/"([a-z_]+)": \{"seconds": ([0-9.eE+-]+)/\1 \2/'
  grep -m1 '"end_to_end_seconds"' "$1" \
    | grep -oE '"end_to_end_seconds": [0-9.eE+-]+' \
    | sed -E 's/"end_to_end_seconds": ([0-9.eE+-]+)/end_to_end \1/'
}

# Prints "stage digest" pairs for the serial run row (the cross-pass digest
# gate inside perf_bench already asserts all rows agree).
stage_digests() {
  grep -m1 '"stages"' "$1" \
    | grep -oE '"[a-z_]+": \{"seconds": [0-9.eE+-]+, "digest": "0x[0-9a-f]+"' \
    | sed -E 's/"([a-z_]+)": .*"digest": "(0x[0-9a-f]+)"/\1 \2/'
}

echo "== tier 1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
if gate_enabled tier1 0; then
  echo "== tier 1: ctest =="
  ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"
fi

if gate_enabled trace "$SKIP_TRACE"; then
  echo "== observability suite (ctest -L trace) =="
  ctest --test-dir build -L trace --output-on-failure -j "$JOBS"
fi

if gate_enabled asan "$SKIP_ASAN"; then
  echo "== tier 1 under ASan+UBSan =="
  cmake -B build-asan -S . -DACTIVEDP_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan -L tier1 --output-on-failure -j "$JOBS"
fi

if gate_enabled tsan "$SKIP_TSAN"; then
  echo "== thread-pool + parallel-stage + observability tests under TSan =="
  cmake -B build-tsan -S . -DACTIVEDP_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target thread_pool_test determinism_test trace_test util_metrics_test \
             logging_test retry_test serve_test snapshot_test registry_test \
             rollout_test shard_router_test event_log_test retrainer_test \
             obs_test
  ctest --test-dir build-tsan --output-on-failure \
    -R "thread_pool_test|determinism_test|trace_test|util_metrics_test|logging_test|retry_test|serve_test|snapshot_test|registry_test|rollout_test|shard_router_test|event_log_test|retrainer_test|obs_test"
fi

if gate_enabled simd "$SKIP_SIMD"; then
  echo "== tier 1 with -DACTIVEDP_SIMD=OFF (scalar kernels only) =="
  cmake -B build-nosimd -S . -DACTIVEDP_SIMD=OFF >/dev/null
  cmake --build build-nosimd -j "$JOBS"
  ctest --test-dir build-nosimd -L tier1 --output-on-failure -j "$JOBS"
fi

if gate_enabled perf "$SKIP_PERF"; then
  echo "== perf benchmark (smoke size, determinism + regression gates) =="
  ctest --test-dir build -L perf --output-on-failure

  # Archive the report (plus its trace summary and stage digests) and compare
  # the serial stage times + end-to-end against the previous archived run.
  # A stage more than ACTIVEDP_PERF_REGRESSION_PCT percent slower FAILS the
  # gate, unless both samples sit under the ACTIVEDP_PERF_MIN_SECONDS noise
  # floor; skipped entirely when no previous archive exists.
  BENCH_JSON="build/bench/BENCH_pipeline.json"
  if [[ -f "$BENCH_JSON" ]]; then
    mkdir -p bench-archive
    PREV="$(ls -1t bench-archive/BENCH_pipeline-????????-??????.json 2>/dev/null | head -1 || true)"
    STAMP="$(date +%Y%m%d-%H%M%S)"
    cp "$BENCH_JSON" "bench-archive/BENCH_pipeline-$STAMP.json"
    # Benches route their trace exports to <cwd>/bench-archive (--trace-dir),
    # which under ctest is build/bench/bench-archive/.
    if [[ -f build/bench/bench-archive/BENCH_pipeline.trace.summary.json ]]; then
      cp build/bench/bench-archive/BENCH_pipeline.trace.summary.json \
         "bench-archive/BENCH_pipeline-$STAMP.trace.summary.json"
    fi
    echo "archived bench-archive/BENCH_pipeline-$STAMP.json"
    if [[ -n "$PREV" ]]; then
      PERF_PCT="${ACTIVEDP_PERF_REGRESSION_PCT:-15}"
      PERF_FLOOR="${ACTIVEDP_PERF_MIN_SECONDS:-0.005}"
      REGRESSION_REPORT="bench-archive/BENCH_pipeline-$STAMP.regression.txt"
      echo "-- serial stage times vs $(basename "$PREV") (fail > +$PERF_PCT%) --"
      set +e
      {
        awk -v pct="$PERF_PCT" -v floor="$PERF_FLOOR" '
             NR==FNR { prev[$1] = $2; next }
             ($1 in prev) && prev[$1] > 0 {
               delta = ($2 / prev[$1] - 1.0) * 100.0;
               flag = "";
               if (delta > pct && ($2 >= floor || prev[$1] >= floor)) {
                 flag = sprintf("  <-- REGRESSION (+%.1f%% > +%s%%)",
                                delta, pct);
                 failed = 1;
               }
               printf "  %-12s %9.4fs vs %9.4fs  %+7.1f%%%s\n",
                      $1, $2, prev[$1], delta, flag;
             }
             END { exit failed ? 1 : 0 }' \
             <(stage_times "$PREV") <(stage_times "$BENCH_JSON")
        PERF_STATUS=$?
        echo "-- serial stage digests --"
        stage_digests "$BENCH_JSON" | sed 's/^/  /'
        exit "$PERF_STATUS"
      } | tee "$REGRESSION_REPORT"
      PERF_STATUS=${PIPESTATUS[0]}
      set -e
      echo "archived $REGRESSION_REPORT"
      if [[ "$PERF_STATUS" -ne 0 ]]; then
        echo "FAIL: perf regression above ${PERF_PCT}% vs $(basename "$PREV")" >&2
        echo "      (override threshold with ACTIVEDP_PERF_REGRESSION_PCT)" >&2
        exit 1
      fi
    else
      echo "note: no previous bench-archive run; regression gate skipped"
    fi
  else
    echo "note: $BENCH_JSON not found; skipping archive" >&2
  fi
fi

if gate_enabled serve "$SKIP_SERVE"; then
  echo "== serving suite (ctest -L serve, incl. serve_bench smoke) =="
  ctest --test-dir build -L serve --output-on-failure
  SERVE_JSON="build/bench/BENCH_serving.json"
  if [[ -f "$SERVE_JSON" ]]; then
    mkdir -p bench-archive
    STAMP="$(date +%Y%m%d-%H%M%S)"
    cp "$SERVE_JSON" "bench-archive/BENCH_serving-$STAMP.json"
    echo "archived bench-archive/BENCH_serving-$STAMP.json"
    grep -oE '"throughput_rps": [0-9.eE+-]+|"p99_ms": [0-9.eE+-]+' \
      "$SERVE_JSON" | sed 's/^/  /' || true
  else
    echo "note: $SERVE_JSON not found; skipping archive" >&2
  fi
fi

if gate_enabled chaos "$SKIP_CHAOS"; then
  echo "== chaos sweep (small budget) =="
  ./build/bench/chaos_sweep --seeds=2 --steps=24 --budget-seconds=60
fi

if gate_enabled serve-chaos "$SKIP_SERVE_CHAOS"; then
  echo "== serving chaos gate (serve.* fault matrix) =="
  (cd build/bench && ./serve_chaos --seeds=2 --steps=12 --trace=48 \
    --out=BENCH_serve_chaos.json)
  SERVE_CHAOS_JSON="build/bench/BENCH_serve_chaos.json"
  if [[ -f "$SERVE_CHAOS_JSON" ]]; then
    mkdir -p bench-archive
    STAMP="$(date +%Y%m%d-%H%M%S)"
    cp "$SERVE_CHAOS_JSON" "bench-archive/BENCH_serve_chaos-$STAMP.json"
    echo "archived bench-archive/BENCH_serve_chaos-$STAMP.json"
    grep -oE '"scenarios": [0-9]+|"failures": [0-9]+|"rollback_instants": [0-9]+' \
      "$SERVE_CHAOS_JSON" | sed 's/^/  /' || true
  else
    echo "note: $SERVE_CHAOS_JSON not found; skipping archive" >&2
  fi
fi

if gate_enabled learn "$SKIP_LEARN"; then
  echo "== continuous-learning gate (LearnGuard fault matrix + live loop) =="
  (cd build/bench && ./learn_chaos --seeds=2 --steps=6 --trace=48 \
    --out=BENCH_learn_chaos.json)
  (cd build/bench && ./continuous_bench --waves=8 --steps=4 \
    --min-publishes=3 --out=BENCH_online.json)
  mkdir -p bench-archive
  STAMP="$(date +%Y%m%d-%H%M%S)"
  for report in BENCH_learn_chaos BENCH_online; do
    if [[ -f "build/bench/$report.json" ]]; then
      cp "build/bench/$report.json" "bench-archive/$report-$STAMP.json"
      echo "archived bench-archive/$report-$STAMP.json"
    else
      echo "note: build/bench/$report.json not found; skipping archive" >&2
    fi
  done
  grep -oE '"scenarios": [0-9]+|"failures": [0-9]+|"quarantine_instants": [0-9]+' \
    build/bench/BENCH_learn_chaos.json | sed 's/^/  /' || true
  grep -oE '"published": [0-9]+|"base_accuracy": [0-9.]+|"final_accuracy": [0-9.]+|"client_failures": [0-9]+' \
    build/bench/BENCH_online.json | sed 's/^/  /' || true
fi

if gate_enabled obs "$SKIP_OBS"; then
  echo "== OpsPlane gate (incident dumps + SLO status) =="
  ctest --test-dir build -L obs --output-on-failure -j "$JOBS"

  # Chaos halves: each binary asserts its own incident contract per scenario
  # (exactly one verified dump per breaker-trip / rollback / quarantine
  # trigger, zero everywhere else) and exits nonzero on any violation.
  (cd build/bench && ./serve_chaos --seeds=1 --steps=12 --trace=48 \
    --out=BENCH_serve_chaos_obs.json)
  (cd build/bench && ./learn_chaos --seeds=1 --steps=6 --trace=48 \
    --out=BENCH_learn_chaos_obs.json)

  # Clean half: a fault-free serve_bench run must end with an empty incident
  # root and every SLO met (the bench exits nonzero otherwise); re-assert
  # both from the report here and archive the SLO status + Prometheus text.
  (cd build/bench && ./serve_bench --requests=400 --clients=4 --rate=2000 \
    --steps=10 --out=BENCH_serving_obs.json)
  OBS_JSON="build/bench/BENCH_serving_obs.json"
  if ! grep -q '"incidents": 0' "$OBS_JSON"; then
    echo "FAIL: clean serve_bench run reported incident dumps" >&2
    exit 1
  fi
  if ! grep -q '"slos_met": true' "$OBS_JSON"; then
    echo "FAIL: clean serve_bench run breached an SLO" >&2
    exit 1
  fi
  mkdir -p bench-archive
  STAMP="$(date +%Y%m%d-%H%M%S)"
  for artifact in BENCH_serving.slo.json BENCH_serving.prom; do
    if [[ -f "build/bench/bench-archive/$artifact" ]]; then
      cp "build/bench/bench-archive/$artifact" \
         "bench-archive/${artifact%%.*}-$STAMP.${artifact#*.}"
      echo "archived bench-archive/${artifact%%.*}-$STAMP.${artifact#*.}"
    fi
  done
  grep -oE '"incident_dumps": [0-9]+' \
    build/bench/BENCH_serve_chaos_obs.json \
    build/bench/BENCH_learn_chaos_obs.json | sed 's/^/  /' || true
  grep -oE '"all_met": (true|false)' \
    build/bench/bench-archive/BENCH_serving.slo.json | sed 's/^/  /' || true
fi

if gate_enabled mt "$SKIP_MT"; then
  echo "== TenantMesh gate (router tests + multi-tenant storm) =="
  ctest --test-dir build -R "shard_router_test|serve_mt_storm" \
    --output-on-failure
  MT_JSON="build/bench/BENCH_serving_mt.json"
  if [[ -f "$MT_JSON" ]]; then
    mkdir -p bench-archive
    STAMP="$(date +%Y%m%d-%H%M%S)"
    cp "$MT_JSON" "bench-archive/BENCH_serving_mt-$STAMP.json"
    echo "archived bench-archive/BENCH_serving_mt-$STAMP.json"
    grep -oE '"thread_independent": (true|false)|"incidents": [0-9]+|"shed": [0-9]+|"passed": (true|false)' \
      "$MT_JSON" | sed 's/^/  /' || true
  else
    echo "note: $MT_JSON not found; skipping archive" >&2
  fi
fi

echo "verify: all gates passed"
