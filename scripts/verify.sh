#!/usr/bin/env bash
# Full verification gate for a PR:
#   1. tier-1 build + ctest (the suite every PR must keep green)
#   2. the observability suite (ctest -L trace: tracer, metrics, log sink)
#   3. the same suite under the ASan+UBSan preset
#   4. the thread-pool, parallel-stage and observability tests under TSan
#      (-DACTIVEDP_SANITIZE=thread), which is what certifies the
#      batch-scoped pool, the chunked reductions, and the tracer / metrics /
#      retry-log write paths race-free
#   5. the pipeline perf benchmark at smoke size (ctest -L perf), which
#      asserts bitwise determinism across compute-pool thread counts and
#      writes BENCH_pipeline.json; each run is archived to bench-archive/
#      and the per-stage times are compared against the previous archive
#      (informational only — machines differ, so a regression is printed,
#      not failed)
#   6. the serving suite (ctest -L serve: snapshot export/IO round-trips,
#      the batched prediction service, and the serve_bench smoke run, whose
#      determinism gate asserts served == offline bitwise across batch
#      sizes, thread counts and a mid-load hot swap; BENCH_serving.json is
#      archived to bench-archive/)
#   7. a small-budget chaos sweep (fault sites x kinds x seeds, with
#      fault accounting and resumability checks; see bench/chaos_sweep.cc)
#   8. the serving chaos gate (bench/serve_chaos: the full serve.* fault
#      matrix — every injected fault cleanly rejected or auto-recovered,
#      zero served-digest divergence on the surviving path, the rollback
#      visible in the RunTrace timeline; BENCH_serve_chaos.json is archived
#      to bench-archive/)
#   9. the continuous-learning gate (bench/learn_chaos: the LearnGuard
#      fault matrix — every injected fault ends in a clean rejection,
#      quarantine or auto-rollback, and the loop keeps publishing once the
#      fault clears; then bench/continuous_bench: live traffic + drifting
#      feedback with >= 3 published retrains, each strictly improving
#      holdout accuracy, zero failed client requests and zero served-digest
#      divergence; BENCH_learn_chaos.json and BENCH_online.json are
#      archived to bench-archive/)
#
# Usage: scripts/verify.sh [--skip-asan] [--skip-tsan] [--skip-perf]
#                          [--skip-chaos] [--skip-trace] [--skip-serve]
#                          [--skip-serve-chaos] [--skip-learn]
#                          [--only <gate>]
# --only runs a single gate (tier1, trace, asan, tsan, perf, serve, chaos,
# serve-chaos, learn) after the shared tier-1 build, skipping everything
# else. Runs from any directory; build trees live next to the sources as
# build/, build-asan/ and build-tsan/.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_ASAN=0
SKIP_TSAN=0
SKIP_PERF=0
SKIP_CHAOS=0
SKIP_TRACE=0
SKIP_SERVE=0
SKIP_SERVE_CHAOS=0
SKIP_LEARN=0
ONLY=""
EXPECT_ONLY=0
for arg in "$@"; do
  if [[ "$EXPECT_ONLY" -eq 1 ]]; then
    ONLY="$arg"
    EXPECT_ONLY=0
    continue
  fi
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-perf) SKIP_PERF=1 ;;
    --skip-chaos) SKIP_CHAOS=1 ;;
    --skip-trace) SKIP_TRACE=1 ;;
    --skip-serve) SKIP_SERVE=1 ;;
    --skip-serve-chaos) SKIP_SERVE_CHAOS=1 ;;
    --skip-learn) SKIP_LEARN=1 ;;
    --only) EXPECT_ONLY=1 ;;
    --only=*) ONLY="${arg#--only=}" ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done
if [[ "$EXPECT_ONLY" -eq 1 ]]; then
  echo "--only requires a gate name" >&2; exit 2
fi
case "$ONLY" in
  ""|tier1|trace|asan|tsan|perf|serve|chaos|serve-chaos|learn) ;;
  *) echo "unknown gate for --only: $ONLY" >&2; exit 2 ;;
esac

# True when the named gate should run: either it was picked with --only, or
# no --only was given and its --skip flag is unset ($2).
gate_enabled() {
  if [[ -n "$ONLY" ]]; then [[ "$ONLY" == "$1" ]]; else [[ "$2" -eq 0 ]]; fi
}

# Prints "stage seconds" pairs for the serial (first) run row of a
# BENCH_pipeline.json report.
stage_times() {
  grep -m1 '"stages"' "$1" \
    | grep -oE '"[a-z_]+": \{"seconds": [0-9.eE+-]+' \
    | sed -E 's/"([a-z_]+)": \{"seconds": ([0-9.eE+-]+)/\1 \2/'
}

echo "== tier 1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
if gate_enabled tier1 0; then
  echo "== tier 1: ctest =="
  ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"
fi

if gate_enabled trace "$SKIP_TRACE"; then
  echo "== observability suite (ctest -L trace) =="
  ctest --test-dir build -L trace --output-on-failure -j "$JOBS"
fi

if gate_enabled asan "$SKIP_ASAN"; then
  echo "== tier 1 under ASan+UBSan =="
  cmake -B build-asan -S . -DACTIVEDP_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan -L tier1 --output-on-failure -j "$JOBS"
fi

if gate_enabled tsan "$SKIP_TSAN"; then
  echo "== thread-pool + parallel-stage + observability tests under TSan =="
  cmake -B build-tsan -S . -DACTIVEDP_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target thread_pool_test determinism_test trace_test util_metrics_test \
             logging_test retry_test serve_test snapshot_test registry_test \
             rollout_test event_log_test retrainer_test
  ctest --test-dir build-tsan --output-on-failure \
    -R "thread_pool_test|determinism_test|trace_test|util_metrics_test|logging_test|retry_test|serve_test|snapshot_test|registry_test|rollout_test|event_log_test|retrainer_test"
fi

if gate_enabled perf "$SKIP_PERF"; then
  echo "== perf benchmark (smoke size, determinism gate) =="
  ctest --test-dir build -L perf --output-on-failure

  # Archive the report (plus its trace summary) and compare per-stage times
  # against the previous archived run. Informational only: hardware and load
  # vary, so this prints regressions instead of failing on them.
  BENCH_JSON="build/bench/BENCH_pipeline.json"
  if [[ -f "$BENCH_JSON" ]]; then
    mkdir -p bench-archive
    PREV="$(ls -1t bench-archive/BENCH_pipeline-????????-??????.json 2>/dev/null | head -1 || true)"
    STAMP="$(date +%Y%m%d-%H%M%S)"
    cp "$BENCH_JSON" "bench-archive/BENCH_pipeline-$STAMP.json"
    if [[ -f build/bench/BENCH_pipeline.trace.summary.json ]]; then
      cp build/bench/BENCH_pipeline.trace.summary.json \
         "bench-archive/BENCH_pipeline-$STAMP.trace.summary.json"
    fi
    echo "archived bench-archive/BENCH_pipeline-$STAMP.json"
    if [[ -n "$PREV" ]]; then
      echo "-- serial stage times vs $(basename "$PREV") (informational) --"
      awk 'NR==FNR { prev[$1] = $2; next }
           ($1 in prev) && prev[$1] > 0 {
             ratio = $2 / prev[$1];
             flag = ratio > 2.0 ? "  <-- slower than previous" : "";
             printf "  %-12s %9.4fs vs %9.4fs  ratio %5.2fx%s\n",
                    $1, $2, prev[$1], ratio, flag;
           }' <(stage_times "$PREV") <(stage_times "$BENCH_JSON")
    fi
  else
    echo "note: $BENCH_JSON not found; skipping archive" >&2
  fi
fi

if gate_enabled serve "$SKIP_SERVE"; then
  echo "== serving suite (ctest -L serve, incl. serve_bench smoke) =="
  ctest --test-dir build -L serve --output-on-failure
  SERVE_JSON="build/bench/BENCH_serving.json"
  if [[ -f "$SERVE_JSON" ]]; then
    mkdir -p bench-archive
    STAMP="$(date +%Y%m%d-%H%M%S)"
    cp "$SERVE_JSON" "bench-archive/BENCH_serving-$STAMP.json"
    echo "archived bench-archive/BENCH_serving-$STAMP.json"
    grep -oE '"throughput_rps": [0-9.eE+-]+|"p99_ms": [0-9.eE+-]+' \
      "$SERVE_JSON" | sed 's/^/  /' || true
  else
    echo "note: $SERVE_JSON not found; skipping archive" >&2
  fi
fi

if gate_enabled chaos "$SKIP_CHAOS"; then
  echo "== chaos sweep (small budget) =="
  ./build/bench/chaos_sweep --seeds=2 --steps=24 --budget-seconds=60
fi

if gate_enabled serve-chaos "$SKIP_SERVE_CHAOS"; then
  echo "== serving chaos gate (serve.* fault matrix) =="
  (cd build/bench && ./serve_chaos --seeds=2 --steps=12 --trace=48 \
    --out=BENCH_serve_chaos.json)
  SERVE_CHAOS_JSON="build/bench/BENCH_serve_chaos.json"
  if [[ -f "$SERVE_CHAOS_JSON" ]]; then
    mkdir -p bench-archive
    STAMP="$(date +%Y%m%d-%H%M%S)"
    cp "$SERVE_CHAOS_JSON" "bench-archive/BENCH_serve_chaos-$STAMP.json"
    echo "archived bench-archive/BENCH_serve_chaos-$STAMP.json"
    grep -oE '"scenarios": [0-9]+|"failures": [0-9]+|"rollback_instants": [0-9]+' \
      "$SERVE_CHAOS_JSON" | sed 's/^/  /' || true
  else
    echo "note: $SERVE_CHAOS_JSON not found; skipping archive" >&2
  fi
fi

if gate_enabled learn "$SKIP_LEARN"; then
  echo "== continuous-learning gate (LearnGuard fault matrix + live loop) =="
  (cd build/bench && ./learn_chaos --seeds=2 --steps=6 --trace=48 \
    --out=BENCH_learn_chaos.json)
  (cd build/bench && ./continuous_bench --waves=8 --steps=4 \
    --min-publishes=3 --out=BENCH_online.json)
  mkdir -p bench-archive
  STAMP="$(date +%Y%m%d-%H%M%S)"
  for report in BENCH_learn_chaos BENCH_online; do
    if [[ -f "build/bench/$report.json" ]]; then
      cp "build/bench/$report.json" "bench-archive/$report-$STAMP.json"
      echo "archived bench-archive/$report-$STAMP.json"
    else
      echo "note: build/bench/$report.json not found; skipping archive" >&2
    fi
  done
  grep -oE '"scenarios": [0-9]+|"failures": [0-9]+|"quarantine_instants": [0-9]+' \
    build/bench/BENCH_learn_chaos.json | sed 's/^/  /' || true
  grep -oE '"published": [0-9]+|"base_accuracy": [0-9.]+|"final_accuracy": [0-9.]+|"client_failures": [0-9]+' \
    build/bench/BENCH_online.json | sed 's/^/  /' || true
fi

echo "verify: all gates passed"
