#!/usr/bin/env bash
# Full verification gate for a PR:
#   1. tier-1 build + ctest (the suite every PR must keep green)
#   2. the same suite under the ASan+UBSan preset
#   3. the thread-pool and parallel-stage tests under TSan
#      (-DACTIVEDP_SANITIZE=thread), which is what certifies the
#      batch-scoped pool and the chunked reductions race-free
#   4. the pipeline perf benchmark at smoke size (ctest -L perf), which
#      asserts bitwise determinism across compute-pool thread counts and
#      writes BENCH_pipeline.json
#   5. a small-budget chaos sweep (fault sites x kinds x seeds, with
#      fault accounting and resumability checks; see bench/chaos_sweep.cc)
#
# Usage: scripts/verify.sh [--skip-asan] [--skip-tsan] [--skip-perf]
#                          [--skip-chaos]
# Runs from any directory; build trees live next to the sources as
# build/, build-asan/ and build-tsan/.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_ASAN=0
SKIP_TSAN=0
SKIP_PERF=0
SKIP_CHAOS=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-perf) SKIP_PERF=1 ;;
    --skip-chaos) SKIP_CHAOS=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"

if [[ "$SKIP_ASAN" -eq 0 ]]; then
  echo "== tier 1 under ASan+UBSan =="
  cmake -B build-asan -S . -DACTIVEDP_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan -L tier1 --output-on-failure -j "$JOBS"
fi

if [[ "$SKIP_TSAN" -eq 0 ]]; then
  echo "== thread-pool + parallel-stage tests under TSan =="
  cmake -B build-tsan -S . -DACTIVEDP_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target thread_pool_test determinism_test
  ctest --test-dir build-tsan -R "thread_pool_test|determinism_test" \
    --output-on-failure
fi

if [[ "$SKIP_PERF" -eq 0 ]]; then
  echo "== perf benchmark (smoke size, determinism gate) =="
  ctest --test-dir build -L perf --output-on-failure
fi

if [[ "$SKIP_CHAOS" -eq 0 ]]; then
  echo "== chaos sweep (small budget) =="
  ./build/bench/chaos_sweep --seeds=2 --steps=24 --budget-seconds=60
fi

echo "verify: all gates passed"
