#!/usr/bin/env bash
# Full verification gate for a PR:
#   1. tier-1 build + ctest (the suite every PR must keep green)
#   2. the same suite under the ASan+UBSan preset
#   3. a small-budget chaos sweep (fault sites x kinds x seeds, with
#      fault accounting and resumability checks; see bench/chaos_sweep.cc)
#
# Usage: scripts/verify.sh [--skip-asan] [--skip-chaos]
# Runs from any directory; build trees live next to the sources as
# build/ and build-asan/.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_ASAN=0
SKIP_CHAOS=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-chaos) SKIP_CHAOS=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"

if [[ "$SKIP_ASAN" -eq 0 ]]; then
  echo "== tier 1 under ASan+UBSan =="
  cmake -B build-asan -S . -DACTIVEDP_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan -L tier1 --output-on-failure -j "$JOBS"
fi

if [[ "$SKIP_CHAOS" -eq 0 ]]; then
  echo "== chaos sweep (small budget) =="
  ./build/bench/chaos_sweep --seeds=2 --steps=24 --budget-seconds=60
fi

echo "verify: all gates passed"
