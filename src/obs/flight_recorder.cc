#include "obs/flight_recorder.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "util/atomic_file.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace activedp {
namespace {

// Per-slot string budgets. Longer text truncates — the recorder trades
// fidelity of rare long details for a hard memory bound.
constexpr int kCategoryBytes = 24;
constexpr int kNameBytes = 48;
constexpr int kDetailBytes = 120;

constexpr uint8_t kKindSpan = 0;
constexpr uint8_t kKindInstant = 1;

/// Reason sanitized for a directory name: [a-z0-9._-], rest become '_'.
std::string SanitizeReason(std::string_view reason) {
  std::string out;
  out.reserve(reason.size());
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("unknown") : out;
}

void StoreText(std::atomic<char>* dest, int capacity,
               std::atomic<uint8_t>& len, std::string_view text) {
  const int n = std::min<int>(capacity, static_cast<int>(text.size()));
  for (int i = 0; i < n; ++i) {
    dest[i].store(text[static_cast<size_t>(i)], std::memory_order_relaxed);
  }
  len.store(static_cast<uint8_t>(n), std::memory_order_relaxed);
}

std::string LoadText(const std::atomic<char>* src, int capacity,
                     const std::atomic<uint8_t>& len) {
  const int n =
      std::min<int>(capacity, len.load(std::memory_order_relaxed));
  std::string out(static_cast<size_t>(n), '\0');
  for (int i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = src[i].load(std::memory_order_relaxed);
  }
  return out;
}

// --- tiny scanners for MANIFEST.json (written by us, strict format) ------

/// Extracts the JSON string value following `"key": "` in `text`.
/// Handles the escapes JsonEscape emits (\\, \", \n, \t, \r, \uXXXX left
/// verbatim). Returns false when the key is absent.
bool ScanStringField(const std::string& text, const std::string& key,
                     size_t from, std::string* value) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t at = text.find(needle, from);
  if (at == std::string::npos) return false;
  std::string out;
  for (size_t i = at + needle.size(); i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"') {
      *value = std::move(out);
      return true;
    }
    if (c == '\\' && i + 1 < text.size()) {
      const char e = text[++i];
      if (e == 'n') {
        out += '\n';
      } else if (e == 't') {
        out += '\t';
      } else if (e == 'r') {
        out += '\r';
      } else {
        out += e;  // \" \\ \/ — and anything else verbatim
      }
      continue;
    }
    out += c;
  }
  return false;  // unterminated string — truncated manifest
}

bool ScanIntField(const std::string& text, const std::string& key,
                  int64_t* value) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  long long parsed = 0;
  size_t end = at + needle.size();
  while (end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[end])) ||
          text[end] == '-')) {
    ++end;
  }
  if (!ParseInt64(text.substr(at + needle.size(), end - at - needle.size()),
                  &parsed)) {
    return false;
  }
  *value = parsed;
  return true;
}

}  // namespace

int64_t ObsNowMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

/// One slot of a per-thread ring. Every payload field is an atomic so the
/// optimistic reader never races the writer at the language level; the
/// `seq` seqlock (odd = write in progress) is what makes a copied slot
/// coherent.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<int64_t> ts_us{0};
  std::atomic<int64_t> dur_us{-1};
  std::atomic<uint8_t> kind{kKindSpan};
  std::atomic<uint8_t> category_len{0};
  std::atomic<uint8_t> name_len{0};
  std::atomic<uint8_t> detail_len{0};
  std::atomic<char> category[kCategoryBytes] = {};
  std::atomic<char> name[kNameBytes] = {};
  std::atomic<char> detail[kDetailBytes] = {};
};

struct FlightRecorder::Ring {
  explicit Ring(int capacity)
      : capacity(std::max(1, capacity)),
        slots(new Slot[static_cast<size_t>(std::max(1, capacity))]) {}
  const int capacity;
  std::atomic<uint64_t> head{0};  // next write position (monotonic)
  std::unique_ptr<Slot[]> slots;
};

namespace {
/// The calling thread's ring, cached after first registration. Never
/// freed (rings live for the process lifetime, like tracer buffers).
thread_local FlightRecorder::Ring* g_flight_ring = nullptr;
}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Enable(FlightRecorderOptions options) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    incident_dir_ = options.incident_dir;
    last_incident_us_.clear();
    context_providers_.clear();
  }
  ring_capacity_.store(std::max(1, options.ring_capacity),
                       std::memory_order_relaxed);
  window_us_.store(
      static_cast<int64_t>(std::max(0.001, options.window_seconds) * 1e6),
      std::memory_order_relaxed);
  cooldown_us_.store(
      static_cast<int64_t>(std::max(0.0, options.reason_cooldown_seconds) *
                           1e6),
      std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
  SetTraceSink(this);
}

void FlightRecorder::Disable() {
  SetTraceSink(nullptr);
  enabled_.store(false, std::memory_order_release);
}

FlightRecorderOptions FlightRecorder::options() const {
  FlightRecorderOptions options;
  options.ring_capacity = ring_capacity_.load(std::memory_order_relaxed);
  options.window_seconds =
      static_cast<double>(window_us_.load(std::memory_order_relaxed)) * 1e-6;
  options.reason_cooldown_seconds =
      static_cast<double>(cooldown_us_.load(std::memory_order_relaxed)) * 1e-6;
  std::lock_guard<std::mutex> lock(mutex_);
  options.incident_dir = incident_dir_;
  return options;
}

FlightRecorder::Ring* FlightRecorder::ThreadRing() {
  const int capacity = ring_capacity_.load(std::memory_order_relaxed);
  if (g_flight_ring != nullptr && g_flight_ring->capacity == capacity) {
    return g_flight_ring;
  }
  auto ring = std::make_unique<Ring>(capacity);
  g_flight_ring = ring.get();
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::move(ring));
  return g_flight_ring;
}

void FlightRecorder::Record(uint8_t kind, std::string_view category,
                            std::string_view name, std::string_view detail,
                            int64_t ts_us, int64_t dur_us) {
  Ring* ring = ThreadRing();
  const uint64_t pos = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[pos % static_cast<uint64_t>(ring->capacity)];
  // Seqlock write: odd while the payload is in flux. Single writer per
  // ring, so a plain +1/+1 protocol suffices.
  const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);
  slot.ts_us.store(ts_us, std::memory_order_relaxed);
  slot.dur_us.store(dur_us, std::memory_order_relaxed);
  slot.kind.store(kind, std::memory_order_relaxed);
  StoreText(slot.category, kCategoryBytes, slot.category_len, category);
  StoreText(slot.name, kNameBytes, slot.name_len, name);
  StoreText(slot.detail, kDetailBytes, slot.detail_len, detail);
  slot.seq.store(seq + 2, std::memory_order_release);
  ring->head.store(pos + 1, std::memory_order_release);
}

void FlightRecorder::OnInstant(std::string_view category,
                               std::string_view name,
                               std::string_view detail) {
  if (!enabled()) return;
  Record(kKindInstant, category, name, detail, ObsNowMicros(), -1);
}

void FlightRecorder::OnSpanEnd(std::string_view stage, int64_t /*start_us*/,
                               int64_t dur_us) {
  if (!enabled()) return;
  // The sink's start_us has no shared epoch; anchor the record on our own
  // clock so the dump window filter compares like with like.
  const int64_t now = ObsNowMicros();
  Record(kKindSpan, "span", stage, "",
         now - std::max<int64_t>(0, dur_us), dur_us);
}

void FlightRecorder::AddContextProvider(
    const std::string& name, std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  context_providers_.emplace_back(name, std::move(provider));
}

void FlightRecorder::ClearContextProviders() {
  std::lock_guard<std::mutex> lock(mutex_);
  context_providers_.clear();
}

std::vector<FlightRecord> FlightRecorder::CollectRecent() const {
  const int64_t cutoff =
      ObsNowMicros() - window_us_.load(std::memory_order_relaxed);
  std::vector<FlightRecord> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    for (int i = 0; i < ring->capacity; ++i) {
      const Slot& slot = ring->slots[i];
      // Optimistic seqlock read: retry a couple of times, then give the
      // slot up — losing one in-flux record to an active writer is fine.
      for (int attempt = 0; attempt < 3; ++attempt) {
        const uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if (seq == 0 || (seq & 1) != 0) break;  // never written / in flux
        FlightRecord record;
        record.ts_us = slot.ts_us.load(std::memory_order_relaxed);
        record.dur_us = slot.dur_us.load(std::memory_order_relaxed);
        record.is_span =
            slot.kind.load(std::memory_order_relaxed) == kKindSpan;
        record.category =
            LoadText(slot.category, kCategoryBytes, slot.category_len);
        record.name = LoadText(slot.name, kNameBytes, slot.name_len);
        record.detail = LoadText(slot.detail, kDetailBytes, slot.detail_len);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
        if (record.ts_us >= cutoff) out.push_back(std::move(record));
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.name < b.name;
            });
  return out;
}

int64_t FlightRecorder::incidents_dumped() const {
  return incidents_dumped_.load(std::memory_order_relaxed);
}

Result<std::string> FlightRecorder::TriggerIncident(std::string_view reason) {
  if (!enabled()) {
    return Status::FailedPrecondition("flight recorder is disabled");
  }
  const int64_t now = ObsNowMicros();
  int64_t id = 0;
  std::string root;
  std::vector<std::pair<std::string, std::function<std::string()>>> providers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    int64_t& last = last_incident_us_[std::string(reason)];
    if (last != 0 &&
        now - last < cooldown_us_.load(std::memory_order_relaxed)) {
      MetricsRegistry::Global()
          .counter("obs.incidents.suppressed")
          .Increment();
      return Status::Unavailable("incident reason \"" + std::string(reason) +
                                 "\" is cooling down");
    }
    last = now;
    id = ++incident_seq_;
    root = incident_dir_;
    providers = context_providers_;
  }
  MetricsRegistry::Global().counter("obs.incidents.triggered").Increment();

  const std::vector<FlightRecord> records = CollectRecent();

  // --- render every file's content first (checksums go in the manifest) --
  std::ostringstream timeline;
  for (const FlightRecord& record : records) {
    timeline << "{\"ts_us\": " << record.ts_us << ", \"age_us\": "
             << (now - record.ts_us) << ", \"kind\": \""
             << (record.is_span ? "span" : "instant") << "\", \"category\": \""
             << JsonEscape(record.category) << "\", \"name\": \""
             << JsonEscape(record.name) << "\", \"detail\": \""
             << JsonEscape(record.detail) << "\", \"dur_us\": "
             << record.dur_us << "}\n";
  }
  const std::string metrics_json =
      MetricsRegistry::Global().Snapshot().ToJson() + "\n";
  const std::string metrics_prom = MetricsRegistry::Global().ToPrometheusText();
  std::ostringstream context;
  context << "{";
  for (size_t i = 0; i < providers.size(); ++i) {
    if (i > 0) context << ", ";
    context << "\"" << JsonEscape(providers[i].first)
            << "\": " << providers[i].second();
  }
  context << "}\n";

  std::vector<std::pair<std::string, std::string>> files = {
      {"timeline.jsonl", timeline.str()},
      {"metrics.json", metrics_json},
      {"metrics.prom", metrics_prom},
      {"context.json", context.str()},
  };

  std::ostringstream manifest;
  manifest << "{\"reason\": \"" << JsonEscape(reason) << "\", \"id\": " << id
           << ", \"dumped_at_us\": " << now << ", \"window_us\": "
           << window_us_.load(std::memory_order_relaxed)
           << ", \"num_records\": " << records.size() << ", \"files\": {";
  for (size_t i = 0; i < files.size(); ++i) {
    if (i > 0) manifest << ", ";
    manifest << "\"" << JsonEscape(files[i].first) << "\": \""
             << ContentChecksum(files[i].second) << "\"";
  }
  manifest << "}}\n";

  // --- atomic dump: hidden temp dir, then a single rename ---------------
  char tag[32];
  std::snprintf(tag, sizeof(tag), "%06lld", static_cast<long long>(id));
  const std::string final_dir = root + "/incident-" + tag + "-" +
                                SanitizeReason(reason);
  const std::string tmp_dir = root + "/.tmp-incident-" + tag;
  std::error_code ec;
  std::filesystem::remove_all(tmp_dir, ec);
  std::filesystem::create_directories(tmp_dir, ec);
  if (ec) {
    return Status::Internal("cannot create incident dir " + tmp_dir + ": " +
                            ec.message());
  }
  for (const auto& [name, content] : files) {
    RETURN_IF_ERROR(
        AtomicWriteFile(tmp_dir + "/" + name, WithChecksumFooter(content)));
  }
  RETURN_IF_ERROR(AtomicWriteFile(tmp_dir + "/MANIFEST.json",
                                  WithChecksumFooter(manifest.str())));
  std::filesystem::remove_all(final_dir, ec);
  std::filesystem::rename(tmp_dir, final_dir, ec);
  if (ec) {
    return Status::Internal("cannot publish incident dir " + final_dir +
                            ": " + ec.message());
  }
  incidents_dumped_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Global().counter("obs.incidents.dumped").Increment();
  TraceInstant("obs", "incident",
               std::string(reason) + " -> " + final_dir);
  return final_dir;
}

/// Reads a dump file, additionally *requiring* the checksum footer: every
/// file the recorder writes carries one, so a footer-less file inside a
/// dump is tampering (a plain ReadFileVerifyingChecksum would accept it as
/// a legacy artifact). The returned content has the footer stripped.
Result<std::string> ReadDumpFileStrict(const std::string& path) {
  ASSIGN_OR_RETURN(std::string content, ReadFileVerifyingChecksum(path));
  std::error_code ec;
  const auto raw_size = std::filesystem::file_size(path, ec);
  if (ec || raw_size <= content.size()) {
    return Status::InvalidArgument("incident file " + path +
                                   " has no checksum footer");
  }
  return content;
}

Result<IncidentManifest> ReadIncidentManifest(const std::string& dir) {
  ASSIGN_OR_RETURN(const std::string content,
                   ReadDumpFileStrict(dir + "/MANIFEST.json"));
  IncidentManifest manifest;
  if (!ScanStringField(content, "reason", 0, &manifest.reason)) {
    return Status::InvalidArgument("incident manifest in " + dir +
                                   " has no reason field");
  }
  if (!ScanIntField(content, "id", &manifest.id) ||
      !ScanIntField(content, "dumped_at_us", &manifest.dumped_at_us) ||
      !ScanIntField(content, "num_records", &manifest.num_records)) {
    return Status::InvalidArgument("incident manifest in " + dir +
                                   " is missing numeric fields");
  }
  const size_t files_at = content.find("\"files\": {");
  const size_t files_end =
      files_at == std::string::npos ? std::string::npos
                                    : content.find('}', files_at);
  if (files_at == std::string::npos || files_end == std::string::npos) {
    return Status::InvalidArgument("incident manifest in " + dir +
                                   " has no files map");
  }
  // The files map is flat "name": "checksum" pairs; walk the quoted tokens.
  size_t cursor = files_at + 10;
  while (cursor < files_end) {
    const size_t key_open = content.find('"', cursor);
    if (key_open == std::string::npos || key_open >= files_end) break;
    const size_t key_close = content.find('"', key_open + 1);
    const size_t val_open = content.find('"', key_close + 1);
    const size_t val_close = content.find('"', val_open + 1);
    if (key_close == std::string::npos || val_open == std::string::npos ||
        val_close == std::string::npos || val_close > files_end) {
      return Status::InvalidArgument("incident manifest in " + dir +
                                     " has a malformed files map");
    }
    manifest.files.emplace_back(
        content.substr(key_open + 1, key_close - key_open - 1),
        content.substr(val_open + 1, val_close - val_open - 1));
    cursor = val_close + 1;
  }
  if (manifest.files.empty()) {
    return Status::InvalidArgument("incident manifest in " + dir +
                                   " lists no files");
  }
  return manifest;
}

Status VerifyIncidentDump(const std::string& dir) {
  ASSIGN_OR_RETURN(const IncidentManifest manifest, ReadIncidentManifest(dir));
  bool has_timeline = false;
  bool has_metrics = false;
  for (const auto& [name, checksum] : manifest.files) {
    ASSIGN_OR_RETURN(const std::string content,
                     ReadDumpFileStrict(dir + "/" + name));
    if (ContentChecksum(content) != checksum) {
      return Status::InvalidArgument(
          "incident file " + name + " in " + dir +
          " does not match its manifest checksum");
    }
    if (name == "timeline.jsonl") has_timeline = true;
    if (name == "metrics.json") has_metrics = true;
  }
  if (!has_timeline || !has_metrics) {
    return Status::InvalidArgument("incident dump " + dir +
                                   " is missing timeline.jsonl/metrics.json");
  }
  return Status::Ok();
}

std::vector<std::string> ListIncidentDumps(const std::string& incident_root) {
  std::vector<std::string> dumps;
  std::error_code ec;
  std::filesystem::directory_iterator it(incident_root, ec);
  if (ec) return dumps;
  for (const auto& entry : it) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (StartsWith(name, "incident-")) {
      dumps.push_back(entry.path().string());
    }
  }
  std::sort(dumps.begin(), dumps.end());
  return dumps;
}

}  // namespace activedp
