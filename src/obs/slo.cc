#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "obs/flight_recorder.h"
#include "util/atomic_file.h"
#include "util/string_util.h"

namespace activedp {
namespace {

/// Error budget, floored so a 100% objective cannot divide by zero.
double ErrorBudget(double objective) {
  return std::max(1e-9, 1.0 - objective);
}

}  // namespace

std::string_view SloKindToString(SloKind kind) {
  switch (kind) {
    case SloKind::kAvailability:
      return "availability";
    case SloKind::kLatencyQuantile:
      return "latency_quantile";
    case SloKind::kSnapshotStaleness:
      return "snapshot_staleness";
    case SloKind::kRetrainFreshness:
      return "retrain_freshness";
  }
  return "unknown";
}

double HistogramCdf(const std::vector<double>& bounds,
                    const std::vector<int64_t>& counts, double x) {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total <= 0) return 1.0;
  double at_or_below = 0.0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] <= 0) continue;
    if (b >= bounds.size()) {
      // Overflow bucket: no upper edge, so none of it is provably <= x.
      continue;
    }
    const double upper = bounds[b];
    const double lower = b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
    if (x >= upper) {
      at_or_below += static_cast<double>(counts[b]);
    } else if (x > lower) {
      at_or_below += static_cast<double>(counts[b]) * (x - lower) /
                     (upper - lower);
    }
  }
  return at_or_below / static_cast<double>(total);
}

bool SloStatus::all_met() const {
  for (const SloResult& result : results) {
    if (!result.met) return false;
  }
  return true;
}

std::string SloStatus::ToJson() const {
  std::ostringstream out;
  out << "{\"now_us\": " << now_us << ", \"samples\": " << samples
      << ", \"all_met\": " << (all_met() ? "true" : "false")
      << ", \"slos\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const SloResult& r = results[i];
    if (i > 0) out << ", ";
    out << "{\"name\": \"" << JsonEscape(r.name) << "\", \"kind\": \""
        << SloKindToString(r.kind) << "\", \"met\": "
        << (r.met ? "true" : "false") << ", \"burn_short\": " << r.burn_short
        << ", \"burn_long\": " << r.burn_long << ", \"value\": " << r.value
        << ", \"detail\": \"" << JsonEscape(r.detail) << "\"}";
  }
  out << "]}\n";
  return out.str();
}

SloEngine::SloEngine(std::vector<SloSpec> specs, MetricsRegistry* registry)
    : specs_(std::move(specs)),
      registry_(registry),
      max_window_us_([this] {
        double longest = 1.0;
        for (const SloSpec& spec : specs_) {
          longest = std::max(longest, spec.long_window_seconds);
          longest = std::max(longest, spec.short_window_seconds);
        }
        return static_cast<int64_t>(longest * 1e6);
      }()) {}

void SloEngine::Tick() {
  const int64_t now = ObsNowMicros();
  MetricsSnapshot snapshot = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  AppendSampleLocked(now, std::move(snapshot));
}

void SloEngine::MaybeTick(double period_seconds) {
  const int64_t now = ObsNowMicros();
  const int64_t period_us = static_cast<int64_t>(period_seconds * 1e6);
  const int64_t last = last_tick_us_.load(std::memory_order_relaxed);
  if (last >= 0 && now - last < period_us) return;
  // A racing second caller samples too — harmless, samples are idempotent
  // over identical snapshots and the deque stays time-ordered.
  Tick();
}

void SloEngine::TickWithSnapshot(int64_t now_us, MetricsSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  AppendSampleLocked(now_us, std::move(snapshot));
}

void SloEngine::AppendSampleLocked(int64_t now_us, MetricsSnapshot snapshot) {
  if (!samples_.empty() && now_us < samples_.back().ts_us) {
    return;  // never let a stale clock reorder the sample sequence
  }
  samples_.push_back(Sample{now_us, std::move(snapshot)});
  last_tick_us_.store(now_us, std::memory_order_relaxed);
  // Keep one sample older than the longest window as the delta baseline.
  while (samples_.size() > 2 &&
         samples_[1].ts_us <= now_us - max_window_us_) {
    samples_.pop_front();
  }
}

const SloEngine::Sample* SloEngine::BaselineLocked(
    double window_seconds) const {
  if (samples_.size() < 2) return nullptr;
  const int64_t cutoff = samples_.back().ts_us -
                         static_cast<int64_t>(window_seconds * 1e6);
  const Sample* baseline = &samples_.front();
  for (const Sample& sample : samples_) {
    if (sample.ts_us > cutoff) break;
    baseline = &sample;
  }
  // The newest sample itself can never be the baseline of its own window.
  if (baseline == &samples_.back()) baseline = &samples_[samples_.size() - 2];
  return baseline;
}

SloResult SloEngine::EvaluateSpecLocked(const SloSpec& spec) const {
  SloResult result;
  result.name = spec.name;
  result.kind = spec.kind;

  if (spec.kind == SloKind::kSnapshotStaleness ||
      spec.kind == SloKind::kRetrainFreshness) {
    if (samples_.empty()) {
      result.detail = "no samples";
      return result;
    }
    const MetricsSnapshot& latest = samples_.back().snapshot;
    double age = 0.0;
    for (const MetricsSnapshot::GaugeSample& gauge : latest.gauges) {
      if (gauge.name == spec.age_gauge && gauge.labels.empty()) {
        age = gauge.value;
        break;
      }
    }
    result.value = age;
    result.met = age <= spec.max_age_seconds;
    result.detail = spec.age_gauge + "=" + FormatDouble(age, 3) +
                    "s (max " + FormatDouble(spec.max_age_seconds, 3) + "s)";
    return result;
  }

  const auto bad_fraction = [&](const Sample& base,
                                const Sample& latest) -> double {
    if (spec.kind == SloKind::kAvailability) {
      const int64_t total =
          latest.snapshot.counter_value(spec.total_counter) -
          base.snapshot.counter_value(spec.total_counter);
      if (total <= 0) return 0.0;
      int64_t bad = 0;
      for (const std::string& counter : spec.bad_counters) {
        bad += latest.snapshot.counter_value(counter) -
               base.snapshot.counter_value(counter);
      }
      bad = std::max<int64_t>(0, std::min<int64_t>(bad, total));
      return static_cast<double>(bad) / static_cast<double>(total);
    }
    // kLatencyQuantile: delta bucket counts between the two samples.
    const MetricsSnapshot::HistogramSample* now =
        latest.snapshot.FindHistogram(spec.histogram, spec.histogram_labels);
    if (now == nullptr) return 0.0;
    const MetricsSnapshot::HistogramSample* then =
        base.snapshot.FindHistogram(spec.histogram, spec.histogram_labels);
    std::vector<int64_t> delta = now->counts;
    if (then != nullptr && then->counts.size() == delta.size()) {
      for (size_t b = 0; b < delta.size(); ++b) {
        delta[b] = std::max<int64_t>(0, delta[b] - then->counts[b]);
      }
    }
    return 1.0 - HistogramCdf(now->bounds, delta, spec.latency_bound_ms);
  };

  const Sample* short_base = BaselineLocked(spec.short_window_seconds);
  const Sample* long_base = BaselineLocked(spec.long_window_seconds);
  if (short_base == nullptr || long_base == nullptr) {
    result.detail = "insufficient samples for burn windows";
    return result;
  }
  const Sample& latest = samples_.back();
  const double budget = ErrorBudget(spec.objective);
  result.burn_short = bad_fraction(*short_base, latest) / budget;
  result.burn_long = bad_fraction(*long_base, latest) / budget;
  result.value = result.burn_long * budget;
  result.met = !(result.burn_short > spec.burn_threshold &&
                 result.burn_long > spec.burn_threshold);
  result.detail = "burn short=" + FormatDouble(result.burn_short, 3) +
                  " long=" + FormatDouble(result.burn_long, 3) +
                  " (threshold " + FormatDouble(spec.burn_threshold, 3) + ")";
  return result;
}

SloStatus SloEngine::Evaluate() const {
  SloStatus status;
  std::lock_guard<std::mutex> lock(mutex_);
  status.now_us = samples_.empty() ? 0 : samples_.back().ts_us;
  status.samples = static_cast<int64_t>(samples_.size());
  status.results.reserve(specs_.size());
  for (const SloSpec& spec : specs_) {
    status.results.push_back(EvaluateSpecLocked(spec));
  }
  return status;
}

std::string SloEngine::StatusJson() const { return Evaluate().ToJson(); }

Status SloEngine::ExportStatus(const std::string& path) const {
  return AtomicWriteFile(path, StatusJson());
}

std::vector<SloSpec> DefaultServingSlos() {
  std::vector<SloSpec> specs;
  {
    SloSpec spec;
    spec.name = "serve-availability";
    spec.kind = SloKind::kAvailability;
    spec.objective = 0.99;
    spec.total_counter = "serve.requests";
    spec.bad_counters = {"serve.rejected", "serve.expired"};
    specs.push_back(std::move(spec));
  }
  {
    SloSpec spec;
    spec.name = "serve-batch-p99";
    spec.kind = SloKind::kLatencyQuantile;
    spec.objective = 0.99;
    spec.histogram = "serve.batch_latency_ms";
    spec.latency_bound_ms = 50.0;
    specs.push_back(std::move(spec));
  }
  {
    SloSpec spec;
    spec.name = "snapshot-staleness";
    spec.kind = SloKind::kSnapshotStaleness;
    spec.age_gauge = "serve.snapshot_age_seconds";
    spec.max_age_seconds = 600.0;
    specs.push_back(std::move(spec));
  }
  {
    SloSpec spec;
    spec.name = "retrain-freshness";
    spec.kind = SloKind::kRetrainFreshness;
    spec.age_gauge = "retrain.last_success_age_seconds";
    spec.max_age_seconds = 3600.0;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace activedp
