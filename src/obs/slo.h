#ifndef ACTIVEDP_OBS_SLO_H_
#define ACTIVEDP_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/metrics.h"
#include "util/result.h"

namespace activedp {

/// SLO burn-rate engine: the judging half of the OpsPlane (DESIGN.md §14).
///
/// The serving and learning loops emit counters, histograms and gauges that
/// nothing judged against a target. SloEngine holds declarative SloSpecs
/// and evaluates them over *deltas* of periodic MetricsSnapshot samples —
/// never over live instruments — so an evaluation is a pure function of the
/// sampled sequence and two evaluations at the same sample history agree
/// exactly.
///
/// Breach semantics follow multi-window burn rates: with objective p (the
/// target good fraction), the burn rate of a window is
///
///   burn = bad_fraction / (1 - p)
///
/// i.e. burn 1.0 consumes the error budget exactly at the sustainable
/// rate. A burn-rate SLO is breached only when BOTH the short window and
/// the long window burn above `burn_threshold` — the short window makes
/// the alert fast, the long window keeps a transient blip from paging.
/// Windows with no traffic (zero delta) burn 0 and stay met: no evidence
/// is not a breach. Staleness/freshness SLOs are instantaneous instead:
/// the latest sampled age gauge must sit under its bound.
enum class SloKind {
  /// Fraction of requests not rejected/expired, from counter deltas.
  kAvailability,
  /// Fraction of observations at or under `latency_bound_ms`, from
  /// histogram bucket deltas (interpolated CDF; overflow-bucket
  /// observations count as over-bound).
  kLatencyQuantile,
  /// The serving snapshot's age gauge stays under `max_age_seconds`.
  kSnapshotStaleness,
  /// The last successful retrain's age gauge stays under `max_age_seconds`.
  kRetrainFreshness,
};

std::string_view SloKindToString(SloKind kind);

struct SloSpec {
  std::string name;
  SloKind kind = SloKind::kAvailability;
  /// Target good fraction for burn-rate kinds (e.g. 0.999).
  double objective = 0.999;

  // kAvailability: good = total - sum(bad).
  std::string total_counter;
  std::vector<std::string> bad_counters;

  // kLatencyQuantile: the histogram series and the bound a request must
  // complete under for the objective fraction of traffic.
  std::string histogram;
  MetricLabels histogram_labels;
  double latency_bound_ms = 0.0;

  // kSnapshotStaleness / kRetrainFreshness: gauge holding an age in
  // seconds (whoever publishes/retrains maintains it).
  std::string age_gauge;
  double max_age_seconds = 0.0;

  // Burn-rate windows (ignored by the instantaneous kinds).
  double short_window_seconds = 5.0;
  double long_window_seconds = 60.0;
  double burn_threshold = 1.0;
};

struct SloResult {
  std::string name;
  SloKind kind = SloKind::kAvailability;
  bool met = true;
  double burn_short = 0.0;
  double burn_long = 0.0;
  /// Long-window bad fraction (burn kinds) or the sampled age in seconds
  /// (instantaneous kinds).
  double value = 0.0;
  std::string detail;
};

struct SloStatus {
  int64_t now_us = 0;
  int64_t samples = 0;
  std::vector<SloResult> results;

  bool all_met() const;
  std::string ToJson() const;
};

/// Interpolated CDF over histogram buckets: the fraction of observations
/// at or below `x`, linear within the bucket containing `x` (first bucket
/// lower edge min(0, bounds[0])). Observations in the overflow bucket
/// count as above any finite x. Empty histograms return 1.0 (no evidence
/// of lateness). Shared with tests; the quantile inverse lives in
/// util/metrics.h (HistogramQuantile).
double HistogramCdf(const std::vector<double>& bounds,
                    const std::vector<int64_t>& counts, double x);

class SloEngine {
 public:
  explicit SloEngine(std::vector<SloSpec> specs,
                     MetricsRegistry* registry = &MetricsRegistry::Global());

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Takes one timestamped sample of the registry. Samples older than the
  /// longest window (plus one baseline sample) are pruned.
  void Tick();
  /// Samples at most once per `period_seconds` — callable from hot client
  /// loops (a skipped call is one relaxed load + compare).
  void MaybeTick(double period_seconds = 1.0);
  /// Deterministic variant for tests: caller supplies the clock and the
  /// snapshot, so an evaluation is reproducible bit-for-bit.
  void TickWithSnapshot(int64_t now_us, MetricsSnapshot snapshot);

  /// Evaluates every spec at the latest sample. With fewer than two
  /// samples all burn-rate SLOs report met (no deltas yet).
  SloStatus Evaluate() const;

  /// Evaluate() rendered as JSON (the periodic status export).
  std::string StatusJson() const;
  /// Writes StatusJson() to `path` via AtomicWriteFile.
  Status ExportStatus(const std::string& path) const;

  const std::vector<SloSpec>& specs() const { return specs_; }

 private:
  struct Sample {
    int64_t ts_us = 0;
    MetricsSnapshot snapshot;
  };

  void AppendSampleLocked(int64_t now_us, MetricsSnapshot snapshot);
  SloResult EvaluateSpecLocked(const SloSpec& spec) const;
  /// Newest sample with ts_us <= now - window (or the oldest sample when
  /// history is shorter than the window). nullptr with < 2 samples.
  const Sample* BaselineLocked(double window_seconds) const;

  const std::vector<SloSpec> specs_;
  MetricsRegistry* const registry_;
  const int64_t max_window_us_;

  mutable std::mutex mutex_;
  std::deque<Sample> samples_;
  std::atomic<int64_t> last_tick_us_{-1};
};

/// The serving SLOs the benches evaluate by default: availability 99% (bad
/// = rejected + expired), p99 batch latency under 50ms, snapshot staleness
/// under 10 minutes, retrain freshness under 1 hour. The age gauges
/// ("serve.snapshot_age_seconds", "retrain.last_success_age_seconds") are
/// maintained by whoever loads snapshots / publishes retrains.
std::vector<SloSpec> DefaultServingSlos();

}  // namespace activedp

#endif  // ACTIVEDP_OBS_SLO_H_
