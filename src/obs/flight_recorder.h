#ifndef ACTIVEDP_OBS_FLIGHT_RECORDER_H_
#define ACTIVEDP_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/trace.h"

namespace activedp {

/// FlightRecorder: the always-on half of the OpsPlane (DESIGN.md §14).
///
/// The full tracer (util/trace.h) is bracketed around whole runs and costs
/// an unbounded buffer, so production serving keeps it off. The flight
/// recorder instead keeps a *bounded* per-thread ring of the most recent
/// spans and instants — fed through the TraceSink hook, so every existing
/// TraceSpan / TraceInstant call site reports into it with no code changes
/// and regardless of whether the tracer is enabled. When something goes
/// wrong, TriggerIncident(reason) freezes the last N seconds of timeline
/// plus a coherent metrics snapshot and registered context (registry
/// lineage, scenario tags) into a checksummed incident directory.
///
/// Memory bound: ring_capacity slots per recording thread, each slot a
/// fixed ~200-byte struct (strings truncate to the slot's char budget), so
/// a service with T threads holds T × ring_capacity × ~200 bytes — ~400 KiB
/// per thread at the default 2048 slots, never more, never allocating on
/// the record path after ring registration.
///
/// Write path: per-slot seqlock. Each ring has exactly one writer (its
/// owning thread), so a record is: bump the slot's sequence to odd, store
/// the payload through relaxed atomics, bump to even. Readers
/// (TriggerIncident, Snapshot) copy slots optimistically and discard any
/// slot whose sequence changed or was odd — lock-free for writers, no
/// torn text, race-free under TSan (every payload byte is an atomic).
///
/// Incident dumps are atomic: files are written into a hidden temp
/// directory and renamed into place, each file carries a "#crc64" footer,
/// and MANIFEST.json records every file's content checksum — so a
/// half-written dump is never observable and VerifyIncidentDump can prove
/// a dump intact after the fact (corruption_fuzz mutates these files and
/// asserts detection).
struct FlightRecorderOptions {
  /// Slots per recording thread; the bound on recorder memory.
  int ring_capacity = 2048;
  /// TriggerIncident keeps records no older than this.
  double window_seconds = 30.0;
  /// Directory incident dumps land in (one subdirectory per incident).
  std::string incident_dir = "incidents";
  /// Repeated triggers for the same reason within this window are
  /// suppressed (counted in obs.incidents.suppressed) — a breaker flapping
  /// ten times yields one dump, not ten. Enable() resets the cooldowns.
  double reason_cooldown_seconds = 300.0;
};

/// One decoded ring record (reader-side copy of a slot).
struct FlightRecord {
  int64_t ts_us = 0;  // steady-clock micros (process epoch)
  bool is_span = false;
  std::string category;  // instants only; spans use "span"
  std::string name;      // stage name or instant name
  std::string detail;    // instants only (truncated to the slot budget)
  int64_t dur_us = -1;   // spans only
};

/// Parsed MANIFEST.json of one incident dump.
struct IncidentManifest {
  std::string reason;
  int64_t id = 0;
  int64_t dumped_at_us = 0;
  int64_t num_records = 0;
  /// file name -> FNV-1a content checksum (of the content sans footer).
  std::vector<std::pair<std::string, std::string>> files;
};

class FlightRecorder : public TraceSink {
 public:
  static FlightRecorder& Global();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Arms the recorder and installs it as the process TraceSink. Resets
  /// per-reason cooldowns and clears context providers (a new scenario
  /// starts clean); existing rings are reused when the capacity is
  /// unchanged, and stale entries age out of the dump window on their own.
  void Enable(FlightRecorderOptions options = {});
  /// Disarms and uninstalls the TraceSink. Rings are kept (registration is
  /// per-thread and cheap to reuse).
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  FlightRecorderOptions options() const;

  // TraceSink — called from util/trace for every instant and span end.
  void OnInstant(std::string_view category, std::string_view name,
                 std::string_view detail) override;
  void OnSpanEnd(std::string_view stage, int64_t start_us,
                 int64_t dur_us) override;

  /// Registers a named provider whose return value (a JSON value) is
  /// embedded in every dump's context.json — registry/snapshot lineage,
  /// scenario tags. Providers are borrowed: the caller must keep captured
  /// state alive while the recorder is enabled (Enable() clears them).
  void AddContextProvider(const std::string& name,
                          std::function<std::string()> provider);
  void ClearContextProviders();

  /// Coherent copy of every ring entry inside the dump window, oldest
  /// first. This is exactly the timeline TriggerIncident dumps.
  std::vector<FlightRecord> CollectRecent() const;

  /// Freezes the recent timeline + metrics + context into a new checksummed
  /// incident directory and returns its path. FailedPrecondition when the
  /// recorder is disabled; Unavailable when the reason is cooling down
  /// (the dump is suppressed, not queued). Never called with locks held by
  /// trigger sites — this does file IO.
  Result<std::string> TriggerIncident(std::string_view reason);

  /// Incident directories dumped since process start (monotonic).
  int64_t incidents_dumped() const;

  /// One per-thread seqlock ring (opaque; defined in the .cc).
  struct Ring;

 private:
  Ring* ThreadRing();
  void Record(uint8_t kind, std::string_view category, std::string_view name,
              std::string_view detail, int64_t ts_us, int64_t dur_us);

  std::atomic<bool> enabled_{false};
  std::atomic<int> ring_capacity_{2048};
  std::atomic<int64_t> window_us_{30'000'000};
  std::atomic<int64_t> cooldown_us_{300'000'000};
  std::atomic<int64_t> incidents_dumped_{0};

  mutable std::mutex mutex_;
  std::string incident_dir_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::map<std::string, int64_t> last_incident_us_;  // per reason
  int64_t incident_seq_ = 0;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      context_providers_;
};

/// Structural + checksum verification of one incident dump directory:
/// MANIFEST.json parses and its footer verifies, every listed file exists,
/// verifies its own footer, and matches the manifest's recorded checksum,
/// and the dump contains at least the timeline and metrics files. This is
/// what the bench gates and corruption_fuzz assert with.
Status VerifyIncidentDump(const std::string& dir);

/// Reads and parses MANIFEST.json (verifying its checksum footer).
Result<IncidentManifest> ReadIncidentManifest(const std::string& dir);

/// The incident dump directories under `incident_root` (completed dumps
/// only — in-progress temp directories are excluded), sorted by name.
std::vector<std::string> ListIncidentDumps(const std::string& incident_root);

/// Steady-clock microseconds since process start — the recorder's (and SLO
/// engine's) time base.
int64_t ObsNowMicros();

}  // namespace activedp

#endif  // ACTIVEDP_OBS_FLIGHT_RECORDER_H_
