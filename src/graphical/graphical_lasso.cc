#include "graphical/graphical_lasso.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "graphical/lasso.h"
#include "math/kernels.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace activedp {
namespace {

bool MatrixFinite(const Matrix& m) {
  for (int i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    for (int j = 0; j < m.cols(); ++j) {
      if (!std::isfinite(row[j])) return false;
    }
  }
  return true;
}

}  // namespace

Result<GraphicalLassoResult> GraphicalLasso(
    const Matrix& sample_covariance, const GraphicalLassoOptions& options) {
  const int p = sample_covariance.rows();
  if (sample_covariance.cols() != p)
    return Status::InvalidArgument("covariance must be square");
  if (p < 2) return Status::InvalidArgument("need at least 2 variables");
  if (options.rho < 0.0)
    return Status::InvalidArgument("rho must be non-negative");
  if (!MatrixFinite(sample_covariance))
    return Status::InvalidArgument("covariance has non-finite entries");

  TraceSpan span("glasso.solve");
  span.AddArg("p", p);

  const FaultKind fault = CheckFault(
      "glasso.solve",
      {FaultKind::kError, FaultKind::kNan, FaultKind::kNoConverge});
  if (fault == FaultKind::kError) {
    return Status::Internal("injected fault at glasso.solve");
  }

  const Matrix& s = sample_covariance;
  // W starts at S with rho added to the diagonal (keeps W positive definite
  // even for degenerate S, e.g. constant columns).
  Matrix w = s;
  for (int j = 0; j < p; ++j) w(j, j) += options.rho;

  // Per-column lasso coefficients, kept across sweeps for warm starts and
  // for the final precision reconstruction.
  std::vector<std::vector<double>> betas(p, std::vector<double>(p - 1, 0.0));

  Matrix w11(p - 1, p - 1);
  std::vector<double> s12(p - 1);
  int iterations = 0;
  bool converged = false;
  double last_max_change = 0.0;
  for (; iterations < options.max_iterations; ++iterations) {
    const Status limit = options.limits.Check("glasso.solve");
    if (!limit.ok()) {
      // Partial-progress report: how far the sweep got before the budget
      // tripped, so callers can log/decide without rerunning.
      return Status(limit.code(),
                    "graphical lasso: " + limit.message() + " after " +
                        std::to_string(iterations) + " of " +
                        std::to_string(options.max_iterations) +
                        " sweeps (last delta " +
                        std::to_string(last_max_change) + ")");
    }
    double max_change = 0.0;
    // The column sweep itself is inherently sequential (each column update
    // reads the W produced by the previous one), but within a column the
    // partition copy and the w12 = W11 * beta residual update are
    // row-partitioned: every output row is written by one chunk with a
    // serial inner dot, so the sweep is bitwise identical at any thread
    // count. Small problems run inline (ComputePool chunking threshold).
    ThreadPool* const pool = p >= 64 ? ComputePool() : nullptr;
    const int row_grain = BoundedGrain(p - 1, 16, 64);
    std::vector<double> w12_new(p - 1);
    for (int col = 0; col < p; ++col) {
      // Partition: w11 = W without row/col `col`; s12 = S column `col`.
      // Each source row splits into two contiguous memcpy segments around
      // the dropped column — cache-blocked and branch-free per element.
      RETURN_IF_ERROR(ParallelForChunks(
          pool, p - 1, row_grain, options.limits, "glasso.solve",
          [&](int /*chunk*/, int begin, int end) {
            for (int ii = begin; ii < end; ++ii) {
              const int i = ii < col ? ii : ii + 1;
              const double* src = w.RowPtr(i);
              double* dst = w11.RowPtr(ii);
              if (col > 0) {
                std::memcpy(dst, src, sizeof(double) * col);
              }
              if (col < p - 1) {
                std::memcpy(dst + col, src + col + 1,
                            sizeof(double) * (p - 1 - col));
              }
              s12[ii] = s(i, col);
            }
          }));

      std::vector<double> beta =
          LassoQuadratic(w11, s12, options.rho, options.lasso_max_iterations,
                         options.lasso_tolerance);
      // w12 = W11 * beta, row-partitioned into w12_new (no aliasing with the
      // w11 reads), then applied serially together with the convergence gap.
      RETURN_IF_ERROR(ParallelForChunks(
          pool, p - 1, row_grain, options.limits, "glasso.solve",
          [&](int /*chunk*/, int begin, int end) {
            for (int ii = begin; ii < end; ++ii) {
              w12_new[ii] =
                  kernels::DotDense(w11.RowPtr(ii), beta.data(), p - 1);
            }
          }));
      for (int ii = 0; ii < p - 1; ++ii) {
        const int i = ii < col ? ii : ii + 1;
        max_change = std::max(max_change, std::fabs(w(i, col) - w12_new[ii]));
        w(i, col) = w12_new[ii];
        w(col, i) = w12_new[ii];
      }
      betas[col] = std::move(beta);
    }
    last_max_change = max_change;
    if (!std::isfinite(max_change)) {
      return Status::Internal(
          "graphical lasso diverged: non-finite update at sweep " +
          std::to_string(iterations + 1));
    }
    if (max_change < options.tolerance) {
      converged = true;
      ++iterations;
      break;
    }
  }
  if (fault == FaultKind::kNoConverge) converged = false;

  // Reconstruct Theta from the final W and betas:
  //   theta_cc = 1 / (w_cc - w12' beta),  theta_12 = -beta * theta_cc.
  Matrix theta(p, p);
  for (int col = 0; col < p; ++col) {
    double w12_beta = 0.0;
    for (int i = 0, ii = 0; i < p; ++i) {
      if (i == col) continue;
      w12_beta += w(i, col) * betas[col][ii++];
    }
    const double denom = w(col, col) - w12_beta;
    if (denom <= 0.0)
      return Status::Internal("graphical lasso: non-positive pivot");
    const double theta_cc = 1.0 / denom;
    theta(col, col) = theta_cc;
    for (int i = 0, ii = 0; i < p; ++i) {
      if (i == col) continue;
      theta(i, col) = -betas[col][ii++] * theta_cc;
    }
  }
  // Symmetrize by averaging the two directed estimates.
  for (int i = 0; i < p; ++i) {
    for (int j = i + 1; j < p; ++j) {
      const double avg = 0.5 * (theta(i, j) + theta(j, i));
      theta(i, j) = avg;
      theta(j, i) = avg;
    }
  }

  if (fault == FaultKind::kNan) {
    theta(0, 0) = std::numeric_limits<double>::quiet_NaN();
  }
  if (!MatrixFinite(theta) || !MatrixFinite(w)) {
    return Status::Internal(
        "graphical lasso produced a non-finite estimate");
  }

  MetricsRegistry::Global().counter("glasso.sweeps").Increment(iterations);
  span.AddArg("sweeps", iterations);
  span.AddArg("converged", converged ? 1 : 0);
  if (!converged) {
    TraceInstant("convergence", "glasso.solve",
                 "not converged after " + std::to_string(iterations) +
                     " sweeps (delta " + std::to_string(last_max_change) +
                     ")");
  }

  GraphicalLassoResult result;
  result.covariance = std::move(w);
  result.precision = std::move(theta);
  result.iterations = iterations;
  result.report.converged = converged;
  result.report.iterations = iterations;
  result.report.final_delta = last_max_change;
  result.report.finite = true;
  return result;
}

}  // namespace activedp
