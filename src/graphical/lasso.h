#ifndef ACTIVEDP_GRAPHICAL_LASSO_H_
#define ACTIVEDP_GRAPHICAL_LASSO_H_

#include <vector>

#include "math/matrix.h"
#include "util/result.h"

namespace activedp {

struct LassoOptions {
  double lambda = 0.1;
  int max_iterations = 1000;
  double tolerance = 1e-6;
};

/// L1-penalized least squares min_b (1/2n)||y - X b||^2 + lambda ||b||_1
/// solved by cyclic coordinate descent with soft-thresholding. No intercept;
/// center inputs beforehand if needed. Substrate of the graphical lasso and
/// of Meinshausen–Bühlmann neighbourhood selection.
Result<std::vector<double>> LassoRegression(const Matrix& x,
                                            const std::vector<double>& y,
                                            const LassoOptions& options);

/// Soft-thresholding operator S(z, t) = sign(z) * max(|z| - t, 0).
double SoftThreshold(double z, double threshold);

/// Solves the graphical-lasso column subproblem
///   min_b (1/2) b' W11 b - s12' b + lambda ||b||_1
/// by coordinate descent. `w11` is (p-1)x(p-1) SPD-ish, `s12` length p-1.
std::vector<double> LassoQuadratic(const Matrix& w11,
                                   const std::vector<double>& s12,
                                   double lambda, int max_iterations,
                                   double tolerance);

}  // namespace activedp

#endif  // ACTIVEDP_GRAPHICAL_LASSO_H_
