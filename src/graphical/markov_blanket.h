#ifndef ACTIVEDP_GRAPHICAL_MARKOV_BLANKET_H_
#define ACTIVEDP_GRAPHICAL_MARKOV_BLANKET_H_

#include <vector>

#include "math/matrix.h"
#include "util/deadline.h"
#include "util/result.h"

namespace activedp {

class RecoveryLog;  // core/recovery.h
class Retrier;      // util/retry.h

/// How LabelPick extracts the label's Markov blanket (§3.4; DESIGN.md
/// ablation): full graphical lasso over all variables, or the
/// Meinshausen–Bühlmann fast path (a single lasso regression of the target
/// on the others, whose non-zero coefficients are the blanket).
enum class BlanketMethod { kGraphicalLasso, kNeighborhoodSelection };

struct MarkovBlanketOptions {
  BlanketMethod method = BlanketMethod::kGraphicalLasso;
  /// L1 penalty (graphical-lasso rho / lasso lambda).
  double penalty = 0.05;
  /// |precision entry| (or |coefficient|) above this counts as an edge.
  double edge_tolerance = 1e-6;
  /// Budget for the glasso solve. DeadlineExceeded / Cancelled propagates
  /// out of MarkovBlanket unchanged (a spent budget is not a degradable
  /// failure; degrading would just burn more of it).
  RunLimits limits;
  /// When set, a failed or unconverged glasso solve is retried here (site
  /// "glasso.solve") before the neighbourhood-selection degrade fires.
  /// Not owned; must outlive calls using these options.
  Retrier* retrier = nullptr;
};

/// Indices adjacent to `target` in the precision matrix (edge iff
/// |Theta(i, target)| > tolerance).
std::vector<int> BlanketFromPrecision(const Matrix& precision, int target,
                                      double tolerance);

/// Computes the Markov blanket of column `target` of `data` (rows =
/// observations). Columns are standardized internally; constant columns can
/// never enter the blanket. Falls back to neighbourhood selection if the
/// graphical lasso fails numerically or does not converge; when `recovery`
/// is non-null each such fallback is recorded there (core/recovery.h).
Result<std::vector<int>> MarkovBlanket(const Matrix& data, int target,
                                       const MarkovBlanketOptions& options,
                                       RecoveryLog* recovery = nullptr);

}  // namespace activedp

#endif  // ACTIVEDP_GRAPHICAL_MARKOV_BLANKET_H_
