#include "graphical/lasso.h"

#include <cmath>

#include "math/kernels.h"

namespace activedp {

double SoftThreshold(double z, double threshold) {
  if (z > threshold) return z - threshold;
  if (z < -threshold) return z + threshold;
  return 0.0;
}

Result<std::vector<double>> LassoRegression(const Matrix& x,
                                            const std::vector<double>& y,
                                            const LassoOptions& options) {
  const int n = x.rows();
  const int p = x.cols();
  if (n == 0 || p == 0) return Status::InvalidArgument("empty design matrix");
  if (static_cast<int>(y.size()) != n)
    return Status::InvalidArgument("y length mismatch");

  // Precompute column norms and X'y / n.
  std::vector<double> col_sq(p, 0.0), xty(p, 0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = x.RowPtr(i);
    for (int j = 0; j < p; ++j) {
      col_sq[j] += row[j] * row[j];
      xty[j] += row[j] * y[i];
    }
  }
  for (int j = 0; j < p; ++j) {
    col_sq[j] /= n;
    xty[j] /= n;
  }

  std::vector<double> beta(p, 0.0);
  std::vector<double> residual = y;  // y - X beta
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (int j = 0; j < p; ++j) {
      if (col_sq[j] <= 0.0) continue;  // constant-zero column
      // rho_j = (1/n) x_j' (residual + x_j beta_j).
      double rho = 0.0;
      for (int i = 0; i < n; ++i) rho += x(i, j) * residual[i];
      rho = rho / n + col_sq[j] * beta[j];
      const double new_beta = SoftThreshold(rho, options.lambda) / col_sq[j];
      const double delta = new_beta - beta[j];
      if (delta != 0.0) {
        for (int i = 0; i < n; ++i) residual[i] -= delta * x(i, j);
        beta[j] = new_beta;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < options.tolerance) break;
  }
  return beta;
}

std::vector<double> LassoQuadratic(const Matrix& w11,
                                   const std::vector<double>& s12,
                                   double lambda, int max_iterations,
                                   double tolerance) {
  const int p = w11.rows();
  CHECK_EQ(w11.cols(), p);
  CHECK_EQ(static_cast<int>(s12.size()), p);
  std::vector<double> beta(p, 0.0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    double max_delta = 0.0;
    for (int j = 0; j < p; ++j) {
      const double wjj = w11(j, j);
      if (wjj <= 0.0) continue;
      // grad = s12[j] - sum_{k != j} w11(j,k) beta[k], as one vectorized
      // full-row dot with the diagonal term subtracted back out.
      const double* row = w11.RowPtr(j);
      const double full_dot = kernels::DotDense(row, beta.data(), p);
      const double grad = s12[j] - (full_dot - row[j] * beta[j]);
      const double new_beta = SoftThreshold(grad, lambda) / wjj;
      const double delta = std::fabs(new_beta - beta[j]);
      beta[j] = new_beta;
      max_delta = std::max(max_delta, delta);
    }
    if (max_delta < tolerance) break;
  }
  return beta;
}

}  // namespace activedp
