#include "graphical/markov_blanket.h"

#include <cmath>

#include "core/recovery.h"
#include "graphical/graphical_lasso.h"
#include "graphical/lasso.h"
#include "math/stats.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/retry.h"

namespace activedp {
namespace {

/// Standardizes columns in place (mean 0, stddev 1); constant columns become
/// all-zero so they cannot correlate with anything.
Matrix Standardize(const Matrix& data) {
  const int n = data.rows();
  const int p = data.cols();
  Matrix out(n, p);
  for (int j = 0; j < p; ++j) {
    double mean = 0.0;
    for (int i = 0; i < n; ++i) mean += data(i, j);
    mean /= n;
    double var = 0.0;
    for (int i = 0; i < n; ++i) {
      const double d = data(i, j) - mean;
      var += d * d;
    }
    var /= std::max(1, n - 1);
    const double inv = var > 1e-12 ? 1.0 / std::sqrt(var) : 0.0;
    for (int i = 0; i < n; ++i) out(i, j) = (data(i, j) - mean) * inv;
  }
  return out;
}

Result<std::vector<int>> BlanketViaNeighborhood(
    const Matrix& standardized, int target,
    const MarkovBlanketOptions& options) {
  const int n = standardized.rows();
  const int p = standardized.cols();
  Matrix x(n, p - 1);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    y[i] = standardized(i, target);
    for (int j = 0, jj = 0; j < p; ++j) {
      if (j == target) continue;
      x(i, jj++) = standardized(i, j);
    }
  }
  LassoOptions lasso;
  lasso.lambda = options.penalty;
  ASSIGN_OR_RETURN(std::vector<double> beta, LassoRegression(x, y, lasso));
  std::vector<int> blanket;
  for (int j = 0, jj = 0; j < p; ++j) {
    if (j == target) continue;
    if (std::fabs(beta[jj]) > options.edge_tolerance) blanket.push_back(j);
    ++jj;
  }
  return blanket;
}

}  // namespace

std::vector<int> BlanketFromPrecision(const Matrix& precision, int target,
                                      double tolerance) {
  CHECK_GE(target, 0);
  CHECK_LT(target, precision.rows());
  std::vector<int> blanket;
  for (int i = 0; i < precision.rows(); ++i) {
    if (i == target) continue;
    if (std::fabs(precision(i, target)) > tolerance) blanket.push_back(i);
  }
  return blanket;
}

Result<std::vector<int>> MarkovBlanket(const Matrix& data, int target,
                                       const MarkovBlanketOptions& options,
                                       RecoveryLog* recovery) {
  const int p = data.cols();
  if (p < 2) return Status::InvalidArgument("need at least 2 variables");
  if (target < 0 || target >= p)
    return Status::OutOfRange("target column out of range");
  if (data.rows() < 3)
    return Status::InvalidArgument("need at least 3 observations");

  const Matrix standardized = Standardize(data);

  if (options.method == BlanketMethod::kNeighborhoodSelection) {
    return BlanketViaNeighborhood(standardized, target, options);
  }

  const Matrix cov = CovarianceMatrix(standardized);
  GraphicalLassoOptions glasso;
  glasso.rho = options.penalty;
  glasso.limits = options.limits;
  // An unconverged precision estimate has unreliable zeros — exactly the
  // structure the blanket reads — so it is surfaced as a retryable failure
  // here: first the retry layer gets its attempts, then the
  // neighbourhood-selection degrade below.
  const auto solve = [&]() -> Result<GraphicalLassoResult> {
    Result<GraphicalLassoResult> r = GraphicalLasso(cov, glasso);
    if (r.ok() && !r->report.converged) {
      return Status::Internal("graphical lasso " + r->report.ToString());
    }
    return r;
  };
  Result<GraphicalLassoResult> result =
      options.retrier != nullptr
          ? options.retrier->RunResulting<GraphicalLassoResult>(
                "glasso.solve", options.limits, solve)
          : solve();
  if (!result.ok()) {
    const StatusCode code = result.status().code();
    if (code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kCancelled) {
      // A spent budget is not a degradable failure; degrading to the
      // neighbourhood path would just burn more of it.
      return result.status();
    }
    if (recovery != nullptr) {
      recovery->Record("glasso", result.status().ToString(),
                       "neighbourhood-selection blanket");
    } else {
      LOG(Warning) << "graphical lasso failed (" << result.status().ToString()
                   << "); falling back to neighbourhood selection";
    }
    return BlanketViaNeighborhood(standardized, target, options);
  }
  return BlanketFromPrecision(result->precision, target,
                              options.edge_tolerance);
}

}  // namespace activedp
