#ifndef ACTIVEDP_GRAPHICAL_GRAPHICAL_LASSO_H_
#define ACTIVEDP_GRAPHICAL_GRAPHICAL_LASSO_H_

#include "math/matrix.h"
#include "util/convergence.h"
#include "util/deadline.h"
#include "util/result.h"

namespace activedp {

struct GraphicalLassoOptions {
  /// L1 penalty on precision off-diagonals (rho in Friedman et al. 2008).
  double rho = 0.1;
  int max_iterations = 100;
  double tolerance = 1e-4;
  /// Inner lasso solver controls.
  int lasso_max_iterations = 500;
  double lasso_tolerance = 1e-6;
  /// Checked once per block-coordinate sweep; an expired deadline or a
  /// cancelled token surfaces as DeadlineExceeded / Cancelled with the
  /// sweep count and last delta (partial progress) in the message.
  RunLimits limits;
};

struct GraphicalLassoResult {
  /// Estimated covariance W (= S + rho adjustments).
  Matrix covariance;
  /// Estimated sparse precision matrix Theta = W^{-1}.
  Matrix precision;
  int iterations = 0;
  /// Honest solver outcome: `report.converged` is false when the sweep hit
  /// max_iterations without the max update dropping below tolerance. The
  /// last iterate is still returned (it is often usable); callers that need
  /// a certified structure must check the report.
  ConvergenceReport report;
};

/// Sparse inverse covariance estimation via the block-coordinate descent
/// algorithm of Friedman, Hastie & Tibshirani (2008) — the method the paper
/// cites [8] for LabelPick's dependency-structure learning (§3.4). Input is
/// a sample covariance matrix; the result's precision zeros encode
/// conditional independences. Non-finite iterates surface as
/// Status::Internal (never as NaN matrices); fault site "glasso.solve"
/// supports kNan / kNoConverge / kError injection.
Result<GraphicalLassoResult> GraphicalLasso(
    const Matrix& sample_covariance, const GraphicalLassoOptions& options);

}  // namespace activedp

#endif  // ACTIVEDP_GRAPHICAL_GRAPHICAL_LASSO_H_
