#ifndef ACTIVEDP_UTIL_CSV_H_
#define ACTIVEDP_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace activedp {

/// Writes rows to a CSV file. Fields containing commas, quotes, or newlines
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void AddNumericRow(const std::vector<double>& values, int digits = 6);

  /// Writes header + rows to `path`, overwriting.
  Status WriteToFile(const std::string& path) const;

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses simple CSV content (quoted fields supported, no embedded newlines).
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& content);

/// Reads a whole file into a string.
Result<std::string> ReadFile(const std::string& path);

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_CSV_H_
