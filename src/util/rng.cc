#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace activedp {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

Rng Rng::Fork() { return Rng(Next()); }

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  CHECK_GT(n, 0);
  // Rejection-free for practical n (bias < 2^-32 for n < 2^31).
  return static_cast<int>(Next() % static_cast<uint64_t>(n));
}

int Rng::UniformInt(int lo, int hi) {
  CHECK_LE(lo, hi);
  return lo + UniformInt(hi - lo + 1);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int Rng::Poisson(double mean) {
  CHECK_GT(mean, 0.0);
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    int k = 0;
    do {
      ++k;
      p *= Uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large means.
  const int k = static_cast<int>(std::lround(Normal(mean, std::sqrt(mean))));
  return k < 0 ? 0 : k;
}

int Rng::Discrete(const std::vector<double>& weights) {
  CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DCHECK(w >= 0.0);
    total += w;
  }
  CHECK_GT(total, 0.0) << "Discrete() requires a positive total weight";
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  CHECK_GE(k, 0);
  CHECK_LE(k, n);
  std::vector<int> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  // Partial Fisher–Yates: the first k entries are the sample.
  for (int i = 0; i < k; ++i) {
    int j = i + UniformInt(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace activedp
