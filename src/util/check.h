#ifndef ACTIVEDP_UTIL_CHECK_H_
#define ACTIVEDP_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace activedp {
namespace internal {

/// Collects a streamed failure message and aborts the process in its
/// destructor. Used only via the CHECK* macros below.
class CheckFailStream {
 public:
  CheckFailStream(const char* condition, const char* file, int line);
  [[noreturn]] ~CheckFailStream();

  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace activedp

/// CHECK(cond) aborts with a diagnostic when `cond` is false. Additional
/// context can be streamed: CHECK(n > 0) << "n=" << n;
#define CHECK(cond)                                                     \
  if (cond) {                                                           \
  } else /* NOLINT */                                                   \
    ::activedp::internal::CheckFailStream(#cond, __FILE__, __LINE__)

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define DCHECK(cond) CHECK(true || (cond))
#else
#define DCHECK(cond) CHECK(cond)
#endif

#endif  // ACTIVEDP_UTIL_CHECK_H_
