#ifndef ACTIVEDP_UTIL_FLAGS_H_
#define ACTIVEDP_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace activedp {

/// Minimal command-line flag parser used by the benchmark and example
/// binaries. Supported syntax: --name=value, --name value, and bare --name
/// for booleans (sets "true"). Unknown flags are an error; positional
/// arguments are collected.
class FlagParser {
 public:
  /// Registers a flag with a default value and help text. Call before Parse.
  void AddFlag(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// Parses argv; returns InvalidArgument on unknown or malformed flags.
  /// When "--help" is present, prints usage to stdout and sets help_requested.
  Status Parse(int argc, char** argv);

  bool help_requested() const { return help_requested_; }

  std::string GetString(const std::string& name) const;
  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  std::string Usage(const std::string& program) const;

 private:
  struct FlagInfo {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, FlagInfo> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_FLAGS_H_
