#ifndef ACTIVEDP_UTIL_METRICS_H_
#define ACTIVEDP_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace activedp {

/// Process-wide metrics for the pipeline (the quantitative sibling of
/// util/trace.h's timeline). Three instrument kinds:
///
///   Counter    monotonically increasing int64 (solver sweeps, retries)
///   Gauge      last-written double (pool width, dataset size)
///   Histogram  fixed upper-bound buckets over doubles (backoff ms,
///              per-fit iteration counts)
///
/// All instruments are lock-free on the write path (relaxed atomics), so
/// compute-pool workers may increment them concurrently; the *final* value
/// of anything derived from deterministic quantities (iteration counts,
/// retry attempts) is itself deterministic regardless of thread count.
/// Registration is mutex-guarded and instruments are never erased, so a
/// returned reference stays valid for the registry's lifetime.
///
/// Labels (DESIGN.md §14): every instrument may carry a small set of
/// key=value labels ("site", "snapshot", "kind", "phase"), giving one
/// *family* (base name) several independent series. Labels are strictly
/// low-cardinality: a family is capped at kMaxLabelSetsPerFamily distinct
/// label sets, and further sets fold into a single {overflow="true"}
/// series instead of growing the registry without bound — label values
/// must come from small closed sets (site names, fault kinds, phase
/// names), never from per-request data.

/// Sorted (key, value) pairs identifying one series within a family.
/// Callers may pass them unsorted; the registry canonicalizes.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Distinct label sets a family admits before folding into the
/// {overflow="true"} series (the unlabelled series does not count).
inline constexpr int kMaxLabelSetsPerFamily = 64;

class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram quantile by linear interpolation inside the bucket that
/// contains the target rank, shared by Histogram::Quantile and the SLO
/// engine's delta-histogram evaluation. `counts` has bounds.size() + 1
/// entries (the last is the overflow bucket).
///
/// Error bounds (documented contract): the result is exact whenever the
/// target rank falls on a bucket boundary; inside a bucket the error is at
/// most the bucket's width (upper − lower bound), because the true
/// observations could sit anywhere in it. The first bucket interpolates
/// from lower edge min(0, bounds[0]); a rank landing in the overflow
/// bucket returns bounds.back() — an underestimate, which is why bucket
/// layouts must put their last bound above any latency they need to
/// resolve. Returns 0 when the histogram is empty.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<int64_t>& counts, double q);

/// Histogram over fixed, sorted upper bounds: bucket i counts observations
/// v <= bounds[i] (first matching bucket); one implicit overflow bucket
/// catches everything above the last bound. Bounds are fixed at
/// registration, so two runs bucket identically.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  /// bounds().size() + 1 buckets; the last is the overflow bucket.
  int num_buckets() const { return static_cast<int>(bounds_.size()) + 1; }
  const std::vector<double>& bounds() const { return bounds_; }
  int64_t bucket_count(int bucket) const {
    return counts_[bucket].load(std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of observations. Concurrent observers may reassociate the floating
  /// additions; use counts for anything that must be bitwise deterministic.
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// The q-quantile (q in [0, 1]) of the recorded distribution, from one
  /// coherent pass over the bucket counts (see HistogramQuantile for the
  /// interpolation rule and its error bounds). This is the *single source*
  /// for any percentile a report derives from this histogram, so a JSON
  /// summary and the exported bucket counts can never disagree.
  double Quantile(double q) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A coherent point-in-time copy of every instrument, taken under the
/// registry mutex with one atomic read per value. Within a histogram
/// sample, `count` is defined as the sum of the copied bucket counts, so
/// the buckets and the total can never disagree even while workers are
/// observing concurrently (the raw count_ atomic may briefly trail the
/// buckets mid-Observe). Exports (JSON, Prometheus text, incident dumps)
/// all render from a snapshot, never from live instruments.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    MetricLabels labels;
    int64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    MetricLabels labels;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    MetricLabels labels;
    std::vector<double> bounds;
    std::vector<int64_t> counts;  // bounds.size() + 1, overflow last
    int64_t count = 0;            // == sum of `counts`, by construction
    double sum = 0.0;

    double Quantile(double q) const {
      return HistogramQuantile(bounds, counts, q);
    }
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Deterministic JSON: series sorted by (name, labels); labelled series
  /// keyed "name{k=\"v\",...}", unlabelled ones by their plain name.
  std::string ToJson() const;

  /// Prometheus text exposition format (version 0.0.4): one family per
  /// # TYPE block, names sanitized to [a-zA-Z0-9_:] with an "activedp_"
  /// prefix, counters suffixed "_total", histograms expanded into
  /// cumulative "_bucket{le=...}" series plus "_sum" / "_count".
  std::string ToPrometheusText() const;

  /// Convenience readers over the snapshot (0 / nullptr when absent).
  int64_t counter_value(std::string_view name,
                        const MetricLabels& labels = {}) const;
  const HistogramSample* FindHistogram(
      std::string_view name, const MetricLabels& labels = {}) const;
};

/// Named instrument registry. `Global()` is the process-wide instance the
/// pipeline stages report into; local instances serve tests. Lookups are
/// mutex-guarded; cache the returned reference on hot paths.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is consulted only on first registration (must be sorted
  /// ascending); later calls with the same name return the existing
  /// histogram unchanged.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& upper_bounds);

  /// Labelled series within the family `name`. Labels are canonicalized
  /// (sorted by key); a family past kMaxLabelSetsPerFamily distinct sets
  /// returns its {overflow="true"} series instead of registering more.
  Counter& counter(std::string_view name, const MetricLabels& labels);
  Gauge& gauge(std::string_view name, const MetricLabels& labels);
  Histogram& histogram(std::string_view name, const MetricLabels& labels,
                       const std::vector<double>& upper_bounds);

  /// Zeroes every instrument's value; registrations (and references into the
  /// registry) survive. Call between runs that must not see each other.
  void ResetAll();

  /// Coherent copy of every instrument (see MetricsSnapshot).
  MetricsSnapshot Snapshot() const;

  /// Deterministic JSON snapshot: instruments sorted by name within
  /// "counters" / "gauges" / "histograms" objects. Rendered from
  /// Snapshot(), so a concurrent export is internally consistent.
  std::string ToJson() const;

  /// Prometheus text exposition of Snapshot() (MetricsSnapshot docs).
  std::string ToPrometheusText() const;

  /// Convenience snapshot readers (0 / empty when the name is unknown).
  int64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

 private:
  template <typename T>
  struct Series {
    std::string name;    // family (base) name
    MetricLabels labels;  // canonical (sorted by key); empty = unlabelled
    std::unique_ptr<T> instrument;
  };

  template <typename T>
  using SeriesMap = std::map<std::string, Series<T>, std::less<>>;

  /// Looks up / registers the series for (name, labels) in `series`,
  /// folding past-cap label sets into the family's overflow series.
  /// Caller holds mutex_. `make` builds a new instrument.
  template <typename T, typename MakeFn>
  T& SeriesFor(SeriesMap<T>& series, std::string_view name,
               const MetricLabels& labels, MakeFn make);

  mutable std::mutex mutex_;
  SeriesMap<Counter> counters_;
  SeriesMap<Gauge> gauges_;
  SeriesMap<Histogram> histograms_;
  /// Distinct labelled series per family name, across all three kinds —
  /// the low-cardinality enforcement state.
  std::map<std::string, int, std::less<>> family_cardinality_;
};

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_METRICS_H_
