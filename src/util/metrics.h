#ifndef ACTIVEDP_UTIL_METRICS_H_
#define ACTIVEDP_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace activedp {

/// Process-wide metrics for the pipeline (the quantitative sibling of
/// util/trace.h's timeline). Three instrument kinds:
///
///   Counter    monotonically increasing int64 (solver sweeps, retries)
///   Gauge      last-written double (pool width, dataset size)
///   Histogram  fixed upper-bound buckets over doubles (backoff ms,
///              per-fit iteration counts)
///
/// All instruments are lock-free on the write path (relaxed atomics), so
/// compute-pool workers may increment them concurrently; the *final* value
/// of anything derived from deterministic quantities (iteration counts,
/// retry attempts) is itself deterministic regardless of thread count.
/// Registration is mutex-guarded and instruments are never erased, so a
/// returned reference stays valid for the registry's lifetime.

class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed, sorted upper bounds: bucket i counts observations
/// v <= bounds[i] (first matching bucket); one implicit overflow bucket
/// catches everything above the last bound. Bounds are fixed at
/// registration, so two runs bucket identically.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  /// bounds().size() + 1 buckets; the last is the overflow bucket.
  int num_buckets() const { return static_cast<int>(bounds_.size()) + 1; }
  const std::vector<double>& bounds() const { return bounds_; }
  int64_t bucket_count(int bucket) const {
    return counts_[bucket].load(std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of observations. Concurrent observers may reassociate the floating
  /// additions; use counts for anything that must be bitwise deterministic.
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named instrument registry. `Global()` is the process-wide instance the
/// pipeline stages report into; local instances serve tests. Lookups are
/// mutex-guarded; cache the returned reference on hot paths.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is consulted only on first registration (must be sorted
  /// ascending); later calls with the same name return the existing
  /// histogram unchanged.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& upper_bounds);

  /// Zeroes every instrument's value; registrations (and references into the
  /// registry) survive. Call between runs that must not see each other.
  void ResetAll();

  /// Deterministic JSON snapshot: instruments sorted by name within
  /// "counters" / "gauges" / "histograms" objects.
  std::string ToJson() const;

  /// Convenience snapshot readers (0 / empty when the name is unknown).
  int64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_METRICS_H_
