#ifndef ACTIVEDP_UTIL_LOGGING_H_
#define ACTIVEDP_UTIL_LOGGING_H_

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace activedp {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is actually emitted (default kInfo, or
/// the ACTIVEDP_LOG_LEVEL environment variable when set — "debug" / "info" /
/// "warning" / "error" or 0-3, case-insensitive; an explicit call here
/// always wins over the environment).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

/// Where formatted log lines go. Receives the severity and the fully
/// formatted line (tag, file:line, message — no trailing newline). Must be
/// callable from any thread.
using LogSink = std::function<void(LogSeverity, std::string_view)>;

/// Replaces the process-wide sink (default: one line to stderr). Passing
/// nullptr restores the default. Not synchronized against in-flight log
/// statements — install sinks at startup or between quiescent phases.
void SetLogSink(LogSink sink);

/// Test helper: captures every emitted line for the lifetime of the scope,
/// then restores the default stderr sink. Lines are recorded under a mutex,
/// so logging from worker threads is safe to capture.
class CapturedLogs {
 public:
  CapturedLogs();
  ~CapturedLogs();

  CapturedLogs(const CapturedLogs&) = delete;
  CapturedLogs& operator=(const CapturedLogs&) = delete;

  /// Snapshot of the lines captured so far.
  std::vector<std::string> lines() const;
  /// True when any captured line contains `needle`.
  bool Contains(std::string_view needle) const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

namespace internal {

/// Parses "debug"/"info"/"warning"/"warn"/"error" or "0".."3"
/// (case-insensitive); returns false on anything else.
bool ParseLogSeverity(std::string_view text, LogSeverity* out);

/// Re-reads ACTIVEDP_LOG_LEVEL and resets the min severity from it (default
/// kInfo when unset/invalid). Exposed for the logging tests; production code
/// gets the env applied automatically on first use.
void ReinitLogLevelFromEnvForTesting();

/// One log statement; flushes a single line to the installed sink on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace activedp

#define LOG(severity)                                     \
  ::activedp::internal::LogMessage(                       \
      ::activedp::LogSeverity::k##severity, __FILE__, __LINE__)

#endif  // ACTIVEDP_UTIL_LOGGING_H_
