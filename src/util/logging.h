#ifndef ACTIVEDP_UTIL_LOGGING_H_
#define ACTIVEDP_UTIL_LOGGING_H_

#include <sstream>

namespace activedp {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is actually emitted (default kInfo).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal {

/// One log statement; flushes a single line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace activedp

#define LOG(severity)                                     \
  ::activedp::internal::LogMessage(                       \
      ::activedp::LogSeverity::k##severity, __FILE__, __LINE__)

#endif  // ACTIVEDP_UTIL_LOGGING_H_
