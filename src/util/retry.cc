#include "util/retry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/metrics.h"
#include "util/trace.h"

namespace activedp {
namespace {

/// splitmix64 finalizer (same mix as util/fault.cc): uniform deterministic
/// hash for the jitter gate.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char c : site) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

void RetryLog::Record(RetryEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

bool RetryLog::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty();
}

size_t RetryLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

int RetryLog::count(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const RetryEvent& e : events_) n += (e.site == site);
  return n;
}

int RetryLog::recovered_count(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const RetryEvent& e : events_) n += (e.site == site && e.recovered);
  return n;
}

std::string RetryLog::Summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const RetryEvent& e : events_) {
    out << e.site << " retry " << e.retry << " (backoff " << e.backoff_ms
        << " ms, " << (e.recovered ? "recovered" : "not recovered")
        << "): " << e.reason << "\n";
  }
  return out.str();
}

int64_t RetryLog::NextInvocation() {
  return next_invocation_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void RetryLog::MarkRecovered(int64_t invocation) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (RetryEvent& e : events_) {
    if (e.invocation == invocation) e.recovered = true;
  }
}

void RetryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

double RetryBackoffMs(const RetryPolicy& policy, std::string_view site,
                      int counter, int retry) {
  const double exp = std::min(
      policy.max_backoff_ms,
      policy.base_backoff_ms * std::pow(2.0, std::max(0, retry - 1)));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter == 0.0) return exp;
  const uint64_t h =
      Mix(policy.seed ^ HashSite(site) ^
          (static_cast<uint64_t>(static_cast<uint32_t>(counter)) << 32 |
           static_cast<uint32_t>(retry)));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return exp * (1.0 - jitter + jitter * u);
}

int Retrier::retries_used(std::string_view site) const {
  const auto it = used_.find(site);
  return it == used_.end() ? 0 : it->second;
}

Status Retrier::Run(std::string_view site, const RunLimits& limits,
                    const std::function<Status()>& fn) {
  RETURN_IF_ERROR(limits.Check(site));
  Status status = fn();
  // Lazily allocated once this invocation records its first event; tags the
  // events so recovery marking cannot touch interleaved events from other
  // invocations sharing the log (parallel seeds under RunExperiment).
  int64_t invocation = 0;
  int attempt = 1;
  while (!status.ok() && IsRetryable(status) &&
         attempt < std::max(1, policy_.max_attempts)) {
    int& used = used_[std::string(site)];
    if (used >= policy_.per_site_budget) break;
    const Status limit = limits.Check(site);
    if (!limit.ok()) return limit;
    ++used;
    const double backoff =
        RetryBackoffMs(policy_, site, /*counter=*/used, /*retry=*/attempt);
    if (log_ != nullptr) {
      if (invocation == 0) invocation = log_->NextInvocation();
      log_->Record(RetryEvent{std::string(site), attempt, backoff,
                              status.ToString(), /*recovered=*/false,
                              invocation});
    }
    TraceInstant("retry", site, status.ToString());
    MetricsRegistry::Global().counter("retry.attempts").Increment();
    MetricsRegistry::Global()
        .histogram("retry.backoff_ms", {1.0, 10.0, 50.0, 100.0, 250.0, 1000.0})
        .Observe(backoff);
    if (policy_.sleep &&
        !SleepWithCancellation(backoff * 1e-3, limits.cancel)) {
      return Status::Cancelled(std::string(site) +
                               ": cancelled during retry backoff");
    }
    ++attempt;
    status = fn();
  }
  if (status.ok() && invocation != 0) {
    log_->MarkRecovered(invocation);
  }
  return status;
}

}  // namespace activedp
