#include "util/metrics.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace activedp {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound admits v; everything above the last
  // bound lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (int i = 0; i < num_buckets(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(
    std::string_view name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": " << c->value();
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": " << g->value();
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": {\"bounds\": [";
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      if (i > 0) out << ", ";
      out << h->bounds()[i];
    }
    out << "], \"counts\": [";
    for (int i = 0; i < h->num_buckets(); ++i) {
      if (i > 0) out << ", ";
      out << h->bucket_count(i);
    }
    out << "], \"count\": " << h->count() << ", \"sum\": " << h->sum() << "}";
  }
  out << "}}";
  return out.str();
}

int64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

}  // namespace activedp
