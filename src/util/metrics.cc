#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace activedp {
namespace {

/// Canonical registry key for one series: "name" for the unlabelled series,
/// "name{k=\"v\",...}" (keys sorted) otherwise. The map key doubles as the
/// deterministic export key in ToJson.
std::string SeriesKey(std::string_view name, const MetricLabels& labels) {
  if (labels.empty()) return std::string(name);
  std::string key(name);
  key += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += "=\"";
    key += labels[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

MetricLabels CanonicalLabels(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Prometheus metric-name sanitization: [a-zA-Z0-9_:], everything else
/// (dots in our names) becomes '_'.
std::string PrometheusName(std::string_view name) {
  std::string out = "activedp_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string PrometheusEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PrometheusLabels(const MetricLabels& labels,
                             const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += PrometheusName(key).substr(9);  // sanitize, drop the prefix
    out += "=\"";
    out += PrometheusEscape(value);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

/// Formats a double the way Prometheus text format expects (plain decimal
/// or scientific, never locale-dependent).
std::string PrometheusDouble(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<int64_t>& counts, double q) {
  CHECK(counts.size() == bounds.size() + 1);
  q = std::min(1.0, std::max(0.0, q));
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total <= 0) return 0.0;
  // Smallest value v with CDF(v) >= q: walk the cumulative counts to the
  // bucket containing the target rank, then interpolate linearly inside it.
  const double target = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const int64_t before = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < target) continue;
    if (b == bounds.size()) {
      // Overflow bucket: no upper edge to interpolate toward; report the
      // last finite bound (documented underestimate).
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double upper = bounds[b];
    const double lower =
        b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
    if (counts[b] <= 0) return upper;
    const double fraction =
        (target - static_cast<double>(before)) / static_cast<double>(counts[b]);
    return lower + (upper - lower) * fraction;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound admits v; everything above the last
  // bound lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  std::vector<int64_t> counts(static_cast<size_t>(num_buckets()));
  for (int i = 0; i < num_buckets(); ++i) counts[i] = bucket_count(i);
  return HistogramQuantile(bounds_, counts, q);
}

void Histogram::Reset() {
  for (int i = 0; i < num_buckets(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

template <typename T, typename MakeFn>
T& MetricsRegistry::SeriesFor(SeriesMap<T>& series, std::string_view name,
                              const MetricLabels& labels, MakeFn make) {
  MetricLabels canonical = CanonicalLabels(labels);
  std::string key = SeriesKey(name, canonical);
  auto it = series.find(key);
  if (it != series.end()) return *it->second.instrument;
  if (!canonical.empty()) {
    // Low-cardinality enforcement: a family past its cap folds every new
    // label set into one {overflow="true"} series instead of growing the
    // registry without bound (label values must come from closed sets).
    int& cardinality = family_cardinality_[std::string(name)];
    if (cardinality >= kMaxLabelSetsPerFamily) {
      canonical = MetricLabels{{"overflow", "true"}};
      key = SeriesKey(name, canonical);
      it = series.find(key);
      if (it != series.end()) return *it->second.instrument;
    } else {
      ++cardinality;
    }
  }
  Series<T> entry;
  entry.name = std::string(name);
  entry.labels = std::move(canonical);
  entry.instrument = make();
  it = series.emplace(std::move(key), std::move(entry)).first;
  return *it->second.instrument;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return counter(name, {});
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return SeriesFor(counters_, name, labels,
                   [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::gauge(std::string_view name) { return gauge(name, {}); }

Gauge& MetricsRegistry::gauge(std::string_view name,
                              const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return SeriesFor(gauges_, name, labels,
                   [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& upper_bounds) {
  return histogram(name, {}, upper_bounds);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const MetricLabels& labels,
                                      const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  return SeriesFor(histograms_, name, labels, [&upper_bounds] {
    return std::make_unique<Histogram>(upper_bounds);
  });
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, c] : counters_) c.instrument->Reset();
  for (auto& [key, g] : gauges_) g.instrument->Reset();
  for (auto& [key, h] : histograms_) h.instrument->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [key, series] : counters_) {
    snapshot.counters.push_back(
        {series.name, series.labels, series.instrument->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [key, series] : gauges_) {
    snapshot.gauges.push_back(
        {series.name, series.labels, series.instrument->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [key, series] : histograms_) {
    const Histogram& h = *series.instrument;
    MetricsSnapshot::HistogramSample sample;
    sample.name = series.name;
    sample.labels = series.labels;
    sample.bounds = h.bounds();
    sample.counts.resize(static_cast<size_t>(h.num_buckets()));
    // Coherent pass: one atomic read per bucket, and the sample's total is
    // *defined* as the sum of those reads — a concurrent Observe can add a
    // bucket increment the total then includes, but the total can never
    // disagree with the buckets the way reading h.count() separately could
    // (an Observe between the bucket reads and the count read).
    int64_t total = 0;
    for (int b = 0; b < h.num_buckets(); ++b) {
      sample.counts[static_cast<size_t>(b)] = h.bucket_count(b);
      total += sample.counts[static_cast<size_t>(b)];
    }
    sample.count = total;
    sample.sum = h.sum();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const CounterSample& c : counters) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(SeriesKey(c.name, c.labels))
        << "\": " << c.value;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const GaugeSample& g : gauges) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(SeriesKey(g.name, g.labels))
        << "\": " << g.value;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const HistogramSample& h : histograms) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(SeriesKey(h.name, h.labels))
        << "\": {\"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out << ", ";
      out << h.bounds[i];
    }
    out << "], \"counts\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << h.counts[i];
    }
    out << "], \"count\": " << h.count << ", \"sum\": " << h.sum << "}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream out;
  // Series arrive sorted by (name, labels) from the registry map, so each
  // family's block is contiguous and the exposition is deterministic.
  std::string open_family;
  for (const CounterSample& c : counters) {
    const std::string family = PrometheusName(c.name) + "_total";
    if (family != open_family) {
      out << "# TYPE " << family << " counter\n";
      open_family = family;
    }
    out << family << PrometheusLabels(c.labels) << " " << c.value << "\n";
  }
  open_family.clear();
  for (const GaugeSample& g : gauges) {
    const std::string family = PrometheusName(g.name);
    if (family != open_family) {
      out << "# TYPE " << family << " gauge\n";
      open_family = family;
    }
    out << family << PrometheusLabels(g.labels) << " "
        << PrometheusDouble(g.value) << "\n";
  }
  open_family.clear();
  for (const HistogramSample& h : histograms) {
    const std::string family = PrometheusName(h.name);
    if (family != open_family) {
      out << "# TYPE " << family << " histogram\n";
      open_family = family;
    }
    // Prometheus buckets are cumulative and always end at le="+Inf".
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le =
          b < h.bounds.size()
              ? "le=\"" + PrometheusDouble(h.bounds[b]) + "\""
              : std::string("le=\"+Inf\"");
      out << family << "_bucket" << PrometheusLabels(h.labels, le) << " "
          << cumulative << "\n";
    }
    out << family << "_sum" << PrometheusLabels(h.labels) << " "
        << PrometheusDouble(h.sum) << "\n";
    out << family << "_count" << PrometheusLabels(h.labels) << " " << h.count
        << "\n";
  }
  return out.str();
}

int64_t MetricsSnapshot::counter_value(std::string_view name,
                                       const MetricLabels& labels) const {
  const MetricLabels canonical = CanonicalLabels(labels);
  for (const CounterSample& c : counters) {
    if (c.name == name && c.labels == canonical) return c.value;
  }
  return 0;
}

const MetricsSnapshot::HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name, const MetricLabels& labels) const {
  const MetricLabels canonical = CanonicalLabels(labels);
  for (const HistogramSample& h : histograms) {
    if (h.name == name && h.labels == canonical) return &h;
  }
  return nullptr;
}

std::string MetricsRegistry::ToJson() const { return Snapshot().ToJson(); }

std::string MetricsRegistry::ToPrometheusText() const {
  return Snapshot().ToPrometheusText();
}

int64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.instrument->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.instrument->value();
}

}  // namespace activedp
