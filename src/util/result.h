#ifndef ACTIVEDP_UTIL_RESULT_H_
#define ACTIVEDP_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace activedp {

/// Either a value of type T or a non-OK Status, modelled after
/// absl::StatusOr<T>. Accessing the value of an errored Result is a
/// programming error and aborts via CHECK.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, so RETURN_IF_ERROR-style
  /// propagation works). Passing an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CHECK(!status_.ok()) << "Result constructed from OK status without value";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace activedp

/// ASSIGN_OR_RETURN(lhs, expr): evaluates `expr` (a Result<T>); on error
/// returns the status from the enclosing function, otherwise moves the value
/// into `lhs` (which may be a declaration).
#define ACTIVEDP_CONCAT_INNER_(a, b) a##b
#define ACTIVEDP_CONCAT_(a, b) ACTIVEDP_CONCAT_INNER_(a, b)
#define ASSIGN_OR_RETURN(lhs, expr)                              \
  auto ACTIVEDP_CONCAT_(_result_, __LINE__) = (expr);            \
  if (!ACTIVEDP_CONCAT_(_result_, __LINE__).ok())                \
    return ACTIVEDP_CONCAT_(_result_, __LINE__).status();        \
  lhs = std::move(ACTIVEDP_CONCAT_(_result_, __LINE__)).value()

#endif  // ACTIVEDP_UTIL_RESULT_H_
