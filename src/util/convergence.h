#ifndef ACTIVEDP_UTIL_CONVERGENCE_H_
#define ACTIVEDP_UTIL_CONVERGENCE_H_

#include <sstream>
#include <string>

namespace activedp {

/// Honest convergence reporting for the pipeline's iterative solvers
/// (graphical lasso, MeTaL-style moment fits, SGD). A solver that runs out
/// of iterations no longer silently returns its last iterate as if it had
/// converged: the caller sees `converged == false` plus the final delta and
/// decides whether the iterate is usable.
struct ConvergenceReport {
  bool converged = true;
  int iterations = 0;
  /// Solver-specific residual at the last iteration (e.g. max parameter
  /// change); 0 for closed-form solvers.
  double final_delta = 0.0;
  /// False when the solve produced any non-finite parameter.
  bool finite = true;

  /// Usable output: finite and either converged or at least bounded.
  bool usable() const { return finite; }

  std::string ToString() const {
    std::ostringstream out;
    out << (converged ? "converged" : "NOT converged") << " after "
        << iterations << " iterations (final delta " << final_delta
        << (finite ? ")" : ", non-finite)");
    return out.str();
  }
};

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_CONVERGENCE_H_
