#ifndef ACTIVEDP_UTIL_RETRY_H_
#define ACTIVEDP_UTIL_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/deadline.h"
#include "util/result.h"
#include "util/status.h"

namespace activedp {

/// Deterministic, seeded retry policy for transient stage failures. Sits
/// *before* the core/recovery degradation cascade: a kError/kNoConverge
/// style failure gets `max_attempts` tries at full quality, and only when
/// the retry budget is spent does the caller degrade (DESIGN.md "Time
/// budgets, cancellation, and retry").
struct RetryPolicy {
  /// Total tries per invocation (1 = no retries).
  int max_attempts = 3;
  /// Capped exponential backoff: min(max, base * 2^(retry-1)), jittered.
  double base_backoff_ms = 10.0;
  double max_backoff_ms = 250.0;
  /// Fraction of the backoff randomized by a counter hash of `seed`:
  /// jittered = backoff * (1 - jitter + jitter * u), u in [0, 1). Fully
  /// deterministic given (seed, site, per-site retry counter).
  double jitter = 0.5;
  uint64_t seed = 0;
  /// Per-site cap on retries across the whole run, so a deterministic
  /// failure retried on every retrain cannot multiply a run's cost
  /// unboundedly. <= 0 disables retries entirely.
  int per_site_budget = 16;
  /// When false (default) the backoff is computed and recorded but not
  /// slept: the in-process fault sites this wraps (solver non-convergence,
  /// injected faults) do not heal with wall-clock time, and the chaos sweep
  /// needs bounded wall-clock. Enable for genuinely external sites (NFS,
  /// object stores) where waiting helps.
  bool sleep = false;
};

/// One retry decision, recorded alongside DegradationEvents so a run's
/// failure history reads: attempted → retried (how often, how long) →
/// degraded or recovered.
struct RetryEvent {
  /// Retry site, e.g. "glasso.solve", "label_model.fit", "checkpoint.save".
  std::string site;
  /// 1-based retry index within the failed invocation (attempt 2 == retry 1).
  int retry;
  /// Backoff assigned before this retry (jittered, deterministic).
  double backoff_ms;
  /// Status of the attempt that triggered this retry.
  std::string reason;
  /// Whether a later attempt of the same invocation succeeded.
  bool recovered = false;
  /// Id tying the event to one Retrier::Run invocation (RetryLog::
  /// NextInvocation), so recovery marking stays precise when invocations
  /// from parallel seeds interleave in a shared log. 0 = untagged.
  int64_t invocation = 0;
};

/// Structured log of retry activity (the retry-layer sibling of
/// core/recovery.h's RecoveryLog). Mutations and counting reads are
/// mutex-guarded so a log shared across parallel seeds (one
/// `ProtocolOptions.retry_log` copied into every seed's protocol under
/// `ExperimentSpec.num_threads > 1`) stays race-free; `events()` hands out
/// an unguarded reference and must only be read once writers are quiescent
/// (after RunExperiment returns).
class RetryLog {
 public:
  void Record(RetryEvent event);

  /// Unsynchronized view — only valid with no concurrent writers.
  const std::vector<RetryEvent>& events() const { return events_; }
  bool empty() const;
  size_t size() const;
  int count(std::string_view site) const;
  /// Events at `site` whose invocation eventually succeeded.
  int recovered_count(std::string_view site) const;

  /// One line per event, for reports and tests.
  std::string Summary() const;

  /// Allocates a unique id for one Retrier::Run invocation's events. Ids are
  /// never reused, so concurrent invocations sharing this log cannot collide.
  int64_t NextInvocation();

  /// Marks every event tagged `invocation` recovered — the invocation they
  /// belong to eventually succeeded. Only touches that invocation's events,
  /// so interleaved events from other seeds/sites are never misrecorded.
  void MarkRecovered(int64_t invocation);

  void Clear();

 private:
  mutable std::mutex mutex_;
  std::vector<RetryEvent> events_;
  std::atomic<int64_t> next_invocation_{0};
};

/// The deterministic jittered backoff for the `counter`-th retry ever taken
/// at `site` under `policy`, where `retry` is the 1-based retry index within
/// the current invocation. Exposed for the determinism tests.
double RetryBackoffMs(const RetryPolicy& policy, std::string_view site,
                      int counter, int retry);

/// Per-run retry state: per-site budgets plus the log. Wraps a fallible
/// operation and re-runs it on *transient* failures (kInternal — the code
/// every fault site and solver divergence surfaces as). Deterministic
/// failures (InvalidArgument, FailedPrecondition, OutOfRange, Unimplemented)
/// and budget signals (DeadlineExceeded, Cancelled) are never retried.
/// Deadline-aware: stops retrying, returning the last failure, once
/// `limits` trips. Not thread-safe; one per pipeline/run.
class Retrier {
 public:
  explicit Retrier(RetryPolicy policy, RetryLog* log = nullptr)
      : policy_(policy), log_(log) {}

  static bool IsRetryable(const Status& status) {
    return status.code() == StatusCode::kInternal;
  }

  /// Runs `fn` up to policy.max_attempts times; returns the first OK status
  /// or the last failure. Each retry records a RetryEvent (and, when the
  /// invocation ends OK, marks its events recovered).
  Status Run(std::string_view site, const RunLimits& limits,
             const std::function<Status()>& fn);

  /// Result<T> flavour of Run.
  template <typename T>
  Result<T> RunResulting(std::string_view site, const RunLimits& limits,
                         const std::function<Result<T>()>& fn) {
    std::optional<Result<T>> last;
    const Status status = Run(site, limits, [&]() -> Status {
      last.emplace(fn());
      return last->ok() ? Status::Ok() : last->status();
    });
    if (!last.has_value()) return status;  // never attempted (budget/limits)
    return std::move(*last);
  }

  const RetryPolicy& policy() const { return policy_; }
  RetryLog* log() const { return log_; }
  /// Retries taken at `site` so far this run.
  int retries_used(std::string_view site) const;

 private:
  RetryPolicy policy_;
  RetryLog* log_;
  std::map<std::string, int, std::less<>> used_;
};

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_RETRY_H_
