#ifndef ACTIVEDP_UTIL_DEADLINE_H_
#define ACTIVEDP_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/status.h"

namespace activedp {

/// A monotonic wall-clock budget. Value type, cheap to copy, default
/// infinite; built on steady_clock so system clock changes cannot expire (or
/// un-expire) a running stage.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // infinite
  static Deadline Infinite() { return Deadline(); }
  static Deadline After(double seconds) {
    Deadline d;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }
  static Deadline At(Clock::time_point tp) {
    Deadline d;
    d.at_ = tp;
    return d;
  }

  bool is_infinite() const { return !at_.has_value(); }
  bool expired() const { return at_.has_value() && Clock::now() >= *at_; }

  /// Seconds until expiry: +inf when infinite, <= 0 when expired.
  double remaining_seconds() const {
    if (!at_.has_value()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(*at_ - Clock::now()).count();
  }

  /// The earlier of the two deadlines (a child stage's budget never outlives
  /// its parent's).
  static Deadline Sooner(const Deadline& a, const Deadline& b) {
    if (a.is_infinite()) return b;
    if (b.is_infinite()) return a;
    return At(std::min(*a.at_, *b.at_));
  }

 private:
  std::optional<Clock::time_point> at_;
};

class CancellationSource;

/// Read side of a cooperative cancellation flag. Default-constructed tokens
/// are never cancelled. Tokens observe their own source's flag *and* every
/// ancestor's (parent→child propagation): cancelling an experiment cancels
/// each seed, cancelling a seed cancels the solver it is inside.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->flag.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

 private:
  friend class CancellationSource;
  struct State {
    std::atomic<bool> flag{false};
    std::shared_ptr<const State> parent;
  };
  explicit CancellationToken(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<const State> state_;
};

/// Write side: owns one cancellation flag. Construct from a parent token to
/// chain scopes; Cancel() trips this source and, transitively, every token
/// derived from it (but never the parent). Thread-safe.
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<CancellationToken::State>()) {}
  explicit CancellationSource(const CancellationToken& parent)
      : CancellationSource() {
    state_->parent = parent.state_;
  }

  void Cancel() { state_->flag.store(true, std::memory_order_release); }
  bool cancelled() const { return token().cancelled(); }
  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<CancellationToken::State> state_;
};

/// The (deadline, cancellation) pair every long-running stage receives.
/// Checked once per solver iteration; both checks are a few atomic loads, so
/// per-iteration polling is free next to the iteration itself.
struct RunLimits {
  Deadline deadline;
  CancellationToken cancel;

  static RunLimits Unlimited() { return RunLimits{}; }
  bool unlimited() const { return deadline.is_infinite() && !cancel.cancelled(); }

  /// Same cancellation, deadline capped at now + `seconds` (<= 0 keeps the
  /// current deadline): the per-stage budget inside a run-level budget.
  RunLimits Tightened(double seconds) const {
    if (seconds <= 0.0) return *this;
    RunLimits out = *this;
    out.deadline = Deadline::Sooner(deadline, Deadline::After(seconds));
    return out;
  }

  /// OK, or Cancelled / DeadlineExceeded naming the stage that noticed.
  Status Check(std::string_view stage) const {
    if (cancel.cancelled()) {
      return Status::Cancelled(std::string(stage) + ": cancelled");
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded(std::string(stage) +
                                      ": deadline exceeded");
    }
    return Status::Ok();
  }
};

/// Sleeps up to `seconds`, waking early (returning false) when the token is
/// cancelled. Used by retry backoff so a cancelled run never sits out a
/// backoff window.
bool SleepWithCancellation(double seconds, const CancellationToken& token);

/// Cancels registered sources once their deadline passes. One polling
/// thread, started lazily on the first Watch(); the experiment seed fan-out
/// uses this so a seed stuck inside a stage that only polls its token (not
/// its clock) is still torn down on time.
class Watchdog {
 public:
  explicit Watchdog(double poll_interval_seconds = 0.01)
      : poll_interval_(poll_interval_seconds) {}
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers `source` to be cancelled when `deadline` expires. An
  /// infinite deadline is accepted and never fires.
  void Watch(const Deadline& deadline,
             std::shared_ptr<CancellationSource> source);

  /// How many sources this watchdog has cancelled so far.
  int cancellations() const;

 private:
  struct Entry {
    Deadline deadline;
    std::shared_ptr<CancellationSource> source;
    bool fired = false;
  };
  void Loop();

  const double poll_interval_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<Entry> entries_;
  int cancellations_ = 0;
  bool shutdown_ = false;
  std::thread thread_;  // guarded by mutex_ for start; joined in dtor
  bool started_ = false;
};

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_DEADLINE_H_
