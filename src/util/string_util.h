#ifndef ACTIVEDP_UTIL_STRING_UTIL_H_
#define ACTIVEDP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace activedp {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits `text` on runs of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `digits` decimal places (fixed notation).
std::string FormatDouble(double value, int digits);

/// Escapes `text` for embedding inside a double-quoted JSON string
/// (backslash, quote, and control characters; everything else verbatim).
std::string JsonEscape(std::string_view text);

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_STRING_UTIL_H_
