#ifndef ACTIVEDP_UTIL_STRING_UTIL_H_
#define ACTIVEDP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace activedp {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits `text` on runs of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `digits` decimal places (fixed notation).
std::string FormatDouble(double value, int digits);

/// Formats a double with %.17g so the value round-trips bitwise through
/// ParseDouble (17 significant digits uniquely identify an IEEE-754
/// double).
std::string FormatExactDouble(double value);

/// Parses a full token as a finite double; false on empty input, trailing
/// garbage, or a non-finite value.
bool ParseDouble(std::string_view text, double* value);

/// Parses a full token as an int / int64; false on empty input, trailing
/// garbage, or out-of-range values.
bool ParseInt(std::string_view text, int* value);
bool ParseInt64(std::string_view text, long long* value);

/// Escapes `text` for embedding inside a double-quoted JSON string
/// (backslash, quote, and control characters; everything else verbatim).
std::string JsonEscape(std::string_view text);

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_STRING_UTIL_H_
