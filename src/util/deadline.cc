#include "util/deadline.h"

namespace activedp {

bool SleepWithCancellation(double seconds, const CancellationToken& token) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  // Poll in short slices; backoff windows are milliseconds-scale, so a 1 ms
  // cancellation latency is plenty.
  const auto slice = std::chrono::milliseconds(1);
  while (Clock::now() < until) {
    if (token.cancelled()) return false;
    const auto remaining = until - Clock::now();
    std::this_thread::sleep_for(remaining < slice ? remaining : slice);
  }
  return !token.cancelled();
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::Watch(const Deadline& deadline,
                     std::shared_ptr<CancellationSource> source) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(Entry{deadline, std::move(source)});
  if (!started_) {
    started_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  wake_.notify_all();
}

int Watchdog::cancellations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancellations_;
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto poll = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(poll_interval_));
  while (!shutdown_) {
    for (Entry& entry : entries_) {
      if (entry.fired || entry.deadline.is_infinite()) continue;
      if (entry.deadline.expired()) {
        entry.source->Cancel();
        entry.fired = true;
        ++cancellations_;
      }
    }
    wake_.wait_for(lock, poll, [this] { return shutdown_; });
  }
}

}  // namespace activedp
