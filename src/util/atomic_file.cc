#include "util/atomic_file.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/fault.h"

namespace activedp {
namespace {

/// Flushes a file's contents to stable storage. Best-effort on platforms
/// without fsync; the rename below still gives old-or-new atomicity.
void SyncFile(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& content,
                       const std::string& fault_site) {
  FaultKind fault = FaultKind::kNone;
  if (!fault_site.empty()) {
    fault = CheckFault(fault_site,
                       {FaultKind::kError, FaultKind::kTruncateWrite});
  }
  if (fault == FaultKind::kError) {
    return Status::Internal("injected fault at " + fault_site);
  }
  if (fault == FaultKind::kTruncateWrite) {
    // Simulate a crash mid-save: clobber the destination with a prefix of
    // the content and report success, exactly what a non-atomic writer
    // killed partway through would leave behind.
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    if (!out) return Status::NotFound("cannot open for writing: " + path);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
    return Status::Ok();
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return Status::NotFound("cannot open for writing: " + tmp);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("write failed: " + tmp);
    }
  }
  SyncFile(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  return Status::Ok();
}

std::string ContentChecksum(const std::string& content) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (unsigned char c : content) {
    hash ^= c;
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buffer);
}

std::string WithChecksumFooter(std::string content) {
  const std::string checksum = ContentChecksum(content);
  content += kChecksumPrefix;
  content += checksum;
  content += '\n';
  return content;
}

Result<std::string> ReadFileVerifyingChecksum(const std::string& path,
                                              const std::string& fault_site) {
  FaultKind fault = FaultKind::kNone;
  if (!fault_site.empty()) {
    fault = CheckFault(fault_site, {FaultKind::kError, FaultKind::kCorrupt});
  }
  if (fault == FaultKind::kError) {
    return Status::Internal("injected fault at " + fault_site);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();
  if (fault == FaultKind::kCorrupt && !content.empty()) {
    // Flip one mid-file byte before verification: the real checksum (or
    // parse) path below must reject the corruption, not this injector.
    content[content.size() / 3] ^= 0x20;
  }

  // Locate a trailing "#crc64 <hex>\n" footer, if any.
  const std::string_view prefix = kChecksumPrefix;
  size_t line_start = std::string::npos;
  if (!content.empty()) {
    const size_t last =
        content.back() == '\n' ? content.size() - 1 : content.size();
    const size_t newline = content.rfind('\n', last == 0 ? 0 : last - 1);
    line_start = newline == std::string::npos ? 0 : newline + 1;
  }
  if (line_start != std::string::npos &&
      content.compare(line_start, prefix.size(), prefix) == 0) {
    std::string stored = content.substr(line_start + prefix.size());
    while (!stored.empty() && (stored.back() == '\n' || stored.back() == '\r'))
      stored.pop_back();
    content.erase(line_start);
    const std::string actual = ContentChecksum(content);
    if (stored != actual) {
      return Status::InvalidArgument(
          "checksum mismatch in " + path + " (stored " + stored +
          ", computed " + actual + "): file is truncated or corrupt");
    }
  }
  return content;
}

}  // namespace activedp
