#ifndef ACTIVEDP_UTIL_ATOMIC_FILE_H_
#define ACTIVEDP_UTIL_ATOMIC_FILE_H_

#include <string>

#include "util/result.h"

namespace activedp {

/// Crash-safe file persistence: content is written to `<path>.tmp`, flushed
/// and fsync'd, then renamed over `path`, so a crash mid-save leaves either
/// the old file or the new one — never a torn mix. An optional checksum
/// footer detects truncation that happens *outside* the atomic protocol
/// (partial copies, disk corruption, fault-injected truncated writes).

/// Atomically replaces `path` with `content` (tmp + fsync + rename).
/// Honors the "<site>" fault site via FaultKind::kTruncateWrite (writes a
/// truncated file non-atomically and reports success, simulating a crash)
/// and FaultKind::kError. Pass an empty `fault_site` to opt out.
Status AtomicWriteFile(const std::string& path, const std::string& content,
                       const std::string& fault_site = "");

/// FNV-1a 64-bit hash of `content`, rendered as 16 hex digits.
std::string ContentChecksum(const std::string& content);

/// The footer line appended by WithChecksumFooter (without the checksum).
inline constexpr char kChecksumPrefix[] = "#crc64 ";

/// Appends "#crc64 <hex>\n" covering everything before the footer.
std::string WithChecksumFooter(std::string content);

/// Reads the whole file. If the last line is a checksum footer, verifies it
/// (InvalidArgument with both checksums on mismatch — the file is truncated
/// or corrupt) and strips it; files without a footer are returned as-is, so
/// pre-checksum files stay loadable. NotFound when the file cannot be read.
/// A non-empty `fault_site` honors FaultKind::kCorrupt (a byte of the read
/// content is flipped *before* verification, so the genuine checksum path
/// must catch it) and FaultKind::kError.
Result<std::string> ReadFileVerifyingChecksum(const std::string& path,
                                              const std::string& fault_site = "");

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_ATOMIC_FILE_H_
