#include "util/table_printer.h"

#include "util/check.h"
#include "util/string_util.h"

namespace activedp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += c == 0 ? "| " : " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(header_);
  std::string sep;
  for (size_t c = 0; c < widths.size(); ++c) {
    sep += c == 0 ? "|-" : "-|-";
    sep.append(widths[c], '-');
  }
  sep += "-|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace activedp
