#include "util/numeric_guard.h"

#include <cmath>
#include <string>

namespace activedp {

bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool IsProbabilityVector(const std::vector<double>& p, double tol) {
  if (p.empty()) return false;
  double sum = 0.0;
  for (double v : p) {
    if (!std::isfinite(v) || v < -tol || v > 1.0 + tol) return false;
    sum += v;
  }
  return std::fabs(sum - 1.0) <= tol * static_cast<double>(p.size()) + tol;
}

Status ValidateProbaRows(const std::vector<std::vector<double>>& proba,
                         int num_classes, const char* stage) {
  for (size_t i = 0; i < proba.size(); ++i) {
    if (proba[i].empty()) continue;  // "no prediction" rows are fine
    if (static_cast<int>(proba[i].size()) != num_classes) {
      return Status::Internal(std::string(stage) + ": row " +
                              std::to_string(i) + " has " +
                              std::to_string(proba[i].size()) +
                              " entries, expected " +
                              std::to_string(num_classes));
    }
    if (!IsProbabilityVector(proba[i])) {
      return Status::Internal(std::string(stage) + ": row " +
                              std::to_string(i) +
                              " is not a finite normalized distribution");
    }
  }
  return Status::Ok();
}

bool RepairProbabilityVector(std::vector<double>* p) {
  if (p->empty()) return false;
  bool repaired = false;
  double sum = 0.0;
  for (double& v : *p) {
    if (!std::isfinite(v) || v < 0.0) {
      v = 0.0;
      repaired = true;
    }
    sum += v;
  }
  if (sum <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(p->size());
    for (double& v : *p) v = uniform;
    return true;
  }
  if (std::fabs(sum - 1.0) > 1e-12) {
    for (double& v : *p) v /= sum;
    repaired = repaired || std::fabs(sum - 1.0) > 1e-6;
  }
  return repaired;
}

}  // namespace activedp
