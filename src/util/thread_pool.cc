#include "util/thread_pool.h"

#include "util/check.h"

namespace activedp {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CHECK(!shutdown_);
    tasks_.push(std::move(task));
    ++pending_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& body) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<int> next{0};
  int workers = pool->num_threads();
  if (workers > n) workers = n;
  for (int w = 0; w < workers; ++w) {
    pool->Submit([&next, n, &body] {
      while (true) {
        int i = next.fetch_add(1);
        if (i >= n) return;
        body(i);
      }
    });
  }
  pool->Wait();
}

}  // namespace activedp
