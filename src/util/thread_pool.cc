#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace activedp {
namespace {

/// The pool whose WorkerLoop the current thread is running, if any. Lets a
/// nested ParallelFor / TaskBatch on the same pool detect the cycle and run
/// inline instead of blocking a worker on work only workers can do.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::Enqueue(std::shared_ptr<BatchState> batch,
                         std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> batch_lock(batch->mutex);
    ++batch->pending;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CHECK(!shutdown_);
    tasks_.push_back(Task{std::move(batch), std::move(fn)});
  }
  task_available_.notify_one();
}

void ThreadPool::RunTask(Task task) {
  if (!task.batch->cancelled.load(std::memory_order_acquire)) {
    try {
      task.fn();
    } catch (...) {
      {
        std::unique_lock<std::mutex> lock(task.batch->mutex);
        if (!task.batch->error) task.batch->error = std::current_exception();
      }
      task.batch->cancelled.store(true, std::memory_order_release);
    }
  }
  {
    std::unique_lock<std::mutex> lock(task.batch->mutex);
    if (--task.batch->pending == 0) task.batch->done.notify_all();
  }
}

void ThreadPool::WaitBatch(const std::shared_ptr<BatchState>& batch) {
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done.wait(lock, [&batch] { return batch->pending == 0; });
}

void ThreadPool::RethrowBatchError(const std::shared_ptr<BatchState>& batch) {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    error = std::exchange(batch->error, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::Submit(std::function<void()> task) {
  std::shared_ptr<BatchState> batch;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CHECK(!shutdown_);
    if (default_batch_ == nullptr) {
      default_batch_ = std::make_shared<BatchState>();
    }
    batch = default_batch_;
  }
  Enqueue(std::move(batch), std::move(task));
}

void ThreadPool::Wait() {
  std::shared_ptr<BatchState> batch;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch = std::exchange(default_batch_, nullptr);
  }
  if (batch == nullptr) return;  // nothing submitted since the last wave
  WaitBatch(batch);
  RethrowBatchError(batch);
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    RunTask(std::move(task));
  }
}

TaskBatch::TaskBatch(ThreadPool* pool)
    : pool_(pool),
      inline_mode_(pool == nullptr || pool->num_threads() <= 1 ||
                   pool->OnWorkerThread()),
      state_(std::make_shared<ThreadPool::BatchState>()) {}

TaskBatch::~TaskBatch() {
  // Stragglers may still reference stack state captured by reference; never
  // let the batch object die before they do. Errors are intentionally
  // swallowed here — Wait() is the reporting channel.
  if (!inline_mode_) ThreadPool::WaitBatch(state_);
}

void TaskBatch::Submit(std::function<void()> task) {
  if (inline_mode_) {
    ThreadPool::Task t{state_, std::move(task)};
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      ++state_->pending;
    }
    ThreadPool::RunTask(std::move(t));
    return;
  }
  pool_->Enqueue(state_, std::move(task));
}

void TaskBatch::Wait() {
  if (!inline_mode_) ThreadPool::WaitBatch(state_);
  ThreadPool::RethrowBatchError(state_);
}

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& body) {
  if (n <= 0) return;
  TaskBatch batch(pool);
  if (batch.inline_mode()) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  // Work-sharing: one looping task per worker pulling indices from a shared
  // counter. `next` and `body` outlive the tasks because Wait() (and the
  // batch destructor, if Wait throws) blocks until every task finished.
  std::atomic<int> next{0};
  const int workers = std::min(pool->num_threads(), n);
  for (int w = 0; w < workers; ++w) {
    batch.Submit([&next, &body, &batch, n] {
      while (!batch.cancelled()) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    });
  }
  batch.Wait();
}

int BoundedGrain(int n, int min_grain, int max_chunks) {
  CHECK_GT(min_grain, 0);
  CHECK_GT(max_chunks, 0);
  if (n <= 0) return min_grain;
  return std::max(min_grain, (n + max_chunks - 1) / max_chunks);
}

Status ParallelForChunks(
    ThreadPool* pool, int n, int grain, const RunLimits& limits,
    std::string_view stage,
    const std::function<void(int chunk, int begin, int end)>& body) {
  CHECK_GT(grain, 0);
  const int chunks = NumChunks(n, grain);
  if (chunks == 0) return Status::Ok();

  TaskBatch batch(pool);
  if (batch.inline_mode()) {
    for (int c = 0; c < chunks; ++c) {
      RETURN_IF_ERROR(limits.Check(stage));
      body(c, c * grain, std::min(n, (c + 1) * grain));
    }
    return Status::Ok();
  }

  // One status slot per chunk: each slot is written by at most one task, and
  // the lowest failed index is returned, so the reported trip does not
  // depend on scheduling order among the chunks that actually ran.
  std::vector<Status> chunk_status(chunks, Status::Ok());
  std::atomic<int> next{0};
  const int workers = std::min(pool->num_threads(), chunks);
  for (int w = 0; w < workers; ++w) {
    batch.Submit([&, n, grain, chunks] {
      while (!batch.cancelled()) {
        const int c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks) return;
        const Status limit = limits.Check(stage);
        if (!limit.ok()) {
          chunk_status[c] = limit;
          batch.Cancel();
          return;
        }
        body(c, c * grain, std::min(n, (c + 1) * grain));
      }
    });
  }
  batch.Wait();
  for (int c = 0; c < chunks; ++c) {
    if (!chunk_status[c].ok()) return chunk_status[c];
  }
  return Status::Ok();
}

namespace {

std::mutex compute_pool_mutex;
std::unique_ptr<ThreadPool> compute_pool;
int compute_pool_threads = 1;

}  // namespace

ThreadPool* ComputePool() {
  std::unique_lock<std::mutex> lock(compute_pool_mutex);
  return compute_pool.get();
}

int ComputePoolThreads() {
  std::unique_lock<std::mutex> lock(compute_pool_mutex);
  return compute_pool_threads;
}

void SetComputePoolThreads(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  std::unique_lock<std::mutex> lock(compute_pool_mutex);
  if (num_threads == compute_pool_threads) return;
  compute_pool.reset();  // joins the old workers
  compute_pool_threads = num_threads;
  if (num_threads > 1) {
    compute_pool = std::make_unique<ThreadPool>(num_threads);
  }
}

}  // namespace activedp
