#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace activedp {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string FormatExactDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

bool ParseDouble(std::string_view text, double* value) {
  if (text.empty() || text.size() >= 64) return false;
  char buffer[64];
  text.copy(buffer, text.size());
  buffer[text.size()] = '\0';
  char* end = nullptr;
  const double parsed = std::strtod(buffer, &end);
  if (end != buffer + text.size() || !std::isfinite(parsed)) return false;
  *value = parsed;
  return true;
}

bool ParseInt64(std::string_view text, long long* value) {
  if (text.empty() || text.size() >= 64) return false;
  char buffer[64];
  text.copy(buffer, text.size());
  buffer[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(buffer, &end, 10);
  if (end != buffer + text.size() || errno == ERANGE) return false;
  *value = parsed;
  return true;
}

bool ParseInt(std::string_view text, int* value) {
  long long wide = 0;
  if (!ParseInt64(text, &wide)) return false;
  if (wide < INT_MIN || wide > INT_MAX) return false;
  *value = static_cast<int>(wide);
  return true;
}

}  // namespace activedp
