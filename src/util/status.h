#ifndef ACTIVEDP_UTIL_STATUS_H_
#define ACTIVEDP_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace activedp {

/// Canonical error codes, modelled after absl::StatusCode but reduced to the
/// set this library actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  kUnimplemented = 6,
  /// A time budget (util/deadline.h) ran out before the operation finished.
  kDeadlineExceeded = 7,
  /// The operation observed its CancellationToken and stopped early.
  kCancelled = 8,
  /// The service is temporarily overloaded (e.g. a full request queue);
  /// the caller may retry after backing off. Used by serve/ for admission
  /// control.
  kUnavailable = 9,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error carrier used on all fallible API paths.
///
/// The library does not use exceptions; functions that can fail return a
/// `Status` (or `Result<T>`, see result.h). A default-constructed Status is
/// OK. Statuses are cheap to copy (a code plus a message string).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace activedp

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define RETURN_IF_ERROR(expr)                          \
  do {                                                 \
    ::activedp::Status _status = (expr);               \
    if (!_status.ok()) return _status;                 \
  } while (false)

#endif  // ACTIVEDP_UTIL_STATUS_H_
