#ifndef ACTIVEDP_UTIL_NUMERIC_GUARD_H_
#define ACTIVEDP_UTIL_NUMERIC_GUARD_H_

#include <vector>

#include "util/status.h"

namespace activedp {

/// Numerical guards applied at pipeline stage boundaries: every probability
/// vector handed from one stage to the next must be finite and normalized,
/// so a diverged solver cannot silently poison downstream stages.

/// True iff every entry is finite.
bool AllFinite(const std::vector<double>& values);

/// True iff `p` is a probability vector: non-empty, entries finite, in
/// [-tol, 1 + tol], summing to 1 within `tol`.
bool IsProbabilityVector(const std::vector<double>& p, double tol = 1e-6);

/// OK iff every non-empty row of `proba` is a probability vector over
/// `num_classes` entries (empty rows mean "no prediction" and are allowed).
/// The error message names the first offending row.
Status ValidateProbaRows(const std::vector<std::vector<double>>& proba,
                         int num_classes, const char* stage);

/// Clamps `p` into a valid distribution in place: non-finite or negative
/// entries become 0, then the vector is renormalized (uniform if the mass
/// vanished). Returns true when a repair was needed.
bool RepairProbabilityVector(std::vector<double>* p);

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_NUMERIC_GUARD_H_
