#ifndef ACTIVEDP_UTIL_TRACE_H_
#define ACTIVEDP_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace activedp {

/// RunTrace: one structured timeline for the whole pipeline (DESIGN.md §9).
///
/// The tracer records two record kinds into per-thread buffers:
///
///   spans    RAII-timed stage executions (TraceSpan) with nesting
///   events   instants folded in from the existing silos: retries
///            (util/retry), degradations (core/recovery), fault-site fires
///            (util/fault), solver non-convergence, deadline trips
///
/// Determinism contract: every record carries a (track, seq) identity —
/// `track` is the logical lane (the seed ordinal under RunExperiment, 0
/// otherwise) and `seq` a per-track counter drawn at record creation. A
/// track is only ever driven by one thread at a time, so (track, seq) is a
/// pure function of the run's control flow: two runs at the same seed
/// produce identical traces *modulo the timestamp fields* (`ts_us`,
/// `dur_us`), which is what tests/trace_test.cc asserts. Records created on
/// compute-pool worker threads would break this (workers interleave
/// nondeterministically), so stages span at the *caller* level and workers
/// only touch util/metrics.h atomics.
///
/// Cost contract: when the runtime flag is off (the default) a TraceSpan
/// constructor is one acquire atomic load and no allocation. Compiling with
/// -DACTIVEDP_DISABLE_TRACING (CMake option of the same name) makes
/// `Tracer::enabled()` a compile-time `false`, so the whole call site folds
/// away; `kTracingCompiledIn` lets tests and callers check which build they
/// are in.

#ifdef ACTIVEDP_DISABLE_TRACING
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

/// One completed (or still-open) stage execution.
struct TraceSpanRecord {
  int track = 0;
  int64_t seq = 0;
  int64_t parent_seq = -1;  // seq of the enclosing span on this track
  int depth = 0;
  std::string stage;
  /// Timestamp fields — the only fields allowed to differ between same-seed
  /// runs. Microseconds since the tracer's epoch; duration -1 = still open.
  int64_t ts_us = 0;
  int64_t dur_us = -1;
  /// Deterministic integer annotations (iteration counts, sizes, 0/1
  /// convergence flags) recorded via TraceSpan::AddArg.
  std::vector<std::pair<std::string, int64_t>> args;
};

/// One instant event folded in from a silo.
struct TraceEventRecord {
  int track = 0;
  int64_t seq = 0;
  /// "retry" | "degradation" | "fault" | "convergence" | "deadline".
  std::string category;
  /// Site or stage name, e.g. "label_model.fit".
  std::string name;
  std::string detail;
  int64_t ts_us = 0;  // timestamp field
};

/// Per-stage aggregate over a RunTrace (wall time is *inclusive* of nested
/// spans; it answers "where did the time go" per stage name).
struct TraceStageStats {
  std::string stage;
  int64_t count = 0;
  double total_seconds = 0.0;
};

struct TraceSummary {
  std::vector<TraceStageStats> stages;  // sorted by total_seconds descending
  std::vector<std::pair<std::string, int64_t>> event_counts;  // by category
  int64_t num_spans = 0;
  int64_t num_events = 0;

  /// Aligned human-readable table (perf_bench / chaos_sweep print this).
  std::string ToString() const;
  std::string ToJson() const;
};

/// A collected run timeline, merged from the per-thread buffers into the
/// deterministic (track, seq) order.
struct RunTrace {
  std::vector<TraceSpanRecord> spans;
  std::vector<TraceEventRecord> events;

  /// One JSON object per line, spans and events interleaved in (track, seq)
  /// order. Identical between same-seed runs after stripping ts_us/dur_us.
  std::string ToJsonl() const;
  /// Chrome trace_event JSON ({"traceEvents": [...]}), loadable in
  /// chrome://tracing and Perfetto; spans are "X" events, instants "i".
  std::string ToChromeJson() const;
  TraceSummary Summary() const;
};

/// Writes `<dir>/<stem>.trace.jsonl`, `<dir>/<stem>.trace.chrome.json` and
/// `<dir>/<stem>.trace.summary.json` (summary + a Global metrics snapshot)
/// via AtomicWriteFile. Creates `dir` if needed.
Status WriteRunTrace(const RunTrace& trace, const std::string& dir,
                     const std::string& stem);

/// Observer of the span/instant stream, *independent* of the tracer's
/// enabled state: a registered sink sees every TraceInstant and every
/// TraceSpan end even while the full tracer is off. This is how the flight
/// recorder (src/obs) taps existing call sites without util depending on
/// obs — the recorder implements this interface and installs itself via
/// SetTraceSink. Callbacks run inline on the recording thread and must be
/// cheap and non-blocking. Timestamps passed to OnSpanEnd are raw
/// steady-clock micros with no particular epoch; sinks needing wall
/// alignment keep their own clock.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnInstant(std::string_view category, std::string_view name,
                         std::string_view detail) = 0;
  virtual void OnSpanEnd(std::string_view stage, int64_t start_us,
                         int64_t dur_us) = 0;
};

/// Installs (or with nullptr, removes) the process-wide sink. The sink is
/// borrowed: the caller keeps it alive until after SetTraceSink(nullptr)
/// returns. Cost when no sink is installed: one relaxed-ish atomic load
/// per TraceSpan / TraceInstant.
void SetTraceSink(TraceSink* sink);
TraceSink* ActiveTraceSink();

/// The process-wide tracer. Arm with Enable() (resets buffers and the
/// timestamp epoch), run the pipeline, then Collect(). Enable/Collect must
/// not race with open spans — bracket whole runs, as RunExperiment does for
/// `ExperimentSpec.policy.trace_dir`.
class Tracer {
 public:
  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Clears all buffers, resets per-track sequence counters and the epoch,
  /// and arms the tracer. No-op when tracing is compiled out.
  void Enable();
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  /// Acquire pairs with Enable()'s release store so a thread that observes
  /// enabled() == true also observes the epoch written before it.
  bool enabled() const {
    return kTracingCompiledIn && enabled_.load(std::memory_order_acquire);
  }

  /// Merges every thread's records into (track, seq) order. Safe to call
  /// with the tracer still enabled as long as no spans are open.
  RunTrace Collect();

  // --- Internal plumbing for TraceSpan / TraceInstant (treat as private;
  // exposed because the RAII types live outside the class). ---
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<TraceSpanRecord> spans;
    std::vector<TraceEventRecord> events;
  };
  ThreadBuffer* GetThreadBuffer();
  int64_t NextSeq(int track);
  int64_t NowMicros() const;
  int64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
  /// Bumped by Enable() so a span that straddles a reset never writes a
  /// stale buffer index.
  std::atomic<int64_t> generation_{0};
  /// steady_clock microseconds at the last Enable(). Atomic because
  /// NowMicros() reads it from recording threads while Enable() resets it
  /// (the reset race the generation guard already tolerates for buffers).
  std::atomic<int64_t> epoch_us_{0};
  mutable std::mutex mutex_;  // guards buffers_ and track_seq_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::map<int, int64_t> track_seq_;
};

/// Sets the calling thread's trace track for its lifetime (restores the
/// previous track on destruction). RunExperiment opens one per seed so
/// parallel seeds land on separate, deterministic lanes.
class TraceTrackScope {
 public:
  explicit TraceTrackScope(int track);
  ~TraceTrackScope();

  TraceTrackScope(const TraceTrackScope&) = delete;
  TraceTrackScope& operator=(const TraceTrackScope&) = delete;

  /// The calling thread's current track (0 outside any scope).
  static int CurrentTrack();

 private:
  int previous_;
};

/// RAII stage span: records (track, seq, parent, depth, stage) at
/// construction and the duration at destruction — including destruction by
/// exception unwinding, so a throwing stage still closes its span. A
/// disabled tracer makes construction a single relaxed load.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view stage);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a deterministic integer annotation (iteration counts, sizes,
  /// 0/1 flags). No-op on an inactive span.
  void AddArg(std::string_view key, int64_t value);

  bool active() const { return active_; }

 private:
  bool active_ = false;
  Tracer::ThreadBuffer* buffer_ = nullptr;
  size_t index_ = 0;
  int64_t seq_ = 0;
  int64_t generation_ = 0;
  int64_t start_us_ = 0;
  /// Sink-side timing, valid whenever a TraceSink was installed at
  /// construction — works with the tracer disabled.
  std::string sink_stage_;
  int64_t sink_start_us_ = -1;
};

/// Records one instant event on the calling thread's track. This is the
/// funnel the silos fold through: util/retry, core/recovery, util/fault and
/// the solvers call it at their existing record points.
void TraceInstant(std::string_view category, std::string_view name,
                  std::string_view detail);

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_TRACE_H_
