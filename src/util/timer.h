#ifndef ACTIVEDP_UTIL_TIMER_H_
#define ACTIVEDP_UTIL_TIMER_H_

#include <chrono>

namespace activedp {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_TIMER_H_
