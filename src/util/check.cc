#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace activedp {
namespace internal {

CheckFailStream::CheckFailStream(const char* condition, const char* file,
                                 int line) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
          << " ";
}

CheckFailStream::~CheckFailStream() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace activedp
