#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/check.h"
#include "util/string_util.h"

namespace activedp {

void FlagParser::AddFlag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  CHECK(flags_.find(name) == flags_.end()) << "duplicate flag " << name;
  flags_[name] = FlagInfo{default_value, default_value, help};
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      std::printf("%s", Usage(argv[0]).c_str());
      continue;
    }
    std::string name = body;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end())
      return Status::InvalidArgument("unknown flag: --" + name);
    if (!has_value) {
      // Boolean-defaulted flags are bare switches; other flags may take
      // their value as the following argument (--flag value).
      const std::string default_lower =
          ToLower(it->second.default_value);
      const bool boolean_flag =
          default_lower == "true" || default_lower == "false";
      if (!boolean_flag && i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return Status::Ok();
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  CHECK(it != flags_.end()) << "unregistered flag " << name;
  return it->second.value;
}

int FlagParser::GetInt(const std::string& name) const {
  return std::atoi(GetString(name).c_str());
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::atof(GetString(name).c_str());
}

bool FlagParser::GetBool(const std::string& name) const {
  std::string v = ToLower(GetString(name));
  return v == "true" || v == "1" || v == "yes";
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, info] : flags_) {
    out += "  --" + name + " (default: " + info.default_value + ")  " +
           info.help + "\n";
  }
  return out;
}

}  // namespace activedp
