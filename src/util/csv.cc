#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace activedp {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CHECK(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void CsvWriter::AddNumericRow(const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto append = [&out](const std::vector<std::string>& row) {
    if (row.size() == 1 && row[0].empty()) {
      // A lone empty field would serialize to a blank line, which parsers
      // (including ours) treat as no record at all; quote it explicitly.
      out += "\"\"\n";
      return;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += QuoteField(row[i]);
    }
    out += '\n';
  };
  append(header_);
  for (const auto& row : rows_) append(row);
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out << ToString();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& content) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::string field;
    bool in_quotes = false;
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field += '"';
            ++i;
          } else {
            in_quotes = false;
          }
        } else {
          field += c;
        }
      } else if (c == '"') {
        if (!field.empty())
          return Status::InvalidArgument("quote inside unquoted field");
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(field));
        field.clear();
      } else {
        field += c;
      }
    }
    if (in_quotes) return Status::InvalidArgument("unterminated quoted field");
    fields.push_back(std::move(field));
    rows.push_back(std::move(fields));
  }
  return rows;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace activedp
