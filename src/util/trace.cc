#include "util/trace.h"

#include <algorithm>
#include <filesystem>
#include <iomanip>
#include <sstream>

#include "util/atomic_file.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace activedp {
namespace {

/// The calling thread's logical lane; one thread drives one track at a
/// time, which is what makes (track, seq) deterministic.
thread_local int g_track = 0;
/// Open-span seqs on this thread, innermost last (spans are strictly
/// nested per thread by RAII).
thread_local std::vector<int64_t> g_span_stack;
/// This thread's registered buffer in Tracer::Global() (buffers are never
/// freed, so the cached pointer stays valid for the process lifetime).
thread_local Tracer::ThreadBuffer* g_buffer = nullptr;

/// The installed TraceSink, if any. Acquire/release so a thread that
/// observes the sink also observes its construction.
std::atomic<TraceSink*> g_trace_sink{nullptr};

/// Raw steady-clock micros for sink-side span timing (no tracer epoch —
/// sinks only ever take differences or keep their own clock).
int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void SetTraceSink(TraceSink* sink) {
  g_trace_sink.store(sink, std::memory_order_release);
}

TraceSink* ActiveTraceSink() {
  return g_trace_sink.load(std::memory_order_acquire);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  if (!kTracingCompiledIn) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->spans.clear();
    buffer->events.clear();
  }
  track_seq_.clear();
  generation_.fetch_add(1, std::memory_order_relaxed);
  epoch_us_.store(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count(),
                  std::memory_order_relaxed);
  // Release pairs with the acquire load in enabled(): a thread that observes
  // enabled() == true also observes the epoch stored above.
  enabled_.store(true, std::memory_order_release);
}

Tracer::ThreadBuffer* Tracer::GetThreadBuffer() {
  if (g_buffer == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    g_buffer = buffer.get();
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::move(buffer));
  }
  return g_buffer;
}

int64_t Tracer::NextSeq(int track) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ++track_seq_[track];
}

int64_t Tracer::NowMicros() const {
  const int64_t now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return now_us - epoch_us_.load(std::memory_order_relaxed);
}

RunTrace Tracer::Collect() {
  RunTrace trace;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    trace.spans.insert(trace.spans.end(), buffer->spans.begin(),
                       buffer->spans.end());
    trace.events.insert(trace.events.end(), buffer->events.begin(),
                        buffer->events.end());
  }
  const auto by_track_seq = [](const auto& a, const auto& b) {
    return a.track != b.track ? a.track < b.track : a.seq < b.seq;
  };
  std::sort(trace.spans.begin(), trace.spans.end(), by_track_seq);
  std::sort(trace.events.begin(), trace.events.end(), by_track_seq);
  return trace;
}

// ------------------------------------------------------------- tracks ----

TraceTrackScope::TraceTrackScope(int track) : previous_(g_track) {
  g_track = track;
}

TraceTrackScope::~TraceTrackScope() { g_track = previous_; }

int TraceTrackScope::CurrentTrack() { return g_track; }

// -------------------------------------------------------------- spans ----

TraceSpan::TraceSpan(std::string_view stage) {
  if (ActiveTraceSink() != nullptr) {
    sink_stage_ = std::string(stage);
    sink_start_us_ = SteadyNowMicros();
  }
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  buffer_ = tracer.GetThreadBuffer();
  seq_ = tracer.NextSeq(g_track);
  generation_ = tracer.generation();
  TraceSpanRecord record;
  record.track = g_track;
  record.seq = seq_;
  record.parent_seq = g_span_stack.empty() ? -1 : g_span_stack.back();
  record.depth = static_cast<int>(g_span_stack.size());
  record.stage = std::string(stage);
  record.ts_us = tracer.NowMicros();
  start_us_ = record.ts_us;
  {
    std::lock_guard<std::mutex> lock(buffer_->mutex);
    index_ = buffer_->spans.size();
    buffer_->spans.push_back(std::move(record));
  }
  g_span_stack.push_back(seq_);
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (sink_start_us_ >= 0) {
    if (TraceSink* sink = ActiveTraceSink()) {
      sink->OnSpanEnd(sink_stage_, sink_start_us_,
                      std::max<int64_t>(0, SteadyNowMicros() - sink_start_us_));
    }
  }
  if (!active_) return;
  g_span_stack.pop_back();
  Tracer& tracer = Tracer::Global();
  const int64_t dur = tracer.NowMicros() - start_us_;
  std::lock_guard<std::mutex> lock(buffer_->mutex);
  // A reset while this span was open cleared the buffer; never write a
  // stale index.
  if (tracer.generation() == generation_ && index_ < buffer_->spans.size()) {
    buffer_->spans[index_].dur_us = dur < 0 ? 0 : dur;
  }
}

void TraceSpan::AddArg(std::string_view key, int64_t value) {
  if (!active_) return;
  std::lock_guard<std::mutex> lock(buffer_->mutex);
  if (Tracer::Global().generation() == generation_ &&
      index_ < buffer_->spans.size()) {
    buffer_->spans[index_].args.emplace_back(std::string(key), value);
  }
}

void TraceInstant(std::string_view category, std::string_view name,
                  std::string_view detail) {
  if (TraceSink* sink = ActiveTraceSink()) {
    sink->OnInstant(category, name, detail);
  }
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  Tracer::ThreadBuffer* buffer = tracer.GetThreadBuffer();
  TraceEventRecord record;
  record.track = g_track;
  record.seq = tracer.NextSeq(g_track);
  record.category = std::string(category);
  record.name = std::string(name);
  record.detail = std::string(detail);
  record.ts_us = tracer.NowMicros();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(std::move(record));
}

// ------------------------------------------------------------ exports ----

std::string RunTrace::ToJsonl() const {
  std::ostringstream out;
  // Merge spans and events into one (track, seq)-ordered stream so the line
  // order itself is deterministic.
  size_t s = 0;
  size_t e = 0;
  const auto span_first = [&]() {
    if (s >= spans.size()) return false;
    if (e >= events.size()) return true;
    if (spans[s].track != events[e].track) {
      return spans[s].track < events[e].track;
    }
    return spans[s].seq < events[e].seq;
  };
  while (s < spans.size() || e < events.size()) {
    if (span_first()) {
      const TraceSpanRecord& r = spans[s++];
      out << "{\"type\": \"span\", \"track\": " << r.track
          << ", \"seq\": " << r.seq << ", \"parent\": " << r.parent_seq
          << ", \"depth\": " << r.depth << ", \"stage\": \""
          << JsonEscape(r.stage) << "\", \"args\": {";
      for (size_t i = 0; i < r.args.size(); ++i) {
        if (i > 0) out << ", ";
        out << "\"" << JsonEscape(r.args[i].first)
            << "\": " << r.args[i].second;
      }
      out << "}, \"ts_us\": " << r.ts_us << ", \"dur_us\": " << r.dur_us
          << "}\n";
    } else {
      const TraceEventRecord& r = events[e++];
      out << "{\"type\": \"event\", \"track\": " << r.track
          << ", \"seq\": " << r.seq << ", \"category\": \""
          << JsonEscape(r.category) << "\", \"name\": \""
          << JsonEscape(r.name) << "\", \"detail\": \""
          << JsonEscape(r.detail) << "\", \"ts_us\": " << r.ts_us << "}\n";
    }
  }
  return out.str();
}

std::string RunTrace::ToChromeJson() const {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const TraceSpanRecord& r : spans) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\": \"" << JsonEscape(r.stage)
        << "\", \"cat\": \"stage\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
        << r.track << ", \"ts\": " << r.ts_us
        << ", \"dur\": " << (r.dur_us < 0 ? 0 : r.dur_us) << ", \"args\": {";
    out << "\"seq\": " << r.seq;
    for (const auto& [key, value] : r.args) {
      out << ", \"" << JsonEscape(key) << "\": " << value;
    }
    out << "}}";
  }
  for (const TraceEventRecord& r : events) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\": \"" << JsonEscape(r.name) << "\", \"cat\": \""
        << JsonEscape(r.category)
        << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": " << r.track
        << ", \"ts\": " << r.ts_us << ", \"args\": {\"detail\": \""
        << JsonEscape(r.detail) << "\"}}";
  }
  out << "\n]}\n";
  return out.str();
}

TraceSummary RunTrace::Summary() const {
  TraceSummary summary;
  std::map<std::string, TraceStageStats> stages;
  for (const TraceSpanRecord& r : spans) {
    TraceStageStats& stats = stages[r.stage];
    stats.stage = r.stage;
    ++stats.count;
    if (r.dur_us > 0) stats.total_seconds += r.dur_us * 1e-6;
  }
  for (auto& [name, stats] : stages) summary.stages.push_back(stats);
  std::sort(summary.stages.begin(), summary.stages.end(),
            [](const TraceStageStats& a, const TraceStageStats& b) {
              if (a.total_seconds != b.total_seconds) {
                return a.total_seconds > b.total_seconds;
              }
              return a.stage < b.stage;
            });
  std::map<std::string, int64_t> categories;
  for (const TraceEventRecord& r : events) ++categories[r.category];
  summary.event_counts.assign(categories.begin(), categories.end());
  summary.num_spans = static_cast<int64_t>(spans.size());
  summary.num_events = static_cast<int64_t>(events.size());
  return summary;
}

std::string TraceSummary::ToString() const {
  std::ostringstream out;
  out << "stage                             count      seconds\n";
  for (const TraceStageStats& s : stages) {
    out << std::left << std::setw(32) << s.stage << std::right << std::setw(7)
        << s.count << std::setw(13) << std::fixed << std::setprecision(4)
        << s.total_seconds << "\n";
  }
  out << "spans: " << num_spans << ", events:";
  if (event_counts.empty()) out << " none";
  for (const auto& [category, count] : event_counts) {
    out << " " << category << "=" << count;
  }
  out << "\n";
  return out.str();
}

std::string TraceSummary::ToJson() const {
  std::ostringstream out;
  out << "{\"stages\": [";
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"stage\": \"" << JsonEscape(stages[i].stage)
        << "\", \"count\": " << stages[i].count
        << ", \"seconds\": " << stages[i].total_seconds << "}";
  }
  out << "], \"events\": {";
  for (size_t i = 0; i < event_counts.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << JsonEscape(event_counts[i].first)
        << "\": " << event_counts[i].second;
  }
  out << "}, \"num_spans\": " << num_spans
      << ", \"num_events\": " << num_events << "}";
  return out.str();
}

Status WriteRunTrace(const RunTrace& trace, const std::string& dir,
                     const std::string& stem) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create trace dir " + dir + ": " +
                            ec.message());
  }
  const std::string base = dir + "/" + stem;
  RETURN_IF_ERROR(AtomicWriteFile(base + ".trace.jsonl", trace.ToJsonl()));
  RETURN_IF_ERROR(
      AtomicWriteFile(base + ".trace.chrome.json", trace.ToChromeJson()));
  std::ostringstream summary;
  summary << "{\"summary\": " << trace.Summary().ToJson()
          << ", \"metrics\": " << MetricsRegistry::Global().ToJson() << "}\n";
  return AtomicWriteFile(base + ".trace.summary.json", summary.str());
}

}  // namespace activedp
