#ifndef ACTIVEDP_UTIL_FAULT_H_
#define ACTIVEDP_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace activedp {

/// What an armed fault site does when it fires.
enum class FaultKind {
  kNone = 0,
  /// Poison the stage's numeric output with NaN (the stage's own finite
  /// guards must catch it).
  kNan,
  /// Force the solver to report non-convergence.
  kNoConverge,
  /// Fail the operation with Status::Internal.
  kError,
  /// Truncate a file write partway through (simulates a crash mid-save;
  /// the write still reports success, as a killed process would).
  kTruncateWrite,
  /// Oracle-style sites return an empty/no-op response.
  kEmptyResponse,
  /// Corrupt the bytes a read path is about to verify (bit flip before the
  /// checksum check), so the site's own corruption detection must reject it.
  kCorrupt,
  /// Inject a latency spike (a bounded sleep) without failing the operation
  /// — the overload/tail-latency story, not the correctness one.
  kLatencySpike,
};

std::string_view FaultKindToString(FaultKind kind);

/// Bit for `kind` in an honored-kinds mask (see CheckFault below).
constexpr uint32_t FaultKindBit(FaultKind kind) {
  return 1u << static_cast<int>(kind);
}

/// All kinds honored — the default for sites that predate honored-kind
/// filtering.
constexpr uint32_t kAllFaultKinds = ~0u;

/// When and how often an armed site fires. Deterministic: given the same
/// spec and the same sequence of CheckFault() calls, the same calls fire.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  /// Skip this many hits before the first fire (0 = fire immediately).
  int trigger_after = 0;
  /// Stop firing after this many fires (-1 = unlimited).
  int max_fires = -1;
  /// Fire each due hit with this probability, decided by a per-site
  /// counter-based hash of `seed` (1.0 = always). Still deterministic.
  double probability = 1.0;
  uint64_t seed = 0;
};

/// Deterministic fault-injection registry. Compiled in always; the hot-path
/// query (CheckFault below) is a single relaxed atomic load when no site is
/// armed, so production runs pay nothing.
///
/// Known sites (see DESIGN.md "Failure semantics"):
///   "glasso.solve"      graphical-lasso solve (kNan / kNoConverge / kError)
///   "metal.fit"         MeTaL-style label-model fit (kNan / kError)
///   "lr.fit"            logistic-regression training (kNan / kNoConverge /
///                       kError)
///   "oracle.create_lf"  simulated user LF creation (kEmptyResponse)
///   "session.save"      session file write (kTruncateWrite / kError)
///   "checkpoint.save"   run-checkpoint write (kTruncateWrite / kError)
///
/// Serving-side sites (DESIGN.md §11 "ServeGuard"):
///   "snapshot.save"       snapshot file write (kTruncateWrite / kError)
///   "serve.snapshot_load" snapshot file read (kError / kCorrupt — the bit
///                         flip happens before checksum verification, so the
///                         real detection path must reject it)
///   "serve.dispatch"      batch dispatch in PredictionService (kError: the
///                         whole batch fails with Internal — circuit-breaker
///                         food)
///   "serve.predict"       batch evaluation latency (kLatencySpike: bounded
///                         sleep on the dispatcher thread; results stay
///                         correct, tails grow)
///   "registry.save"       snapshot-registry manifest write (kTruncateWrite /
///                         kError)
///   "rollout.canary"      canary-arm evaluation in RunStagedRollout (kError:
///                         canary predictions fail, driving the error-rate
///                         gate to an auto-rollback)
///
/// LearnGuard continuous-learning sites (DESIGN.md §12):
///   "eventlog.append"   feedback-log record append (kError /
///                       kTruncateWrite: a torn half-record reaches disk and
///                       the handle refuses further work — recovery is
///                       reopening the log, which truncates the tail)
///   "eventlog.replay"   segment replay (kError / kCorrupt: a bit flip lands
///                       before per-record checksum verification; the
///                       retrainer quarantines the segment it cannot replay)
///   "retrain.fit"       the guarded background refit (kError / kNan: the
///                       warm-start weights are poisoned so the LR finite
///                       guard must reject the diverged fit)
///   "retrain.validate"  holdout scoring of a retrain candidate (kError:
///                       an unvalidated candidate is quarantined, never
///                       published)
///   "publish.rollout"   publish infrastructure between Register and the
///                       staged rollout (kError: the candidate is marked
///                       failed and never serves)
class FaultInjector {
 public:
  /// Process-wide registry used by the ACTIVEDP_CHECK_FAULT sites.
  static FaultInjector& Global();

  /// Arms (or re-arms, resetting counters) a named site.
  void Arm(const std::string& site, const FaultSpec& spec);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// Records a hit at `site` and returns the fault to inject now (kNone
  /// when the site is disarmed or not yet due). A due fault whose kind is
  /// not in `honored_mask` does NOT fire (and does not count as a fire):
  /// sites declare the kinds they can express, so fire_count() only ever
  /// counts injections that had an observable effect — the invariant the
  /// chaos sweep's fault accounting rests on.
  FaultKind Check(std::string_view site, uint32_t honored_mask = kAllFaultKinds);

  /// How many times `site` actually fired since it was (re-)armed.
  int fire_count(const std::string& site) const;
  /// How many times `site` was hit since it was (re-)armed.
  int hit_count(const std::string& site) const;

  bool any_armed() const {
    return num_armed_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct SiteState {
    FaultSpec spec;
    int hits = 0;
    int fires = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, SiteState, std::less<>> sites_;
  std::atomic<int> num_armed_{0};
};

/// Hot-path site query against the global registry; zero-cost (one relaxed
/// load) while nothing is armed. Sites pass the kinds they honor so an
/// armed-but-inexpressible kind never counts as a fire.
inline FaultKind CheckFault(std::string_view site,
                            uint32_t honored_mask = kAllFaultKinds) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.any_armed()) return FaultKind::kNone;
  return injector.Check(site, honored_mask);
}

inline FaultKind CheckFault(std::string_view site,
                            std::initializer_list<FaultKind> honored) {
  uint32_t mask = 0;
  for (FaultKind kind : honored) mask |= FaultKindBit(kind);
  return CheckFault(site, mask);
}

/// RAII arming for tests and chaos harnesses: arms on construction (or via
/// Arm(), for scopes covering several sites at once), disarms everything it
/// armed on destruction — so a failing test cannot leak an armed site into
/// later tests.
class FaultScope {
 public:
  FaultScope() = default;
  FaultScope(std::string site, const FaultSpec& spec);
  FaultScope(std::string site, FaultKind kind);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// Arms (or re-arms) another site under this scope's lifetime.
  void Arm(std::string site, const FaultSpec& spec);
  void Arm(std::string site, FaultKind kind);

  /// Fires at the first armed site (the single-site common case).
  int fire_count() const;
  int fire_count(const std::string& site) const;
  /// Total fires across every site this scope armed.
  int total_fires() const;

 private:
  std::vector<std::string> sites_;
};

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_FAULT_H_
