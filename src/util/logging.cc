#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/string_util.h"

namespace activedp {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};
std::once_flag g_env_once;

/// The installed sink, behind a mutex so replacing it cannot race a flush.
/// The default (null) sink writes one line to stderr.
std::mutex g_sink_mutex;
LogSink g_sink;  // guarded by g_sink_mutex

void ApplyEnvLogLevel() {
  const char* env = std::getenv("ACTIVEDP_LOG_LEVEL");
  if (env == nullptr) return;
  LogSeverity severity;
  if (internal::ParseLogSeverity(env, &severity)) {
    g_min_severity = severity;
  } else {
    std::fprintf(stderr, "[W logging.cc] ignoring invalid ACTIVEDP_LOG_LEVEL=%s\n",
                 env);
  }
}

void EnsureEnvApplied() { std::call_once(g_env_once, ApplyEnvLogLevel); }

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

void Emit(LogSeverity severity, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(severity, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  // Consume the one-time env read first so it cannot later overwrite an
  // explicit setting.
  EnsureEnvApplied();
  g_min_severity = severity;
}

LogSeverity MinLogSeverity() {
  EnsureEnvApplied();
  return g_min_severity;
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

struct CapturedLogs::State {
  mutable std::mutex mutex;
  std::vector<std::string> lines;
};

CapturedLogs::CapturedLogs() : state_(std::make_shared<State>()) {
  std::shared_ptr<State> state = state_;
  SetLogSink([state](LogSeverity, std::string_view line) {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->lines.emplace_back(line);
  });
}

CapturedLogs::~CapturedLogs() { SetLogSink(nullptr); }

std::vector<std::string> CapturedLogs::lines() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->lines;
}

bool CapturedLogs::Contains(std::string_view needle) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  for (const std::string& line : state_->lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

namespace internal {

bool ParseLogSeverity(std::string_view text, LogSeverity* out) {
  const std::string lower = ToLower(Trim(text));
  if (lower == "debug" || lower == "0") {
    *out = LogSeverity::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogSeverity::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *out = LogSeverity::kWarning;
  } else if (lower == "error" || lower == "3") {
    *out = LogSeverity::kError;
  } else {
    return false;
  }
  return true;
}

void ReinitLogLevelFromEnvForTesting() {
  g_min_severity = LogSeverity::kInfo;
  ApplyEnvLogLevel();
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : enabled_(severity >= MinLogSeverity()), severity_(severity) {
  if (enabled_) {
    stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    Emit(severity_, stream_.str());
  }
}

}  // namespace internal
}  // namespace activedp
