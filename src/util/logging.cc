#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace activedp {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : enabled_(severity >= MinLogSeverity()) {
  if (enabled_) {
    stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace activedp
