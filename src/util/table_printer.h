#ifndef ACTIVEDP_UTIL_TABLE_PRINTER_H_
#define ACTIVEDP_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace activedp {

/// Renders rows of strings as an aligned ASCII table, used by the benchmark
/// harness to print paper-style tables.
class TablePrinter {
 public:
  /// Sets the header row; column count is fixed by it.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count.
  void AddRow(std::vector<std::string> row);

  /// Convenience: first cell is a label, remaining cells are doubles rendered
  /// with `digits` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 4);

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_TABLE_PRINTER_H_
