#ifndef ACTIVEDP_UTIL_RNG_H_
#define ACTIVEDP_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace activedp {

/// Deterministic, seedable pseudo-random generator (xoshiro256**) with the
/// distributions the library needs. One instance per experiment run; not
/// thread-safe (give each worker its own, derived via Fork()).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent stream; deterministic function of current state.
  Rng Fork();

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Uniform integer in [lo, hi].
  int UniformInt(int lo, int hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Standard normal (Box–Muller with caching).
  double Normal();
  double Normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (> 0).
  int Poisson(double mean);

  /// Samples an index with probability proportional to weights[i] (>= 0, not
  /// all zero).
  int Discrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). Requires 0 <= k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_RNG_H_
