#include "util/fault.h"

#include "util/metrics.h"
#include "util/trace.h"

namespace activedp {
namespace {

/// splitmix64 finalizer: uniform deterministic hash of (seed, counter).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kNan:
      return "nan";
    case FaultKind::kNoConverge:
      return "no-converge";
    case FaultKind::kError:
      return "error";
    case FaultKind::kTruncateWrite:
      return "truncate-write";
    case FaultKind::kEmptyResponse:
      return "empty-response";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kLatencySpike:
      return "latency-spike";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = sites_.insert_or_assign(site, SiteState{spec, 0, 0});
  (void)it;
  if (inserted) num_armed_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sites_.erase(site) > 0) {
    num_armed_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  num_armed_.fetch_sub(static_cast<int>(sites_.size()),
                       std::memory_order_relaxed);
  sites_.clear();
}

FaultKind FaultInjector::Check(std::string_view site, uint32_t honored_mask) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return FaultKind::kNone;
  SiteState& state = it->second;
  const int hit = state.hits++;
  if ((FaultKindBit(state.spec.kind) & honored_mask) == 0) {
    // The site cannot express this kind; the hit is counted but nothing
    // fires, so fire_count() stays an honest count of observable effects.
    return FaultKind::kNone;
  }
  if (hit < state.spec.trigger_after) return FaultKind::kNone;
  if (state.spec.max_fires >= 0 && state.fires >= state.spec.max_fires) {
    return FaultKind::kNone;
  }
  if (state.spec.probability < 1.0) {
    const double u =
        static_cast<double>(Mix(state.spec.seed ^ static_cast<uint64_t>(hit)) >>
                            11) *
        0x1.0p-53;
    if (u >= state.spec.probability) return FaultKind::kNone;
  }
  ++state.fires;
  // Fold the activation into the run timeline (the tracer's locks are
  // leaves, so calling out while holding mutex_ cannot deadlock).
  TraceInstant("fault", site, FaultKindToString(state.spec.kind));
  MetricsRegistry::Global().counter("fault.fires").Increment();
  return state.spec.kind;
}

int FaultInjector::fire_count(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

int FaultInjector::hit_count(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

FaultScope::FaultScope(std::string site, const FaultSpec& spec) {
  Arm(std::move(site), spec);
}

FaultScope::FaultScope(std::string site, FaultKind kind) {
  Arm(std::move(site), kind);
}

FaultScope::~FaultScope() {
  for (const std::string& site : sites_) {
    FaultInjector::Global().Disarm(site);
  }
}

void FaultScope::Arm(std::string site, const FaultSpec& spec) {
  FaultInjector::Global().Arm(site, spec);
  sites_.push_back(std::move(site));
}

void FaultScope::Arm(std::string site, FaultKind kind) {
  FaultSpec spec;
  spec.kind = kind;
  Arm(std::move(site), spec);
}

int FaultScope::fire_count() const {
  return sites_.empty() ? 0 : fire_count(sites_.front());
}

int FaultScope::fire_count(const std::string& site) const {
  return FaultInjector::Global().fire_count(site);
}

int FaultScope::total_fires() const {
  int total = 0;
  for (const std::string& site : sites_) {
    total += FaultInjector::Global().fire_count(site);
  }
  return total;
}

}  // namespace activedp
