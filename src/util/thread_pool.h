#ifndef ACTIVEDP_UTIL_THREAD_POOL_H_
#define ACTIVEDP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "util/deadline.h"
#include "util/status.h"

namespace activedp {

class TaskBatch;

/// Fixed-size worker pool. Completion tracking is *batch-scoped*: every task
/// belongs to a TaskBatch with its own latch, so concurrent batches never
/// wait on each other's tasks and a batch's Wait() observes only its own
/// work. Exceptions thrown by a task are captured per batch (first wins) and
/// rethrown from that batch's Wait() instead of escaping a worker thread.
/// The legacy Submit()/Wait() pair remains and is backed by an internal
/// default batch per wave.
class ThreadPool {
 public:
  /// `num_threads` <= 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task on the pool's default batch.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted via Submit() has finished, then
  /// rethrows the first exception any of them threw (if any). The default
  /// batch is reset afterwards, so the pool stays usable after a failure.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is one of this pool's workers. Used by
  /// ParallelFor and TaskBatch to fall back to inline execution instead of
  /// deadlocking on a nested wait.
  bool OnWorkerThread() const;

 private:
  friend class TaskBatch;

  /// Per-batch completion latch plus first-exception capture. Shared by the
  /// batch handle and every in-flight task of the batch.
  struct BatchState {
    std::mutex mutex;
    std::condition_variable done;
    int pending = 0;                   // guarded by mutex
    std::exception_ptr error;          // first exception, guarded by mutex
    std::atomic<bool> cancelled{false};
  };

  struct Task {
    std::shared_ptr<BatchState> batch;
    std::function<void()> fn;
  };

  void Enqueue(std::shared_ptr<BatchState> batch, std::function<void()> fn);
  /// Runs one task with exception capture and batch bookkeeping.
  static void RunTask(Task task);
  static void WaitBatch(const std::shared_ptr<BatchState>& batch);
  /// Rethrows (and clears) the batch's first captured exception, if any.
  static void RethrowBatchError(const std::shared_ptr<BatchState>& batch);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::shared_ptr<BatchState> default_batch_;  // lazily created by Submit
  bool shutdown_ = false;
};

/// A scoped group of tasks with its own completion latch. Waiting on one
/// batch is independent of every other batch on the same pool. When `pool`
/// is null, has <= 1 worker, or the constructing thread *is* one of the
/// pool's workers (a nested batch), tasks run inline in Submit — nesting can
/// never deadlock. The destructor waits for stragglers (without rethrowing),
/// so a batch never outlives the stack frame its tasks capture.
class TaskBatch {
 public:
  explicit TaskBatch(ThreadPool* pool);
  ~TaskBatch();

  TaskBatch(const TaskBatch&) = delete;
  TaskBatch& operator=(const TaskBatch&) = delete;

  /// Enqueues (or, in inline mode, runs) one task. After a task has thrown
  /// or Cancel() was called, submitted bodies are skipped.
  void Submit(std::function<void()> task);

  /// Blocks until this batch's tasks have finished, then rethrows the first
  /// exception thrown by any of them.
  void Wait();

  /// Marks the batch cancelled: bodies not yet started are skipped.
  void Cancel() { state_->cancelled.store(true, std::memory_order_release); }
  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  /// True when tasks run in the submitting thread (null/serial pool or a
  /// nested batch on a worker thread).
  bool inline_mode() const { return inline_mode_; }

 private:
  ThreadPool* pool_;
  bool inline_mode_;
  std::shared_ptr<ThreadPool::BatchState> state_;
};

/// Runs body(i) for i in [0, n) across the pool and blocks until all
/// iterations complete. Runs inline when the pool is null/serial or when
/// called from one of the pool's own workers (nested parallelism). The first
/// exception thrown by `body` cancels the remaining iterations and is
/// rethrown here, in the caller.
void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& body);

/// Number of `grain`-sized chunks covering [0, n).
inline int NumChunks(int n, int grain) {
  return n <= 0 ? 0 : (n + grain - 1) / grain;
}

/// Grain that covers n in at most `max_chunks` chunks of at least
/// `min_grain`. Depends only on n, so chunk boundaries — and therefore any
/// per-chunk ordered reduction — are identical at every thread count.
int BoundedGrain(int n, int min_grain, int max_chunks);

/// Chunked parallel loop: body(chunk, begin, end) over fixed chunk
/// boundaries derived from `n` and `grain` only (never from the thread
/// count), so per-chunk partial results combined in chunk order are bitwise
/// identical at 1 and N threads. `limits` is checked once per chunk before
/// it starts; the first non-OK status cancels the chunks not yet started and
/// is returned (lowest chunk index wins when several trip). Exceptions from
/// `body` likewise cancel remaining chunks and are rethrown. Runs inline on
/// a null/serial pool or from a nested worker.
Status ParallelForChunks(
    ThreadPool* pool, int n, int grain, const RunLimits& limits,
    std::string_view stage,
    const std::function<void(int chunk, int begin, int end)>& body);

/// The process-wide pool data-parallel stages (LF application, TF-IDF,
/// matrix products, label-model fits, graphical lasso) draw from. Returns
/// null when configured serial (the default): every stage then runs inline,
/// which is also the fallback inside nested parallel regions. Results are
/// bitwise independent of this setting by construction (see
/// ParallelForChunks), so flipping it is purely a throughput knob.
ThreadPool* ComputePool();

/// Number of threads ComputePool is configured with (1 = serial).
int ComputePoolThreads();

/// Reconfigures the compute pool (<= 1 disables it). Waits for the old
/// pool's queue to drain; must not be called concurrently with stages that
/// are using the pool.
void SetComputePoolThreads(int num_threads);

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_THREAD_POOL_H_
