#ifndef ACTIVEDP_UTIL_THREAD_POOL_H_
#define ACTIVEDP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace activedp {

/// Fixed-size worker pool. Tasks are void() functions; Wait() blocks until
/// every submitted task has completed. Used to parallelize experiment seeds
/// and dataset sweeps in the benchmark harness.
class ThreadPool {
 public:
  /// `num_threads` <= 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int pending_ = 0;   // queued + running tasks
  bool shutdown_ = false;
};

/// Runs body(i) for i in [0, n) across the pool (or inline when pool is
/// null). Blocks until all iterations complete.
void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& body);

}  // namespace activedp

#endif  // ACTIVEDP_UTIL_THREAD_POOL_H_
