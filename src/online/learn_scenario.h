#ifndef ACTIVEDP_ONLINE_LEARN_SCENARIO_H_
#define ACTIVEDP_ONLINE_LEARN_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/example.h"
#include "serve/model_snapshot.h"
#include "util/fault.h"
#include "util/result.h"

namespace activedp {

/// One LearnGuard fault site and the kinds it can express. Shared by
/// bench/learn_chaos and the online tests so "full coverage" means the same
/// matrix everywhere (the serve-side sibling is serve/chaos_scenario.h).
struct LearnChaosSiteInfo {
  const char* site;
  uint32_t honored;
};

const std::vector<LearnChaosSiteInfo>& LearnChaosSites();

/// Kinds the LearnGuard matrix sweeps. Unhonored (site, kind) pairs assert
/// zero fires.
const std::vector<FaultKind>& LearnChaosKinds();

/// Everything a LearnGuard chaos scenario needs, built once per seed: a
/// deliberately *weak* base snapshot (few protocol steps, so retrains have
/// headroom), the featurized corpus the feedback rows index into, ground
/// truth for the simulated users, a holdout slice for the validation gate,
/// and a traffic trace for the staged rollout.
struct LearnChaosFixture {
  std::string dir;
  std::string snapshot_path;
  std::shared_ptr<const ModelSnapshot> snapshot;
  /// Featurized train rows — FeedbackEvent::row indexes into these.
  std::vector<SparseVector> features;
  /// Ground-truth label per train row (the simulated feedback source).
  std::vector<int> corpus_labels;
  std::vector<Example> holdout;
  std::vector<int> holdout_labels;
  /// Live-traffic window served during rollouts and the surviving-path sweep.
  std::vector<Example> trace;
};

Result<LearnChaosFixture> BuildLearnChaosFixture(const std::string& dir,
                                                 const std::string& dataset,
                                                 double scale, uint64_t seed,
                                                 int base_steps,
                                                 int trace_size);

struct LearnChaosOutcome {
  bool passed = true;
  std::string failure;
  /// Injected-fault fires observed by the armed site.
  int fires = 0;
  /// Pieces of evidence the fault was handled: clean rejections, quarantined
  /// segments, fit failures absorbed, condemned candidates, auto-rollbacks.
  int evidence = 0;
  /// Served responses after the drill whose digest diverged from the offline
  /// prediction of the registry's active snapshot. Must be 0.
  int digest_mismatches = 0;
  /// Whether the post-fault clean cycle still published — the loop is not
  /// wedged. Checked for every scenario.
  bool recovered_publish = false;
  double elapsed_seconds = 0.0;

  void Fail(const std::string& why) {
    passed = false;
    if (!failure.empty()) failure += "; ";
    failure += why;
  }
};

/// Runs one (site, kind, seed) LearnGuard chaos scenario and asserts the
/// continuous-learning contract (DESIGN.md §12):
///
///   - every injected fault ends in a clean rejection (non-OK status),
///     quarantine, or auto-rollback — never a crash, a served regression,
///     or a silently published bad candidate;
///   - the served snapshot is never touched by a failed cycle; after the
///     fault clears, a fresh feedback wave still retrains and publishes
///     (the loop is not wedged — `recovered_publish`);
///   - after everything, served responses bitwise match the offline
///     predictions of the registry's active snapshot reloaded from its
///     registered path (`digest_mismatches` == 0);
///   - unhonored (site, kind) pairs never fire.
///
/// Each scenario builds a fresh event log, registry, service and retrainer
/// from the fixture, so scenarios are independent and order-insensitive.
LearnChaosOutcome RunLearnChaosScenario(const LearnChaosFixture& fixture,
                                        std::string_view site, FaultKind kind,
                                        uint64_t seed);

}  // namespace activedp

#endif  // ACTIVEDP_ONLINE_LEARN_SCENARIO_H_
