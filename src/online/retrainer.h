#ifndef ACTIVEDP_ONLINE_RETRAINER_H_
#define ACTIVEDP_ONLINE_RETRAINER_H_

#include <cstdint>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/example.h"
#include "ml/linear_model.h"
#include "online/event_log.h"
#include "serve/prediction_service.h"
#include "serve/rollout.h"
#include "serve/snapshot_registry.h"
#include "util/deadline.h"
#include "util/result.h"
#include "util/retry.h"

namespace activedp {

/// The guarded background retrainer of the LearnGuard loop (DESIGN.md §12).
/// Each cycle: rotate + replay new feedback segments, warm-start a refit of
/// the AL model from the served snapshot's weights, validate the candidate
/// on a held-out slice, and publish only through RunStagedRollout — so a bad
/// retrain canaries, fails its gate, and auto-rolls-back without the served
/// snapshot ever regressing. Failures at any stage quarantine the implicated
/// segments instead of wedging the loop.

/// How one retrain cycle ended.
enum class RetrainOutcome {
  /// Not enough new feedback to justify a refit; nothing consumed.
  kNoData = 0,
  /// Candidate passed validation and the staged rollout; it is now active.
  kPublished,
  /// Candidate did not beat the active snapshot on the holdout. The feedback
  /// was fine (it is committed), the model just didn't improve.
  kRejected,
  /// Candidate canaried and the rollout gate rolled it back; the implicated
  /// segments are quarantined.
  kRolledBack,
  /// The refit itself failed (injected fault, divergence, watchdog kill);
  /// the implicated segments are quarantined.
  kFitFailed,
  /// Validation or publish infrastructure failed; the implicated segments
  /// are quarantined.
  kQuarantined,
};

std::string_view RetrainOutcomeToString(RetrainOutcome outcome);

/// One quarantined segment: which file, and why it was sidelined.
struct QuarantineEntry {
  std::string segment;
  std::string reason;
};

struct RetrainReport {
  RetrainOutcome outcome = RetrainOutcome::kNoData;
  std::string detail;
  /// Feedback events replayed from new segments this cycle.
  int events_seen = 0;
  /// Distinct labelled rows the refit trained on (committed + pending).
  int training_rows = 0;
  int segments_consumed = 0;
  int segments_quarantined = 0;
  double candidate_accuracy = 0.0;
  double active_accuracy = 0.0;
  /// Registry id of the candidate (-1 when the cycle died before Register).
  int64_t candidate_id = -1;
};

/// Cumulative counters across every cycle of one Retrainer.
struct RetrainerStats {
  int cycles = 0;
  int no_data = 0;
  int published = 0;
  int rejected = 0;
  int rolled_back = 0;
  int fit_failures = 0;
  int quarantined_cycles = 0;
  int segments_quarantined = 0;
  /// Fits killed by the watchdog cancelling a hung refit.
  int watchdog_kills = 0;
  /// Background-loop cycles that ended in an infrastructure error (e.g. a
  /// poisoned event-log handle) rather than a handled report.
  int loop_errors = 0;
};

struct RetrainerOptions {
  /// A cycle with fewer new labelled rows than this is kNoData (the
  /// segments stay pending and accumulate for the next cycle).
  int min_training_rows = 1;
  /// Wall-clock budget for one refit; the watchdog cancels a fit that
  /// overruns it (the fit thread polls its RunLimits every epoch).
  double fit_budget_seconds = 30.0;
  LogisticRegressionOptions lr;
  /// Sample weight for rows labelled only by LF votes (exact labels get 1).
  double lf_vote_weight = 0.35;
  /// The candidate must beat the active snapshot's holdout accuracy by more
  /// than this to be eligible for publishing. 0 = strictly better; negative
  /// values (chaos harness) make validation a formality so the rollout gate
  /// is what decides.
  double min_accuracy_gain = 0.0;
  /// Retry policy for the refit (transient "retrain.fit" failures get
  /// re-attempted before the segments are condemned).
  RetryPolicy retry;
  /// Staged-rollout gate every publish goes through.
  RolloutOptions rollout;
  /// Directory candidate snapshot files are exported into.
  std::string snapshot_dir;
  /// Background-loop poll interval (Start()).
  double poll_interval_seconds = 0.05;
};

/// Fault sites (DESIGN.md §12):
///   "retrain.fit"      (kError, kNan) — kNan poisons the warm-start weights
///       so LogisticRegression's own finite guard must reject the fit.
///   "retrain.validate" (kError) — holdout scoring fails; the cycle
///       quarantines rather than publishing an unvalidated candidate.
///   "publish.rollout"  (kError) — publish infrastructure fails after
///       Register; the candidate is marked failed and never serves.
///
/// Thread-safety: RunOnce() is serialized internally; Start()/Stop() run it
/// from a dedicated background thread. The served PredictionService is only
/// ever touched through RunStagedRollout's RCU hot swap.
class Retrainer {
 public:
  /// Everything a retrain cycle reads. Pointers are borrowed and must
  /// outlive the Retrainer; vectors are row-aligned with the corpus the
  /// event log's `row` indices refer to.
  struct Config {
    EventLog* log = nullptr;
    SnapshotRegistry* registry = nullptr;
    PredictionService* service = nullptr;
    /// Featurized corpus rows (feedback `row` indexes into this).
    const std::vector<SparseVector>* features = nullptr;
    /// Held-out slice the validation gate scores on.
    const std::vector<Example>* holdout = nullptr;
    const std::vector<int>* holdout_labels = nullptr;
    /// Traffic window RunStagedRollout serves during a publish.
    const std::vector<Example>* rollout_trace = nullptr;
  };

  Retrainer(Config config, RetrainerOptions options);
  ~Retrainer();

  Retrainer(const Retrainer&) = delete;
  Retrainer& operator=(const Retrainer&) = delete;

  /// Runs one full cycle synchronously. Returns the report for every
  /// *handled* failure (fit failure, rollback, quarantine — the loop is
  /// healthy, the cycle just didn't publish); a non-OK status only for
  /// infrastructure the loop cannot absorb (a poisoned event log handle,
  /// missing config).
  Result<RetrainReport> RunOnce();

  /// Starts/stops the background loop (RunOnce every poll interval).
  void Start();
  void Stop();

  RetrainerStats stats() const;
  std::vector<QuarantineEntry> quarantine() const;
  /// Reports from every finished cycle, oldest first.
  std::vector<RetrainReport> reports() const;

  /// Accuracy of `snapshot` on (holdout, labels): rejected or failed rows
  /// count as incorrect. Honors the "retrain.validate" fault site (kError).
  static Result<double> HoldoutAccuracy(const ModelSnapshot& snapshot,
                                        const std::vector<Example>& holdout,
                                        const std::vector<int>& labels);

 private:
  struct PendingLabel {
    int label = -1;
    double weight = 0.0;
    bool exact = false;
  };

  Result<RetrainReport> RunCycleLocked();
  void Quarantine(const std::vector<std::string>& segments,
                  const std::string& reason, RetrainReport* report);
  /// Folds a successful (published/rejected) cycle's labels into the
  /// committed map and marks its segments consumed.
  void CommitLocked(const std::map<int64_t, PendingLabel>& pending,
                    const std::vector<std::string>& segments,
                    RetrainReport* report);
  void BackgroundLoop();

  const Config config_;
  const RetrainerOptions options_;

  mutable std::mutex mutex_;
  std::set<std::string> consumed_;
  std::set<std::string> quarantined_paths_;
  std::vector<QuarantineEntry> quarantine_;
  /// Labels from segments consumed by a published/rejected cycle.
  std::map<int64_t, PendingLabel> committed_labels_;
  RetrainerStats stats_;
  std::vector<RetrainReport> reports_;

  Retrier retrier_;
  RetryLog retry_log_;
  Watchdog watchdog_;

  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool loop_stop_ = false;
  std::thread loop_;
};

}  // namespace activedp

#endif  // ACTIVEDP_ONLINE_RETRAINER_H_
