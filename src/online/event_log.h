#ifndef ACTIVEDP_ONLINE_EVENT_LOG_H_
#define ACTIVEDP_ONLINE_EVENT_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/result.h"

namespace activedp {

/// Durable feedback log for the LearnGuard continuous-learning loop
/// (DESIGN.md §12). Prediction events and user feedback (exact labels, LF
/// votes) are appended to segment files under a directory, one checksummed
/// record per line, fsync'd per append. Sealed segments are the unit the
/// retrainer consumes and the unit the quarantine buffer sidelines.
///
/// Durability contract:
///   - Every record line carries its own FNV-1a checksum; replay rejects any
///     mid-file corruption (bit flips, edited records, sequence gaps) with
///     InvalidArgument.
///   - A torn *tail* — the final record of the final line cut short by a
///     crash mid-append — is not corruption: recovery truncates it and
///     continues from the last durable record (the same semantics a
///     write-ahead log gives).
///   - Replay is deterministic: the same segment bytes always yield the same
///     events in the same order, summarised by ReplayDigest().

/// What a feedback event describes.
enum class FeedbackType {
  /// The service served a prediction for `row` (label = what it answered).
  kPrediction = 0,
  /// A user supplied the exact label for `row` — ground truth, full weight.
  kExactLabel = 1,
  /// A labelling-function-style vote for `row` — noisy, reduced weight.
  kLfVote = 2,
};

std::string_view FeedbackTypeToString(FeedbackType type);

/// One record in the log. `seq` is assigned by Append and is strictly
/// increasing across segment rotations; replay verifies it has no gaps.
struct FeedbackEvent {
  uint64_t seq = 0;
  FeedbackType type = FeedbackType::kPrediction;
  /// Row index into the corpus the serving stack was exported over.
  int64_t row = -1;
  /// Class label (meaning depends on `type`); -1 when not applicable.
  int label = -1;
  /// Identifier of the LF that voted (kLfVote only); -1 otherwise.
  int lf_id = -1;
};

/// Result of replaying one segment file.
struct SegmentReplay {
  std::vector<FeedbackEvent> events;
  /// 1 if a torn tail was truncated during recovery, else 0. Torn tails are
  /// only legal on the *last* segment of a log; Open() enforces that.
  int truncated_records = 0;
  /// Byte length of the valid prefix (everything before a torn tail) —
  /// what Open() physically truncates the file back to during recovery.
  size_t valid_bytes = 0;
};

struct EventLogOptions {
  /// Rotate to a new segment file once the open one holds this many records.
  int max_records_per_segment = 1024;
};

/// Append-side + replay-side handle on one log directory. Thread-safe:
/// Append may be called concurrently with itself and with replay of sealed
/// segments (an open segment is never replayed).
///
/// Fault sites (honored kinds in parentheses):
///   "eventlog.append"  (kError, kTruncateWrite) — kTruncateWrite writes a
///       torn half-record and reports success, as a crash mid-append would;
///       the instance then refuses further appends (Unavailable) because the
///       process that tore the record is, semantically, dead. Recovery is
///       Open()ing a fresh instance, which truncates the torn tail.
///   "eventlog.replay"  (kError, kCorrupt) — the bit flip lands before
///       per-record checksum verification, so the real detection path must
///       reject it.
class EventLog {
 public:
  /// Opens (creating if needed) the log at `dir`. Existing segments are
  /// sealed and replayed to recover the next sequence number; a torn tail on
  /// the last segment is truncated away, corruption anywhere else is
  /// InvalidArgument. New appends go to a fresh segment.
  static Result<std::unique_ptr<EventLog>> Open(
      const std::string& dir, const EventLogOptions& options = {});

  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Durably appends one event; assigns and returns its sequence number.
  /// The record is flushed and fsync'd before returning.
  Result<uint64_t> Append(const FeedbackEvent& event);

  /// Seals the open segment (if it has any records) so it becomes visible to
  /// SealedSegments()/ReplayAll(); the next Append starts a new one.
  Status Rotate();

  /// Paths of all sealed segments, oldest first. Never includes the segment
  /// currently accepting appends.
  std::vector<std::string> SealedSegments() const;

  /// Replays one sealed segment file. `allow_torn_tail` permits a final
  /// truncated record (crash recovery); otherwise any short record is
  /// InvalidArgument.
  static Result<SegmentReplay> ReplaySegment(const std::string& path,
                                             bool allow_torn_tail = false);

  /// Replays every sealed segment in order, verifying the sequence numbers
  /// are contiguous across segment boundaries.
  Result<std::vector<FeedbackEvent>> ReplayAll() const;

  /// FNV-1a digest over a replayed event stream — the determinism gate for
  /// segment-rotation replay.
  static uint64_t ReplayDigest(const std::vector<FeedbackEvent>& events);

  /// Next sequence number Append would assign.
  uint64_t next_seq() const;

  const std::string& dir() const { return dir_; }

 private:
  EventLog(std::string dir, EventLogOptions options, uint64_t next_seq,
           int next_segment_index);

  /// Opens a new segment file for appending (caller holds mutex_).
  Status OpenSegmentLocked();
  /// Seals the open segment (caller holds mutex_).
  Status SealSegmentLocked();

  const std::string dir_;
  const EventLogOptions options_;

  mutable std::mutex mutex_;
  uint64_t next_seq_;
  int next_segment_index_;
  std::FILE* segment_file_ = nullptr;
  std::string segment_path_;
  int segment_records_ = 0;
  std::vector<std::string> sealed_segments_;
  /// Set after a torn append (kTruncateWrite fire): the in-process handle is
  /// past its own crash point, so further appends are refused.
  bool poisoned_ = false;
};

}  // namespace activedp

#endif  // ACTIVEDP_ONLINE_EVENT_LOG_H_
