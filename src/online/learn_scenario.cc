#include "online/learn_scenario.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "core/activedp.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "online/event_log.h"
#include "online/retrainer.h"
#include "serve/prediction_service.h"
#include "serve/rollout.h"
#include "serve/snapshot_export.h"
#include "serve/snapshot_io.h"
#include "serve/snapshot_registry.h"
#include "util/timer.h"

namespace activedp {
namespace {

/// Fixed rollout routing seed so promote/rollback expectations are identical
/// across scenario seeds and harnesses (mirrors serve/chaos_scenario.cc).
constexpr uint64_t kRolloutSeed = 0x1ea4;

constexpr int kSegmentRecords = 64;

}  // namespace

const std::vector<LearnChaosSiteInfo>& LearnChaosSites() {
  static const std::vector<LearnChaosSiteInfo>* sites =
      new std::vector<LearnChaosSiteInfo>{
          {"eventlog.append", FaultKindBit(FaultKind::kError) |
                                  FaultKindBit(FaultKind::kTruncateWrite)},
          {"eventlog.replay", FaultKindBit(FaultKind::kError) |
                                  FaultKindBit(FaultKind::kCorrupt)},
          {"retrain.fit",
           FaultKindBit(FaultKind::kError) | FaultKindBit(FaultKind::kNan)},
          {"retrain.validate", FaultKindBit(FaultKind::kError)},
          {"publish.rollout", FaultKindBit(FaultKind::kError)},
      };
  return *sites;
}

const std::vector<FaultKind>& LearnChaosKinds() {
  static const std::vector<FaultKind>* kinds = new std::vector<FaultKind>{
      FaultKind::kError, FaultKind::kNan, FaultKind::kCorrupt,
      FaultKind::kTruncateWrite};
  return *kinds;
}

Result<LearnChaosFixture> BuildLearnChaosFixture(const std::string& dir,
                                                 const std::string& dataset,
                                                 double scale, uint64_t seed,
                                                 int base_steps,
                                                 int trace_size) {
  std::filesystem::create_directories(dir);
  LearnChaosFixture fixture;
  fixture.dir = dir;
  fixture.snapshot_path =
      dir + "/learn-base-" + std::to_string(seed) + ".snapshot";

  ASSIGN_OR_RETURN(DataSplit split, MakeZooDataset(dataset, scale, seed));
  const FrameworkContext context = FrameworkContext::Build(split);
  ActiveDpOptions options;
  options.seed = seed ^ 41;
  ActiveDp pipeline(context, options);
  // A deliberately short protocol run: the base snapshot must be weak enough
  // that feedback-driven retrains have headroom to improve it.
  for (int t = 0; t < base_steps; ++t) RETURN_IF_ERROR(pipeline.Step());
  ASSIGN_OR_RETURN(ModelSnapshot base, ExportSnapshot(pipeline, context));
  fixture.snapshot = std::make_shared<const ModelSnapshot>(std::move(base));
  RETURN_IF_ERROR(SaveSnapshot(*fixture.snapshot, fixture.snapshot_path));

  fixture.features = context.train_features;
  fixture.corpus_labels.reserve(split.train.size());
  for (int i = 0; i < split.train.size(); ++i) {
    fixture.corpus_labels.push_back(split.train.example(i).label);
  }
  const int holdout_rows = std::min(200, split.valid.size());
  for (int i = 0; i < holdout_rows; ++i) {
    fixture.holdout.push_back(split.valid.example(i));
    fixture.holdout_labels.push_back(context.valid_labels[i]);
  }
  const int trace_rows = std::min(trace_size, split.train.size());
  fixture.trace.reserve(trace_rows);
  for (int i = 0; i < trace_rows; ++i) {
    fixture.trace.push_back(split.train.example(i));
  }
  if (fixture.holdout.empty() || fixture.trace.size() < 8) {
    return Status::InvalidArgument(
        "learn chaos fixture too small (holdout or trace)");
  }
  return fixture;
}

LearnChaosOutcome RunLearnChaosScenario(const LearnChaosFixture& fixture,
                                        std::string_view site, FaultKind kind,
                                        uint64_t seed) {
  LearnChaosOutcome outcome;
  Timer timer;

  const LearnChaosSiteInfo* info = nullptr;
  for (const LearnChaosSiteInfo& candidate : LearnChaosSites()) {
    if (site == candidate.site) info = &candidate;
  }
  if (info == nullptr || fixture.trace.size() < 8) {
    outcome.Fail("bad scenario setup (unknown site or tiny trace)");
    return outcome;
  }
  const bool honored = (FaultKindBit(kind) & info->honored) != 0;
  const bool torn_append =
      site == "eventlog.append" && kind == FaultKind::kTruncateWrite && honored;

  const std::string tag = std::string(site) + "-" +
                          std::string(FaultKindToString(kind)) + "-" +
                          std::to_string(seed);
  const std::string scenario_dir = fixture.dir + "/" + tag;
  std::error_code ec;
  std::filesystem::remove_all(scenario_dir, ec);
  const std::string log_dir = scenario_dir + "/log";
  const std::string manifest = scenario_dir + "/registry.manifest";

  // --- Un-faulted setup: durable log, registry with the weak base active,
  // service serving the base with the log attached.
  EventLogOptions log_options;
  log_options.max_records_per_segment = kSegmentRecords;
  Result<std::unique_ptr<EventLog>> opened_log =
      EventLog::Open(log_dir, log_options);
  if (!opened_log.ok()) {
    outcome.Fail("event log open failed: " + opened_log.status().ToString());
    return outcome;
  }
  std::unique_ptr<EventLog> log = std::move(*opened_log);

  Result<SnapshotRegistry> opened = SnapshotRegistry::Open(manifest);
  if (!opened.ok()) {
    outcome.Fail("registry open failed: " + opened.status().ToString());
    return outcome;
  }
  SnapshotRegistry registry = std::move(*opened);
  const Result<int64_t> base_id =
      registry.Register(fixture.snapshot_path, -1, "learn-base");
  if (!base_id.ok() || !registry.Activate(*base_id).ok()) {
    outcome.Fail("registry setup failed");
    return outcome;
  }

  PredictionServiceOptions service_options;
  service_options.max_batch_size = 8;
  service_options.max_batch_delay_ms = 0.2;
  PredictionService service(service_options);
  service.LoadSnapshot(fixture.snapshot);
  service.AttachEventLog(log.get());

  RetrainerOptions retrain_options;
  retrain_options.min_training_rows = 8;
  retrain_options.fit_budget_seconds = 60.0;
  retrain_options.lr.epochs = 25;
  retrain_options.lr.seed = seed ^ 99;
  // Chaos mode: validation is a formality (any candidate passes the gate) so
  // the drills exercise the fault paths deterministically; the strict
  // improvement contract is continuous_bench's job.
  retrain_options.min_accuracy_gain = -1.0;
  retrain_options.retry.max_attempts = 2;
  retrain_options.retry.seed = seed;
  retrain_options.rollout.canary_fraction = 0.3;
  retrain_options.rollout.window =
      std::min<int>(64, static_cast<int>(fixture.trace.size()));
  retrain_options.rollout.min_canary_samples = 4;
  retrain_options.rollout.seed = kRolloutSeed;
  retrain_options.snapshot_dir = scenario_dir + "/candidates";

  Retrainer::Config config;
  config.log = log.get();
  config.registry = &registry;
  config.service = &service;
  config.features = &fixture.features;
  config.holdout = &fixture.holdout;
  config.holdout_labels = &fixture.holdout_labels;
  config.rollout_trace = &fixture.trace;
  Retrainer retrainer(config, retrain_options);

  const int wave = std::min<int>(200, static_cast<int>(fixture.features.size()));
  auto feed_wave = [&](int* ok_count, int* rejected_count) {
    *ok_count = 0;
    *rejected_count = 0;
    for (int i = 0; i < wave; ++i) {
      FeedbackEvent event;
      event.type = FeedbackType::kExactLabel;
      event.row = i;
      event.label = fixture.corpus_labels[i];
      if (service.RecordFeedback(event).ok()) {
        ++*ok_count;
      } else {
        ++*rejected_count;
      }
    }
  };

  // --- Drill: one feedback wave + one retrain cycle with the site armed.
  FaultSpec spec;
  spec.kind = kind;
  spec.seed = seed;
  spec.max_fires = -1;
  // Let a few records land durably before the torn one, so recovery has a
  // valid prefix to keep.
  if (torn_append) spec.trigger_after = 3;
  {
    FaultScope scope(std::string(site), spec);

    int appended = 0, rejected = 0;
    feed_wave(&appended, &rejected);
    if (site == "eventlog.append" && honored) {
      // Clean rejection at append: the caller was told, durability was not
      // silently lost (the torn-write flavour reports success exactly once —
      // the simulated crash — then refuses everything).
      if (rejected == 0) {
        outcome.Fail("faulted appends all reported success");
      } else {
        ++outcome.evidence;
      }
    } else if (rejected > 0) {
      outcome.Fail("feedback rejected with no append fault armed");
    }

    const Result<RetrainReport> cycle = retrainer.RunOnce();
    if (torn_append) {
      // The handle is past its simulated crash: the cycle must refuse
      // cleanly, not limp along on a torn log.
      if (cycle.ok()) {
        outcome.Fail("cycle on a poisoned log reported success");
      } else if (cycle.status().code() == StatusCode::kUnavailable) {
        ++outcome.evidence;
      } else {
        outcome.Fail("poisoned log surfaced unexpectedly: " +
                     cycle.status().ToString());
      }
    } else if (!cycle.ok()) {
      outcome.Fail("cycle infrastructure error: " + cycle.status().ToString());
    } else if (honored) {
      // The served snapshot must be untouched by any faulted cycle.
      if (service.snapshot() != fixture.snapshot) {
        outcome.Fail("faulted cycle touched the served snapshot");
      }
      if (site == "eventlog.append") {
        // Every append failed, so the cycle legitimately sees no data.
        if (cycle->outcome != RetrainOutcome::kNoData) {
          outcome.Fail("append-faulted cycle was not no-data: " +
                       std::string(RetrainOutcomeToString(cycle->outcome)));
        }
      } else if (site == "eventlog.replay") {
        if (cycle->outcome != RetrainOutcome::kQuarantined ||
            cycle->segments_quarantined == 0) {
          outcome.Fail("unreplayable segments were not quarantined: " +
                       std::string(RetrainOutcomeToString(cycle->outcome)));
        } else {
          ++outcome.evidence;
        }
      } else if (site == "retrain.fit") {
        if (cycle->outcome != RetrainOutcome::kFitFailed ||
            cycle->segments_quarantined == 0) {
          outcome.Fail("failed fit was not absorbed+quarantined: " +
                       std::string(RetrainOutcomeToString(cycle->outcome)));
        } else {
          ++outcome.evidence;
        }
      } else if (site == "retrain.validate") {
        if (cycle->outcome != RetrainOutcome::kQuarantined ||
            cycle->segments_quarantined == 0) {
          outcome.Fail("unvalidated candidate was not quarantined: " +
                       std::string(RetrainOutcomeToString(cycle->outcome)));
        } else {
          ++outcome.evidence;
        }
      } else if (site == "publish.rollout") {
        if (cycle->outcome != RetrainOutcome::kQuarantined) {
          outcome.Fail("failed publish was not quarantined: " +
                       std::string(RetrainOutcomeToString(cycle->outcome)));
        } else {
          ++outcome.evidence;
        }
        // The candidate was registered before the fault; it must be
        // condemned, with the base still active.
        const Result<SnapshotRecord> condemned =
            registry.Get(cycle->candidate_id);
        if (!condemned.ok() ||
            condemned->status != SnapshotStatus::kFailed ||
            registry.active_id() != *base_id) {
          outcome.Fail("failed publish left registry inconsistent");
        } else {
          ++outcome.evidence;
        }
      }
    } else {
      // Unhonored kinds must not perturb a clean cycle: the wave retrains
      // and publishes (validation is a formality here, the rollout is clean).
      if (cycle->outcome != RetrainOutcome::kPublished) {
        outcome.Fail("unhonored kind disturbed the cycle: " +
                     std::string(RetrainOutcomeToString(cycle->outcome)) +
                     " (" + cycle->detail + ")");
      }
    }
    outcome.fires = scope.fire_count();
  }

  // --- Recovery: the fault is gone. A torn-append log is reopened (torn
  // tail truncated); then a fresh wave + a fresh cycle must still publish —
  // one poisoned drill can never wedge the loop.
  if (torn_append) {
    log.reset();
    Result<std::unique_ptr<EventLog>> reopened =
        EventLog::Open(log_dir, log_options);
    if (!reopened.ok()) {
      outcome.Fail("log reopen after torn append failed: " +
                   reopened.status().ToString());
      outcome.elapsed_seconds = timer.ElapsedSeconds();
      return outcome;
    }
    log = std::move(*reopened);
    service.AttachEventLog(log.get());
    config.log = log.get();
    ++outcome.evidence;
  }

  // A fresh retrainer (bound to the possibly-reopened log) mirrors a loop
  // restart; its empty quarantine also proves the on-disk segments that
  // survive are genuinely consumable.
  Retrainer recovery(config, retrain_options);
  {
    int appended = 0, rejected = 0;
    feed_wave(&appended, &rejected);
    if (rejected > 0) {
      outcome.Fail("clean feedback rejected after the fault cleared");
    }
    const Result<RetrainReport> cycle = recovery.RunOnce();
    if (!cycle.ok()) {
      outcome.Fail("post-fault cycle failed: " + cycle.status().ToString());
    } else if (cycle->outcome != RetrainOutcome::kPublished) {
      outcome.Fail("post-fault cycle did not publish: " +
                   std::string(RetrainOutcomeToString(cycle->outcome)) + " (" +
                   cycle->detail + ")");
    } else {
      outcome.recovered_publish = true;
    }
  }

  // --- Surviving path: the service must serve every trace row, bitwise
  // identical to the offline predictions of the registry's active snapshot
  // reloaded from its registered path.
  const std::optional<int64_t> active = registry.active_id();
  const Result<SnapshotRecord> active_record =
      active.has_value()
          ? registry.Get(*active)
          : Result<SnapshotRecord>(Status::NotFound("no active snapshot"));
  if (!active_record.ok()) {
    outcome.Fail("no active snapshot after recovery");
  } else {
    Result<ModelSnapshot> offline = LoadSnapshot(active_record->path);
    if (!offline.ok()) {
      outcome.Fail("active snapshot unloadable: " +
                   offline.status().ToString());
    } else {
      for (size_t i = 0; i < fixture.trace.size(); ++i) {
        const Result<ServedPrediction> served =
            service.Predict(fixture.trace[i]);
        const Result<ServedPrediction> expected =
            offline->Predict(fixture.trace[i]);
        if (!served.ok() || !expected.ok()) {
          outcome.Fail("surviving-path request " + std::to_string(i) +
                       " failed");
          break;
        }
        if (PredictionDigest(*served) != PredictionDigest(*expected)) {
          ++outcome.digest_mismatches;
        }
      }
      if (outcome.digest_mismatches > 0) {
        outcome.Fail("served-digest divergence on the surviving path (" +
                     std::to_string(outcome.digest_mismatches) + " rows)");
      }
    }
  }

  if (!honored && outcome.fires > 0) {
    outcome.Fail("unhonored kind fired " + std::to_string(outcome.fires) +
                 " times");
  }
  if (honored && outcome.fires == 0) {
    outcome.Fail("site was never exercised (0 fires)");
  }
  if (outcome.fires > 0 && outcome.evidence == 0) {
    outcome.Fail("injected faults left no rejection/quarantine evidence");
  }

  outcome.elapsed_seconds = timer.ElapsedSeconds();
  std::filesystem::remove_all(scenario_dir, ec);
  return outcome;
}

}  // namespace activedp
