#include "online/retrainer.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/flight_recorder.h"
#include "serve/snapshot_io.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace activedp {

std::string_view RetrainOutcomeToString(RetrainOutcome outcome) {
  switch (outcome) {
    case RetrainOutcome::kNoData:
      return "no_data";
    case RetrainOutcome::kPublished:
      return "published";
    case RetrainOutcome::kRejected:
      return "rejected";
    case RetrainOutcome::kRolledBack:
      return "rolled_back";
    case RetrainOutcome::kFitFailed:
      return "fit_failed";
    case RetrainOutcome::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

Retrainer::Retrainer(Config config, RetrainerOptions options)
    : config_(config),
      options_(std::move(options)),
      retrier_(options_.retry, &retry_log_) {}

Retrainer::~Retrainer() { Stop(); }

Result<double> Retrainer::HoldoutAccuracy(const ModelSnapshot& snapshot,
                                          const std::vector<Example>& holdout,
                                          const std::vector<int>& labels) {
  if (holdout.empty() || holdout.size() != labels.size()) {
    return Status::InvalidArgument(
        "holdout slice empty or misaligned with its labels");
  }
  FaultKind fault = CheckFault("retrain.validate", {FaultKind::kError});
  if (fault == FaultKind::kError) {
    return Status::Internal("retrain.validate: injected fault");
  }
  int correct = 0;
  for (size_t i = 0; i < holdout.size(); ++i) {
    Result<ServedPrediction> prediction = snapshot.Predict(holdout[i]);
    // A rejected or failed row is served wrong; it counts against accuracy.
    if (prediction.ok() && prediction->label == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(holdout.size());
}

void Retrainer::Quarantine(const std::vector<std::string>& segments,
                           const std::string& reason, RetrainReport* report) {
  bool any_new = false;
  for (const std::string& segment : segments) {
    if (!quarantined_paths_.insert(segment).second) continue;
    quarantine_.push_back({segment, reason});
    ++stats_.segments_quarantined;
    ++report->segments_quarantined;
    TraceInstant("fault", "retrain.quarantine", segment + ": " + reason);
    MetricsRegistry::Global().counter("retrain.quarantined_segments").Increment();
    any_new = true;
  }
  // One incident per quarantine event, after every segment's instant is in
  // the ring (so the dumped timeline shows them all). Quarantine is the
  // single funnel — failed publishes land here too.
  if (any_new) {
    (void)FlightRecorder::Global().TriggerIncident("retrain.quarantine");
  }
}

Result<RetrainReport> Retrainer::RunOnce() {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceSpan span("retrain.cycle");
  ++stats_.cycles;
  MetricsRegistry::Global().counter("retrain.cycles").Increment();
  ASSIGN_OR_RETURN(RetrainReport report, RunCycleLocked());
  switch (report.outcome) {
    case RetrainOutcome::kNoData:
      ++stats_.no_data;
      break;
    case RetrainOutcome::kPublished:
      ++stats_.published;
      MetricsRegistry::Global().counter("retrain.published").Increment();
      break;
    case RetrainOutcome::kRejected:
      ++stats_.rejected;
      break;
    case RetrainOutcome::kRolledBack:
      ++stats_.rolled_back;
      MetricsRegistry::Global().counter("retrain.rolled_back").Increment();
      break;
    case RetrainOutcome::kFitFailed:
      ++stats_.fit_failures;
      break;
    case RetrainOutcome::kQuarantined:
      ++stats_.quarantined_cycles;
      break;
  }
  span.AddArg("outcome", static_cast<int64_t>(report.outcome));
  span.AddArg("events_seen", report.events_seen);
  span.AddArg("training_rows", report.training_rows);
  span.AddArg("segments_quarantined", report.segments_quarantined);
  reports_.push_back(report);
  return report;
}

Result<RetrainReport> Retrainer::RunCycleLocked() {
  RetrainReport report;
  if (config_.log == nullptr || config_.registry == nullptr ||
      config_.service == nullptr || config_.features == nullptr ||
      config_.holdout == nullptr || config_.holdout_labels == nullptr ||
      config_.rollout_trace == nullptr) {
    return Status::FailedPrecondition("Retrainer config incomplete");
  }

  // Seal the open segment so this cycle sees everything appended so far. A
  // poisoned (torn-append) handle surfaces here as Unavailable — the loop
  // cannot recover a handle it does not own, so that is an infra error for
  // whoever owns the log to Open() afresh.
  RETURN_IF_ERROR(config_.log->Rotate());

  std::vector<std::string> fresh;
  for (const std::string& path : config_.log->SealedSegments()) {
    if (consumed_.count(path) == 0 && quarantined_paths_.count(path) == 0) {
      fresh.push_back(path);
    }
  }

  // Replay the new segments; a segment that fails replay (corruption, torn
  // mid-file, injected fault) is quarantined alone — the others still train.
  std::map<int64_t, PendingLabel> pending;
  std::vector<std::string> replayed;
  for (const std::string& path : fresh) {
    Result<SegmentReplay> replay =
        EventLog::ReplaySegment(path, /*allow_torn_tail=*/false);
    if (!replay.ok()) {
      Quarantine({path}, "replay failed: " + replay.status().ToString(),
                 &report);
      continue;
    }
    replayed.push_back(path);
    for (const FeedbackEvent& event : replay->events) {
      ++report.events_seen;
      if (event.row < 0 ||
          event.row >= static_cast<int64_t>(config_.features->size())) {
        continue;
      }
      if (event.type == FeedbackType::kExactLabel) {
        pending[event.row] = {event.label, 1.0, /*exact=*/true};
      } else if (event.type == FeedbackType::kLfVote) {
        auto it = pending.find(event.row);
        if (it == pending.end() || !it->second.exact) {
          pending[event.row] = {event.label, options_.lf_vote_weight,
                                /*exact=*/false};
        }
      }
    }
  }

  if (static_cast<int>(pending.size()) < options_.min_training_rows) {
    if (report.segments_quarantined > 0) {
      report.outcome = RetrainOutcome::kQuarantined;
      report.detail = "every new segment was quarantined during replay";
    } else {
      report.outcome = RetrainOutcome::kNoData;
      report.detail = "only " + std::to_string(pending.size()) +
                      " new labelled rows (need " +
                      std::to_string(options_.min_training_rows) + ")";
      // The replayed segments stay unconsumed and accumulate.
    }
    return report;
  }

  std::shared_ptr<const ModelSnapshot> active = config_.service->snapshot();
  if (active == nullptr) {
    return Status::FailedPrecondition(
        "no served snapshot to warm-start the retrain from");
  }
  const SnapshotState& active_state = active->state();
  const int num_classes = active_state.num_classes;
  const int dim = active_state.feature_dim;

  // Committed labels from previously consumed segments keep training the
  // model; this cycle's pending labels override them (an exact label is
  // never overridden by a mere LF vote).
  std::map<int64_t, PendingLabel> training = committed_labels_;
  for (const auto& [row, label] : pending) {
    auto it = training.find(row);
    if (it == training.end() || !it->second.exact || label.exact) {
      training[row] = label;
    }
  }

  std::vector<SparseVector> x;
  std::vector<std::vector<double>> y;
  std::vector<double> weights;
  x.reserve(training.size());
  for (const auto& [row, label] : training) {
    if (label.label < 0 || label.label >= num_classes) continue;
    x.push_back((*config_.features)[row]);
    std::vector<double> target(num_classes, 0.0);
    target[label.label] = 1.0;
    y.push_back(std::move(target));
    weights.push_back(label.weight);
  }
  report.training_rows = static_cast<int>(x.size());
  if (report.training_rows == 0) {
    report.outcome = RetrainOutcome::kNoData;
    report.detail = "no in-range labelled rows";
    return report;
  }

  // --- Guarded refit: warm-started from the served weights, wall-clock
  // bounded by the watchdog, transient failures retried, divergence caught
  // by the LR finite guard. The served snapshot is untouched throughout.
  LogisticRegressionOptions lr = options_.lr;
  const bool can_warm_start = active_state.al_weights.has_value() &&
                              active_state.al_weights->rows() == num_classes &&
                              active_state.al_weights->cols() == dim + 1;
  if (can_warm_start) lr.init_weights = *active_state.al_weights;
  const Deadline fit_deadline = Deadline::After(options_.fit_budget_seconds);
  auto fit_cancel = std::make_shared<CancellationSource>();
  watchdog_.Watch(fit_deadline, fit_cancel);
  lr.limits.deadline = fit_deadline;
  lr.limits.cancel = fit_cancel->token();
  const int watchdog_before = watchdog_.cancellations();

  Result<LogisticRegression> fit =
      retrier_.RunResulting<LogisticRegression>(
          "retrain.fit", lr.limits, [&]() -> Result<LogisticRegression> {
            FaultKind fault =
                CheckFault("retrain.fit", {FaultKind::kError, FaultKind::kNan});
            if (fault == FaultKind::kError) {
              return Status::Internal("retrain.fit: injected fault");
            }
            LogisticRegressionOptions attempt = lr;
            if (fault == FaultKind::kNan) {
              if (attempt.init_weights.rows() > 0) {
                // Poison the warm start: the fit's own finite guard must be
                // what rejects the diverged weights.
                attempt.init_weights(0, 0) =
                    std::numeric_limits<double>::quiet_NaN();
              } else {
                return Status::Internal("retrain.fit: injected NaN");
              }
            }
            return LogisticRegression::Fit(x, y, num_classes, dim, attempt,
                                           weights);
          });
  stats_.watchdog_kills += watchdog_.cancellations() - watchdog_before;
  if (!fit.ok()) {
    Quarantine(replayed, "fit failed: " + fit.status().ToString(), &report);
    report.outcome = RetrainOutcome::kFitFailed;
    report.detail = fit.status().ToString();
    TraceInstant("fault", "retrain.fit", report.detail);
    return report;
  }

  SnapshotState candidate_state = active_state;
  candidate_state.al_weights = fit->weights();
  Result<ModelSnapshot> candidate =
      ModelSnapshot::Create(std::move(candidate_state));
  if (!candidate.ok()) {
    Quarantine(replayed,
               "candidate snapshot invalid: " + candidate.status().ToString(),
               &report);
    report.outcome = RetrainOutcome::kFitFailed;
    report.detail = candidate.status().ToString();
    return report;
  }

  // --- Validation gate: the candidate must beat the served snapshot on the
  // held-out slice before it is even allowed to canary.
  Result<double> candidate_accuracy = HoldoutAccuracy(
      *candidate, *config_.holdout, *config_.holdout_labels);
  if (!candidate_accuracy.ok()) {
    Quarantine(replayed,
               "validation failed: " + candidate_accuracy.status().ToString(),
               &report);
    report.outcome = RetrainOutcome::kQuarantined;
    report.detail = candidate_accuracy.status().ToString();
    TraceInstant("fault", "retrain.validate", report.detail);
    return report;
  }
  Result<double> active_accuracy =
      HoldoutAccuracy(*active, *config_.holdout, *config_.holdout_labels);
  if (!active_accuracy.ok()) {
    Quarantine(replayed,
               "validation failed: " + active_accuracy.status().ToString(),
               &report);
    report.outcome = RetrainOutcome::kQuarantined;
    report.detail = active_accuracy.status().ToString();
    TraceInstant("fault", "retrain.validate", report.detail);
    return report;
  }
  report.candidate_accuracy = *candidate_accuracy;
  report.active_accuracy = *active_accuracy;
  if (*candidate_accuracy <= *active_accuracy + options_.min_accuracy_gain) {
    // The feedback itself was sound — keep it — but the refit is not worth
    // publishing. The loop stays healthy and waits for more data.
    CommitLocked(pending, replayed, &report);
    report.outcome = RetrainOutcome::kRejected;
    std::ostringstream detail;
    detail << "candidate holdout accuracy " << *candidate_accuracy
           << " does not beat active " << *active_accuracy << " by more than "
           << options_.min_accuracy_gain;
    report.detail = detail.str();
    return report;
  }

  // --- Publish gate: export, register with lineage, and canary through the
  // staged rollout. Only RunStagedRollout's promote path ever touches the
  // served snapshot (the RCU hot swap), so every failure before or inside it
  // leaves serving on the current active.
  std::error_code ec;
  std::filesystem::create_directories(options_.snapshot_dir, ec);
  // Process-wide counter: candidate filenames must stay unique across
  // Retrainer instances sharing a snapshot_dir (a restarted loop must never
  // overwrite the bytes behind an already-registered snapshot — the registry
  // pinned their checksum).
  static std::atomic<int> candidate_counter{0};
  char name[48];
  std::snprintf(name, sizeof(name), "retrain-%06d.snap",
                candidate_counter.fetch_add(1));
  const std::string path =
      (std::filesystem::path(options_.snapshot_dir) / name).string();
  Status saved = SaveSnapshot(*candidate, path);
  if (!saved.ok()) {
    Quarantine(replayed, "candidate save failed: " + saved.ToString(), &report);
    report.outcome = RetrainOutcome::kQuarantined;
    report.detail = saved.ToString();
    return report;
  }
  const int64_t parent = config_.registry->active_id().value_or(-1);
  std::ostringstream context;
  context << "retrain rows=" << report.training_rows
          << " events=" << report.events_seen << " holdout="
          << *candidate_accuracy;
  Result<int64_t> id = config_.registry->Register(path, parent, context.str());
  if (!id.ok()) {
    Quarantine(replayed, "register failed: " + id.status().ToString(), &report);
    report.outcome = RetrainOutcome::kQuarantined;
    report.detail = id.status().ToString();
    return report;
  }
  report.candidate_id = *id;

  if (CheckFault("publish.rollout", {FaultKind::kError}) == FaultKind::kError) {
    // Publish infrastructure died after Register: condemn the candidate so
    // it can never be activated, and sideline the batch that produced it.
    (void)config_.registry->MarkFailed(*id);
    Quarantine(replayed, "publish.rollout: injected fault", &report);
    report.outcome = RetrainOutcome::kQuarantined;
    report.detail = "publish.rollout: injected fault";
    TraceInstant("fault", "publish.rollout", report.detail);
    return report;
  }

  Result<RolloutReport> rollout =
      RunStagedRollout(*config_.service, *config_.registry, *id,
                       *config_.rollout_trace, options_.rollout);
  if (!rollout.ok()) {
    (void)config_.registry->MarkFailed(*id);
    Quarantine(replayed, "rollout failed: " + rollout.status().ToString(),
               &report);
    report.outcome = RetrainOutcome::kQuarantined;
    report.detail = rollout.status().ToString();
    return report;
  }
  if (rollout->decision == RolloutDecision::kPromote) {
    CommitLocked(pending, replayed, &report);
    report.outcome = RetrainOutcome::kPublished;
    report.detail = rollout->reason;
  } else {
    // The canary regressed live traffic and was auto-rolled-back; the
    // feedback that trained it is suspect, so it is quarantined rather than
    // retried forever.
    Quarantine(replayed, "rollout rolled back: " + rollout->reason, &report);
    report.outcome = RetrainOutcome::kRolledBack;
    report.detail = rollout->reason;
  }
  return report;
}

void Retrainer::CommitLocked(const std::map<int64_t, PendingLabel>& pending,
                             const std::vector<std::string>& segments,
                             RetrainReport* report) {
  for (const auto& [row, label] : pending) {
    auto it = committed_labels_.find(row);
    if (it == committed_labels_.end() || !it->second.exact || label.exact) {
      committed_labels_[row] = label;
    }
  }
  for (const std::string& segment : segments) {
    if (consumed_.insert(segment).second) ++report->segments_consumed;
  }
}

void Retrainer::Start() {
  std::lock_guard<std::mutex> lock(loop_mutex_);
  if (loop_.joinable()) return;
  loop_stop_ = false;
  loop_ = std::thread(&Retrainer::BackgroundLoop, this);
}

void Retrainer::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    loop_stop_ = true;
  }
  loop_cv_.notify_all();
  if (loop_.joinable()) loop_.join();
}

void Retrainer::BackgroundLoop() {
  std::unique_lock<std::mutex> lock(loop_mutex_);
  while (!loop_stop_) {
    lock.unlock();
    Result<RetrainReport> report = RunOnce();
    if (!report.ok()) {
      std::lock_guard<std::mutex> state_lock(mutex_);
      ++stats_.loop_errors;
    }
    lock.lock();
    loop_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.poll_interval_seconds),
        [this] { return loop_stop_; });
  }
}

RetrainerStats Retrainer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<QuarantineEntry> Retrainer::quarantine() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantine_;
}

std::vector<RetrainReport> Retrainer::reports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reports_;
}

}  // namespace activedp
