#include "online/event_log.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/fault.h"

namespace activedp {
namespace {

constexpr char kSegmentPrefix[] = "segment-";
constexpr char kSegmentSuffix[] = ".log";
constexpr char kRecordChecksumSep[] = " #crc64 ";

std::string SegmentName(int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08d%s", kSegmentPrefix, index,
                kSegmentSuffix);
  return buf;
}

/// Parses "<dir>/segment-NNNNNNNN.log" -> NNNNNNNN, or -1 if not a segment.
int SegmentIndex(const std::string& filename) {
  const size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  const size_t suffix_len = sizeof(kSegmentSuffix) - 1;
  if (filename.size() <= prefix_len + suffix_len) return -1;
  if (filename.compare(0, prefix_len, kSegmentPrefix) != 0) return -1;
  if (filename.compare(filename.size() - suffix_len, suffix_len,
                       kSegmentSuffix) != 0) {
    return -1;
  }
  int index = 0;
  for (size_t i = prefix_len; i < filename.size() - suffix_len; ++i) {
    char c = filename[i];
    if (c < '0' || c > '9') return -1;
    index = index * 10 + (c - '0');
  }
  return index;
}

std::string FormatRecord(const FeedbackEvent& event) {
  std::ostringstream payload;
  payload << "evt " << event.seq << ' ' << static_cast<int>(event.type) << ' '
          << event.row << ' ' << event.label << ' ' << event.lf_id;
  std::string line = payload.str();
  line += kRecordChecksumSep;
  line += ContentChecksum(payload.str());
  line += '\n';
  return line;
}

Status ParseRecord(const std::string& line, const std::string& path,
                   FeedbackEvent* out) {
  size_t sep = line.rfind(kRecordChecksumSep);
  if (sep == std::string::npos) {
    return Status::InvalidArgument("event-log record missing checksum in " +
                                   path);
  }
  std::string payload = line.substr(0, sep);
  std::string crc = line.substr(sep + sizeof(kRecordChecksumSep) - 1);
  if (ContentChecksum(payload) != crc) {
    return Status::InvalidArgument("event-log record checksum mismatch in " +
                                   path);
  }
  uint64_t seq = 0;
  int type = -1;
  int64_t row = -1;
  int label = -1;
  int lf_id = -1;
  char trailing = '\0';
  int parsed =
      std::sscanf(payload.c_str(), "evt %" SCNu64 " %d %" SCNd64 " %d %d%c",
                  &seq, &type, &row, &label, &lf_id, &trailing);
  if (parsed != 5) {
    return Status::InvalidArgument("malformed event-log record in " + path +
                                   ": " + payload);
  }
  if (type < 0 || type > static_cast<int>(FeedbackType::kLfVote)) {
    return Status::InvalidArgument("event-log record with unknown type " +
                                   std::to_string(type) + " in " + path);
  }
  out->seq = seq;
  out->type = static_cast<FeedbackType>(type);
  out->row = row;
  out->label = label;
  out->lf_id = lf_id;
  return Status::Ok();
}

}  // namespace

std::string_view FeedbackTypeToString(FeedbackType type) {
  switch (type) {
    case FeedbackType::kPrediction:
      return "prediction";
    case FeedbackType::kExactLabel:
      return "exact_label";
    case FeedbackType::kLfVote:
      return "lf_vote";
  }
  return "unknown";
}

EventLog::EventLog(std::string dir, EventLogOptions options, uint64_t next_seq,
                   int next_segment_index)
    : dir_(std::move(dir)),
      options_(options),
      next_seq_(next_seq),
      next_segment_index_(next_segment_index) {}

EventLog::~EventLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (segment_file_ != nullptr) {
    // Flush but leave the segment un-sealed on disk: a process that dies with
    // an open segment relies on the next Open() to seal and recover it, and
    // clean destruction should behave no better than a crash does.
    std::fflush(segment_file_);
    ::fsync(::fileno(segment_file_));
    std::fclose(segment_file_);
    segment_file_ = nullptr;
  }
}

Result<std::unique_ptr<EventLog>> EventLog::Open(
    const std::string& dir, const EventLogOptions& options) {
  if (options.max_records_per_segment <= 0) {
    return Status::InvalidArgument(
        "EventLogOptions.max_records_per_segment must be positive");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create event-log dir " + dir + ": " +
                            ec.message());
  }

  // Every segment already on disk — including one left open by a crashed or
  // destroyed writer — is sealed; appends always start a fresh segment.
  std::vector<std::pair<int, std::string>> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    int index = SegmentIndex(entry.path().filename().string());
    if (index >= 0) segments.emplace_back(index, entry.path().string());
  }
  if (ec) {
    return Status::Internal("cannot list event-log dir " + dir + ": " +
                            ec.message());
  }
  std::sort(segments.begin(), segments.end());

  uint64_t next_seq = 0;
  int next_segment_index = 0;
  std::vector<std::string> sealed;
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string& path = segments[i].second;
    const bool is_last = (i + 1 == segments.size());
    ASSIGN_OR_RETURN(SegmentReplay replay,
                     ReplaySegment(path, /*allow_torn_tail=*/is_last));
    if (replay.truncated_records > 0) {
      // Physically drop the torn tail so later replays are strict.
      std::filesystem::resize_file(path, replay.valid_bytes, ec);
      if (ec) {
        return Status::Internal("cannot truncate torn event-log tail of " +
                                path + ": " + ec.message());
      }
    }
    if (!replay.events.empty()) {
      if (next_seq > 0 && replay.events.front().seq != next_seq) {
        return Status::InvalidArgument(
            "event-log sequence gap entering " + path + ": expected " +
            std::to_string(next_seq) + ", found " +
            std::to_string(replay.events.front().seq));
      }
      next_seq = replay.events.back().seq + 1;
      sealed.push_back(path);
    } else {
      // A segment reduced to nothing by tail recovery carries no events;
      // remove it so replay never sees an empty file.
      std::filesystem::remove(path, ec);
    }
    next_segment_index = segments[i].first + 1;
  }

  std::unique_ptr<EventLog> log(
      new EventLog(dir, options, next_seq, next_segment_index));
  log->sealed_segments_ = std::move(sealed);
  return log;
}

Status EventLog::OpenSegmentLocked() {
  segment_path_ =
      (std::filesystem::path(dir_) / SegmentName(next_segment_index_)).string();
  ++next_segment_index_;
  segment_file_ = std::fopen(segment_path_.c_str(), "wb");
  if (segment_file_ == nullptr) {
    return Status::Internal("cannot open event-log segment " + segment_path_);
  }
  segment_records_ = 0;
  return Status::Ok();
}

Status EventLog::SealSegmentLocked() {
  if (segment_file_ == nullptr) return Status::Ok();
  std::fflush(segment_file_);
  ::fsync(::fileno(segment_file_));
  if (std::fclose(segment_file_) != 0) {
    segment_file_ = nullptr;
    return Status::Internal("cannot close event-log segment " + segment_path_);
  }
  segment_file_ = nullptr;
  if (segment_records_ > 0) {
    sealed_segments_.push_back(segment_path_);
  } else {
    std::error_code ec;
    std::filesystem::remove(segment_path_, ec);
  }
  segment_records_ = 0;
  return Status::Ok();
}

Result<uint64_t> EventLog::Append(const FeedbackEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) {
    return Status::Unavailable(
        "event log poisoned by a torn append; Open() a fresh instance to "
        "recover");
  }
  FaultKind fault = CheckFault(
      "eventlog.append", {FaultKind::kError, FaultKind::kTruncateWrite});
  if (fault == FaultKind::kError) {
    return Status::Internal("eventlog.append: injected fault");
  }
  if (segment_file_ == nullptr) RETURN_IF_ERROR(OpenSegmentLocked());

  FeedbackEvent record = event;
  record.seq = next_seq_;
  std::string line = FormatRecord(record);
  size_t to_write = line.size();
  if (fault == FaultKind::kTruncateWrite) {
    // Simulate a crash mid-append: half the record reaches the disk and the
    // writer is gone. The call still reports success (a killed process never
    // reports anything), but this handle refuses all further work — the
    // recovery path is Open(), which truncates the torn tail.
    to_write /= 2;
    poisoned_ = true;
  }
  if (std::fwrite(line.data(), 1, to_write, segment_file_) != to_write) {
    return Status::Internal("short write to event-log segment " +
                            segment_path_);
  }
  std::fflush(segment_file_);
  ::fsync(::fileno(segment_file_));
  next_seq_ = record.seq + 1;
  ++segment_records_;
  if (!poisoned_ && segment_records_ >= options_.max_records_per_segment) {
    RETURN_IF_ERROR(SealSegmentLocked());
  }
  return record.seq;
}

Status EventLog::Rotate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) {
    return Status::Unavailable(
        "event log poisoned by a torn append; Open() a fresh instance to "
        "recover");
  }
  return SealSegmentLocked();
}

std::vector<std::string> EventLog::SealedSegments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sealed_segments_;
}

uint64_t EventLog::next_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

Result<SegmentReplay> EventLog::ReplaySegment(const std::string& path,
                                              bool allow_torn_tail) {
  FaultKind fault =
      CheckFault("eventlog.replay", {FaultKind::kError, FaultKind::kCorrupt});
  if (fault == FaultKind::kError) {
    return Status::Internal("eventlog.replay: injected fault reading " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot read event-log segment " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();
  if (fault == FaultKind::kCorrupt && !content.empty()) {
    // The flip lands before per-record verification, so the genuine checksum
    // path must be what rejects it.
    content[content.size() / 3] ^= 0x01;
  }

  SegmentReplay out;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t newline = content.find('\n', pos);
    if (newline == std::string::npos) {
      // A record without its terminating newline can only be a tail the
      // writer never finished; a complete record always ends in '\n'.
      if (!allow_torn_tail) {
        return Status::InvalidArgument("torn record at end of " + path);
      }
      out.truncated_records = 1;
      return out;
    }
    std::string line = content.substr(pos, newline - pos);
    FeedbackEvent event;
    RETURN_IF_ERROR(ParseRecord(line, path, &event));
    if (!out.events.empty() && event.seq != out.events.back().seq + 1) {
      return Status::InvalidArgument(
          "event-log sequence gap in " + path + ": expected " +
          std::to_string(out.events.back().seq + 1) + ", found " +
          std::to_string(event.seq));
    }
    out.events.push_back(event);
    pos = newline + 1;
    out.valid_bytes = pos;
  }
  return out;
}

Result<std::vector<FeedbackEvent>> EventLog::ReplayAll() const {
  std::vector<std::string> segments = SealedSegments();
  std::vector<FeedbackEvent> all;
  for (const std::string& path : segments) {
    ASSIGN_OR_RETURN(SegmentReplay replay,
                     ReplaySegment(path, /*allow_torn_tail=*/false));
    for (const FeedbackEvent& event : replay.events) {
      if (!all.empty() && event.seq != all.back().seq + 1) {
        return Status::InvalidArgument(
            "event-log sequence gap across segments at " + path);
      }
      all.push_back(event);
    }
  }
  return all;
}

uint64_t EventLog::ReplayDigest(const std::vector<FeedbackEvent>& events) {
  uint64_t hash = 14695981039346656037ULL;
  auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  };
  for (const FeedbackEvent& event : events) {
    mix(event.seq);
    mix(static_cast<uint64_t>(static_cast<int>(event.type)));
    mix(static_cast<uint64_t>(event.row));
    mix(static_cast<uint64_t>(static_cast<int64_t>(event.label)));
    mix(static_cast<uint64_t>(static_cast<int64_t>(event.lf_id)));
  }
  return hash;
}

}  // namespace activedp
