#include "serve/serve_config.h"

#include <cmath>
#include <sstream>

namespace activedp {

namespace {

Status BadField(const char* field, const std::string& why) {
  std::ostringstream os;
  os << "ServeConfig: " << field << " " << why;
  return Status::InvalidArgument(os.str());
}

bool NonNegativeFinite(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

Status ValidateServeConfig(const ServeConfig& config) {
  const PredictionServiceOptions& s = config.service;
  if (s.max_batch_size < 1) {
    return BadField("service.max_batch_size", "must be >= 1");
  }
  if (!NonNegativeFinite(s.max_batch_delay_ms)) {
    return BadField("service.max_batch_delay_ms", "must be finite and >= 0");
  }
  if (s.max_queue_depth < 1) {
    return BadField("service.max_queue_depth", "must be >= 1");
  }
  if (!NonNegativeFinite(s.max_queue_delay_ms)) {
    return BadField("service.max_queue_delay_ms", "must be finite and >= 0");
  }
  if (!NonNegativeFinite(s.incident_window_seconds)) {
    return BadField("service.incident_window_seconds",
                    "must be finite and >= 0");
  }

  const RolloutOptions& r = config.rollout;
  if (!(r.canary_fraction >= 0.0 && r.canary_fraction <= 1.0)) {
    return BadField("rollout.canary_fraction", "must be in [0, 1]");
  }
  if (r.window < 1) {
    return BadField("rollout.window", "must be >= 1");
  }
  if (r.min_canary_samples < 0) {
    return BadField("rollout.min_canary_samples", "must be >= 0");
  }
  if (r.min_canary_samples > r.window) {
    return BadField("rollout.min_canary_samples", "must be <= rollout.window");
  }
  if (!NonNegativeFinite(r.max_error_rate_delta)) {
    return BadField("rollout.max_error_rate_delta",
                    "must be finite and >= 0");
  }
  if (!NonNegativeFinite(r.max_latency_ratio)) {
    return BadField("rollout.max_latency_ratio", "must be finite and >= 0");
  }
  if (r.client_threads < 1) {
    return BadField("rollout.client_threads", "must be >= 1");
  }

  const RouterOptions& t = config.router;
  if (t.num_shards < 1) {
    return BadField("router.num_shards", "must be >= 1");
  }
  if (t.virtual_nodes < 1) {
    return BadField("router.virtual_nodes", "must be >= 1");
  }
  if (t.default_limits.max_in_flight < 0) {
    return BadField("router.default_limits.max_in_flight", "must be >= 0");
  }
  if (!NonNegativeFinite(t.default_limits.max_queue_delay_ms)) {
    return BadField("router.default_limits.max_queue_delay_ms",
                    "must be finite and >= 0");
  }
  if (!NonNegativeFinite(t.default_limits.deadline_budget_ms)) {
    return BadField("router.default_limits.deadline_budget_ms",
                    "must be finite and >= 0");
  }
  if (t.shed_burst_threshold < 0) {
    return BadField("router.shed_burst_threshold", "must be >= 0");
  }
  if (!NonNegativeFinite(t.incident_window_seconds)) {
    return BadField("router.incident_window_seconds",
                    "must be finite and >= 0");
  }
  return Status::Ok();
}

Result<ServeConfig> ServeConfigBuilder::Build() const {
  RETURN_IF_ERROR(ValidateServeConfig(config_));
  return config_;
}

}  // namespace activedp
