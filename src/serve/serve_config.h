#ifndef ACTIVEDP_SERVE_SERVE_CONFIG_H_
#define ACTIVEDP_SERVE_SERVE_CONFIG_H_

#include "serve/prediction_service.h"
#include "serve/rollout.h"
#include "util/result.h"

namespace activedp {

/// Per-tenant admission limits. A tenant that exceeds them is shed at the
/// router without touching any other tenant's traffic (DESIGN.md §15).
struct TenantLimits {
  /// Admission quota: requests a tenant may have in flight (queued or
  /// executing) at once. Further requests are rejected with
  /// RejectReason::kQuotaExceeded. <= 0 disables.
  int max_in_flight = 0;
  /// Per-tenant adaptive shedding: when > 0 and the tenant's in-flight count
  /// × its EWMA per-request service time exceeds this, new requests from
  /// that tenant are shed (RejectReason::kOverloaded). Same EWMA discipline
  /// as PredictionServiceOptions::max_queue_delay_ms, but scoped to one
  /// tenant — one tenant's backlog never sheds another's traffic. 0 disables.
  double max_queue_delay_ms = 0.0;
  /// Deadline budget: when > 0, every request from this tenant is clamped to
  /// at most this many milliseconds (Deadline::Sooner of the request's own
  /// deadline and now + budget). 0 disables.
  double deadline_budget_ms = 0.0;
};

/// ShardRouter topology and per-tenant policy defaults.
struct RouterOptions {
  /// PredictionService shards the router owns. Tenants map to shards by
  /// consistent hashing, so raising this moves only ~1/num_shards of
  /// tenants (tested in tests/shard_router_test.cc).
  int num_shards = 2;
  /// Virtual nodes per shard on the hash ring. More nodes → more even
  /// tenant spread and tighter movement bounds under resharding.
  int virtual_nodes = 64;
  /// Limits applied to tenants added without explicit limits.
  TenantLimits default_limits;
  /// Flight-recorder burst trigger: when > 0, this many per-tenant shed
  /// rejections within `incident_window_seconds` fire one
  /// "router.tenant_overload" incident dump. 0 disables.
  int shed_burst_threshold = 0;
  double incident_window_seconds = 1.0;
};

/// Everything the serving stack needs in one validated bundle: the
/// per-shard service options, the staged-rollout gate options, and the
/// router topology / tenant limits. Built via ServeConfigBuilder so shards,
/// router, and benches stop copying fields one by one.
struct ServeConfig {
  PredictionServiceOptions service;
  RolloutOptions rollout;
  RouterOptions router;
};

/// Fluent builder for ServeConfig. Build() validates the whole bundle and
/// returns InvalidArgument naming the first offending field, so a bad
/// config fails loudly at construction instead of misbehaving under load.
class ServeConfigBuilder {
 public:
  ServeConfigBuilder() = default;

  /// Seeds the builder from an existing config (all setters still apply).
  explicit ServeConfigBuilder(ServeConfig base) : config_(std::move(base)) {}

  ServeConfigBuilder& set_service(PredictionServiceOptions options) {
    config_.service = std::move(options);
    return *this;
  }
  ServeConfigBuilder& set_rollout(RolloutOptions options) {
    config_.rollout = std::move(options);
    return *this;
  }
  ServeConfigBuilder& set_router(RouterOptions options) {
    config_.router = std::move(options);
    return *this;
  }

  ServeConfigBuilder& set_max_batch_size(int v) {
    config_.service.max_batch_size = v;
    return *this;
  }
  ServeConfigBuilder& set_max_batch_delay_ms(double v) {
    config_.service.max_batch_delay_ms = v;
    return *this;
  }
  ServeConfigBuilder& set_max_queue_depth(int v) {
    config_.service.max_queue_depth = v;
    return *this;
  }
  ServeConfigBuilder& set_max_queue_delay_ms(double v) {
    config_.service.max_queue_delay_ms = v;
    return *this;
  }
  ServeConfigBuilder& set_breaker_threshold(int v) {
    config_.service.breaker_threshold = v;
    return *this;
  }

  ServeConfigBuilder& set_canary_fraction(double v) {
    config_.rollout.canary_fraction = v;
    return *this;
  }
  ServeConfigBuilder& set_rollout_window(int v) {
    config_.rollout.window = v;
    return *this;
  }
  ServeConfigBuilder& set_min_canary_samples(int v) {
    config_.rollout.min_canary_samples = v;
    return *this;
  }
  ServeConfigBuilder& set_rollout_seed(uint64_t v) {
    config_.rollout.seed = v;
    return *this;
  }

  ServeConfigBuilder& set_num_shards(int v) {
    config_.router.num_shards = v;
    return *this;
  }
  ServeConfigBuilder& set_virtual_nodes(int v) {
    config_.router.virtual_nodes = v;
    return *this;
  }
  ServeConfigBuilder& set_default_tenant_limits(TenantLimits limits) {
    config_.router.default_limits = limits;
    return *this;
  }
  ServeConfigBuilder& set_router_shed_burst_threshold(int v) {
    config_.router.shed_burst_threshold = v;
    return *this;
  }

  /// Validates and returns the config, or InvalidArgument naming the first
  /// bad field.
  Result<ServeConfig> Build() const;

 private:
  ServeConfig config_;
};

/// Validates an already-assembled config (what Build() calls).
Status ValidateServeConfig(const ServeConfig& config);

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_SERVE_CONFIG_H_
