#include "serve/model_snapshot.h"

#include <cmath>
#include <map>
#include <utility>

#include "math/csr_matrix.h"
#include "math/vector_ops.h"
#include "text/tokenizer.h"
#include "util/thread_pool.h"

namespace activedp {
namespace {

Status ValidateFeaturizerState(const SnapshotState& state) {
  if (state.task == TaskType::kTextClassification) {
    if (state.vocab.size() == 0) {
      return Status::InvalidArgument("text snapshot has an empty vocabulary");
    }
    if (static_cast<int>(state.idf.size()) != state.vocab.size() ||
        state.feature_dim != state.vocab.size()) {
      return Status::InvalidArgument(
          "text snapshot shape mismatch: vocab=" +
          std::to_string(state.vocab.size()) +
          " idf=" + std::to_string(state.idf.size()) +
          " feature_dim=" + std::to_string(state.feature_dim));
    }
    return Status::Ok();
  }
  if (static_cast<int>(state.means.size()) != state.feature_dim ||
      state.means.size() != state.inv_stddevs.size()) {
    return Status::InvalidArgument(
        "tabular snapshot shape mismatch: means=" +
        std::to_string(state.means.size()) +
        " inv_stddevs=" + std::to_string(state.inv_stddevs.size()) +
        " feature_dim=" + std::to_string(state.feature_dim));
  }
  return Status::Ok();
}

}  // namespace

Result<ModelSnapshot> ModelSnapshot::Create(SnapshotState state) {
  if (state.version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot version " + std::to_string(state.version) +
        " is not supported (expected " + std::to_string(kSnapshotVersion) +
        ")");
  }
  if (state.num_classes < 2) {
    return Status::InvalidArgument("snapshot needs >= 2 classes");
  }
  if (state.feature_dim <= 0) {
    return Status::InvalidArgument("snapshot has no features");
  }
  if (!(state.threshold >= 0.0 && state.threshold <= 1.0)) {
    return Status::InvalidArgument("snapshot threshold outside [0, 1]");
  }
  RETURN_IF_ERROR(ValidateFeaturizerState(state));
  if (state.label_model_name.empty() && !state.al_weights.has_value()) {
    return Status::InvalidArgument(
        "snapshot has neither a label model nor AL weights");
  }
  if (!state.label_model_name.empty() && state.lfs.empty()) {
    return Status::InvalidArgument(
        "snapshot has a label model but no selected LFs");
  }

  ModelSnapshot snapshot;
  if (state.task == TaskType::kTextClassification) {
    snapshot.featurizer_ = std::make_unique<TextFeaturizer>(
        TfidfFeaturizer::FromState(state.tfidf_options, state.idf));
  } else {
    snapshot.featurizer_ = std::make_unique<TabularFeaturizer>(
        TabularFeaturizer::FromState(state.means, state.inv_stddevs));
  }
  if (!state.label_model_name.empty()) {
    ASSIGN_OR_RETURN(snapshot.label_model_,
                     MakeLabelModelByName(state.label_model_name));
    RETURN_IF_ERROR(
        snapshot.label_model_->RestoreParams(state.label_model_params));
  }
  if (state.al_weights.has_value()) {
    ASSIGN_OR_RETURN(
        snapshot.al_model_,
        LogisticRegression::FromWeights(state.num_classes, state.feature_dim,
                                        *state.al_weights));
  }
  if (state.end_weights.has_value()) {
    ASSIGN_OR_RETURN(
        snapshot.end_model_,
        LogisticRegression::FromWeights(state.num_classes, state.feature_dim,
                                        *state.end_weights));
  }
  snapshot.state_ = std::move(state);

  // Keyword-only LF sets (the common text path) get an inverted token index:
  // serving then touches only each example's own tokens instead of scanning
  // every LF per prediction. Each KeywordLf owns one column and fires on
  // token presence, so the indexed fill is identical to the per-LF loop.
  if (snapshot.label_model_ != nullptr) {
    bool all_keyword = true;
    for (const LfPtr& lf : snapshot.state_.lfs) {
      if (dynamic_cast<const KeywordLf*>(lf.get()) == nullptr) {
        all_keyword = false;
        break;
      }
    }
    if (all_keyword) {
      auto& index = snapshot.keyword_index_.emplace();
      index.reserve(snapshot.state_.lfs.size());
      for (size_t j = 0; j < snapshot.state_.lfs.size(); ++j) {
        const auto* kw =
            static_cast<const KeywordLf*>(snapshot.state_.lfs[j].get());
        index[kw->token_id()].emplace_back(static_cast<int>(j), kw->label());
      }
    }
  }
  return snapshot;
}

Result<Example> ModelSnapshot::MakeTextExample(std::string_view text) const {
  if (state_.task != TaskType::kTextClassification) {
    return Status::FailedPrecondition(
        "MakeTextExample on a tabular snapshot");
  }
  Example example;
  example.text = std::string(text);
  // Same construction as the dataset loaders: tokenize, map to vocabulary
  // ids, accumulate counts sorted by id (std::map iteration order).
  Tokenizer tokenizer;
  std::map<int, int> counts;
  for (const std::string& token : tokenizer.Tokenize(example.text)) {
    const int id = state_.vocab.GetId(token);
    if (id != Vocabulary::kUnknownId) ++counts[id];
  }
  example.term_counts.reserve(counts.size());
  for (const auto& [id, count] : counts) {
    example.term_counts.emplace_back(id, count);
  }
  return example;
}

Result<Example> ModelSnapshot::MakeTabularExample(
    std::vector<double> features) const {
  if (state_.task != TaskType::kTabularClassification) {
    return Status::FailedPrecondition("MakeTabularExample on a text snapshot");
  }
  if (static_cast<int>(features.size()) != state_.feature_dim) {
    return Status::InvalidArgument(
        "expected " + std::to_string(state_.feature_dim) + " features, got " +
        std::to_string(features.size()));
  }
  for (double v : features) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite feature value");
    }
  }
  Example example;
  example.features = std::move(features);
  return example;
}

Status ModelSnapshot::ValidateExample(const Example& example) const {
  if (state_.task == TaskType::kTabularClassification &&
      static_cast<int>(example.features.size()) != state_.feature_dim) {
    return Status::InvalidArgument(
        "example has " + std::to_string(example.features.size()) +
        " features, snapshot expects " + std::to_string(state_.feature_dim));
  }
  return Status::Ok();
}

void ModelSnapshot::ApplyLfsRow(const Example& example, std::vector<int>* row,
                                bool* active) const {
  if (keyword_index_.has_value()) {
    for (const auto& [token, count] : example.term_counts) {
      (void)count;  // presence semantics, matching Example::HasToken
      const auto it = keyword_index_->find(token);
      if (it == keyword_index_->end()) continue;
      for (const auto& [col, label] : it->second) {
        (*row)[col] = label;
        if (label != kAbstain) *active = true;
      }
    }
    return;
  }
  for (size_t j = 0; j < state_.lfs.size(); ++j) {
    (*row)[j] = state_.lfs[j]->Apply(example);
    if ((*row)[j] != kAbstain) *active = true;
  }
}

Result<ServedPrediction> ModelSnapshot::PredictRow(const Example& example,
                                                   const int32_t* indices,
                                                   const double* values,
                                                   int nnz) const {
  // One-row version of the offline inference phase: AL probabilities,
  // label-model probabilities + activity over the selected LFs, then
  // ConFusion::Aggregate with the exported τ. Aggregate is row-independent,
  // so this matches the offline batch call bitwise.
  std::vector<std::vector<double>> al_proba(1);
  if (al_model_.has_value()) {
    al_proba[0] = al_model_->PredictProba(indices, values, nnz);
  }
  std::vector<std::vector<double>> lm_proba(1);
  std::vector<bool> lm_active(1, false);
  if (label_model_ != nullptr) {
    std::vector<int> row(state_.lfs.size(), kAbstain);
    bool active = false;
    ApplyLfsRow(example, &row, &active);
    lm_active[0] = active;
    ASSIGN_OR_RETURN(lm_proba[0], label_model_->PredictProba(row));
  }

  AggregatedLabels aggregated = ConFusion::Aggregate(
      al_proba, lm_proba, lm_active, state_.threshold);
  ServedPrediction prediction;
  prediction.proba = std::move(aggregated.soft[0]);
  prediction.label = aggregated.hard[0];
  prediction.source = aggregated.source[0];
  return prediction;
}

Result<ServedPrediction> ModelSnapshot::Predict(const Example& example) const {
  RETURN_IF_ERROR(ValidateExample(example));
  if (!al_model_.has_value()) {
    return PredictRow(example, nullptr, nullptr, 0);
  }
  const SparseVector features = featurizer_->Transform(example);
  return PredictRow(example, features.indices.data(), features.values.data(),
                    features.nnz());
}

std::vector<Result<ServedPrediction>> ModelSnapshot::PredictBatch(
    const std::vector<Example>& examples) const {
  const int n = static_cast<int>(examples.size());
  std::vector<Result<ServedPrediction>> out(
      n, Result<ServedPrediction>(Status::Internal("not computed")));
  if (n == 0) return out;
  const int grain = BoundedGrain(n, 8, 64);

  // Stage 1: featurize the whole batch into one CSR matrix (skipped when no
  // AL model consumes features). Transform runs in parallel with row-owned
  // writes; the serial AppendRow pack keeps the layout thread-count
  // independent. Rows that fail shape validation stay empty and carry their
  // Status into stage 2.
  std::vector<Status> row_status(n, Status::Ok());
  CsrMatrix features(n, state_.feature_dim);
  if (al_model_.has_value()) {
    std::vector<SparseVector> rows(n);
    (void)ParallelForChunks(ComputePool(), n, grain, RunLimits::Unlimited(),
                            "serve.featurize",
                            [&](int /*chunk*/, int begin, int end) {
                              for (int i = begin; i < end; ++i) {
                                row_status[i] = ValidateExample(examples[i]);
                                if (row_status[i].ok()) {
                                  rows[i] = featurizer_->Transform(examples[i]);
                                }
                              }
                            });
    int64_t nnz = 0;
    for (const SparseVector& r : rows) nnz += r.nnz();
    features.ReserveNnz(nnz);
    for (const SparseVector& r : rows) {
      features.AppendRow(r.indices.data(), r.values.data(), r.nnz());
    }
  } else {
    for (int i = 0; i < n; ++i) {
      row_status[i] = ValidateExample(examples[i]);
      features.AppendRow(nullptr, nullptr, 0);
    }
  }

  // Stage 2: score each row off the packed CSR storage. Each CSR row holds
  // exactly Transform(example)'s indices/values, so PredictRow sees the same
  // input as the single-row path — served batch outputs are bitwise equal to
  // Predict on each element. Each slot is written by exactly one chunk and
  // the budget is unlimited, so the loop itself can never fail.
  (void)ParallelForChunks(
      ComputePool(), n, grain, RunLimits::Unlimited(), "serve.predict_batch",
      [&](int /*chunk*/, int begin, int end) {
        for (int i = begin; i < end; ++i) {
          if (!row_status[i].ok()) {
            out[i] = row_status[i];
            continue;
          }
          out[i] = PredictRow(examples[i], features.RowIndices(i),
                              features.RowValues(i), features.RowNnz(i));
        }
      });
  return out;
}

Result<std::vector<double>> ModelSnapshot::EndModelProba(
    const Example& example) const {
  if (!end_model_.has_value()) {
    return Status::FailedPrecondition("snapshot has no end-model weights");
  }
  if (state_.task == TaskType::kTabularClassification &&
      static_cast<int>(example.features.size()) != state_.feature_dim) {
    return Status::InvalidArgument(
        "example has " + std::to_string(example.features.size()) +
        " features, snapshot expects " + std::to_string(state_.feature_dim));
  }
  return end_model_->PredictProba(featurizer_->Transform(example));
}

}  // namespace activedp
