#include "serve/model_snapshot.h"

#include <cmath>
#include <map>
#include <utility>

#include "math/vector_ops.h"
#include "text/tokenizer.h"
#include "util/thread_pool.h"

namespace activedp {
namespace {

Status ValidateFeaturizerState(const SnapshotState& state) {
  if (state.task == TaskType::kTextClassification) {
    if (state.vocab.size() == 0) {
      return Status::InvalidArgument("text snapshot has an empty vocabulary");
    }
    if (static_cast<int>(state.idf.size()) != state.vocab.size() ||
        state.feature_dim != state.vocab.size()) {
      return Status::InvalidArgument(
          "text snapshot shape mismatch: vocab=" +
          std::to_string(state.vocab.size()) +
          " idf=" + std::to_string(state.idf.size()) +
          " feature_dim=" + std::to_string(state.feature_dim));
    }
    return Status::Ok();
  }
  if (static_cast<int>(state.means.size()) != state.feature_dim ||
      state.means.size() != state.inv_stddevs.size()) {
    return Status::InvalidArgument(
        "tabular snapshot shape mismatch: means=" +
        std::to_string(state.means.size()) +
        " inv_stddevs=" + std::to_string(state.inv_stddevs.size()) +
        " feature_dim=" + std::to_string(state.feature_dim));
  }
  return Status::Ok();
}

}  // namespace

Result<ModelSnapshot> ModelSnapshot::Create(SnapshotState state) {
  if (state.version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot version " + std::to_string(state.version) +
        " is not supported (expected " + std::to_string(kSnapshotVersion) +
        ")");
  }
  if (state.num_classes < 2) {
    return Status::InvalidArgument("snapshot needs >= 2 classes");
  }
  if (state.feature_dim <= 0) {
    return Status::InvalidArgument("snapshot has no features");
  }
  if (!(state.threshold >= 0.0 && state.threshold <= 1.0)) {
    return Status::InvalidArgument("snapshot threshold outside [0, 1]");
  }
  RETURN_IF_ERROR(ValidateFeaturizerState(state));
  if (state.label_model_name.empty() && !state.al_weights.has_value()) {
    return Status::InvalidArgument(
        "snapshot has neither a label model nor AL weights");
  }
  if (!state.label_model_name.empty() && state.lfs.empty()) {
    return Status::InvalidArgument(
        "snapshot has a label model but no selected LFs");
  }

  ModelSnapshot snapshot;
  if (state.task == TaskType::kTextClassification) {
    snapshot.featurizer_ = std::make_unique<TextFeaturizer>(
        TfidfFeaturizer::FromState(state.tfidf_options, state.idf));
  } else {
    snapshot.featurizer_ = std::make_unique<TabularFeaturizer>(
        TabularFeaturizer::FromState(state.means, state.inv_stddevs));
  }
  if (!state.label_model_name.empty()) {
    ASSIGN_OR_RETURN(snapshot.label_model_,
                     MakeLabelModelByName(state.label_model_name));
    RETURN_IF_ERROR(
        snapshot.label_model_->RestoreParams(state.label_model_params));
  }
  if (state.al_weights.has_value()) {
    ASSIGN_OR_RETURN(
        snapshot.al_model_,
        LogisticRegression::FromWeights(state.num_classes, state.feature_dim,
                                        *state.al_weights));
  }
  if (state.end_weights.has_value()) {
    ASSIGN_OR_RETURN(
        snapshot.end_model_,
        LogisticRegression::FromWeights(state.num_classes, state.feature_dim,
                                        *state.end_weights));
  }
  snapshot.state_ = std::move(state);
  return snapshot;
}

Result<Example> ModelSnapshot::MakeTextExample(std::string_view text) const {
  if (state_.task != TaskType::kTextClassification) {
    return Status::FailedPrecondition(
        "MakeTextExample on a tabular snapshot");
  }
  Example example;
  example.text = std::string(text);
  // Same construction as the dataset loaders: tokenize, map to vocabulary
  // ids, accumulate counts sorted by id (std::map iteration order).
  Tokenizer tokenizer;
  std::map<int, int> counts;
  for (const std::string& token : tokenizer.Tokenize(example.text)) {
    const int id = state_.vocab.GetId(token);
    if (id != Vocabulary::kUnknownId) ++counts[id];
  }
  example.term_counts.reserve(counts.size());
  for (const auto& [id, count] : counts) {
    example.term_counts.emplace_back(id, count);
  }
  return example;
}

Result<Example> ModelSnapshot::MakeTabularExample(
    std::vector<double> features) const {
  if (state_.task != TaskType::kTabularClassification) {
    return Status::FailedPrecondition("MakeTabularExample on a text snapshot");
  }
  if (static_cast<int>(features.size()) != state_.feature_dim) {
    return Status::InvalidArgument(
        "expected " + std::to_string(state_.feature_dim) + " features, got " +
        std::to_string(features.size()));
  }
  for (double v : features) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite feature value");
    }
  }
  Example example;
  example.features = std::move(features);
  return example;
}

Result<ServedPrediction> ModelSnapshot::Predict(const Example& example) const {
  if (state_.task == TaskType::kTabularClassification &&
      static_cast<int>(example.features.size()) != state_.feature_dim) {
    return Status::InvalidArgument(
        "example has " + std::to_string(example.features.size()) +
        " features, snapshot expects " + std::to_string(state_.feature_dim));
  }

  // One-row version of the offline inference phase: AL probabilities,
  // label-model probabilities + activity over the selected LFs, then
  // ConFusion::Aggregate with the exported τ. Aggregate is row-independent,
  // so this matches the offline batch call bitwise.
  std::vector<std::vector<double>> al_proba(1);
  if (al_model_.has_value()) {
    al_proba[0] = al_model_->PredictProba(featurizer_->Transform(example));
  }
  std::vector<std::vector<double>> lm_proba(1);
  std::vector<bool> lm_active(1, false);
  if (label_model_ != nullptr) {
    std::vector<int> row(state_.lfs.size(), kAbstain);
    for (size_t j = 0; j < state_.lfs.size(); ++j) {
      row[j] = state_.lfs[j]->Apply(example);
      if (row[j] != kAbstain) lm_active[0] = true;
    }
    ASSIGN_OR_RETURN(lm_proba[0], label_model_->PredictProba(row));
  }

  AggregatedLabels aggregated = ConFusion::Aggregate(
      al_proba, lm_proba, lm_active, state_.threshold);
  ServedPrediction prediction;
  prediction.proba = std::move(aggregated.soft[0]);
  prediction.label = aggregated.hard[0];
  prediction.source = aggregated.source[0];
  return prediction;
}

std::vector<Result<ServedPrediction>> ModelSnapshot::PredictBatch(
    const std::vector<Example>& examples) const {
  const int n = static_cast<int>(examples.size());
  std::vector<Result<ServedPrediction>> out(
      n, Result<ServedPrediction>(Status::Internal("not computed")));
  if (n == 0) return out;
  const int grain = BoundedGrain(n, 8, 64);
  // Rows are independent and each slot is written by exactly one chunk, so
  // results are identical at every thread count; an unlimited budget means
  // the loop itself can never fail.
  (void)ParallelForChunks(ComputePool(), n, grain, RunLimits::Unlimited(),
                          "serve.predict_batch",
                          [&](int /*chunk*/, int begin, int end) {
                            for (int i = begin; i < end; ++i) {
                              out[i] = Predict(examples[i]);
                            }
                          });
  return out;
}

Result<std::vector<double>> ModelSnapshot::EndModelProba(
    const Example& example) const {
  if (!end_model_.has_value()) {
    return Status::FailedPrecondition("snapshot has no end-model weights");
  }
  if (state_.task == TaskType::kTabularClassification &&
      static_cast<int>(example.features.size()) != state_.feature_dim) {
    return Status::InvalidArgument(
        "example has " + std::to_string(example.features.size()) +
        " features, snapshot expects " + std::to_string(state_.feature_dim));
  }
  return end_model_->PredictProba(featurizer_->Transform(example));
}

}  // namespace activedp
