#ifndef ACTIVEDP_SERVE_SNAPSHOT_IO_H_
#define ACTIVEDP_SERVE_SNAPSHOT_IO_H_

#include <string>

#include "serve/model_snapshot.h"
#include "util/result.h"

namespace activedp {

/// Persists a snapshot to a line-based text format with a version header and
/// a checksum footer, written atomically (tmp + fsync + rename, see
/// util/atomic_file.h):
///
///   activedp-snapshot v1
///   dataset <name>
///   task text|tabular
///   classes <C>
///   dim <d>
///   threshold <tau>
///   word <word> <doc_frequency>            (text; one line per vocab word)
///   tfidf <sublinear 0|1> <l2norm 0|1> <idf ... d values>
///   means <d values> / invstd <d values>   (tabular)
///   lf kw <token_id> <word> <label>
///   lf st <feature> <threshold> <le|ge> <label>
///   labelmodel <name> <params ...>
///   almodel <C * (d+1) values> / endmodel <C * (d+1) values>
///   end
///
/// Doubles use %.17g, so a load round-trips every parameter bitwise.
Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path);

/// Loads and validates a snapshot. Rejects (with a non-OK Result) files that
/// are corrupt (checksum mismatch), truncated (missing `end` terminator or
/// short sections), from another format version, or internally inconsistent
/// (ModelSnapshot::Create validation).
Result<ModelSnapshot> LoadSnapshot(const std::string& path);

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_SNAPSHOT_IO_H_
