#ifndef ACTIVEDP_SERVE_PREDICTION_SERVICE_H_
#define ACTIVEDP_SERVE_PREDICTION_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/model_snapshot.h"
#include "serve/serve_types.h"
#include "util/deadline.h"
#include "util/result.h"

namespace activedp {

class EventLog;
struct FeedbackEvent;
class SloEngine;

struct PredictionServiceOptions {
  /// A batch is dispatched as soon as this many requests are queued...
  int max_batch_size = 32;
  /// ...or once the oldest queued request has waited this long.
  double max_batch_delay_ms = 2.0;
  /// Admission control: requests beyond this queue depth are rejected
  /// immediately with Status::Unavailable instead of growing the queue
  /// without bound (backpressure the caller can retry on).
  int max_queue_depth = 1024;
  /// Adaptive overload shedding: when > 0 and the *estimated* queue delay
  /// (queue depth × an EWMA of per-request service time) exceeds this, new
  /// requests are shed at admission with Unavailable + a structured
  /// RejectInfo retry hint — before they sit in a queue that cannot drain
  /// in time. 0 disables.
  double max_queue_delay_ms = 0.0;
  /// Per-snapshot circuit breaker: this many *consecutive* fully-failed
  /// batches trip it, and the service degrades to the last snapshot that
  /// completed a healthy batch (the last-known-good). <= 0 disables.
  int breaker_threshold = 0;
  /// Flight-recorder burst triggers (src/obs): when > 0, this many shed
  /// rejections within `incident_window_seconds` fire one
  /// "serve.shed_burst" incident dump; likewise deadline failures fire
  /// "serve.deadline_storm". 0 disables (the default — benches opt in;
  /// the dumps themselves are also rate-limited by the recorder's
  /// per-reason cooldown).
  int shed_burst_threshold = 0;
  int deadline_storm_threshold = 0;
  double incident_window_seconds = 1.0;
};

/// Point-in-time health of a PredictionService (see CheckHealth()).
struct ServiceHealth {
  bool ok = false;
  bool shutdown = false;
  bool has_snapshot = false;
  int queue_depth = 0;
  /// Queue depth × EWMA per-request service time — what the shedding and
  /// predictive deadline checks see at admission.
  double estimated_queue_delay_ms = 0.0;
  /// Times the circuit breaker swapped back to the last-known-good snapshot.
  int64_t breaker_trips = 0;
};

/// A concurrent, micro-batching inference front-end over ModelSnapshot.
///
/// Requests enter a bounded queue; a dispatcher thread groups them into
/// batches (flushing on batch size or max delay, whichever first) and
/// evaluates each batch on the process-wide ComputePool via
/// ModelSnapshot::PredictBatch. Because snapshot prediction is
/// row-independent, batching boundaries never change results — a served
/// prediction is bitwise identical to the offline aggregation at any load.
///
/// Snapshots hot-swap RCU-style: LoadSnapshot publishes a new
/// shared_ptr<const ModelSnapshot>; each batch pins the snapshot current at
/// dispatch time, so in-flight batches drain on the old snapshot while new
/// batches use the new one, and the old snapshot is freed when its last
/// batch completes. No request ever observes a half-swapped model.
///
/// Multi-tenant use (DESIGN.md §15): requests carry a ServeRequest with a
/// tenant id; with a snapshot resolver attached (SetSnapshotResolver — the
/// ShardRouter installs one per shard), a tenant's request pins that
/// tenant's active snapshot at admission, so one shard serves many tenant
/// models in the same micro-batch (RunBatch partitions by snapshot).
/// Requests without a tenant id use the service's own LoadSnapshot'd model
/// exactly as before.
///
/// Overload protection (DESIGN.md §11): admission sheds adaptively on the
/// estimated queue delay (before a request's deadline is already blown), a
/// per-snapshot circuit breaker trips on consecutive failed batches and
/// degrades to the last-known-good snapshot, and CheckHealth() gives callers
/// a fail-fast probe. Fault sites "serve.dispatch" (batch failure) and
/// "serve.predict" (latency spike) exercise these paths.
///
/// Observability: spans ("serve.batch") are emitted from the dispatcher
/// thread only (compute-pool workers stay trace-silent), and the global
/// MetricsRegistry gains serve.requests / serve.rejected / serve.expired /
/// serve.shed / serve.breaker_trips / serve.batches counters plus
/// serve.batch_size and serve.batch_latency_ms histograms.
class PredictionService {
 public:
  /// Maps a tenant id to that tenant's active snapshot (null when the
  /// tenant is unknown). Called at admission, outside the service lock —
  /// implementations may take their own locks but must not call back into
  /// this service.
  using SnapshotResolver =
      std::function<std::shared_ptr<const ModelSnapshot>(
          const std::string& tenant_id)>;

  explicit PredictionService(PredictionServiceOptions options = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Publishes `snapshot` for all batches dispatched from now on. Safe to
  /// call at any time, including under load; pass the first snapshot before
  /// the first request (requests without a snapshot are rejected with
  /// FailedPrecondition).
  void LoadSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The snapshot new batches would use right now.
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// Installs the tenant-id → snapshot mapping consulted at admission for
  /// requests with a non-empty tenant_id (nullptr detaches). The resolved
  /// snapshot is pinned on the request, so a tenant hot-swap (e.g. a
  /// per-tenant rollout promote) affects requests admitted after it only —
  /// the same RCU discipline as LoadSnapshot.
  void SetSnapshotResolver(SnapshotResolver resolver);

  /// Enqueues one request. The future resolves when its batch completes:
  /// ServeReply.status is Ok with the prediction, DeadlineExceeded when the
  /// deadline expired (or, with the adaptive shedder warm, provably *would*
  /// expire while queued), or Unavailable when the queue is full / the
  /// service is overloaded or shut down — Unavailable replies carry a
  /// structured RejectInfo (retry_after_ms, queue_depth, reason) clients
  /// back off on (serve/serve_client.h wraps this with util/retry).
  /// Requests with priority >= 1 bypass adaptive shedding (never hard
  /// queue-depth or deadline checks). Never blocks beyond admission.
  std::future<ServeReply> PredictAsync(ServeRequest request);

  /// Convenience blocking wrapper around PredictAsync.
  ServeReply Predict(ServeRequest request);

  /// Callback form of PredictAsync: `done` is invoked exactly once with the
  /// reply — immediately (before this returns) for admission rejections,
  /// from the dispatcher thread otherwise. Never invoked under the service
  /// lock, so `done` may take its own locks (the ShardRouter's completion
  /// accounting rides on this).
  void PredictWithCallback(ServeRequest request,
                           std::function<void(ServeReply)> done);

  /// Deprecated positional-arg shim (pre-TenantMesh API; removal window:
  /// two PRs, see README). Equivalent to PredictAsync(ServeRequest{...})
  /// with the RejectInfo dropped from the collapsed Result.
  std::future<Result<ServedPrediction>> PredictAsync(
      Example example, Deadline deadline = Deadline::Infinite());

  /// Deprecated positional-arg shim; see PredictAsync(Example, Deadline).
  Result<ServedPrediction> Predict(Example example,
                                   Deadline deadline = Deadline::Infinite());

  /// Attaches the durable feedback log RecordFeedback appends to (borrowed;
  /// must outlive the service or be detached with nullptr first). The
  /// LearnGuard loop (online/retrainer.h) consumes what lands here.
  void AttachEventLog(EventLog* log);

  /// Durably records one feedback event (fsync'd before returning) under a
  /// "serve.feedback" span, returning its log sequence number.
  /// FailedPrecondition without an attached log; Unavailable after shutdown
  /// or when the log handle is poisoned by a torn append.
  Result<uint64_t> RecordFeedback(const FeedbackEvent& event);

  /// Stops admission, drains every queued request (their futures still
  /// resolve), and joins the dispatcher. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  /// Requests currently waiting for a batch.
  int queue_depth() const;

  /// Attaches an SLO engine (borrowed; must outlive the service or be
  /// detached with nullptr first). With one attached, CheckHealth() also
  /// fails Unavailable while any SLO is breached — load balancers see burn
  /// before users do.
  void AttachSloEngine(SloEngine* engine);

  /// Fail-fast health probe: Ok when the service would admit a request right
  /// now; Unavailable (shut down / overloaded / SLO breach) or
  /// FailedPrecondition (no snapshot) otherwise — the same statuses
  /// admission would return, without occupying queue capacity to find out.
  Status CheckHealth() const;
  ServiceHealth Health() const;

  /// Times the circuit breaker degraded to the last-known-good snapshot.
  int64_t breaker_trips() const;
  /// The last snapshot that completed a healthy batch (what the breaker
  /// falls back to). May be null before the first healthy batch.
  std::shared_ptr<const ModelSnapshot> last_known_good() const;

 private:
  struct PendingRequest {
    ServeRequest request;
    /// The tenant's snapshot pinned at admission (null = use the service
    /// snapshot current at dispatch).
    std::shared_ptr<const ModelSnapshot> pinned;
    std::function<void(ServeReply)> resolve;
  };

  /// The one admission path both public overloads funnel into: either
  /// queues the request (resolve is called later from the dispatcher) or
  /// calls resolve with the rejection before returning — always outside
  /// the service lock.
  void Submit(ServeRequest request, std::function<void(ServeReply)> resolve);

  void DispatchLoop();
  void RunBatch(const std::shared_ptr<const ModelSnapshot>& snapshot,
                std::vector<PendingRequest> batch);
  /// Estimated time for a request admitted now to reach dispatch, from the
  /// EWMA per-request service time. Caller holds mutex_.
  double EstimatedQueueDelayMsLocked() const;
  /// Rolling-window burst counter for the incident triggers: counts one
  /// event, returns true when `threshold` events landed within
  /// options_.incident_window_seconds (and resets for the next burst).
  /// Caller holds mutex_.
  bool NoteWindowEventLocked(int64_t* window_start_us, int* count,
                             int threshold);

  const PredictionServiceOptions options_;

  mutable std::mutex mutex_;
  std::mutex join_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  SnapshotResolver snapshot_resolver_;  // guarded by mutex_; called outside it
  bool shutdown_ = false;

  // Overload/resilience state (guarded by mutex_). The EWMA is written by
  // the dispatcher after each batch and read at admission.
  double ewma_request_ms_ = 0.0;
  int consecutive_failed_batches_ = 0;
  int64_t breaker_trips_ = 0;
  std::shared_ptr<const ModelSnapshot> last_good_;
  EventLog* event_log_ = nullptr;   // borrowed; guarded by mutex_
  SloEngine* slo_engine_ = nullptr;  // borrowed; guarded by mutex_

  // Incident burst windows (guarded by mutex_; see the *_threshold options).
  int64_t shed_window_start_us_ = 0;
  int shed_window_count_ = 0;
  int64_t deadline_window_start_us_ = 0;
  int deadline_window_count_ = 0;

  std::thread dispatcher_;
};

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_PREDICTION_SERVICE_H_
