#ifndef ACTIVEDP_SERVE_PREDICTION_SERVICE_H_
#define ACTIVEDP_SERVE_PREDICTION_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/model_snapshot.h"
#include "util/deadline.h"
#include "util/result.h"

namespace activedp {

struct PredictionServiceOptions {
  /// A batch is dispatched as soon as this many requests are queued...
  int max_batch_size = 32;
  /// ...or once the oldest queued request has waited this long.
  double max_batch_delay_ms = 2.0;
  /// Admission control: requests beyond this queue depth are rejected
  /// immediately with Status::Unavailable instead of growing the queue
  /// without bound (backpressure the caller can retry on).
  int max_queue_depth = 1024;
};

/// A concurrent, micro-batching inference front-end over ModelSnapshot.
///
/// Requests enter a bounded queue; a dispatcher thread groups them into
/// batches (flushing on batch size or max delay, whichever first) and
/// evaluates each batch on the process-wide ComputePool via
/// ModelSnapshot::PredictBatch. Because snapshot prediction is
/// row-independent, batching boundaries never change results — a served
/// prediction is bitwise identical to the offline aggregation at any load.
///
/// Snapshots hot-swap RCU-style: LoadSnapshot publishes a new
/// shared_ptr<const ModelSnapshot>; each batch pins the snapshot current at
/// dispatch time, so in-flight batches drain on the old snapshot while new
/// batches use the new one, and the old snapshot is freed when its last
/// batch completes. No request ever observes a half-swapped model.
///
/// Observability: spans ("serve.batch") are emitted from the dispatcher
/// thread only (compute-pool workers stay trace-silent), and the global
/// MetricsRegistry gains serve.requests / serve.rejected / serve.expired /
/// serve.batches counters plus serve.batch_size and serve.batch_latency_ms
/// histograms.
class PredictionService {
 public:
  explicit PredictionService(PredictionServiceOptions options = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Publishes `snapshot` for all batches dispatched from now on. Safe to
  /// call at any time, including under load; pass the first snapshot before
  /// the first request (requests without a snapshot are rejected with
  /// FailedPrecondition).
  void LoadSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The snapshot new batches would use right now.
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// Enqueues one instance. The future resolves when its batch completes:
  /// the prediction, or DeadlineExceeded when `deadline` expired while the
  /// request was still queued, or Unavailable when the queue is full or the
  /// service is shut down. Never blocks beyond queue admission.
  std::future<Result<ServedPrediction>> PredictAsync(
      Example example, Deadline deadline = Deadline::Infinite());

  /// Convenience blocking wrapper around PredictAsync.
  Result<ServedPrediction> Predict(Example example,
                                   Deadline deadline = Deadline::Infinite());

  /// Stops admission, drains every queued request (their futures still
  /// resolve), and joins the dispatcher. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  /// Requests currently waiting for a batch.
  int queue_depth() const;

 private:
  struct PendingRequest {
    Example example;
    Deadline deadline;
    std::promise<Result<ServedPrediction>> promise;
  };

  void DispatchLoop();
  void RunBatch(const std::shared_ptr<const ModelSnapshot>& snapshot,
                std::vector<PendingRequest> batch);

  const PredictionServiceOptions options_;

  mutable std::mutex mutex_;
  std::mutex join_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  bool shutdown_ = false;

  std::thread dispatcher_;
};

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_PREDICTION_SERVICE_H_
