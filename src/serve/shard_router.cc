#include "serve/shard_router.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <thread>
#include <utility>

#include "obs/flight_recorder.h"
#include "serve/snapshot_io.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

constexpr char kCanaryFaultSite[] = "rollout.canary";

/// Same EWMA discipline as the PredictionService shedder, scoped per
/// tenant: floor the round-trip sample so microsecond-fast tenants still
/// accumulate a usable estimate.
constexpr double kMinRequestMsSample = 0.0005;
constexpr double kEwmaAlpha = 0.2;

/// splitmix64 finalizer (same mix as serve/rollout.cc, util/fault.cc) —
/// the counter-hash core of the routing determinism contract.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a string — the stable tenant/ring key hash.
uint64_t Fnv1a(const std::string& s) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

double RetryAfterMs(double estimated_delay_ms) {
  return std::max(1.0, std::ceil(estimated_delay_ms));
}

/// Rolling-window burst counter (the PredictionService incident-window
/// logic, per tenant). Caller holds the router lock.
bool NoteWindowEvent(int64_t* window_start_us, int* count, int threshold,
                     double window_seconds) {
  if (threshold <= 0) return false;
  const int64_t now = ObsNowMicros();
  const int64_t window_us = static_cast<int64_t>(window_seconds * 1e6);
  if (now - *window_start_us > window_us) {
    *window_start_us = now;
    *count = 0;
  }
  if (++*count < threshold) return false;
  *count = 0;
  return true;
}

/// Fires one flight-recorder incident from its destructor — declared
/// before the lock scope so the dump's file IO runs after the lock is
/// released on every return path.
struct DeferredIncident {
  const char* reason = nullptr;
  ~DeferredIncident() {
    if (reason != nullptr) {
      (void)FlightRecorder::Global().TriggerIncident(reason);
    }
  }
};

Histogram& TenantLatencyHistogram(const std::string& tenant_id) {
  return MetricsRegistry::Global().histogram(
      "serve.router.latency_ms", {{"tenant", tenant_id}},
      {0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1, 2, 5, 10, 25, 50, 100, 250});
}

}  // namespace

std::vector<ShardRouter::RingPoint> ShardRouter::BuildRing(int num_shards,
                                                           int virtual_nodes) {
  std::vector<RingPoint> ring;
  ring.reserve(static_cast<size_t>(num_shards) * virtual_nodes);
  for (int s = 0; s < num_shards; ++s) {
    for (int v = 0; v < virtual_nodes; ++v) {
      const std::string node =
          "shard-" + std::to_string(s) + "#" + std::to_string(v);
      ring.push_back(RingPoint{Mix(Fnv1a(node)), s});
    }
  }
  std::sort(ring.begin(), ring.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
  return ring;
}

int ShardRouter::LookupRing(const std::vector<RingPoint>& ring,
                            const std::string& tenant_id) {
  if (ring.empty()) return 0;
  const uint64_t key = Mix(Fnv1a(tenant_id));
  // Clockwise successor: first ring point at or after the key, wrapping to
  // the smallest point past the top.
  const auto it = std::lower_bound(
      ring.begin(), ring.end(), key,
      [](const RingPoint& p, uint64_t k) { return p.hash < k; });
  return it != ring.end() ? it->shard : ring.front().shard;
}

ShardRouter::ShardRouter(ServeConfig config)
    : config_(std::move(config)),
      ring_(BuildRing(config_.router.num_shards, config_.router.virtual_nodes)) {
  const Status valid = ValidateServeConfig(config_);
  CHECK(valid.ok()) << "ShardRouter constructed from an invalid config: "
                    << valid.ToString();
  shards_.reserve(static_cast<size_t>(config_.router.num_shards));
  for (int s = 0; s < config_.router.num_shards; ++s) {
    shards_.push_back(
        std::make_unique<PredictionService>(config_.service));
    // Every shard resolves tenant snapshots through the router's tenant
    // table; the resolver runs outside the shard's lock by contract.
    shards_.back()->SetSnapshotResolver(
        [this](const std::string& tenant_id) {
          return TenantSnapshot(tenant_id);
        });
  }
}

ShardRouter::~ShardRouter() { Shutdown(); }

int ShardRouter::ShardFor(const std::string& tenant_id) const {
  return LookupRing(ring_, tenant_id);
}

int ShardRouter::ShardForKey(const std::string& tenant_id, int num_shards,
                             int virtual_nodes) {
  if (num_shards < 1) return 0;
  return LookupRing(BuildRing(num_shards, std::max(1, virtual_nodes)),
                    tenant_id);
}

Status ShardRouter::AddTenant(const std::string& tenant_id) {
  return AddTenant(tenant_id, config_.router.default_limits);
}

Status ShardRouter::AddTenant(const std::string& tenant_id,
                              const TenantLimits& limits) {
  if (tenant_id.empty()) {
    return Status::InvalidArgument("tenant id must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (tenants_.count(tenant_id) > 0) {
    return Status::FailedPrecondition("tenant '" + tenant_id +
                                      "' is already registered");
  }
  TenantEntry entry;
  entry.shard = LookupRing(ring_, tenant_id);
  entry.limits = limits;
  tenants_.emplace(tenant_id, std::move(entry));
  return Status::Ok();
}

Status ShardRouter::SetTenantSnapshot(
    const std::string& tenant_id,
    std::shared_ptr<const ModelSnapshot> snapshot) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(tenant_id);
    if (it == tenants_.end()) {
      return Status::NotFound("unknown tenant '" + tenant_id + "'");
    }
    it->second.snapshot = std::move(snapshot);
  }
  MetricsRegistry::Global()
      .counter("serve.router.snapshot_swaps", {{"tenant", tenant_id}})
      .Increment();
  return Status::Ok();
}

std::shared_ptr<const ModelSnapshot> ShardRouter::TenantSnapshot(
    const std::string& tenant_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant_id);
  return it != tenants_.end() ? it->second.snapshot : nullptr;
}

Status ShardRouter::AttachTenantRegistry(const std::string& tenant_id,
                                         SnapshotRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + tenant_id + "'");
  }
  it->second.registry = registry;
  return Status::Ok();
}

Result<SnapshotRegistry*> ShardRouter::TenantRegistry(
    const std::string& tenant_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + tenant_id + "'");
  }
  if (it->second.registry == nullptr) {
    return Status::FailedPrecondition("tenant '" + tenant_id +
                                      "' has no snapshot registry attached");
  }
  return it->second.registry;
}

void ShardRouter::PredictWithCallback(ServeRequest request,
                                      std::function<void(ServeReply)> done) {
  if (request.tenant_id.empty()) {
    done(ServeReply::Error(Status::InvalidArgument(
        "ServeRequest.tenant_id is required for routed prediction")));
    return;
  }
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter("serve.router.requests", {{"tenant", request.tenant_id}})
      .Increment();
  DeferredIncident incident;
  std::optional<ServeReply> immediate;
  PredictionService* shard = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      immediate = ServeReply::Rejected(
          Status::Unavailable("shard router is shut down"),
          RejectInfo{0.0, 0, RejectReason::kShutdown});
    } else {
      auto it = tenants_.find(request.tenant_id);
      if (it == tenants_.end()) {
        immediate = ServeReply::Error(
            Status::NotFound("unknown tenant '" + request.tenant_id + "'"));
      } else {
        TenantEntry& tenant = it->second;
        const bool over_quota =
            tenant.limits.max_in_flight > 0 &&
            tenant.in_flight >= tenant.limits.max_in_flight;
        // One tenant's estimated backlog: its own in-flight count at its
        // own EWMA round-trip — nothing another tenant does moves it.
        const double estimate_ms =
            (static_cast<double>(tenant.in_flight) + 1.0) *
            tenant.ewma_request_ms;
        const bool overloaded =
            !over_quota && request.priority < 1 &&
            tenant.limits.max_queue_delay_ms > 0.0 &&
            estimate_ms > tenant.limits.max_queue_delay_ms;
        if (over_quota || overloaded) {
          ++tenant.shed;
          metrics
              .counter("serve.router.shed", {{"tenant", request.tenant_id}})
              .Increment();
          if (NoteWindowEvent(&tenant.shed_window_start_us,
                              &tenant.shed_window_count,
                              config_.router.shed_burst_threshold,
                              config_.router.incident_window_seconds)) {
            TraceInstant("serve.router", "tenant_overload",
                         "tenant=" + request.tenant_id + " shed " +
                             std::to_string(
                                 config_.router.shed_burst_threshold) +
                             " requests within the incident window");
            incident.reason = "router.tenant_overload";
          }
          if (over_quota) {
            immediate = ServeReply::Rejected(
                Status::Unavailable(
                    "tenant '" + request.tenant_id +
                    "' is over its admission quota (in-flight=" +
                    std::to_string(tenant.in_flight) + " of max " +
                    std::to_string(tenant.limits.max_in_flight) + ")"),
                RejectInfo{RetryAfterMs(tenant.ewma_request_ms),
                           tenant.in_flight, RejectReason::kQuotaExceeded});
          } else {
            immediate = ServeReply::Rejected(
                Status::Unavailable(
                    "tenant '" + request.tenant_id +
                    "' is overloaded (in-flight=" +
                    std::to_string(tenant.in_flight) + ", estimated delay " +
                    std::to_string(estimate_ms) + "ms)"),
                RejectInfo{RetryAfterMs(estimate_ms), tenant.in_flight,
                           RejectReason::kOverloaded});
          }
        } else {
          ++tenant.requests;
          ++tenant.in_flight;
          if (tenant.limits.deadline_budget_ms > 0.0) {
            request.deadline = Deadline::Sooner(
                request.deadline,
                Deadline::After(tenant.limits.deadline_budget_ms / 1000.0));
          }
          shard = shards_[static_cast<size_t>(tenant.shard)].get();
        }
      }
    }
  }
  // Rejections resolve outside the router lock (`done` may take arbitrary
  // locks of its own).
  if (immediate) {
    done(std::move(*immediate));
    return;
  }
  Timer timer;
  std::string tenant_id = request.tenant_id;
  shard->PredictWithCallback(
      std::move(request),
      [this, timer, tenant_id = std::move(tenant_id),
       done = std::move(done)](ServeReply reply) mutable {
        const double elapsed_ms = timer.ElapsedMillis();
        OnComplete(tenant_id, elapsed_ms);
        TenantLatencyHistogram(tenant_id).Observe(elapsed_ms);
        done(std::move(reply));
      });
}

std::future<ServeReply> ShardRouter::PredictAsync(ServeRequest request) {
  auto promise = std::make_shared<std::promise<ServeReply>>();
  std::future<ServeReply> future = promise->get_future();
  PredictWithCallback(std::move(request), [promise](ServeReply reply) {
    promise->set_value(std::move(reply));
  });
  return future;
}

ServeReply ShardRouter::Predict(ServeRequest request) {
  return PredictAsync(std::move(request)).get();
}

void ShardRouter::OnComplete(const std::string& tenant_id,
                             double elapsed_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return;
  TenantEntry& tenant = it->second;
  if (tenant.in_flight > 0) --tenant.in_flight;
  const double sample_ms = std::max(kMinRequestMsSample, elapsed_ms);
  tenant.ewma_request_ms =
      tenant.ewma_request_ms <= 0.0
          ? sample_ms
          : (1.0 - kEwmaAlpha) * tenant.ewma_request_ms +
                kEwmaAlpha * sample_ms;
}

Result<TenantStats> ShardRouter::StatsFor(const std::string& tenant_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + tenant_id + "'");
  }
  const TenantEntry& tenant = it->second;
  TenantStats stats;
  stats.shard = tenant.shard;
  stats.requests = tenant.requests;
  stats.shed = tenant.shed;
  stats.in_flight = tenant.in_flight;
  stats.ewma_request_ms = tenant.ewma_request_ms;
  return stats;
}

std::vector<std::string> ShardRouter::tenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, entry] : tenants_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status ShardRouter::CheckHealth() const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return Status::Unavailable("shard router is shut down");
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ServiceHealth health = shards_[s]->Health();
    // A shard with no snapshot of its own is healthy in router use — every
    // routed request carries a tenant-pinned snapshot.
    if (health.shutdown) {
      return Status::Unavailable("shard " + std::to_string(s) +
                                 " is shut down");
    }
    if (!health.ok && health.has_snapshot) {
      return Status::Unavailable("shard " + std::to_string(s) +
                                 " is unhealthy (depth=" +
                                 std::to_string(health.queue_depth) + ")");
    }
  }
  return Status::Ok();
}

void ShardRouter::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  // Shard shutdown happens outside the router lock: draining a shard's
  // queue resolves completion callbacks that take the router lock.
  for (const std::unique_ptr<PredictionService>& shard : shards_) {
    shard->Shutdown();
  }
}

Result<RolloutReport> RunTenantStagedRollout(ShardRouter& router,
                                             const std::string& tenant_id,
                                             int64_t candidate_id,
                                             const std::vector<Example>& trace,
                                             const RolloutOptions& options) {
  TraceSpan span("serve.rollout");
  span.AddArg("candidate", candidate_id);

  ASSIGN_OR_RETURN(SnapshotRegistry * registry,
                   router.TenantRegistry(tenant_id));
  const std::optional<int64_t> active = registry->active_id();
  if (!active.has_value()) {
    return Status::FailedPrecondition("tenant '" + tenant_id +
                                      "' has no active snapshot to roll "
                                      "out against");
  }
  if (*active == candidate_id) {
    return Status::InvalidArgument("candidate " +
                                   std::to_string(candidate_id) +
                                   " is already the active snapshot");
  }
  ASSIGN_OR_RETURN(const SnapshotRecord candidate_record,
                   registry->Get(candidate_id));
  if (candidate_record.status == SnapshotStatus::kFailed) {
    return Status::FailedPrecondition(
        "candidate " + std::to_string(candidate_id) + " is marked failed");
  }
  ASSIGN_OR_RETURN(const SnapshotRecord active_record, registry->Get(*active));
  // Refuse to compare against drifted bytes: the decision below is only
  // meaningful when both arms serve exactly what was registered.
  RETURN_IF_ERROR(registry->Verify(*active));
  RETURN_IF_ERROR(registry->Verify(candidate_id));

  ASSIGN_OR_RETURN(ModelSnapshot baseline_loaded,
                   LoadSnapshot(active_record.path));
  ASSIGN_OR_RETURN(ModelSnapshot candidate_loaded,
                   LoadSnapshot(candidate_record.path));
  const auto baseline =
      std::make_shared<const ModelSnapshot>(std::move(baseline_loaded));
  const auto candidate =
      std::make_shared<const ModelSnapshot>(std::move(candidate_loaded));
  if (router.TenantSnapshot(tenant_id) == nullptr) {
    RETURN_IF_ERROR(router.SetTenantSnapshot(tenant_id, baseline));
  }

  RolloutOptions window_options = options;
  window_options.window =
      std::min<int>(options.window, static_cast<int>(trace.size()));
  span.AddArg("window", window_options.window);
  RolloutController controller(window_options);

  // Serve the window as this tenant: baseline traffic through the router
  // (the live data plane — quota, shedding and deadline budget all apply),
  // the canary fraction on the candidate directly with a baseline shadow
  // for the digest comparison. Indices are striped across client threads;
  // outcomes land in per-index slots, so the thread count cannot change the
  // decision.
  const int threads =
      std::max(1, std::min(options.client_threads, window_options.window));
  const auto serve_range = [&](int first) {
    for (int i = first; i < window_options.window; i += threads) {
      Timer timer;
      if (controller.RoutesToCanary(i)) {
        MetricsRegistry::Global()
            .counter("serve.rollout.canary_requests")
            .Increment();
        Result<ServedPrediction> served(
            Status::Internal("injected fault at rollout.canary"));
        if (CheckFault(kCanaryFaultSite, {FaultKind::kError}) !=
            FaultKind::kError) {
          served = candidate->Predict(trace[i]);
        }
        bool digest_match = true;
        if (served.ok()) {
          const Result<ServedPrediction> shadow = baseline->Predict(trace[i]);
          digest_match = shadow.ok() && PredictionDigest(*served) ==
                                            PredictionDigest(*shadow);
        }
        controller.RecordOutcome(i, served.ok(), digest_match,
                                 timer.ElapsedMillis());
      } else {
        ServeRequest request;
        request.tenant_id = tenant_id;
        request.example = trace[i];
        const ServeReply reply = router.Predict(std::move(request));
        controller.RecordOutcome(i, reply.ok(), true, timer.ElapsedMillis());
      }
    }
  };
  if (threads == 1) {
    serve_range(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back(serve_range, t);
    }
    for (std::thread& worker : workers) worker.join();
  }

  RolloutReport report = controller.Decide();
  span.AddArg("canary_requests", report.canary.requests);
  span.AddArg("canary_errors", report.canary.errors);
  span.AddArg("digest_mismatches", report.digest_mismatches);
  span.AddArg("promoted",
              report.decision == RolloutDecision::kPromote ? 1 : 0);

  if (report.decision == RolloutDecision::kPromote) {
    RETURN_IF_ERROR(registry->Activate(candidate_id));
    // The tenant-scoped RCU hot-swap: this tenant's requests admitted from
    // now on use the candidate; every other tenant's snapshot is untouched.
    RETURN_IF_ERROR(router.SetTenantSnapshot(tenant_id, candidate));
    TraceInstant("serve.rollout", "promote",
                 "tenant=" + tenant_id +
                     " candidate=" + std::to_string(candidate_id) + " " +
                     report.reason);
    MetricsRegistry::Global().counter("serve.rollout.promotions").Increment();
  } else {
    RETURN_IF_ERROR(registry->MarkFailed(candidate_id));
    TraceInstant("serve.rollout", "rollback",
                 "tenant=" + tenant_id +
                     " candidate=" + std::to_string(candidate_id) + " " +
                     report.reason);
    MetricsRegistry::Global().counter("serve.rollout.rollbacks").Increment();
    // The instant above lands in the flight-recorder ring first, so the
    // dumped timeline always contains the rollback that triggered it.
    (void)FlightRecorder::Global().TriggerIncident("rollout.rollback");
  }
  return report;
}

}  // namespace activedp
