#include "serve/snapshot_export.h"

#include <utility>
#include <vector>

#include "util/trace.h"

namespace activedp {

Result<ModelSnapshot> ExportSnapshot(ActiveDp& pipeline,
                                     const FrameworkContext& context,
                                     const SnapshotExportOptions& options) {
  if (!pipeline.has_label_model() && !pipeline.has_al_model()) {
    return Status::FailedPrecondition(
        "nothing to export: the run has trained neither a label model nor "
        "an AL model (call Step() first)");
  }
  TraceSpan span("serve.export");

  // Inference phase first: tunes the ConFusion threshold on validation and
  // produces the aggregated labels the end model trains on.
  const std::vector<std::vector<double>> soft_labels =
      pipeline.CurrentTrainingLabels();

  const Dataset& train = context.split->train;
  SnapshotState state;
  state.dataset = train.meta().name;
  state.task = train.meta().task;
  state.num_classes = context.num_classes;
  state.feature_dim = context.feature_dim;
  state.threshold = pipeline.last_threshold();

  if (state.task == TaskType::kTextClassification) {
    const auto* text =
        dynamic_cast<const TextFeaturizer*>(context.featurizer.get());
    if (text == nullptr) {
      return Status::Internal("text dataset without a TextFeaturizer");
    }
    state.vocab = train.vocabulary();
    state.tfidf_options = text->tfidf().options();
    state.idf = text->tfidf().idf_values();
  } else {
    const auto* tabular =
        dynamic_cast<const TabularFeaturizer*>(context.featurizer.get());
    if (tabular == nullptr) {
      return Status::Internal("tabular dataset without a TabularFeaturizer");
    }
    state.means = tabular->means();
    state.inv_stddevs = tabular->inv_stddevs();
  }

  if (pipeline.has_label_model()) {
    // LFs in selected (label-model column) order — the label model was fit
    // on the matrix restricted to exactly these columns.
    for (int column : pipeline.selected_lfs()) {
      state.lfs.push_back(pipeline.lfs()[column]);
    }
    const LabelModel* label_model = pipeline.label_model();
    state.label_model_name = label_model->name();
    ASSIGN_OR_RETURN(state.label_model_params,
                     label_model->SerializeParams());
  }

  if (pipeline.has_al_model()) {
    state.al_weights = pipeline.al_model()->weights();
  }

  if (options.include_end_model) {
    const Result<LogisticRegression> end_model =
        TrainEndModel(context.train_features, soft_labels, state.num_classes,
                      state.feature_dim, options.end_model);
    if (end_model.ok()) {
      state.end_weights = end_model->weights();
    } else {
      // Too few labelled rows (or a degenerate fit) is not fatal to the
      // snapshot: serving falls back to the aggregate path only.
      TraceInstant("serve", "export.end_model_skipped",
                   end_model.status().ToString());
    }
  }

  span.AddArg("lfs", static_cast<int64_t>(state.lfs.size()));
  return ModelSnapshot::Create(std::move(state));
}

}  // namespace activedp
