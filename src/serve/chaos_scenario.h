#ifndef ACTIVEDP_SERVE_CHAOS_SCENARIO_H_
#define ACTIVEDP_SERVE_CHAOS_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/model_snapshot.h"
#include "util/fault.h"
#include "util/result.h"

namespace activedp {

/// One serving-side fault site and the fault kinds it can express. The
/// matrix (sites × kinds) is shared by bench/serve_chaos (the dedicated
/// gate) and bench/chaos_sweep (the whole-system accounting report), so the
/// two harnesses can never drift apart on what "full coverage" means.
struct ServeChaosSiteInfo {
  const char* site;
  uint32_t honored;
};

const std::vector<ServeChaosSiteInfo>& ServeChaosSites();

/// Kinds the serving matrix sweeps (error, corruption, torn write, latency
/// spike). Unhonored (site, kind) pairs assert zero fires — the sites
/// declare what they can express and the sweep verifies the declaration.
const std::vector<FaultKind>& ServeChaosKinds();

/// Everything a serve chaos scenario needs, built once per seed (training a
/// pipeline is the expensive part): two exported snapshots (A = baseline, B
/// = candidate) on disk and in memory, a request trace, and each snapshot's
/// offline prediction digest per trace row — the bitwise ground truth the
/// surviving-path check compares served responses against.
struct ServeChaosFixture {
  std::string dir;
  std::string snapshot_a_path;
  std::string snapshot_b_path;
  std::shared_ptr<const ModelSnapshot> snapshot_a;
  std::shared_ptr<const ModelSnapshot> snapshot_b;
  std::vector<Example> trace;
  std::vector<uint64_t> digests_a;
  std::vector<uint64_t> digests_b;
};

/// Trains a pipeline on a zoo dataset, exports snapshot A after `steps_a`
/// protocol steps and snapshot B after `steps_b` more, saves both under
/// `dir`, and precomputes the offline digests over the first `trace_size`
/// train examples.
Result<ServeChaosFixture> BuildServeChaosFixture(const std::string& dir,
                                                 const std::string& dataset,
                                                 double scale, uint64_t seed,
                                                 int steps_a, int steps_b,
                                                 int trace_size);

struct ServeChaosOutcome {
  bool passed = true;
  std::string failure;
  /// Injected-fault fires observed by the armed site.
  int fires = 0;
  /// Pieces of evidence the fault was handled: clean rejections, detected
  /// corruption, circuit-breaker trips, rollout rollbacks, absorbed spikes.
  int evidence = 0;
  /// Served responses on the surviving path whose digest diverged from the
  /// offline prediction of whichever snapshot should be serving. Must be 0.
  int digest_mismatches = 0;
  double elapsed_seconds = 0.0;

  void Fail(const std::string& why) {
    passed = false;
    if (!failure.empty()) failure += "; ";
    failure += why;
  }
};

/// Runs one (site, kind, seed) serving chaos scenario and asserts the
/// ServeGuard contract (DESIGN.md §11):
///
///   - nothing crashes; every injected fault is either cleanly rejected
///     (non-OK status, detected corruption) or auto-recovered (circuit
///     breaker back to last-known-good, rollout rollback, absorbed latency
///     spike) — counted in `evidence`;
///   - after the fault, the service still serves and every response is
///     bitwise identical to the offline prediction of the snapshot that
///     should be active (`digest_mismatches` == 0);
///   - registry state stays consistent: a failed or torn manifest write
///     never leaves partial state, a condemned candidate is marked failed,
///     a rollback re-activates the previous healthy snapshot;
///   - unhonored (site, kind) pairs never fire.
///
/// Each scenario sets up a fresh registry + service from the fixture, so
/// scenarios are independent and order-insensitive.
ServeChaosOutcome RunServeChaosScenario(const ServeChaosFixture& fixture,
                                        std::string_view site, FaultKind kind,
                                        uint64_t seed);

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_CHAOS_SCENARIO_H_
