#include "serve/chaos_scenario.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "core/activedp.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "serve/prediction_service.h"
#include "serve/rollout.h"
#include "serve/serve_client.h"
#include "serve/snapshot_export.h"
#include "serve/snapshot_io.h"
#include "serve/snapshot_registry.h"
#include "util/retry.h"
#include "util/timer.h"

namespace activedp {
namespace {

/// Routing seed for the rollout drills: fixed so the canary index set (and
/// with it the promote/rollback expectations) is identical across scenario
/// seeds and harnesses.
constexpr uint64_t kRolloutSeed = 0x5eed;

Result<std::vector<uint64_t>> OfflineDigests(const ModelSnapshot& snapshot,
                                             const std::vector<Example>& trace) {
  std::vector<uint64_t> digests;
  digests.reserve(trace.size());
  for (const Example& example : trace) {
    ASSIGN_OR_RETURN(const ServedPrediction prediction,
                     snapshot.Predict(example));
    digests.push_back(PredictionDigest(prediction));
  }
  return digests;
}

}  // namespace

const std::vector<ServeChaosSiteInfo>& ServeChaosSites() {
  static const std::vector<ServeChaosSiteInfo>* sites =
      new std::vector<ServeChaosSiteInfo>{
          {"snapshot.save", FaultKindBit(FaultKind::kError) |
                                FaultKindBit(FaultKind::kTruncateWrite)},
          {"serve.snapshot_load", FaultKindBit(FaultKind::kError) |
                                      FaultKindBit(FaultKind::kCorrupt)},
          {"serve.dispatch", FaultKindBit(FaultKind::kError)},
          {"serve.predict", FaultKindBit(FaultKind::kLatencySpike)},
          {"registry.save", FaultKindBit(FaultKind::kError) |
                                FaultKindBit(FaultKind::kTruncateWrite)},
          {"rollout.canary", FaultKindBit(FaultKind::kError)},
      };
  return *sites;
}

const std::vector<FaultKind>& ServeChaosKinds() {
  static const std::vector<FaultKind>* kinds = new std::vector<FaultKind>{
      FaultKind::kError, FaultKind::kCorrupt, FaultKind::kTruncateWrite,
      FaultKind::kLatencySpike};
  return *kinds;
}

Result<ServeChaosFixture> BuildServeChaosFixture(const std::string& dir,
                                                 const std::string& dataset,
                                                 double scale, uint64_t seed,
                                                 int steps_a, int steps_b,
                                                 int trace_size) {
  std::filesystem::create_directories(dir);
  ServeChaosFixture fixture;
  fixture.dir = dir;
  fixture.snapshot_a_path =
      dir + "/chaos-snapshot-a-" + std::to_string(seed) + ".snapshot";
  fixture.snapshot_b_path =
      dir + "/chaos-snapshot-b-" + std::to_string(seed) + ".snapshot";

  ASSIGN_OR_RETURN(DataSplit split, MakeZooDataset(dataset, scale, seed));
  const FrameworkContext context = FrameworkContext::Build(split);
  ActiveDpOptions options;
  options.seed = seed ^ 23;
  ActiveDp pipeline(context, options);
  for (int t = 0; t < steps_a; ++t) RETURN_IF_ERROR(pipeline.Step());
  ASSIGN_OR_RETURN(ModelSnapshot early, ExportSnapshot(pipeline, context));
  fixture.snapshot_a =
      std::make_shared<const ModelSnapshot>(std::move(early));
  RETURN_IF_ERROR(SaveSnapshot(*fixture.snapshot_a, fixture.snapshot_a_path));

  for (int t = 0; t < steps_b; ++t) RETURN_IF_ERROR(pipeline.Step());
  ASSIGN_OR_RETURN(ModelSnapshot late, ExportSnapshot(pipeline, context));
  fixture.snapshot_b = std::make_shared<const ModelSnapshot>(std::move(late));
  RETURN_IF_ERROR(SaveSnapshot(*fixture.snapshot_b, fixture.snapshot_b_path));

  const int rows = std::min(trace_size, split.train.size());
  fixture.trace.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    fixture.trace.push_back(split.train.example(i));
  }
  ASSIGN_OR_RETURN(fixture.digests_a,
                   OfflineDigests(*fixture.snapshot_a, fixture.trace));
  ASSIGN_OR_RETURN(fixture.digests_b,
                   OfflineDigests(*fixture.snapshot_b, fixture.trace));
  return fixture;
}

ServeChaosOutcome RunServeChaosScenario(const ServeChaosFixture& fixture,
                                        std::string_view site, FaultKind kind,
                                        uint64_t seed) {
  ServeChaosOutcome outcome;
  Timer timer;

  const ServeChaosSiteInfo* info = nullptr;
  for (const ServeChaosSiteInfo& candidate : ServeChaosSites()) {
    if (site == candidate.site) info = &candidate;
  }
  if (info == nullptr || fixture.trace.size() < 8) {
    outcome.Fail("bad scenario setup (unknown site or tiny trace)");
    return outcome;
  }
  const bool honored = (FaultKindBit(kind) & info->honored) != 0;

  const std::string tag = std::string(site) + "-" +
                          std::string(FaultKindToString(kind)) + "-" +
                          std::to_string(seed);
  const std::string manifest = fixture.dir + "/registry-" + tag + ".manifest";
  std::filesystem::remove(manifest);

  // Un-faulted setup: registry with A active and B a registered candidate,
  // service serving A with a warm EWMA and A as the last-known-good.
  Result<SnapshotRegistry> opened = SnapshotRegistry::Open(manifest);
  if (!opened.ok()) {
    outcome.Fail("registry open failed: " + opened.status().ToString());
    return outcome;
  }
  SnapshotRegistry registry = std::move(*opened);
  const Result<int64_t> id_a =
      registry.Register(fixture.snapshot_a_path, -1, "baseline");
  const Result<int64_t> id_b =
      id_a.ok() ? registry.Register(fixture.snapshot_b_path, *id_a,
                                    "candidate")
                : id_a;
  if (!id_a.ok() || !id_b.ok() || !registry.Activate(*id_a).ok()) {
    outcome.Fail("registry setup failed");
    return outcome;
  }

  PredictionServiceOptions service_options;
  service_options.max_batch_size = 8;
  service_options.max_batch_delay_ms = 0.2;
  service_options.breaker_threshold = 2;
  PredictionService service(service_options);
  service.LoadSnapshot(fixture.snapshot_a);
  for (int i = 0; i < 4; ++i) {
    if (!service.Predict(fixture.trace[i]).ok()) {
      outcome.Fail("warm-up request failed");
      return outcome;
    }
  }

  // Which snapshot's offline digests the surviving path must match; drills
  // that legitimately end on the candidate switch this to B.
  const std::vector<uint64_t>* expected = &fixture.digests_a;

  FaultSpec spec;
  spec.kind = kind;
  spec.seed = seed;
  spec.max_fires = -1;
  if (site == "serve.dispatch") {
    spec.max_fires = service_options.breaker_threshold;
  } else if (site == "serve.predict") {
    spec.max_fires = 3;
  }
  {
    FaultScope scope(std::string(site), spec);

    if (site == "snapshot.save") {
      const std::string resave = fixture.dir + "/resave-" + tag + ".snapshot";
      std::filesystem::remove(resave);
      const Status saved = SaveSnapshot(*fixture.snapshot_a, resave);
      const Result<ModelSnapshot> loaded =
          saved.ok() ? LoadSnapshot(resave)
                     : Result<ModelSnapshot>(saved);
      if (honored) {
        // kError: clean rejection at save. kTruncateWrite: the save lies
        // (reports success); the torn file must be *detected* on load.
        if (!saved.ok() || !loaded.ok()) {
          ++outcome.evidence;
        } else {
          outcome.Fail("torn snapshot export loaded cleanly");
        }
      } else if (!saved.ok() || !loaded.ok()) {
        outcome.Fail("unhonored kind disturbed the save/load roundtrip");
      }
      std::filesystem::remove(resave);
    } else if (site == "serve.snapshot_load") {
      const Result<ModelSnapshot> loaded =
          LoadSnapshot(fixture.snapshot_b_path);
      if (honored) {
        // kError: injected read failure. kCorrupt: bit flip ahead of the
        // checksum — the verification itself must reject the bytes.
        if (loaded.ok()) {
          outcome.Fail("corrupted snapshot load succeeded");
        } else {
          ++outcome.evidence;
        }
      } else if (!loaded.ok()) {
        outcome.Fail("unhonored kind failed the load: " +
                     loaded.status().ToString());
      }
    } else if (site == "registry.save") {
      const size_t records_before = registry.records().size();
      const Result<int64_t> probe =
          registry.Register(fixture.snapshot_b_path, *id_b, "fault-probe");
      if (honored && kind == FaultKind::kError) {
        if (probe.ok()) {
          outcome.Fail("faulted manifest write reported success");
        } else {
          ++outcome.evidence;
        }
        // No partial state, in memory or on disk.
        if (registry.records().size() != records_before ||
            registry.active_id() != *id_a) {
          outcome.Fail("failed save left partial in-memory state");
        }
        const Result<SnapshotRegistry> reopened =
            SnapshotRegistry::Open(manifest);
        if (!reopened.ok() ||
            reopened->records().size() != records_before ||
            reopened->active_id() != *id_a) {
          outcome.Fail("failed save left partial on-disk state");
        }
      } else if (honored) {
        // kTruncateWrite: the write pretends to succeed, leaving a torn
        // manifest; reopening must detect it cleanly — an InvalidArgument,
        // never a half-loaded registry.
        if (!probe.ok()) {
          outcome.Fail("torn manifest write did not report success");
        }
        const Result<SnapshotRegistry> reopened =
            SnapshotRegistry::Open(manifest);
        if (reopened.ok()) {
          outcome.Fail("torn manifest reopened cleanly");
        } else if (reopened.status().code() != StatusCode::kInvalidArgument) {
          outcome.Fail("torn manifest surfaced unexpectedly: " +
                       reopened.status().ToString());
        } else {
          ++outcome.evidence;
        }
      } else {
        const Result<SnapshotRegistry> reopened =
            SnapshotRegistry::Open(manifest);
        if (!probe.ok() || !reopened.ok() ||
            reopened->records().size() != records_before + 1) {
          outcome.Fail("unhonored kind disturbed the manifest write");
        }
      }
    } else if (site == "rollout.canary") {
      RolloutOptions rollout;
      rollout.canary_fraction = 0.3;
      rollout.window = std::min<int>(64, static_cast<int>(fixture.trace.size()));
      rollout.min_canary_samples = 4;
      rollout.seed = kRolloutSeed;
      rollout.client_threads = 2;
      const Result<RolloutReport> report =
          RunStagedRollout(service, registry, *id_b, fixture.trace, rollout);
      if (!report.ok()) {
        outcome.Fail("rollout infrastructure failure: " +
                     report.status().ToString());
      } else if (honored) {
        // Every canary request failed; the candidate must be auto-rolled
        // back, condemned in the registry, and the service left on A.
        if (report->decision != RolloutDecision::kRollback) {
          outcome.Fail("faulted canary was promoted");
        } else {
          ++outcome.evidence;
        }
        const Result<SnapshotRecord> condemned = registry.Get(*id_b);
        if (registry.active_id() != *id_a || !condemned.ok() ||
            condemned->status != SnapshotStatus::kFailed) {
          outcome.Fail("rollback not recorded in the registry");
        }
      } else {
        // A clean canary window promotes; the service hot-swaps to the
        // candidate, so the surviving path must serve B's digests.
        if (report->decision != RolloutDecision::kPromote) {
          outcome.Fail("clean candidate was rolled back: " + report->reason);
        } else if (registry.active_id() != *id_b) {
          outcome.Fail("promotion not recorded in the registry");
        } else {
          expected = &fixture.digests_b;
        }
      }
    } else if (site == "serve.dispatch") {
      // Promote the candidate, then fail its first `breaker_threshold`
      // batches: the circuit breaker must degrade back to the last-known-
      // good snapshot (A) and the registry rollback must record it.
      if (!registry.Activate(*id_b).ok()) {
        outcome.Fail("candidate activation failed");
      }
      service.LoadSnapshot(fixture.snapshot_b);
      RetryPolicy policy;
      policy.max_attempts = service_options.breaker_threshold + 2;
      policy.seed = seed;
      RetryLog retry_log;
      const Result<ServedPrediction> recovered = PredictWithRetry(
          service, fixture.trace[0], Deadline::Infinite(), policy, &retry_log);
      if (honored) {
        if (!recovered.ok()) {
          outcome.Fail("client retry did not recover after the breaker: " +
                       recovered.status().ToString());
        }
        if (service.breaker_trips() < 1 ||
            service.snapshot() != fixture.snapshot_a) {
          outcome.Fail("breaker did not restore the last-known-good");
        } else {
          ++outcome.evidence;
        }
        if (retry_log.count("serve.submit") < 1) {
          outcome.Fail("failed batches left no retry evidence");
        }
        const Result<int64_t> back = registry.Rollback();
        const Result<SnapshotRecord> condemned = registry.Get(*id_b);
        if (!back.ok() || *back != *id_a || !condemned.ok() ||
            condemned->status != SnapshotStatus::kFailed) {
          outcome.Fail("registry rollback did not re-activate the baseline");
        } else {
          ++outcome.evidence;
        }
      } else {
        if (!recovered.ok() || service.breaker_trips() != 0) {
          outcome.Fail("unhonored kind disturbed dispatch");
        }
        expected = &fixture.digests_b;
      }
    }
    // site == "serve.predict" has no drill of its own: the latency spikes
    // fire inside the surviving-path sweep below, which must stay OK and
    // bitwise-correct regardless.

    // Surviving-path check: the service must still serve, and every
    // response must bitwise match the offline prediction of whichever
    // snapshot should now be active.
    for (size_t i = 0; i < fixture.trace.size(); ++i) {
      const Result<ServedPrediction> served =
          service.Predict(fixture.trace[i]);
      if (!served.ok()) {
        outcome.Fail("surviving-path request " + std::to_string(i) +
                     " failed: " + served.status().ToString());
        break;
      }
      if (PredictionDigest(*served) != (*expected)[i]) {
        ++outcome.digest_mismatches;
      }
    }
    if (outcome.digest_mismatches > 0) {
      outcome.Fail("served-digest divergence on the surviving path (" +
                   std::to_string(outcome.digest_mismatches) + " rows)");
    }

    outcome.fires = scope.fire_count();
  }

  // Latency spikes are self-evidencing: they fired, yet the sweep above
  // stayed OK and bitwise-correct — the fault was absorbed, not swallowed.
  if (site == "serve.predict" && honored && outcome.fires > 0 &&
      outcome.digest_mismatches == 0) {
    ++outcome.evidence;
  }

  if (!honored && outcome.fires > 0) {
    outcome.Fail("unhonored kind fired " + std::to_string(outcome.fires) +
                 " times");
  }
  if (honored && outcome.fires == 0) {
    outcome.Fail("site was never exercised (0 fires)");
  }
  if (outcome.fires > 0 && outcome.evidence == 0) {
    outcome.Fail("injected faults left no rejection/recovery evidence");
  }

  outcome.elapsed_seconds = timer.ElapsedSeconds();
  std::filesystem::remove(manifest);
  return outcome;
}

}  // namespace activedp
