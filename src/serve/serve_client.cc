#include "serve/serve_client.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "serve/shard_router.h"

namespace activedp {
namespace {

constexpr char kSubmitSite[] = "serve.submit";

bool RetryableAtSubmit(const Status& status) {
  // Unavailable = shed / full queue / quota / mid-swap hiccup: the service
  // told us to come back. Internal = a failed batch (injected dispatch
  // fault or a bad candidate snapshot): the breaker may have already
  // degraded to the last-known-good, so a retry can land on a healthy
  // snapshot.
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kInternal;
}

/// The retry core both front-ends share: `submit` is one blocking
/// submission through whichever entry point (service or router).
ServeReply PredictWithRetryImpl(
    const std::function<ServeReply(const ServeRequest&)>& submit,
    const ServeRequest& request, const RetryPolicy& policy, RetryLog* log) {
  const Deadline deadline = request.deadline;
  const int attempts = std::max(1, policy.max_attempts);
  const int64_t invocation = log != nullptr ? log->NextInvocation() : 0;
  ServeReply last =
      ServeReply::Error(Status::Internal("prediction was never attempted"));
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = submit(request);
    if (last.ok()) {
      if (log != nullptr && attempt > 1) log->MarkRecovered(invocation);
      return last;
    }
    if (!RetryableAtSubmit(last.status)) return last;
    if (attempt == attempts || deadline.expired()) break;

    const int retry = attempt;  // 1-based retry index within this invocation
    double backoff_ms = RetryBackoffMs(policy, kSubmitSite, retry - 1, retry);
    // The service knows its own backlog better than our schedule does:
    // honour whichever wait is longer — but never wait past the request's
    // own deadline: a hint from a deep backlog can exceed the remaining
    // budget, and sleeping through it would guarantee the retry expires.
    if (last.reject.has_value() && last.reject->retry_after_ms > 0.0) {
      backoff_ms = std::max(backoff_ms, last.reject->retry_after_ms);
    }
    if (!deadline.is_infinite()) {
      // Clamp to half the remaining budget: sleeping the full remainder
      // would wake exactly at expiry, burning the attempt on a deadline
      // check instead of a retry that can still make it.
      backoff_ms = std::min(
          backoff_ms,
          std::max(0.0, deadline.remaining_seconds() * 1000.0 / 2.0));
    }
    if (log != nullptr) {
      log->Record(RetryEvent{kSubmitSite, retry, backoff_ms,
                             last.status.ToString(), false, invocation});
    }
    if (policy.sleep && backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }
  return last;
}

}  // namespace

ServeReply PredictWithRetry(PredictionService& service, ServeRequest request,
                            const RetryPolicy& policy, RetryLog* log) {
  return PredictWithRetryImpl(
      [&service](const ServeRequest& r) {
        ServeRequest copy = r;
        return service.Predict(std::move(copy));
      },
      request, policy, log);
}

ServeReply PredictWithRetry(ShardRouter& router, ServeRequest request,
                            const RetryPolicy& policy, RetryLog* log) {
  return PredictWithRetryImpl(
      [&router](const ServeRequest& r) {
        ServeRequest copy = r;
        return router.Predict(std::move(copy));
      },
      request, policy, log);
}

Result<ServedPrediction> PredictWithRetry(PredictionService& service,
                                          const Example& example,
                                          Deadline deadline,
                                          const RetryPolicy& policy,
                                          RetryLog* log) {
  ServeRequest request;
  request.example = example;
  request.deadline = deadline;
  return PredictWithRetry(service, std::move(request), policy, log)
      .ToResult();
}

}  // namespace activedp
