#include "serve/serve_client.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <string>
#include <thread>

#include "util/string_util.h"

namespace activedp {
namespace {

constexpr char kHintKey[] = "retry-after-ms=";
constexpr char kSubmitSite[] = "serve.submit";

bool RetryableAtSubmit(const Status& status) {
  // Unavailable = shed / full queue / mid-swap hiccup: the service told us
  // to come back. Internal = a failed batch (injected dispatch fault or a
  // bad candidate snapshot): the breaker may have already degraded to the
  // last-known-good, so a retry can land on a healthy snapshot.
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kInternal;
}

}  // namespace

std::optional<double> RetryAfterHintMs(const Status& status) {
  const std::string& message = status.message();
  const size_t pos = message.find(kHintKey);
  if (pos == std::string::npos) return std::nullopt;
  size_t end = pos + sizeof(kHintKey) - 1;
  const size_t start = end;
  while (end < message.size() &&
         (std::isdigit(static_cast<unsigned char>(message[end])) ||
          message[end] == '.')) {
    ++end;
  }
  double ms = 0.0;
  if (end == start || !ParseDouble(message.substr(start, end - start), &ms)) {
    return std::nullopt;
  }
  return ms;
}

Result<ServedPrediction> PredictWithRetry(PredictionService& service,
                                          const Example& example,
                                          Deadline deadline,
                                          const RetryPolicy& policy,
                                          RetryLog* log) {
  const int attempts = std::max(1, policy.max_attempts);
  const int64_t invocation = log != nullptr ? log->NextInvocation() : 0;
  Result<ServedPrediction> last(
      Status::Internal("prediction was never attempted"));
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = service.Predict(example, deadline);
    if (last.ok()) {
      if (log != nullptr && attempt > 1) log->MarkRecovered(invocation);
      return last;
    }
    if (!RetryableAtSubmit(last.status())) return last;
    if (attempt == attempts || deadline.expired()) break;

    const int retry = attempt;  // 1-based retry index within this invocation
    double backoff_ms = RetryBackoffMs(policy, kSubmitSite, retry - 1, retry);
    // The service knows its own backlog better than our schedule does:
    // honour whichever wait is longer — but never wait past the request's
    // own deadline: a hint from a deep backlog can exceed the remaining
    // budget, and sleeping through it would guarantee the retry expires.
    const std::optional<double> hint = RetryAfterHintMs(last.status());
    if (hint.has_value()) backoff_ms = std::max(backoff_ms, *hint);
    if (!deadline.is_infinite()) {
      // Clamp to half the remaining budget: sleeping the full remainder
      // would wake exactly at expiry, burning the attempt on a deadline
      // check instead of a retry that can still make it.
      backoff_ms = std::min(
          backoff_ms,
          std::max(0.0, deadline.remaining_seconds() * 1000.0 / 2.0));
    }
    if (log != nullptr) {
      log->Record(RetryEvent{kSubmitSite, retry, backoff_ms,
                             last.status().ToString(), false, invocation});
    }
    if (policy.sleep && backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }
  return last;
}

}  // namespace activedp
