#ifndef ACTIVEDP_SERVE_MODEL_SNAPSHOT_H_
#define ACTIVEDP_SERVE_MODEL_SNAPSHOT_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/confusion.h"
#include "data/dataset.h"
#include "data/example.h"
#include "labelmodel/label_model.h"
#include "lf/label_function.h"
#include "math/matrix.h"
#include "ml/featurizer.h"
#include "ml/linear_model.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"
#include "util/result.h"

namespace activedp {

/// Current on-disk/state format version (see serve/snapshot_io.h). Bumped on
/// incompatible changes; loads of other versions are rejected.
inline constexpr int kSnapshotVersion = 1;

/// One served prediction: the ConFusion-aggregated soft label (Eq. 1), its
/// argmax, and which model produced it. `proba` is empty and `label` is
/// kAbstain when the instance is rejected (AL confidence below τ and every
/// selected LF abstains).
struct ServedPrediction {
  std::vector<double> proba;
  int label = kAbstain;
  LabelSource source = LabelSource::kRejected;
};

/// Serializable state of a finished ActiveDP run — everything inference
/// needs, nothing training needs. Plain data; ModelSnapshot::Create turns it
/// into a validated, predict-ready object and snapshot_io persists it.
struct SnapshotState {
  int version = kSnapshotVersion;
  std::string dataset;
  TaskType task = TaskType::kTextClassification;
  int num_classes = 0;
  int feature_dim = 0;
  /// ConFusion threshold τ tuned at export time.
  double threshold = 0.0;

  // Featurizer state. Text: vocabulary + TF-IDF idf table (idf size ==
  // vocabulary size == feature_dim). Tabular: per-feature standardization.
  Vocabulary vocab;
  TfidfOptions tfidf_options;
  std::vector<double> idf;
  std::vector<double> means;
  std::vector<double> inv_stddevs;

  /// The LabelPick-selected LFs, in label-model column order.
  std::vector<LfPtr> lfs;
  /// Fitted label-model parameters (labelmodel/label_model.h
  /// SerializeParams form); empty name = no label model in the snapshot.
  std::string label_model_name;
  std::string label_model_params;

  /// AL / downstream model weights (LogisticRegression layout: num_classes
  /// rows of [w, b]); either may be absent.
  std::optional<Matrix> al_weights;
  std::optional<Matrix> end_weights;
};

/// An immutable, predict-ready model bundle. Create() validates the state
/// and reconstructs the runtime objects once; afterwards every method is
/// const and thread-safe, so a snapshot can serve concurrent batches behind
/// a std::shared_ptr (serve/prediction_service.h hot-swaps them RCU-style).
///
/// Determinism: PredictBatch featurizes the whole batch into one CSR matrix
/// and scores each row off the packed storage; Predict runs the same per-row
/// scoring on a single transformed row. Both aggregate with the offline
/// ConFusion::Aggregate, which is row-independent — served outputs are
/// bitwise identical to the offline pipeline's for the same instance, at
/// every batch size and thread count.
class ModelSnapshot {
 public:
  /// Validates `state` (shape consistency, parseable label-model params,
  /// well-formed weight matrices; at least one model present) and builds the
  /// runtime featurizer and models. InvalidArgument on any inconsistency.
  static Result<ModelSnapshot> Create(SnapshotState state);

  ModelSnapshot(ModelSnapshot&&) = default;
  ModelSnapshot& operator=(ModelSnapshot&&) = default;

  const SnapshotState& state() const { return state_; }
  int num_classes() const { return state_.num_classes; }
  int feature_dim() const { return state_.feature_dim; }
  double threshold() const { return state_.threshold; }
  bool has_al_model() const { return al_model_.has_value(); }
  bool has_label_model() const { return label_model_ != nullptr; }
  bool has_end_model() const { return end_model_.has_value(); }

  /// Builds an Example from raw text against the snapshot vocabulary
  /// (tokenize, map to ids, sorted term counts — the dataset loaders'
  /// construction). FailedPrecondition on a tabular snapshot.
  Result<Example> MakeTextExample(std::string_view text) const;

  /// Builds an Example from raw tabular features. InvalidArgument when the
  /// width differs from feature_dim; FailedPrecondition on a text snapshot.
  Result<Example> MakeTabularExample(std::vector<double> features) const;

  /// ConFusion-aggregated prediction for one instance (Eq. 1 with the
  /// exported τ): the AL model when its confidence reaches τ, else the label
  /// model where a selected LF fires, else rejected.
  Result<ServedPrediction> Predict(const Example& example) const;

  /// Per-row predictions for a batch, computed on the process-wide
  /// ComputePool. Each row succeeds or fails independently; the result
  /// always has examples.size() entries in order.
  std::vector<Result<ServedPrediction>> PredictBatch(
      const std::vector<Example>& examples) const;

  /// Downstream-model probabilities, when end-model weights were exported.
  Result<std::vector<double>> EndModelProba(const Example& example) const;

 private:
  ModelSnapshot() = default;

  /// Shape validation shared by Predict and PredictBatch (tabular width
  /// check); never featurizes.
  Status ValidateExample(const Example& example) const;

  /// The scoring core behind Predict/PredictBatch: AL probabilities from a
  /// CSR row view of the features, LF row + label-model probabilities, then
  /// ConFusion::Aggregate. Both entry points funnel through this with the
  /// same per-row data, so served outputs are bitwise identical regardless
  /// of batch size. `indices/values/nnz` are ignored when there is no AL
  /// model (callers may pass nullptr/0).
  Result<ServedPrediction> PredictRow(const Example& example,
                                      const int32_t* indices,
                                      const double* values, int nnz) const;

  /// Fills `row` with each selected LF's vote on `example` and sets `active`
  /// if any vote is not kAbstain. Uses the inverted keyword index when every
  /// LF is a KeywordLf (one pass over the example's own tokens instead of a
  /// scan over all LFs); output is identical to the per-LF loop.
  void ApplyLfsRow(const Example& example, std::vector<int>* row,
                   bool* active) const;

  SnapshotState state_;
  std::unique_ptr<Featurizer> featurizer_;
  std::unique_ptr<LabelModel> label_model_;
  std::optional<LogisticRegression> al_model_;
  std::optional<LogisticRegression> end_model_;
  /// token_id -> [(lf column, label)] over state_.lfs; engaged only when all
  /// selected LFs are keyword LFs (built once in Create).
  std::optional<std::unordered_map<int, std::vector<std::pair<int, int>>>>
      keyword_index_;
};

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_MODEL_SNAPSHOT_H_
