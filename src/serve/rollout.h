#ifndef ACTIVEDP_SERVE_ROLLOUT_H_
#define ACTIVEDP_SERVE_ROLLOUT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/model_snapshot.h"
#include "serve/prediction_service.h"
#include "serve/snapshot_registry.h"
#include "util/result.h"

namespace activedp {

/// FNV-1a over the bit patterns of a served prediction (label, source, every
/// probability double) — the bitwise-equality fingerprint the rollout
/// comparator and the serve chaos harness both use. Matching digests mean
/// bitwise-identical predictions.
uint64_t PredictionDigest(const ServedPrediction& prediction);

enum class RolloutDecision { kPromote, kRollback };

std::string_view RolloutDecisionToString(RolloutDecision decision);

struct RolloutOptions {
  /// Fraction of request indices routed to the candidate arm, decided by a
  /// counter hash of (seed, index) — deterministic per index, independent of
  /// submission order or thread count.
  double canary_fraction = 0.1;
  /// Requests in the evaluation window (trace indices 0..window-1). The
  /// decision is taken once every index has a recorded outcome.
  int window = 256;
  /// Guard against deciding from noise: fewer recorded canary samples than
  /// this is an automatic rollback (the candidate was never really tested).
  int min_canary_samples = 8;
  /// The candidate's error rate may exceed the baseline's by at most this
  /// much; above it the candidate is rolled back.
  double max_error_rate_delta = 0.0;
  /// When true, every canary response must bitwise match the baseline
  /// snapshot's shadow prediction for the same instance — the gate for
  /// re-export/refresh rollouts where the candidate is supposed to be
  /// equivalent. Leave false for genuinely retrained candidates, where
  /// prediction drift is the point; mismatches are still counted.
  bool require_digest_match = false;
  /// Canary/baseline mean-latency ratio above which the candidate is rolled
  /// back. Wall-clock is inherently noisy, so this is 0 (informational only)
  /// by default — the ratio is always reported, never decisive, keeping the
  /// decision deterministic.
  double max_latency_ratio = 0.0;
  /// Routing seed: same (seed, window, fraction) → same canary index set.
  uint64_t seed = 0;
  /// Client threads RunStagedRollout fans the trace out over. Any value
  /// yields the same decision; >1 exists to prove that under TSan.
  int client_threads = 1;
};

struct RolloutArmStats {
  int requests = 0;
  int errors = 0;
  double total_latency_ms = 0.0;

  double error_rate() const {
    return requests > 0 ? static_cast<double>(errors) / requests : 0.0;
  }
  double mean_latency_ms() const {
    return requests > 0 ? total_latency_ms / requests : 0.0;
  }
};

/// The decision plus the evidence it was taken on — one line per gate in
/// Summary(), recorded in the RunTrace timeline by RunStagedRollout.
struct RolloutReport {
  RolloutDecision decision = RolloutDecision::kRollback;
  std::string reason;
  RolloutArmStats canary;
  RolloutArmStats baseline;
  /// Canary responses whose digest differed from the baseline snapshot's
  /// shadow prediction for the same instance.
  int digest_mismatches = 0;
  /// canary mean latency / baseline mean latency (0 when either arm empty).
  double latency_ratio = 0.0;

  std::string Summary() const;
};

/// The deterministic decision core of a staged rollout: routes request
/// indices between the active baseline and a candidate, accumulates
/// per-index outcomes, and turns a completed window into a
/// promote-or-rollback decision.
///
/// Determinism contract (tested under TSan in tests/rollout_test.cc): arm
/// assignment depends only on (seed, index); outcomes land in per-index
/// slots; Decide() folds the slots in index order. Any thread interleaving
/// of RecordOutcome calls therefore produces the identical report —
/// wall-clock latency is carried as evidence but never decides (unless
/// max_latency_ratio is explicitly set).
///
/// RecordOutcome is thread-safe; everything else is read-only after
/// construction.
class RolloutController {
 public:
  explicit RolloutController(RolloutOptions options);

  /// True when the counter hash of (seed, index) lands in the canary
  /// fraction. Pure function of the options.
  bool RoutesToCanary(int64_t index) const;

  /// Records the outcome of request `index` (whichever arm it routed to).
  /// `digest_matches_baseline` only matters for canary indices; pass true
  /// for baseline ones. Re-recording an index overwrites it.
  void RecordOutcome(int64_t index, bool ok, bool digest_matches_baseline,
                     double latency_ms);

  /// True once every index in [0, window) has an outcome.
  bool WindowComplete() const;

  /// Folds the recorded window into a decision. Unrecorded indices are
  /// ignored (call after WindowComplete() for the full-window decision).
  RolloutReport Decide() const;

  const RolloutOptions& options() const { return options_; }

 private:
  struct Slot {
    bool recorded = false;
    bool ok = false;
    bool digest_match = true;
    double latency_ms = 0.0;
  };

  const RolloutOptions options_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
};

/// Runs one staged rollout of registry candidate `candidate_id` against the
/// current active snapshot, end to end:
///
///   1. loads both snapshots from their registered paths (verifying the
///      registry checksums first);
///   2. serves trace indices 0..window-1 — baseline traffic through
///      `service` (the live data plane), the canary fraction evaluated on
///      the candidate directly, with a baseline shadow prediction for the
///      digest comparison;
///   3. decides via RolloutController, then commits the decision: promote =
///      registry.Activate(candidate) + service.LoadSnapshot(candidate) (the
///      RCU hot-swap — in-flight baseline batches drain untouched);
///      rollback = registry.MarkFailed(candidate), the service never sees
///      the candidate.
///
/// The whole run is wrapped in a "serve.rollout" span with
/// serve.rollout.promote / serve.rollout.rollback instants and
/// serve.rollout.* counters, so the decision and its evidence land in the
/// RunTrace timeline. The canary evaluation honours the "rollout.canary"
/// fault site (kError), which is how the chaos harness makes a candidate
/// look unhealthy on demand.
///
/// Returns the report; an error only for infrastructure failures (unknown
/// ids, unloadable snapshots, failed registry writes) — a rolled-back
/// candidate is a successful run with decision kRollback.
Result<RolloutReport> RunStagedRollout(PredictionService& service,
                                       SnapshotRegistry& registry,
                                       int64_t candidate_id,
                                       const std::vector<Example>& trace,
                                       const RolloutOptions& options);

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_ROLLOUT_H_
