#ifndef ACTIVEDP_SERVE_SERVE_TYPES_H_
#define ACTIVEDP_SERVE_SERVE_TYPES_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "data/example.h"
#include "serve/model_snapshot.h"
#include "util/deadline.h"
#include "util/result.h"

namespace activedp {

/// Why an admission path rejected a request. Carried in RejectInfo so
/// clients branch on a structured reason instead of parsing status text.
enum class RejectReason {
  kNone = 0,
  /// The service / router is shut down.
  kShutdown,
  /// The shard queue is at max_queue_depth.
  kQueueFull,
  /// The adaptive (EWMA) shedder estimated the backlog cannot drain within
  /// the configured delay budget.
  kOverloaded,
  /// The tenant is at its admission quota (max in-flight requests).
  kQuotaExceeded,
};

std::string_view RejectReasonToString(RejectReason reason);

/// Structured companion of an Unavailable rejection — what the old
/// "retry-after-ms=<n>" string hint carried, plus why. `retry_after_ms` is
/// the estimated time for the backlog to drain (floored at 1ms when the
/// estimate is warm, 0 when the service has no estimate — e.g. shutdown);
/// `queue_depth` is the depth the admission decision saw (shard queue for
/// shard-level rejections, tenant in-flight count for tenant-level ones).
struct RejectInfo {
  double retry_after_ms = 0.0;
  int queue_depth = 0;
  RejectReason reason = RejectReason::kNone;
};

/// One serving request: who is asking (tenant), what to predict, and how
/// long / how urgently. The unified argument of PredictionService and
/// ShardRouter prediction entry points (DESIGN.md §15).
///
/// `tenant_id` is empty for single-tenant use (the PredictionService serves
/// its own LoadSnapshot'd model); the ShardRouter requires it. `priority`
/// >= 1 lets a request bypass *adaptive* shedding (EWMA queue-delay checks)
/// — never hard limits (queue depth, tenant quota) or deadline checks.
struct ServeRequest {
  std::string tenant_id;
  Example example;
  Deadline deadline = Deadline::Infinite();
  int priority = 0;
};

/// One serving reply: the status, the prediction when OK, and — on
/// Unavailable rejections — the structured RejectInfo clients back off on.
struct ServeReply {
  Status status;
  /// Meaningful iff status.ok().
  ServedPrediction prediction;
  /// Set on admission rejections (shed / queue full / quota / shutdown).
  std::optional<RejectInfo> reject;

  bool ok() const { return status.ok(); }

  /// Collapses to the legacy Result shape (drops RejectInfo) — what the
  /// deprecated positional-arg shims return.
  Result<ServedPrediction> ToResult() const& {
    if (status.ok()) return prediction;
    return status;
  }
  Result<ServedPrediction> ToResult() && {
    if (status.ok()) return std::move(prediction);
    return std::move(status);
  }

  static ServeReply Ok(ServedPrediction prediction) {
    ServeReply reply;
    reply.prediction = std::move(prediction);
    return reply;
  }
  static ServeReply Error(Status status) {
    ServeReply reply;
    reply.status = std::move(status);
    return reply;
  }
  static ServeReply Rejected(Status status, RejectInfo info) {
    ServeReply reply;
    reply.status = std::move(status);
    reply.reject = info;
    return reply;
  }
};

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_SERVE_TYPES_H_
