#include "serve/prediction_service.h"

#include <chrono>
#include <utility>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

struct ServeMetrics {
  Counter& requests;
  Counter& rejected;
  Counter& expired;
  Counter& batches;
  Counter& swaps;
  Histogram& batch_size;
  Histogram& batch_latency_ms;

  static ServeMetrics& Get() {
    static ServeMetrics* metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      return new ServeMetrics{
          registry.counter("serve.requests"),
          registry.counter("serve.rejected"),
          registry.counter("serve.expired"),
          registry.counter("serve.batches"),
          registry.counter("serve.swaps"),
          registry.histogram("serve.batch_size",
                             {1, 2, 4, 8, 16, 32, 64, 128}),
          registry.histogram("serve.batch_latency_ms",
                             {0.1, 0.5, 1, 2, 5, 10, 25, 50, 100}),
      };
    }();
    return *metrics;
  }
};

std::future<Result<ServedPrediction>> ReadyFuture(Status status) {
  std::promise<Result<ServedPrediction>> promise;
  promise.set_value(Result<ServedPrediction>(std::move(status)));
  return promise.get_future();
}

}  // namespace

PredictionService::PredictionService(PredictionServiceOptions options)
    : options_(options) {
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

PredictionService::~PredictionService() { Shutdown(); }

void PredictionService::LoadSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_ = std::move(snapshot);
  }
  ServeMetrics::Get().swaps.Increment();
}

std::shared_ptr<const ModelSnapshot> PredictionService::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

std::future<Result<ServedPrediction>> PredictionService::PredictAsync(
    Example example, Deadline deadline) {
  ServeMetrics& metrics = ServeMetrics::Get();
  metrics.requests.Increment();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      metrics.rejected.Increment();
      return ReadyFuture(Status::Unavailable("prediction service is shut down"));
    }
    if (snapshot_ == nullptr) {
      metrics.rejected.Increment();
      return ReadyFuture(
          Status::FailedPrecondition("no model snapshot loaded"));
    }
    if (static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
      metrics.rejected.Increment();
      return ReadyFuture(Status::Unavailable(
          "prediction queue is full (" +
          std::to_string(options_.max_queue_depth) + " pending); retry"));
    }
    PendingRequest request;
    request.example = std::move(example);
    request.deadline = deadline;
    queue_.push_back(std::move(request));
    std::future<Result<ServedPrediction>> future =
        queue_.back().promise.get_future();
    queue_cv_.notify_all();
    return future;
  }
}

Result<ServedPrediction> PredictionService::Predict(Example example,
                                                    Deadline deadline) {
  return PredictAsync(std::move(example), deadline).get();
}

int PredictionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

void PredictionService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    queue_cv_.notify_all();
  }
  // Separate join lock so concurrent Shutdown calls serialize on the join
  // instead of racing std::thread::join (idempotent: joinable() is false
  // for every caller after the first).
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

void PredictionService::DispatchLoop() {
  using Clock = std::chrono::steady_clock;
  ServeMetrics& metrics = ServeMetrics::Get();
  while (true) {
    std::vector<PendingRequest> batch;
    std::shared_ptr<const ModelSnapshot> snapshot;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      // Micro-batch window: collect until the batch is full, the delay has
      // elapsed, or shutdown wants the queue drained now.
      const auto window_end =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 options_.max_batch_delay_ms));
      queue_cv_.wait_until(lock, window_end, [this] {
        return shutdown_ ||
               static_cast<int>(queue_.size()) >= options_.max_batch_size;
      });
      const int take = std::min<int>(static_cast<int>(queue_.size()),
                                     options_.max_batch_size);
      batch.reserve(take);
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      // Pin the snapshot current at dispatch: the RCU read side. A
      // concurrent LoadSnapshot affects later batches only.
      snapshot = snapshot_;
    }
    if (!batch.empty() && snapshot != nullptr) {
      metrics.batches.Increment();
      metrics.batch_size.Observe(static_cast<double>(batch.size()));
      RunBatch(snapshot, std::move(batch));
    }
  }
}

void PredictionService::RunBatch(
    const std::shared_ptr<const ModelSnapshot>& snapshot,
    std::vector<PendingRequest> batch) {
  ServeMetrics& metrics = ServeMetrics::Get();
  // Span from the dispatcher thread only; the per-row work inside
  // PredictBatch runs on compute-pool workers, which stay trace-silent.
  TraceSpan span("serve.batch");
  span.AddArg("size", static_cast<int64_t>(batch.size()));
  Timer timer;

  // Per-request deadlines are checked at dispatch: a request that spent its
  // budget in the queue fails fast instead of occupying batch capacity.
  std::vector<Example> examples;
  std::vector<int> live;
  examples.reserve(batch.size());
  live.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].deadline.expired()) {
      metrics.expired.Increment();
      batch[i].promise.set_value(Result<ServedPrediction>(
          Status::DeadlineExceeded("request expired while queued")));
      continue;
    }
    examples.push_back(batch[i].example);
    live.push_back(static_cast<int>(i));
  }
  span.AddArg("expired",
              static_cast<int64_t>(batch.size() - examples.size()));

  std::vector<Result<ServedPrediction>> results =
      snapshot->PredictBatch(examples);
  for (size_t k = 0; k < live.size(); ++k) {
    batch[live[k]].promise.set_value(std::move(results[k]));
  }
  metrics.batch_latency_ms.Observe(timer.ElapsedMillis());
}

}  // namespace activedp
