#include "serve/prediction_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "online/event_log.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

/// Floor for the EWMA per-request service-time sample. Batches on tiny
/// snapshots finish in microseconds; without a floor the estimated queue
/// delay rounds to ~0 and the shedder can never engage, which makes the
/// overload tests timing-dependent.
constexpr double kMinRequestMsSample = 0.0005;
/// EWMA smoothing: new = (1 - alpha) * old + alpha * sample.
constexpr double kEwmaAlpha = 0.2;
/// Bounded sleep injected by the "serve.predict" kLatencySpike fault site.
constexpr double kLatencySpikeMs = 20.0;

struct ServeMetrics {
  Counter& requests;
  Counter& rejected;
  Counter& expired;
  Counter& shed;
  Counter& breaker_trips;
  Counter& batches;
  Counter& swaps;
  Counter& feedback;
  Histogram& batch_size;
  Histogram& batch_latency_ms;

  static ServeMetrics& Get() {
    static ServeMetrics* metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      return new ServeMetrics{
          registry.counter("serve.requests"),
          registry.counter("serve.rejected"),
          registry.counter("serve.expired"),
          registry.counter("serve.shed"),
          registry.counter("serve.breaker_trips"),
          registry.counter("serve.batches"),
          registry.counter("serve.swaps"),
          registry.counter("serve.feedback"),
          // Bounds track the configured max batch (32 by default): fine
          // steps through the realistic 1..32 range, then two overflow
          // buckets so a raised max_batch_size still resolves.
          registry.histogram("serve.batch_size",
                             {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128}),
          // Real in-process batches complete in single-digit microseconds,
          // so the histogram needs sub-0.1ms buckets — with a 0.1ms first
          // bound every observation landed in one bucket and the latency
          // distribution was invisible.
          registry.histogram(
              "serve.batch_latency_ms",
              {0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1, 2, 5, 10, 25, 50, 100}),
      };
    }();
    return *metrics;
  }
};

/// Fires one flight-recorder incident from its destructor — declared
/// *before* a lock scope so the dump's file IO always runs after the lock
/// is released, even on the early-return admission paths.
struct DeferredIncident {
  const char* reason = nullptr;
  ~DeferredIncident() {
    if (reason != nullptr) {
      (void)FlightRecorder::Global().TriggerIncident(reason);
    }
  }
};

/// The retry-after carried in RejectInfo: the estimated time for the
/// backlog to drain, floored at 1ms so clients always get a usable hint.
double RetryAfterMs(double estimated_delay_ms) {
  return std::max(1.0, std::ceil(estimated_delay_ms));
}

}  // namespace

PredictionService::PredictionService(PredictionServiceOptions options)
    : options_(options) {
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

PredictionService::~PredictionService() { Shutdown(); }

void PredictionService::LoadSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_ = std::move(snapshot);
  }
  ServeMetrics::Get().swaps.Increment();
}

std::shared_ptr<const ModelSnapshot> PredictionService::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

void PredictionService::SetSnapshotResolver(SnapshotResolver resolver) {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_resolver_ = std::move(resolver);
}

double PredictionService::EstimatedQueueDelayMsLocked() const {
  // The delay a request admitted *now* would see: everything already queued
  // plus itself, each at the EWMA per-request service time. Zero until the
  // first batch completes (the shedder stays open while the estimate is
  // cold — admission-control decisions need evidence).
  return (static_cast<double>(queue_.size()) + 1.0) * ewma_request_ms_;
}

bool PredictionService::NoteWindowEventLocked(int64_t* window_start_us,
                                              int* count, int threshold) {
  if (threshold <= 0) return false;
  const int64_t now = ObsNowMicros();
  const int64_t window_us =
      static_cast<int64_t>(options_.incident_window_seconds * 1e6);
  if (now - *window_start_us > window_us) {
    *window_start_us = now;
    *count = 0;
  }
  if (++*count < threshold) return false;
  *count = 0;
  return true;
}

void PredictionService::Submit(ServeRequest request,
                               std::function<void(ServeReply)> resolve) {
  ServeMetrics& metrics = ServeMetrics::Get();
  metrics.requests.Increment();
  // Declared before the lock scope: its destructor (which does incident
  // file IO) runs after the lock_guard's on every return path below.
  DeferredIncident incident;
  // Per-tenant snapshot resolution happens before the admission lock: the
  // resolver takes its own (e.g. router) lock, and holding both at once
  // would be a lock-order hazard.
  std::shared_ptr<const ModelSnapshot> pinned;
  if (!request.tenant_id.empty()) {
    SnapshotResolver resolver;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      resolver = snapshot_resolver_;
    }
    if (resolver) pinned = resolver(request.tenant_id);
  }
  std::optional<ServeReply> immediate;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const int depth = static_cast<int>(queue_.size());
    if (shutdown_) {
      metrics.rejected.Increment();
      immediate = ServeReply::Rejected(
          Status::Unavailable("prediction service is shut down"),
          RejectInfo{0.0, depth, RejectReason::kShutdown});
    } else if (pinned == nullptr && snapshot_ == nullptr) {
      metrics.rejected.Increment();
      immediate = ServeReply::Error(
          Status::FailedPrecondition("no model snapshot loaded"));
    } else if (request.deadline.expired()) {
      metrics.expired.Increment();
      if (NoteWindowEventLocked(&deadline_window_start_us_,
                                &deadline_window_count_,
                                options_.deadline_storm_threshold)) {
        TraceInstant("serve", "deadline_storm",
                     std::to_string(options_.deadline_storm_threshold) +
                         " deadline failures within the incident window");
        incident.reason = "serve.deadline_storm";
      }
      immediate = ServeReply::Error(
          Status::DeadlineExceeded("request deadline already expired"));
    } else {
      const double estimate_ms = EstimatedQueueDelayMsLocked();
      // Predictive fail-fast: when the backlog estimate says this request
      // cannot reach dispatch before its deadline, reject now instead of
      // letting it queue up only to expire there.
      if (!request.deadline.is_infinite() &&
          estimate_ms > request.deadline.remaining_seconds() * 1000.0) {
        metrics.expired.Increment();
        if (NoteWindowEventLocked(&deadline_window_start_us_,
                                  &deadline_window_count_,
                                  options_.deadline_storm_threshold)) {
          TraceInstant("serve", "deadline_storm",
                       std::to_string(options_.deadline_storm_threshold) +
                           " deadline failures within the incident window");
          incident.reason = "serve.deadline_storm";
        }
        immediate = ServeReply::Error(Status::DeadlineExceeded(
            "request would expire while queued (depth=" +
            std::to_string(depth) + ", estimated " +
            std::to_string(estimate_ms) + "ms)"));
      } else if (options_.max_queue_delay_ms > 0.0 &&
                 estimate_ms > options_.max_queue_delay_ms &&
                 request.priority < 1) {
        // Adaptive overload shed: the queue is deep enough that it cannot
        // drain within the configured delay budget. Carry the depth and a
        // structured retry-after so clients back off instead of hammering.
        // priority >= 1 requests bypass this check (never the hard ones
        // below).
        metrics.rejected.Increment();
        metrics.shed.Increment();
        if (NoteWindowEventLocked(&shed_window_start_us_, &shed_window_count_,
                                  options_.shed_burst_threshold)) {
          TraceInstant("serve", "shed_burst",
                       std::to_string(options_.shed_burst_threshold) +
                           " requests shed within the incident window");
          incident.reason = "serve.shed_burst";
        }
        immediate = ServeReply::Rejected(
            Status::Unavailable("prediction service overloaded (depth=" +
                                std::to_string(depth) + ", estimated delay " +
                                std::to_string(estimate_ms) + "ms)"),
            RejectInfo{RetryAfterMs(estimate_ms), depth,
                       RejectReason::kOverloaded});
      } else if (depth >= options_.max_queue_depth) {
        metrics.rejected.Increment();
        immediate = ServeReply::Rejected(
            Status::Unavailable(
                "prediction queue is full (depth=" + std::to_string(depth) +
                " of max " + std::to_string(options_.max_queue_depth) + ")"),
            RejectInfo{
                RetryAfterMs(std::max(estimate_ms, options_.max_batch_delay_ms)),
                depth, RejectReason::kQueueFull});
      } else {
        PendingRequest pending;
        pending.request = std::move(request);
        pending.pinned = std::move(pinned);
        pending.resolve = std::move(resolve);
        queue_.push_back(std::move(pending));
        queue_cv_.notify_all();
      }
    }
  }
  // Rejections resolve outside the lock: the resolve callback may be a
  // router completion hook that takes the router lock.
  if (immediate) resolve(std::move(*immediate));
}

std::future<ServeReply> PredictionService::PredictAsync(ServeRequest request) {
  auto promise = std::make_shared<std::promise<ServeReply>>();
  std::future<ServeReply> future = promise->get_future();
  Submit(std::move(request), [promise](ServeReply reply) {
    promise->set_value(std::move(reply));
  });
  return future;
}

ServeReply PredictionService::Predict(ServeRequest request) {
  return PredictAsync(std::move(request)).get();
}

void PredictionService::PredictWithCallback(
    ServeRequest request, std::function<void(ServeReply)> done) {
  Submit(std::move(request), std::move(done));
}

std::future<Result<ServedPrediction>> PredictionService::PredictAsync(
    Example example, Deadline deadline) {
  auto promise = std::make_shared<std::promise<Result<ServedPrediction>>>();
  std::future<Result<ServedPrediction>> future = promise->get_future();
  ServeRequest request;
  request.example = std::move(example);
  request.deadline = deadline;
  Submit(std::move(request), [promise](ServeReply reply) {
    promise->set_value(std::move(reply).ToResult());
  });
  return future;
}

Result<ServedPrediction> PredictionService::Predict(Example example,
                                                    Deadline deadline) {
  return PredictAsync(std::move(example), deadline).get();
}

void PredictionService::AttachEventLog(EventLog* log) {
  std::lock_guard<std::mutex> lock(mutex_);
  event_log_ = log;
}

void PredictionService::AttachSloEngine(SloEngine* engine) {
  std::lock_guard<std::mutex> lock(mutex_);
  slo_engine_ = engine;
}

Result<uint64_t> PredictionService::RecordFeedback(const FeedbackEvent& event) {
  TraceSpan span("serve.feedback");
  EventLog* log = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return Status::Unavailable("prediction service is shut down");
    }
    log = event_log_;
  }
  if (log == nullptr) {
    return Status::FailedPrecondition(
        "no event log attached; feedback would not be durable");
  }
  // The append happens outside mutex_ (EventLog serializes itself), so a
  // slow fsync never stalls prediction admission.
  Result<uint64_t> seq = log->Append(event);
  if (seq.ok()) {
    span.AddArg("seq", static_cast<int64_t>(*seq));
    span.AddArg("type", static_cast<int64_t>(event.type));
    ServeMetrics::Get().feedback.Increment();
  }
  return seq;
}

int PredictionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

ServiceHealth PredictionService::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceHealth health;
  health.shutdown = shutdown_;
  health.has_snapshot = snapshot_ != nullptr;
  health.queue_depth = static_cast<int>(queue_.size());
  health.estimated_queue_delay_ms = EstimatedQueueDelayMsLocked();
  health.breaker_trips = breaker_trips_;
  health.ok =
      !shutdown_ && health.has_snapshot &&
      (options_.max_queue_delay_ms <= 0.0 ||
       health.estimated_queue_delay_ms <= options_.max_queue_delay_ms) &&
      health.queue_depth < options_.max_queue_depth;
  return health;
}

Status PredictionService::CheckHealth() const {
  const ServiceHealth health = Health();
  if (health.shutdown) {
    return Status::Unavailable("prediction service is shut down");
  }
  if (!health.has_snapshot) {
    return Status::FailedPrecondition("no model snapshot loaded");
  }
  if (!health.ok) {
    return Status::Unavailable(
        "prediction service overloaded (depth=" +
        std::to_string(health.queue_depth) + ", estimated delay " +
        std::to_string(health.estimated_queue_delay_ms) + "ms)");
  }
  SloEngine* engine = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    engine = slo_engine_;
  }
  if (engine != nullptr) {
    const SloStatus slo_status = engine->Evaluate();
    for (const SloResult& result : slo_status.results) {
      if (!result.met) {
        return Status::Unavailable("slo breach: " + result.name + " (" +
                                   result.detail + ")");
      }
    }
  }
  return Status::Ok();
}

int64_t PredictionService::breaker_trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breaker_trips_;
}

std::shared_ptr<const ModelSnapshot> PredictionService::last_known_good()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_good_;
}

void PredictionService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    queue_cv_.notify_all();
  }
  // Separate join lock so concurrent Shutdown calls serialize on the join
  // instead of racing std::thread::join (idempotent: joinable() is false
  // for every caller after the first).
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

void PredictionService::DispatchLoop() {
  using Clock = std::chrono::steady_clock;
  ServeMetrics& metrics = ServeMetrics::Get();
  while (true) {
    std::vector<PendingRequest> batch;
    std::shared_ptr<const ModelSnapshot> snapshot;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      // Micro-batch window: collect until the batch is full, the delay has
      // elapsed, or shutdown wants the queue drained now.
      const auto window_end =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 options_.max_batch_delay_ms));
      queue_cv_.wait_until(lock, window_end, [this] {
        return shutdown_ ||
               static_cast<int>(queue_.size()) >= options_.max_batch_size;
      });
      const int take = std::min<int>(static_cast<int>(queue_.size()),
                                     options_.max_batch_size);
      batch.reserve(take);
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      // Pin the snapshot current at dispatch: the RCU read side. A
      // concurrent LoadSnapshot affects later batches only. Tenant-pinned
      // requests carry their own snapshot and ignore this one.
      snapshot = snapshot_;
    }
    if (!batch.empty()) {
      metrics.batches.Increment();
      metrics.batch_size.Observe(static_cast<double>(batch.size()));
      RunBatch(snapshot, std::move(batch));
    }
  }
}

void PredictionService::RunBatch(
    const std::shared_ptr<const ModelSnapshot>& snapshot,
    std::vector<PendingRequest> batch) {
  ServeMetrics& metrics = ServeMetrics::Get();
  // Span from the dispatcher thread only; the per-row work inside
  // PredictBatch runs on compute-pool workers, which stay trace-silent.
  TraceSpan span("serve.batch");
  span.AddArg("size", static_cast<int64_t>(batch.size()));
  Timer timer;

  // Per-request deadlines are checked at dispatch: a request that spent its
  // budget in the queue fails fast instead of occupying batch capacity.
  // Live requests are then partitioned by effective snapshot — a tenant's
  // pinned snapshot, or the batch's dispatch snapshot — so one micro-batch
  // can serve many tenant models. Grouping never changes results:
  // PredictBatch is row-independent and bitwise deterministic.
  std::vector<std::optional<ServeReply>> replies(batch.size());
  std::vector<std::shared_ptr<const ModelSnapshot>> group_snapshots;
  std::vector<std::vector<int>> group_members;
  int live_count = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].request.deadline.expired()) {
      metrics.expired.Increment();
      replies[i] = ServeReply::Error(
          Status::DeadlineExceeded("request expired while queued"));
      continue;
    }
    const std::shared_ptr<const ModelSnapshot>& effective =
        batch[i].pinned != nullptr ? batch[i].pinned : snapshot;
    if (effective == nullptr) {
      replies[i] = ServeReply::Error(
          Status::FailedPrecondition("no model snapshot loaded"));
      continue;
    }
    size_t g = 0;
    while (g < group_snapshots.size() && group_snapshots[g] != effective) ++g;
    if (g == group_snapshots.size()) {
      group_snapshots.push_back(effective);
      group_members.emplace_back();
    }
    group_members[g].push_back(static_cast<int>(i));
    ++live_count;
  }
  span.AddArg("expired",
              static_cast<int64_t>(batch.size() - live_count));
  span.AddArg("snapshot_groups",
              static_cast<int64_t>(group_snapshots.size()));

  // Serving-side fault sites (bench/serve_chaos): a latency spike delays the
  // batch without failing it — results stay bitwise correct, tail latency
  // and queue-delay shedding absorb the hit; a dispatch fault fails the
  // whole batch, which is what arms the circuit breaker below.
  if (CheckFault("serve.predict", {FaultKind::kLatencySpike}) ==
      FaultKind::kLatencySpike) {
    span.AddArg("latency_spike_ms", static_cast<int64_t>(kLatencySpikeMs));
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(kLatencySpikeMs));
  }
  const bool dispatch_fault =
      CheckFault("serve.dispatch", {FaultKind::kError}) == FaultKind::kError;

  bool any_ok = false;
  for (size_t g = 0; g < group_snapshots.size(); ++g) {
    if (dispatch_fault) {
      span.AddArg("injected_dispatch_fault", 1);
      for (int idx : group_members[g]) {
        replies[idx] = ServeReply::Error(
            Status::Internal("injected fault at serve.dispatch"));
      }
      continue;
    }
    std::vector<Example> examples;
    examples.reserve(group_members[g].size());
    for (int idx : group_members[g]) {
      examples.push_back(batch[idx].request.example);
    }
    std::vector<Result<ServedPrediction>> results =
        group_snapshots[g]->PredictBatch(examples);
    for (size_t k = 0; k < group_members[g].size(); ++k) {
      const int idx = group_members[g][k];
      if (results[k].ok()) {
        any_ok = true;
        replies[idx] = ServeReply::Ok(std::move(*results[k]));
      } else {
        replies[idx] = ServeReply::Error(results[k].status());
      }
    }
  }
  const double elapsed_ms = timer.ElapsedMillis();
  metrics.batch_latency_ms.Observe(elapsed_ms);

  // Feed the admission-control EWMA and the circuit breaker. A batch counts
  // as failed only when it had live requests and none succeeded; enough
  // consecutive failures on the current snapshot degrade the service back to
  // the last snapshot that served a healthy batch. State commits *before*
  // the replies resolve, so a blocking caller that observes its result
  // always sees the post-batch EWMA/breaker state on its next admission.
  bool breaker_tripped = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (live_count > 0) {
      const double sample_ms = std::max(
          kMinRequestMsSample, elapsed_ms / static_cast<double>(live_count));
      ewma_request_ms_ = ewma_request_ms_ <= 0.0
                             ? sample_ms
                             : (1.0 - kEwmaAlpha) * ewma_request_ms_ +
                                   kEwmaAlpha * sample_ms;
      if (any_ok) {
        consecutive_failed_batches_ = 0;
        if (snapshot != nullptr) last_good_ = snapshot;
      } else {
        ++consecutive_failed_batches_;
        if (options_.breaker_threshold > 0 &&
            consecutive_failed_batches_ >= options_.breaker_threshold &&
            last_good_ != nullptr && last_good_ != snapshot_) {
          snapshot_ = last_good_;
          ++breaker_trips_;
          consecutive_failed_batches_ = 0;
          metrics.breaker_trips.Increment();
          metrics.swaps.Increment();
          TraceInstant("serve", "circuit_breaker",
                       "degraded to last-known-good snapshot after " +
                           std::to_string(options_.breaker_threshold) +
                           " consecutive failed batches");
          breaker_tripped = true;
        }
      }
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (replies[i].has_value()) {
      batch[i].resolve(std::move(*replies[i]));
    }
  }
  // Dump after the lock is gone and the replies are resolved — incident
  // file IO must never stall admission or the waiting callers.
  if (breaker_tripped) {
    (void)FlightRecorder::Global().TriggerIncident("serve.breaker_trip");
  }
}

}  // namespace activedp
