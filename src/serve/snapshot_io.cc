#include "serve/snapshot_io.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "util/atomic_file.h"
#include "util/string_util.h"

namespace activedp {
namespace {

constexpr char kHeaderPrefix[] = "activedp-snapshot v";
constexpr char kTerminator[] = "end";

Status AppendMatrixLine(const char* tag, const Matrix& weights,
                        std::ostringstream& out) {
  out << tag;
  for (int r = 0; r < weights.rows(); ++r) {
    for (int c = 0; c < weights.cols(); ++c) {
      out << ' ' << FormatExactDouble(weights(r, c));
    }
  }
  out << "\n";
  return Status::Ok();
}

Status AppendLfLine(const LabelFunction& lf, std::ostringstream& out) {
  if (const auto* keyword = dynamic_cast<const KeywordLf*>(&lf)) {
    if (keyword->word().find_first_of(" \t\n") != std::string::npos) {
      return Status::InvalidArgument("keyword contains whitespace: " +
                                     keyword->word());
    }
    out << "lf kw " << keyword->token_id() << ' ' << keyword->word() << ' '
        << keyword->label() << "\n";
    return Status::Ok();
  }
  if (const auto* stump = dynamic_cast<const ThresholdLf*>(&lf)) {
    out << "lf st " << stump->feature() << ' '
        << FormatExactDouble(stump->threshold()) << ' '
        << (stump->op() == StumpOp::kLessEqual ? "le" : "ge") << ' '
        << stump->label() << "\n";
    return Status::Ok();
  }
  return Status::Unimplemented("cannot serialize custom LF type: " +
                               lf.Name());
}

Status AppendDoubleVector(const char* tag, const std::vector<double>& values,
                          std::ostringstream& out) {
  out << tag;
  for (double v : values) out << ' ' << FormatExactDouble(v);
  out << "\n";
  return Status::Ok();
}

/// Parses `count` doubles from tokens[offset...]; InvalidArgument with the
/// section name on any shortfall or malformed token.
Status ParseDoubles(const std::vector<std::string>& tokens, size_t offset,
                    size_t count, const std::string& section,
                    std::vector<double>* out) {
  if (tokens.size() != offset + count) {
    return Status::InvalidArgument(
        "snapshot " + section + ": expected " + std::to_string(count) +
        " values, got " + std::to_string(tokens.size() - offset));
  }
  out->resize(count);
  for (size_t i = 0; i < count; ++i) {
    if (!ParseDouble(tokens[offset + i], &(*out)[i])) {
      return Status::InvalidArgument("snapshot " + section +
                                     ": bad value '" + tokens[offset + i] +
                                     "'");
    }
  }
  return Status::Ok();
}

Result<Matrix> ParseWeightsLine(const std::vector<std::string>& tokens,
                                int num_classes, int feature_dim,
                                const std::string& section) {
  const int cols = feature_dim + 1;
  std::vector<double> values;
  RETURN_IF_ERROR(ParseDoubles(
      tokens, 1, static_cast<size_t>(num_classes) * cols, section, &values));
  Matrix weights(num_classes, cols);
  for (int r = 0; r < num_classes; ++r) {
    for (int c = 0; c < cols; ++c) {
      weights(r, c) = values[static_cast<size_t>(r) * cols + c];
    }
  }
  return weights;
}

Result<LfPtr> ParseLfLine(const std::vector<std::string>& tokens,
                          const std::string& where) {
  if (tokens.size() >= 2 && tokens[1] == "kw") {
    int token_id = 0, label = 0;
    if (tokens.size() != 5 || !ParseInt(tokens[2], &token_id) ||
        !ParseInt(tokens[4], &label) || token_id < 0 || label < 0) {
      return Status::InvalidArgument("malformed keyword LF" + where);
    }
    return LfPtr(std::make_shared<KeywordLf>(token_id, tokens[3], label));
  }
  if (tokens.size() >= 2 && tokens[1] == "st") {
    int feature = 0, label = 0;
    double threshold = 0.0;
    if (tokens.size() != 6 || !ParseInt(tokens[2], &feature) ||
        !ParseDouble(tokens[3], &threshold) ||
        (tokens[4] != "le" && tokens[4] != "ge") ||
        !ParseInt(tokens[5], &label) || feature < 0 || label < 0) {
      return Status::InvalidArgument("malformed stump LF" + where);
    }
    return LfPtr(std::make_shared<ThresholdLf>(
        feature, threshold,
        tokens[4] == "le" ? StumpOp::kLessEqual : StumpOp::kGreaterEqual,
        label));
  }
  return Status::InvalidArgument("unknown LF kind" + where);
}

}  // namespace

Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path) {
  const SnapshotState& state = snapshot.state();
  if (state.dataset.find_first_of(" \t\n") != std::string::npos) {
    return Status::InvalidArgument("dataset name contains whitespace: " +
                                   state.dataset);
  }
  std::ostringstream out;
  out << kHeaderPrefix << state.version << "\n";
  out << "dataset " << (state.dataset.empty() ? "-" : state.dataset) << "\n";
  out << "task "
      << (state.task == TaskType::kTextClassification ? "text" : "tabular")
      << "\n";
  out << "classes " << state.num_classes << "\n";
  out << "dim " << state.feature_dim << "\n";
  out << "threshold " << FormatExactDouble(state.threshold) << "\n";
  if (state.task == TaskType::kTextClassification) {
    for (int id = 0; id < state.vocab.size(); ++id) {
      const std::string& word = state.vocab.GetWord(id);
      if (word.find_first_of(" \t\n") != std::string::npos) {
        return Status::InvalidArgument("vocabulary word contains whitespace: " +
                                       word);
      }
      out << "word " << word << ' ' << state.vocab.doc_frequency(id) << "\n";
    }
    out << "tfidf " << (state.tfidf_options.sublinear_tf ? 1 : 0) << ' '
        << (state.tfidf_options.l2_normalize ? 1 : 0);
    for (double v : state.idf) out << ' ' << FormatExactDouble(v);
    out << "\n";
  } else {
    RETURN_IF_ERROR(AppendDoubleVector("means", state.means, out));
    RETURN_IF_ERROR(AppendDoubleVector("invstd", state.inv_stddevs, out));
  }
  for (const LfPtr& lf : state.lfs) {
    RETURN_IF_ERROR(AppendLfLine(*lf, out));
  }
  if (!state.label_model_name.empty()) {
    out << "labelmodel " << state.label_model_name << ' '
        << state.label_model_params << "\n";
  }
  if (state.al_weights.has_value()) {
    RETURN_IF_ERROR(AppendMatrixLine("almodel", *state.al_weights, out));
  }
  if (state.end_weights.has_value()) {
    RETURN_IF_ERROR(AppendMatrixLine("endmodel", *state.end_weights, out));
  }
  out << kTerminator << "\n";
  // Atomic replace + checksum footer: a crash mid-save leaves the previous
  // snapshot intact, and corrupt/partial copies fail the checksum at load.
  return AtomicWriteFile(path, WithChecksumFooter(out.str()),
                         "snapshot.save");
}

Result<ModelSnapshot> LoadSnapshot(const std::string& path) {
  // "serve.snapshot_load" injects kError (transient read failure) or
  // kCorrupt (a bit flip the checksum below must catch): a bad snapshot is
  // rejected here and never becomes a servable object.
  ASSIGN_OR_RETURN(const std::string content,
                   ReadFileVerifyingChecksum(path, "serve.snapshot_load"));
  std::istringstream in{content};
  std::string line;
  if (!std::getline(in, line) ||
      !StartsWith(Trim(line), kHeaderPrefix)) {
    return Status::InvalidArgument("not an activedp snapshot file: " + path);
  }
  int version = 0;
  if (!ParseInt(Trim(line).substr(sizeof(kHeaderPrefix) - 1), &version)) {
    return Status::InvalidArgument("malformed snapshot version header: " +
                                   path);
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot version " + std::to_string(version) +
        " is not supported (expected " + std::to_string(kSnapshotVersion) +
        "): " + path);
  }

  SnapshotState state;
  state.version = version;
  std::vector<std::string> words;
  std::vector<int> doc_frequencies;
  bool saw_terminator = false;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    const std::string where = " at line " + std::to_string(line_number);
    const std::string& tag = tokens[0];
    if (tag == kTerminator) {
      saw_terminator = true;
      break;
    }
    if (tag == "dataset" && tokens.size() == 2) {
      state.dataset = tokens[1] == "-" ? "" : tokens[1];
    } else if (tag == "task" && tokens.size() == 2) {
      if (tokens[1] == "text") {
        state.task = TaskType::kTextClassification;
      } else if (tokens[1] == "tabular") {
        state.task = TaskType::kTabularClassification;
      } else {
        return Status::InvalidArgument("unknown snapshot task '" + tokens[1] +
                                       "'" + where);
      }
    } else if (tag == "classes" && tokens.size() == 2) {
      if (!ParseInt(tokens[1], &state.num_classes)) {
        return Status::InvalidArgument("bad class count" + where);
      }
    } else if (tag == "dim" && tokens.size() == 2) {
      if (!ParseInt(tokens[1], &state.feature_dim)) {
        return Status::InvalidArgument("bad feature dim" + where);
      }
    } else if (tag == "threshold" && tokens.size() == 2) {
      if (!ParseDouble(tokens[1], &state.threshold)) {
        return Status::InvalidArgument("bad threshold" + where);
      }
    } else if (tag == "word") {
      int df = 0;
      if (tokens.size() != 3 || !ParseInt(tokens[2], &df) || df < 0) {
        return Status::InvalidArgument("malformed vocabulary word" + where);
      }
      words.push_back(tokens[1]);
      doc_frequencies.push_back(df);
    } else if (tag == "tfidf") {
      int sublinear = 0, l2 = 0;
      if (tokens.size() < 3 || !ParseInt(tokens[1], &sublinear) ||
          !ParseInt(tokens[2], &l2)) {
        return Status::InvalidArgument("malformed tfidf line" + where);
      }
      state.tfidf_options.sublinear_tf = sublinear != 0;
      state.tfidf_options.l2_normalize = l2 != 0;
      RETURN_IF_ERROR(
          ParseDoubles(tokens, 3, tokens.size() - 3, "tfidf", &state.idf));
    } else if (tag == "means") {
      RETURN_IF_ERROR(
          ParseDoubles(tokens, 1, tokens.size() - 1, "means", &state.means));
    } else if (tag == "invstd") {
      RETURN_IF_ERROR(ParseDoubles(tokens, 1, tokens.size() - 1, "invstd",
                                   &state.inv_stddevs));
    } else if (tag == "lf") {
      ASSIGN_OR_RETURN(LfPtr lf, ParseLfLine(tokens, where));
      state.lfs.push_back(std::move(lf));
    } else if (tag == "labelmodel") {
      if (tokens.size() < 2) {
        return Status::InvalidArgument("malformed labelmodel line" + where);
      }
      state.label_model_name = tokens[1];
      state.label_model_params =
          Join({tokens.begin() + 2, tokens.end()}, " ");
    } else if (tag == "almodel" || tag == "endmodel") {
      if (state.num_classes < 2 || state.feature_dim <= 0) {
        return Status::InvalidArgument(
            "snapshot weights before classes/dim header" + where);
      }
      ASSIGN_OR_RETURN(
          Matrix weights,
          ParseWeightsLine(tokens, state.num_classes, state.feature_dim,
                           tag));
      if (tag == "almodel") {
        state.al_weights = std::move(weights);
      } else {
        state.end_weights = std::move(weights);
      }
    } else {
      return Status::InvalidArgument("unknown snapshot line '" + tag + "'" +
                                     where);
    }
  }
  if (!saw_terminator) {
    return Status::InvalidArgument(
        "snapshot is truncated (missing terminator): " + path);
  }
  if (!words.empty()) {
    state.vocab =
        Vocabulary::FromState(std::move(words), std::move(doc_frequencies));
  }
  return ModelSnapshot::Create(std::move(state));
}

}  // namespace activedp
