#ifndef ACTIVEDP_SERVE_SNAPSHOT_REGISTRY_H_
#define ACTIVEDP_SERVE_SNAPSHOT_REGISTRY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace activedp {

/// Current manifest format version; loads of future versions are rejected.
inline constexpr int kRegistryVersion = 1;

/// Lifecycle of a registered snapshot. A snapshot enters as kCandidate,
/// becomes kActive when promoted (retiring the previous active), kRetired
/// when superseded by a healthy successor, and kFailed when a rollout or the
/// serving-side circuit breaker condemned it — failed snapshots are never
/// re-activated by Rollback().
enum class SnapshotStatus { kCandidate, kActive, kRetired, kFailed };

std::string_view SnapshotStatusToString(SnapshotStatus status);

/// One manifest row: identity, lineage, provenance and health of an exported
/// snapshot file. `checksum` is the FNV-1a hash of the snapshot file's bytes
/// captured at Register time, so Verify() can detect on-disk drift later.
struct SnapshotRecord {
  int64_t id = 0;
  /// Snapshot this one was exported from / trained on top of (-1 = root).
  int64_t parent_id = -1;
  SnapshotStatus status = SnapshotStatus::kCandidate;
  std::string path;
  std::string checksum;
  /// Free-form export context ("dataset=youtube steps=30 ..."), single line.
  std::string context;
};

/// A persisted, checksummed catalogue of every exported ModelSnapshot:
/// version ids, parent lineage, export context, and status — the control
/// plane the staged-rollout controller and the serving circuit breaker
/// record their promote/rollback decisions in (DESIGN.md §11).
///
/// Durability contract: every mutation rewrites the whole manifest through
/// AtomicWriteFile + checksum footer (fault site "registry.save") and only
/// commits to memory after the write succeeded, so a failed or torn save
/// leaves both the in-memory state and the on-disk manifest exactly as they
/// were — no partial state, ever. Open() of a corrupt, truncated,
/// duplicate-id or future-version manifest is a clean InvalidArgument, never
/// a half-loaded registry.
///
/// Not thread-safe: the registry is a control-plane object owned by whoever
/// drives rollouts (one writer); the serving data plane never touches it.
class SnapshotRegistry {
 public:
  /// Loads the manifest at `manifest_path`, or starts an empty registry when
  /// the file does not exist yet (the manifest is first written by the first
  /// mutation). Rejects corrupt/truncated/future-version manifests.
  static Result<SnapshotRegistry> Open(std::string manifest_path);

  /// Registers the snapshot file at `snapshot_path` as a new kCandidate with
  /// the next version id. Reads the file to capture its checksum (NotFound
  /// when missing); `parent_id` must be -1 or a registered id. Returns the
  /// new id.
  Result<int64_t> Register(const std::string& snapshot_path, int64_t parent_id,
                           const std::string& context);

  /// Promotes `id` to kActive, retiring the previous active snapshot, and
  /// appends it to the activation history. Refuses failed snapshots.
  Status Activate(int64_t id);

  /// Condemns `id` (any status). A failed snapshot is never re-activated.
  Status MarkFailed(int64_t id);

  /// Marks the current active snapshot failed and re-activates the most
  /// recently active snapshot that is still healthy (not failed). Returns
  /// the re-activated id; FailedPrecondition when there is no active
  /// snapshot or no healthy predecessor to fall back to.
  Result<int64_t> Rollback();

  /// Re-reads the snapshot file behind `id` and compares its bytes against
  /// the checksum captured at Register time. OK, NotFound (file gone), or
  /// InvalidArgument (content drifted).
  Status Verify(int64_t id) const;

  std::optional<int64_t> active_id() const;
  Result<SnapshotRecord> Get(int64_t id) const;
  const std::vector<SnapshotRecord>& records() const { return records_; }
  /// Activation order, oldest first (ids may repeat across re-activations).
  const std::vector<int64_t>& history() const { return history_; }

  /// The parent chain starting at `id`: {id, parent, grandparent, ...}.
  /// Stops at a root or an unknown parent; cycle-safe.
  std::vector<int64_t> Lineage(int64_t id) const;

  const std::string& manifest_path() const { return manifest_path_; }

 private:
  SnapshotRegistry() = default;

  int FindIndex(int64_t id) const;  // -1 when unknown
  std::string Serialize() const;
  /// Writes the current in-memory state to disk ("registry.save" fault
  /// site). Callers mutate a copy, save, and only then commit.
  Status Save() const;

  std::string manifest_path_;
  std::vector<SnapshotRecord> records_;
  std::vector<int64_t> history_;
  int64_t next_id_ = 1;
};

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_SNAPSHOT_REGISTRY_H_
