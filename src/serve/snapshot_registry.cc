#include "serve/snapshot_registry.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/atomic_file.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace activedp {
namespace {

constexpr char kHeaderPrefix[] = "activedp-registry v";
constexpr char kTerminator[] = "end";

Result<std::string> ReadRawFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<SnapshotStatus> ParseStatus(const std::string& token,
                                   const std::string& where) {
  if (token == "candidate") return SnapshotStatus::kCandidate;
  if (token == "active") return SnapshotStatus::kActive;
  if (token == "retired") return SnapshotStatus::kRetired;
  if (token == "failed") return SnapshotStatus::kFailed;
  return Status::InvalidArgument("unknown snapshot status '" + token + "'" +
                                 where);
}

}  // namespace

std::string_view SnapshotStatusToString(SnapshotStatus status) {
  switch (status) {
    case SnapshotStatus::kCandidate:
      return "candidate";
    case SnapshotStatus::kActive:
      return "active";
    case SnapshotStatus::kRetired:
      return "retired";
    case SnapshotStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

Result<SnapshotRegistry> SnapshotRegistry::Open(std::string manifest_path) {
  SnapshotRegistry registry;
  registry.manifest_path_ = std::move(manifest_path);

  Result<std::string> read =
      ReadFileVerifyingChecksum(registry.manifest_path_);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) {
      return registry;  // first open: empty registry, written on first mutation
    }
    return read.status();
  }

  std::istringstream in{*read};
  std::string line;
  if (!std::getline(in, line) || !StartsWith(Trim(line), kHeaderPrefix)) {
    return Status::InvalidArgument("not an activedp registry manifest: " +
                                   registry.manifest_path_);
  }
  int version = 0;
  if (!ParseInt(Trim(line).substr(sizeof(kHeaderPrefix) - 1), &version)) {
    return Status::InvalidArgument("malformed registry version header: " +
                                   registry.manifest_path_);
  }
  if (version != kRegistryVersion) {
    return Status::InvalidArgument(
        "registry manifest version " + std::to_string(version) +
        " is not supported (expected " + std::to_string(kRegistryVersion) +
        "): " + registry.manifest_path_);
  }

  bool saw_terminator = false;
  int line_number = 1;
  int active_count = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    const std::string where = " at line " + std::to_string(line_number);
    const std::string& tag = tokens[0];
    if (tag == kTerminator) {
      saw_terminator = true;
      break;
    }
    if (tag == "snapshot") {
      long long id = 0, parent = 0;
      if (tokens.size() < 6 || !ParseInt64(tokens[1], &id) ||
          !ParseInt64(tokens[2], &parent)) {
        return Status::InvalidArgument("malformed snapshot record" + where);
      }
      if (id <= 0) {
        return Status::InvalidArgument("snapshot id must be positive" + where);
      }
      if (registry.FindIndex(id) >= 0) {
        return Status::InvalidArgument("duplicate snapshot id " +
                                       std::to_string(id) + where);
      }
      SnapshotRecord record;
      record.id = id;
      record.parent_id = parent;
      ASSIGN_OR_RETURN(record.status, ParseStatus(tokens[3], where));
      record.checksum = tokens[4];
      record.path = tokens[5];
      record.context =
          tokens.size() > 6 ? Join({tokens.begin() + 6, tokens.end()}, " ")
                            : "";
      if (record.context == "-") record.context.clear();
      if (record.status == SnapshotStatus::kActive) ++active_count;
      registry.records_.push_back(std::move(record));
      registry.next_id_ =
          std::max(registry.next_id_, static_cast<int64_t>(id) + 1);
    } else if (tag == "history") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        long long id = 0;
        if (!ParseInt64(tokens[i], &id)) {
          return Status::InvalidArgument("malformed history entry" + where);
        }
        if (registry.FindIndex(id) < 0) {
          return Status::InvalidArgument(
              "history references unknown snapshot " + std::to_string(id) +
              where);
        }
        registry.history_.push_back(id);
      }
    } else {
      return Status::InvalidArgument("unknown registry line '" + tag + "'" +
                                     where);
    }
  }
  if (!saw_terminator) {
    return Status::InvalidArgument(
        "registry manifest is truncated (missing terminator): " +
        registry.manifest_path_);
  }
  if (active_count > 1) {
    return Status::InvalidArgument(
        "registry manifest has " + std::to_string(active_count) +
        " active snapshots (at most one allowed): " + registry.manifest_path_);
  }
  return registry;
}

int SnapshotRegistry::FindIndex(int64_t id) const {
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

std::string SnapshotRegistry::Serialize() const {
  std::ostringstream out;
  out << kHeaderPrefix << kRegistryVersion << "\n";
  for (const SnapshotRecord& record : records_) {
    out << "snapshot " << record.id << ' ' << record.parent_id << ' '
        << SnapshotStatusToString(record.status) << ' ' << record.checksum
        << ' ' << record.path << ' '
        << (record.context.empty() ? "-" : record.context) << "\n";
  }
  out << "history";
  for (int64_t id : history_) out << ' ' << id;
  out << "\n";
  out << kTerminator << "\n";
  return out.str();
}

Status SnapshotRegistry::Save() const {
  return AtomicWriteFile(manifest_path_, WithChecksumFooter(Serialize()),
                         "registry.save");
}

Result<int64_t> SnapshotRegistry::Register(const std::string& snapshot_path,
                                           int64_t parent_id,
                                           const std::string& context) {
  if (snapshot_path.find_first_of(" \t\n") != std::string::npos) {
    return Status::InvalidArgument("snapshot path contains whitespace: " +
                                   snapshot_path);
  }
  if (context.find('\n') != std::string::npos) {
    return Status::InvalidArgument("snapshot context must be a single line");
  }
  if (parent_id != -1 && FindIndex(parent_id) < 0) {
    return Status::InvalidArgument("unknown parent snapshot " +
                                   std::to_string(parent_id));
  }
  ASSIGN_OR_RETURN(const std::string bytes, ReadRawFile(snapshot_path));

  // Mutate a copy, persist it, and only then commit: a failed manifest write
  // must leave this registry exactly as it was.
  SnapshotRegistry next = *this;
  SnapshotRecord record;
  record.id = next.next_id_++;
  record.parent_id = parent_id;
  record.status = SnapshotStatus::kCandidate;
  record.path = snapshot_path;
  record.checksum = ContentChecksum(bytes);
  record.context = context;
  next.records_.push_back(record);
  RETURN_IF_ERROR(next.Save());
  *this = std::move(next);
  TraceInstant("serve.registry", "register",
               "id=" + std::to_string(record.id) +
                   " parent=" + std::to_string(parent_id));
  MetricsRegistry::Global().counter("serve.registry.registered").Increment();
  return record.id;
}

Status SnapshotRegistry::Activate(int64_t id) {
  const int index = FindIndex(id);
  if (index < 0) {
    return Status::NotFound("unknown snapshot " + std::to_string(id));
  }
  if (records_[index].status == SnapshotStatus::kFailed) {
    return Status::FailedPrecondition(
        "snapshot " + std::to_string(id) +
        " is marked failed and cannot be activated");
  }
  SnapshotRegistry next = *this;
  for (SnapshotRecord& record : next.records_) {
    if (record.status == SnapshotStatus::kActive && record.id != id) {
      record.status = SnapshotStatus::kRetired;
    }
  }
  next.records_[index].status = SnapshotStatus::kActive;
  next.history_.push_back(id);
  RETURN_IF_ERROR(next.Save());
  *this = std::move(next);
  TraceInstant("serve.registry", "activate", "id=" + std::to_string(id));
  MetricsRegistry::Global().counter("serve.registry.activations").Increment();
  return Status::Ok();
}

Status SnapshotRegistry::MarkFailed(int64_t id) {
  const int index = FindIndex(id);
  if (index < 0) {
    return Status::NotFound("unknown snapshot " + std::to_string(id));
  }
  SnapshotRegistry next = *this;
  next.records_[index].status = SnapshotStatus::kFailed;
  RETURN_IF_ERROR(next.Save());
  *this = std::move(next);
  TraceInstant("serve.registry", "mark_failed", "id=" + std::to_string(id));
  MetricsRegistry::Global().counter("serve.registry.failures").Increment();
  return Status::Ok();
}

Result<int64_t> SnapshotRegistry::Rollback() {
  const std::optional<int64_t> active = active_id();
  if (!active.has_value()) {
    return Status::FailedPrecondition("no active snapshot to roll back from");
  }
  // The most recently active snapshot that is still healthy: walk the
  // activation history backwards, skipping the condemned current active and
  // anything already marked failed.
  int64_t target = -1;
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (*it == *active) continue;
    const int index = FindIndex(*it);
    if (index < 0) continue;
    if (records_[index].status == SnapshotStatus::kFailed) continue;
    target = *it;
    break;
  }
  if (target < 0) {
    return Status::FailedPrecondition(
        "no healthy predecessor to roll back to from snapshot " +
        std::to_string(*active));
  }
  SnapshotRegistry next = *this;
  next.records_[next.FindIndex(*active)].status = SnapshotStatus::kFailed;
  next.records_[next.FindIndex(target)].status = SnapshotStatus::kActive;
  next.history_.push_back(target);
  RETURN_IF_ERROR(next.Save());
  *this = std::move(next);
  TraceInstant("serve.registry", "rollback",
               "from=" + std::to_string(*active) +
                   " to=" + std::to_string(target));
  MetricsRegistry::Global().counter("serve.registry.rollbacks").Increment();
  return target;
}

Status SnapshotRegistry::Verify(int64_t id) const {
  const int index = FindIndex(id);
  if (index < 0) {
    return Status::NotFound("unknown snapshot " + std::to_string(id));
  }
  ASSIGN_OR_RETURN(const std::string bytes,
                   ReadRawFile(records_[index].path));
  const std::string actual = ContentChecksum(bytes);
  if (actual != records_[index].checksum) {
    return Status::InvalidArgument(
        "snapshot " + std::to_string(id) + " content drifted (registered " +
        records_[index].checksum + ", on disk " + actual + ")");
  }
  return Status::Ok();
}

std::optional<int64_t> SnapshotRegistry::active_id() const {
  for (const SnapshotRecord& record : records_) {
    if (record.status == SnapshotStatus::kActive) return record.id;
  }
  return std::nullopt;
}

Result<SnapshotRecord> SnapshotRegistry::Get(int64_t id) const {
  const int index = FindIndex(id);
  if (index < 0) {
    return Status::NotFound("unknown snapshot " + std::to_string(id));
  }
  return records_[index];
}

std::vector<int64_t> SnapshotRegistry::Lineage(int64_t id) const {
  std::vector<int64_t> chain;
  int64_t current = id;
  while (current != -1 && FindIndex(current) >= 0) {
    // Cycle guard: a well-formed manifest has no parent cycles, but a
    // hand-edited one must not hang us.
    if (std::find(chain.begin(), chain.end(), current) != chain.end()) break;
    chain.push_back(current);
    current = records_[FindIndex(current)].parent_id;
  }
  return chain;
}

}  // namespace activedp
