#ifndef ACTIVEDP_SERVE_SERVE_CLIENT_H_
#define ACTIVEDP_SERVE_SERVE_CLIENT_H_

#include <optional>

#include "serve/prediction_service.h"
#include "util/retry.h"

namespace activedp {

/// The "retry-after-ms=<n>" hint a PredictionService attaches to Unavailable
/// rejections (queue full / overload shed), parsed back out of the status
/// message. nullopt when the status carries no hint.
std::optional<double> RetryAfterHintMs(const Status& status);

/// Client-side submit wrapper: calls PredictionService::Predict and retries
/// transient rejections (Unavailable — shed/full-queue — and Internal —
/// failed batch) under the deterministic util/retry backoff, honouring the
/// larger of the computed backoff and the service's retry-after hint —
/// clamped to half the request's remaining deadline budget, so a shed
/// request never sleeps its own deadline away before the retry. Never
/// retries deterministic failures (FailedPrecondition, InvalidArgument) or
/// budget signals (DeadlineExceeded), and stops once `deadline` expires,
/// returning the last failure. Backoff sleeps only when `policy.sleep` is
/// set, mirroring Retrier; events land in `log` when provided.
Result<ServedPrediction> PredictWithRetry(PredictionService& service,
                                          const Example& example,
                                          Deadline deadline,
                                          const RetryPolicy& policy,
                                          RetryLog* log = nullptr);

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_SERVE_CLIENT_H_
