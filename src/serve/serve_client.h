#ifndef ACTIVEDP_SERVE_SERVE_CLIENT_H_
#define ACTIVEDP_SERVE_SERVE_CLIENT_H_

#include "serve/prediction_service.h"
#include "serve/serve_types.h"
#include "util/retry.h"

namespace activedp {

class ShardRouter;

/// Client-side submit wrapper: calls PredictionService::Predict and retries
/// transient rejections (Unavailable — shed/full-queue — and Internal —
/// failed batch) under the deterministic util/retry backoff, honouring the
/// larger of the computed backoff and the reply's structured
/// RejectInfo::retry_after_ms — clamped to half the request's remaining
/// deadline budget, so a shed request never sleeps its own deadline away
/// before the retry. Never retries deterministic failures
/// (FailedPrecondition, InvalidArgument) or budget signals
/// (DeadlineExceeded), and stops once the request deadline expires,
/// returning the last reply. Backoff sleeps only when `policy.sleep` is
/// set, mirroring Retrier; events land in `log` when provided.
ServeReply PredictWithRetry(PredictionService& service, ServeRequest request,
                            const RetryPolicy& policy,
                            RetryLog* log = nullptr);

/// Same retry discipline, submitting through a ShardRouter — the request's
/// tenant_id picks the shard and snapshot (serve/shard_router.h). Tenant
/// quota rejections (RejectReason::kQuotaExceeded) are retried like any
/// other Unavailable: in-flight requests complete and free quota.
ServeReply PredictWithRetry(ShardRouter& router, ServeRequest request,
                            const RetryPolicy& policy,
                            RetryLog* log = nullptr);

/// Deprecated positional-arg shim (pre-TenantMesh API; removal window: two
/// PRs, see README). Collapses the ServeReply to the legacy Result shape.
Result<ServedPrediction> PredictWithRetry(PredictionService& service,
                                          const Example& example,
                                          Deadline deadline,
                                          const RetryPolicy& policy,
                                          RetryLog* log = nullptr);

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_SERVE_CLIENT_H_
