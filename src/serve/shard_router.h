#ifndef ACTIVEDP_SERVE_SHARD_ROUTER_H_
#define ACTIVEDP_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/prediction_service.h"
#include "serve/rollout.h"
#include "serve/serve_config.h"
#include "serve/serve_types.h"
#include "serve/snapshot_registry.h"
#include "util/result.h"

namespace activedp {

/// Point-in-time view of one tenant's router state (see StatsFor()).
struct TenantStats {
  /// Shard the tenant's traffic routes to.
  int shard = 0;
  /// Requests admitted past the router (including ones later rejected by
  /// the shard itself).
  int64_t requests = 0;
  /// Requests shed at the router (quota + per-tenant overload).
  int64_t shed = 0;
  /// Requests currently between router admission and completion.
  int in_flight = 0;
  /// EWMA of this tenant's request round-trip (admission → completion).
  double ewma_request_ms = 0.0;
};

/// TenantMesh front door (DESIGN.md §15): one router owns N
/// PredictionService shards and a tenant table, and serves every tenant
/// behind the unified ServeRequest/ServeReply API.
///
/// Routing determinism contract: tenant → shard is a pure function of
/// (tenant_id, num_shards, virtual_nodes) — a counter hash of the tenant id
/// against a consistent-hash ring of virtual nodes, the same splitmix64
/// discipline as RolloutController. No request order, thread count, or load
/// level can change where a tenant routes; changing the shard count moves
/// only the tenants whose ring successor changed (bounded key movement,
/// tested in tests/shard_router_test.cc).
///
/// Per-tenant isolation: each tenant carries its own admission quota
/// (max_in_flight), its own EWMA overload shedder (max_queue_delay_ms — the
/// PredictionService shedder discipline, scoped to one tenant), and its own
/// deadline budget. One tenant's backlog sheds *that tenant's* requests
/// with a structured RejectInfo and never touches another tenant's traffic,
/// even on the same shard. Shed bursts past
/// RouterOptions::shed_burst_threshold fire a "router.tenant_overload"
/// flight-recorder incident.
///
/// Snapshots are per tenant: SetTenantSnapshot publishes a tenant's model
/// RCU-style (requests admitted after the swap use it; in-flight requests
/// drain on the snapshot pinned at their admission), and
/// RunTenantStagedRollout promotes/rolls back one tenant against its own
/// SnapshotRegistry without ever swapping another tenant.
///
/// Thread safety: Predict*/StatsFor/TenantSnapshot/CheckHealth are safe
/// from any thread. AddTenant/SetTenantSnapshot/AttachTenantRegistry are
/// control-plane calls — safe under the router lock, but the registry they
/// attach is single-writer (see SnapshotRegistry).
class ShardRouter {
 public:
  /// `config` should come from ServeConfigBuilder::Build(); the constructor
  /// CHECK-validates it as a backstop.
  explicit ShardRouter(ServeConfig config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// The shard `tenant_id` routes to — pure, no tenant table lookup.
  int ShardFor(const std::string& tenant_id) const;

  /// The routing function itself, for stability tests and capacity
  /// planning: same (tenant_id, num_shards, virtual_nodes) → same shard, in
  /// any process, forever.
  static int ShardForKey(const std::string& tenant_id, int num_shards,
                         int virtual_nodes);

  /// Adds a tenant with the config's default limits (or explicit ones).
  /// FailedPrecondition when the tenant is already registered.
  Status AddTenant(const std::string& tenant_id);
  Status AddTenant(const std::string& tenant_id, const TenantLimits& limits);

  /// Publishes `snapshot` as the tenant's active model (RCU: requests
  /// admitted from now on use it). NotFound for unknown tenants.
  Status SetTenantSnapshot(const std::string& tenant_id,
                           std::shared_ptr<const ModelSnapshot> snapshot);

  /// The snapshot a request from `tenant_id` admitted now would use (null
  /// when the tenant is unknown or has no snapshot yet).
  std::shared_ptr<const ModelSnapshot> TenantSnapshot(
      const std::string& tenant_id) const;

  /// Attaches the tenant's snapshot registry (borrowed; must outlive the
  /// router or be detached with nullptr). RunTenantStagedRollout promotes /
  /// rolls back against it.
  Status AttachTenantRegistry(const std::string& tenant_id,
                              SnapshotRegistry* registry);
  /// The attached registry; NotFound for unknown tenants,
  /// FailedPrecondition when none is attached.
  Result<SnapshotRegistry*> TenantRegistry(const std::string& tenant_id) const;

  /// Routes one request to its tenant's shard. The future resolves with the
  /// shard's reply, or immediately with the router's own rejection:
  /// InvalidArgument (empty tenant_id), NotFound (unknown tenant),
  /// Unavailable + RejectInfo (router shut down / tenant over quota /
  /// tenant overloaded). Requests with priority >= 1 bypass the tenant's
  /// adaptive shedder — never its quota. A tenant deadline budget clamps
  /// request.deadline before the shard sees it.
  std::future<ServeReply> PredictAsync(ServeRequest request);

  /// Convenience blocking wrapper around PredictAsync.
  ServeReply Predict(ServeRequest request);

  /// Callback form (see PredictionService::PredictWithCallback); `done` is
  /// never invoked under the router lock.
  void PredictWithCallback(ServeRequest request,
                           std::function<void(ServeReply)> done);

  Result<TenantStats> StatsFor(const std::string& tenant_id) const;
  std::vector<std::string> tenants() const;

  /// Ok when the router would admit requests right now; Unavailable after
  /// shutdown or when any shard reports unhealthy.
  Status CheckHealth() const;

  /// Stops admission and shuts every shard down (their queued requests
  /// still resolve). Idempotent; also run by the destructor.
  void Shutdown();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Direct shard access for tests and benches (e.g. arming an SLO engine).
  PredictionService& shard(int index) { return *shards_[index]; }

  const ServeConfig& config() const { return config_; }

 private:
  struct TenantEntry {
    int shard = 0;
    TenantLimits limits;
    std::shared_ptr<const ModelSnapshot> snapshot;
    SnapshotRegistry* registry = nullptr;  // borrowed
    int in_flight = 0;
    int64_t requests = 0;
    int64_t shed = 0;
    double ewma_request_ms = 0.0;
    // Rolling shed-burst window for the "router.tenant_overload" incident.
    int64_t shed_window_start_us = 0;
    int shed_window_count = 0;
  };

  /// One consistent-hash ring point: (hash, shard). The ring is immutable
  /// after construction, so ShardFor needs no lock.
  struct RingPoint {
    uint64_t hash = 0;
    int shard = 0;
  };

  static std::vector<RingPoint> BuildRing(int num_shards, int virtual_nodes);
  static int LookupRing(const std::vector<RingPoint>& ring,
                        const std::string& tenant_id);

  /// Called when a routed request completes: updates the tenant's in-flight
  /// count and EWMA under the router lock.
  void OnComplete(const std::string& tenant_id, double elapsed_ms);

  const ServeConfig config_;
  const std::vector<RingPoint> ring_;
  std::vector<std::unique_ptr<PredictionService>> shards_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, TenantEntry> tenants_;
  bool shutdown_ = false;
};

/// Runs one staged rollout for a single tenant, end to end — the
/// RunStagedRollout loop (serve/rollout.h) scoped to that tenant's registry,
/// snapshot and shard:
///
///   1. verifies + loads the tenant registry's active snapshot (baseline)
///      and `candidate_id`;
///   2. serves trace indices 0..window-1 as the tenant — baseline traffic
///      through the router (the live data plane), the canary fraction on
///      the candidate directly with a baseline shadow digest (honouring the
///      "rollout.canary" fault site);
///   3. promote = registry.Activate(candidate) +
///      router.SetTenantSnapshot(tenant, candidate); rollback =
///      registry.MarkFailed(candidate) — the tenant keeps serving its
///      baseline, and no other tenant's snapshot is touched either way.
///
/// Instants land under the same "serve.rollout" category as the
/// single-tenant path (promote / rollback, tagged with the tenant id), and
/// a rollback fires the "rollout.rollback" flight-recorder incident.
Result<RolloutReport> RunTenantStagedRollout(ShardRouter& router,
                                             const std::string& tenant_id,
                                             int64_t candidate_id,
                                             const std::vector<Example>& trace,
                                             const RolloutOptions& options);

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_SHARD_ROUTER_H_
