#ifndef ACTIVEDP_SERVE_SNAPSHOT_EXPORT_H_
#define ACTIVEDP_SERVE_SNAPSHOT_EXPORT_H_

#include "core/activedp.h"
#include "core/end_model.h"
#include "core/framework.h"
#include "serve/model_snapshot.h"
#include "util/result.h"

namespace activedp {

struct SnapshotExportOptions {
  /// Also train the downstream model on the aggregated labels and embed its
  /// weights (so the snapshot can serve end-model predictions too). Skipped
  /// without error when too few rows receive a label to train on.
  bool include_end_model = true;
  EndModelOptions end_model;
};

/// Exports a finished ActiveDP run as an immutable, servable snapshot:
/// featurizer state, the LabelPick-selected LFs, the fitted label-model
/// parameters, the AL-model weights, and the ConFusion threshold.
///
/// Runs the inference phase (CurrentTrainingLabels) first, so the exported
/// τ is freshly tuned on the validation split — the snapshot then predicts
/// bitwise identically to the offline aggregation at export time.
/// FailedPrecondition when the run has trained no model yet.
Result<ModelSnapshot> ExportSnapshot(
    ActiveDp& pipeline, const FrameworkContext& context,
    const SnapshotExportOptions& options = {});

}  // namespace activedp

#endif  // ACTIVEDP_SERVE_SNAPSHOT_EXPORT_H_
