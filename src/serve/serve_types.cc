#include "serve/serve_types.h"

namespace activedp {

std::string_view RejectReasonToString(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kShutdown:
      return "shutdown";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kOverloaded:
      return "overloaded";
    case RejectReason::kQuotaExceeded:
      return "quota-exceeded";
  }
  return "unknown";
}

}  // namespace activedp
