#include "serve/rollout.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/flight_recorder.h"
#include "serve/snapshot_io.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

constexpr char kCanaryFaultSite[] = "rollout.canary";

/// splitmix64 finalizer (same mix as util/fault.cc, util/retry.cc).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t PredictionDigest(const ServedPrediction& prediction) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto add_bits = [&hash](uint64_t bits) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
  };
  add_bits(static_cast<uint64_t>(prediction.label));
  add_bits(static_cast<uint64_t>(prediction.source));
  for (double p : prediction.proba) {
    uint64_t bits;
    std::memcpy(&bits, &p, sizeof(bits));
    add_bits(bits);
  }
  return hash;
}

std::string_view RolloutDecisionToString(RolloutDecision decision) {
  switch (decision) {
    case RolloutDecision::kPromote:
      return "promote";
    case RolloutDecision::kRollback:
      return "rollback";
  }
  return "unknown";
}

std::string RolloutReport::Summary() const {
  std::ostringstream out;
  out << "decision: " << RolloutDecisionToString(decision) << " (" << reason
      << ")\n";
  out << "canary: " << canary.requests << " requests, " << canary.errors
      << " errors (rate " << canary.error_rate() << "), mean latency "
      << canary.mean_latency_ms() << "ms\n";
  out << "baseline: " << baseline.requests << " requests, " << baseline.errors
      << " errors (rate " << baseline.error_rate() << "), mean latency "
      << baseline.mean_latency_ms() << "ms\n";
  out << "digest mismatches: " << digest_mismatches
      << ", latency ratio: " << latency_ratio << "\n";
  return out.str();
}

RolloutController::RolloutController(RolloutOptions options)
    : options_(std::move(options)),
      slots_(static_cast<size_t>(std::max(0, options_.window))) {}

bool RolloutController::RoutesToCanary(int64_t index) const {
  if (options_.canary_fraction <= 0.0) return false;
  if (options_.canary_fraction >= 1.0) return true;
  const uint64_t hash =
      Mix(options_.seed ^
          (static_cast<uint64_t>(index) * 0x9e3779b97f4a7c15ULL));
  // Top 53 bits → uniform double in [0, 1).
  const double u = static_cast<double>(hash >> 11) * 0x1.0p-53;
  return u < options_.canary_fraction;
}

void RolloutController::RecordOutcome(int64_t index, bool ok,
                                      bool digest_matches_baseline,
                                      double latency_ms) {
  if (index < 0 || index >= static_cast<int64_t>(slots_.size())) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[static_cast<size_t>(index)];
  slot.recorded = true;
  slot.ok = ok;
  slot.digest_match = digest_matches_baseline;
  slot.latency_ms = latency_ms;
}

bool RolloutController::WindowComplete() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& slot : slots_) {
    if (!slot.recorded) return false;
  }
  return true;
}

RolloutReport RolloutController::Decide() const {
  RolloutReport report;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Fold in index order: the report is a pure function of the per-index
    // outcomes, never of the order they were recorded in.
    for (size_t i = 0; i < slots_.size(); ++i) {
      const Slot& slot = slots_[i];
      if (!slot.recorded) continue;
      RolloutArmStats& arm = RoutesToCanary(static_cast<int64_t>(i))
                                 ? report.canary
                                 : report.baseline;
      ++arm.requests;
      if (!slot.ok) ++arm.errors;
      arm.total_latency_ms += slot.latency_ms;
      if (RoutesToCanary(static_cast<int64_t>(i)) && !slot.digest_match) {
        ++report.digest_mismatches;
      }
    }
  }
  if (report.baseline.mean_latency_ms() > 0.0 && report.canary.requests > 0) {
    report.latency_ratio =
        report.canary.mean_latency_ms() / report.baseline.mean_latency_ms();
  }

  if (report.canary.requests < options_.min_canary_samples) {
    report.decision = RolloutDecision::kRollback;
    report.reason = "insufficient canary samples (" +
                    std::to_string(report.canary.requests) + " of min " +
                    std::to_string(options_.min_canary_samples) + ")";
    return report;
  }
  const double canary_rate = report.canary.error_rate();
  const double baseline_rate = report.baseline.error_rate();
  if (canary_rate > baseline_rate + options_.max_error_rate_delta) {
    std::ostringstream reason;
    reason << "canary error rate " << canary_rate << " exceeds baseline "
           << baseline_rate << " + delta " << options_.max_error_rate_delta;
    report.decision = RolloutDecision::kRollback;
    report.reason = reason.str();
    return report;
  }
  if (options_.require_digest_match && report.digest_mismatches > 0) {
    report.decision = RolloutDecision::kRollback;
    report.reason = std::to_string(report.digest_mismatches) +
                    " canary responses diverged from the baseline digest";
    return report;
  }
  if (options_.max_latency_ratio > 0.0 &&
      report.latency_ratio > options_.max_latency_ratio) {
    std::ostringstream reason;
    reason << "canary latency ratio " << report.latency_ratio
           << " exceeds max " << options_.max_latency_ratio;
    report.decision = RolloutDecision::kRollback;
    report.reason = reason.str();
    return report;
  }
  report.decision = RolloutDecision::kPromote;
  report.reason = "all gates passed over a window of " +
                  std::to_string(options_.window) + " requests";
  return report;
}

Result<RolloutReport> RunStagedRollout(PredictionService& service,
                                       SnapshotRegistry& registry,
                                       int64_t candidate_id,
                                       const std::vector<Example>& trace,
                                       const RolloutOptions& options) {
  TraceSpan span("serve.rollout");
  span.AddArg("candidate", candidate_id);

  const std::optional<int64_t> active = registry.active_id();
  if (!active.has_value()) {
    return Status::FailedPrecondition(
        "no active snapshot to roll out against");
  }
  if (*active == candidate_id) {
    return Status::InvalidArgument("candidate " +
                                   std::to_string(candidate_id) +
                                   " is already the active snapshot");
  }
  ASSIGN_OR_RETURN(const SnapshotRecord candidate_record,
                   registry.Get(candidate_id));
  if (candidate_record.status == SnapshotStatus::kFailed) {
    return Status::FailedPrecondition(
        "candidate " + std::to_string(candidate_id) + " is marked failed");
  }
  ASSIGN_OR_RETURN(const SnapshotRecord active_record, registry.Get(*active));
  // Refuse to compare against drifted bytes: the decision below is only
  // meaningful when both arms serve exactly what was registered.
  RETURN_IF_ERROR(registry.Verify(*active));
  RETURN_IF_ERROR(registry.Verify(candidate_id));

  ASSIGN_OR_RETURN(ModelSnapshot baseline_loaded,
                   LoadSnapshot(active_record.path));
  ASSIGN_OR_RETURN(ModelSnapshot candidate_loaded,
                   LoadSnapshot(candidate_record.path));
  const auto baseline =
      std::make_shared<const ModelSnapshot>(std::move(baseline_loaded));
  const auto candidate =
      std::make_shared<const ModelSnapshot>(std::move(candidate_loaded));
  if (service.snapshot() == nullptr) service.LoadSnapshot(baseline);

  RolloutOptions window_options = options;
  window_options.window =
      std::min<int>(options.window, static_cast<int>(trace.size()));
  span.AddArg("window", window_options.window);
  RolloutController controller(window_options);

  // Serve the window: baseline traffic through the live service, the canary
  // fraction on the candidate directly, with a baseline shadow prediction
  // for the digest comparison. Indices are striped across client threads;
  // outcomes land in per-index slots, so the thread count cannot change the
  // decision.
  const int threads =
      std::max(1, std::min(options.client_threads, window_options.window));
  const auto serve_range = [&](int first) {
    for (int i = first; i < window_options.window; i += threads) {
      Timer timer;
      if (controller.RoutesToCanary(i)) {
        MetricsRegistry::Global()
            .counter("serve.rollout.canary_requests")
            .Increment();
        Result<ServedPrediction> served(
            Status::Internal("injected fault at rollout.canary"));
        if (CheckFault(kCanaryFaultSite, {FaultKind::kError}) !=
            FaultKind::kError) {
          served = candidate->Predict(trace[i]);
        }
        bool digest_match = true;
        if (served.ok()) {
          const Result<ServedPrediction> shadow = baseline->Predict(trace[i]);
          digest_match = shadow.ok() && PredictionDigest(*served) ==
                                            PredictionDigest(*shadow);
        }
        controller.RecordOutcome(i, served.ok(), digest_match,
                                 timer.ElapsedMillis());
      } else {
        const Result<ServedPrediction> served = service.Predict(trace[i]);
        controller.RecordOutcome(i, served.ok(), true, timer.ElapsedMillis());
      }
    }
  };
  if (threads == 1) {
    serve_range(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back(serve_range, t);
    }
    for (std::thread& worker : workers) worker.join();
  }

  RolloutReport report = controller.Decide();
  span.AddArg("canary_requests", report.canary.requests);
  span.AddArg("canary_errors", report.canary.errors);
  span.AddArg("digest_mismatches", report.digest_mismatches);
  span.AddArg("promoted",
              report.decision == RolloutDecision::kPromote ? 1 : 0);

  if (report.decision == RolloutDecision::kPromote) {
    RETURN_IF_ERROR(registry.Activate(candidate_id));
    // The RCU hot-swap: batches dispatched from now on use the candidate;
    // in-flight baseline batches drain on the old snapshot.
    service.LoadSnapshot(candidate);
    TraceInstant("serve.rollout", "promote",
                 "candidate=" + std::to_string(candidate_id) + " " +
                     report.reason);
    MetricsRegistry::Global().counter("serve.rollout.promotions").Increment();
  } else {
    RETURN_IF_ERROR(registry.MarkFailed(candidate_id));
    TraceInstant("serve.rollout", "rollback",
                 "candidate=" + std::to_string(candidate_id) + " " +
                     report.reason);
    MetricsRegistry::Global().counter("serve.rollout.rollbacks").Increment();
    // The instant above lands in the flight-recorder ring first, so the
    // dumped timeline always contains the rollback that triggered it.
    (void)FlightRecorder::Global().TriggerIncident("rollout.rollback");
  }
  return report;
}

}  // namespace activedp
