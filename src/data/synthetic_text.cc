#include "data/synthetic_text.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/check.h"

namespace activedp {
namespace {

/// Zipf-like weights 1/(rank+1)^exponent over `n` items.
std::vector<double> ZipfWeights(int n, double exponent) {
  std::vector<double> w(n);
  for (int i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return w;
}

}  // namespace

Dataset GenerateSyntheticText(const SyntheticTextConfig& config, Rng& rng) {
  CHECK_GE(config.num_classes, 2);
  CHECK_GT(config.signal_words_per_class, 0);
  CHECK_GT(config.background_words, 0);
  CHECK_GE(config.confusion_min, 0.0);
  CHECK_LE(config.confusion_max, 0.5);
  CHECK_LE(config.confusion_min, config.confusion_max);

  const int classes = config.num_classes;
  const int s = config.signal_words_per_class;
  const int w = config.weak_words_per_class;

  // Word tables. Class-y strong keyword i is "c<y>w<i>", weak cue i is
  // "c<y>q<i>", background is "bg<i>".
  std::vector<std::vector<std::string>> signal_words(classes);
  std::vector<std::vector<double>> signal_leak(classes);
  std::vector<std::vector<std::string>> weak_words(classes);
  std::vector<std::vector<double>> weak_leak(classes);
  for (int y = 0; y < classes; ++y) {
    signal_words[y].reserve(s);
    signal_leak[y].reserve(s);
    for (int i = 0; i < s; ++i) {
      signal_words[y].push_back("c" + std::to_string(y) + "w" +
                                std::to_string(i));
      signal_leak[y].push_back(
          rng.Uniform(config.confusion_min, config.confusion_max));
    }
    weak_words[y].reserve(w);
    weak_leak[y].reserve(w);
    for (int i = 0; i < w; ++i) {
      weak_words[y].push_back("c" + std::to_string(y) + "q" +
                              std::to_string(i));
      weak_leak[y].push_back(
          rng.Uniform(config.weak_confusion_min, config.weak_confusion_max));
    }
  }
  std::vector<std::string> background_words(config.background_words);
  for (int i = 0; i < config.background_words; ++i) {
    background_words[i] = "bg" + std::to_string(i);
  }

  const std::vector<double> signal_dist = ZipfWeights(s, 0.8);
  const std::vector<double> weak_dist = ZipfWeights(w, 0.5);
  const std::vector<double> background_dist =
      ZipfWeights(config.background_words, 1.0);

  std::vector<Example> examples;
  examples.reserve(config.num_examples);
  std::vector<std::vector<std::string>> documents;
  documents.reserve(config.num_examples);

  // Template groups over strong keywords (see header). group_of[i] is the
  // co-occurrence group of keyword index i.
  const int group_size = std::max(1, config.signal_group_size);
  const int num_groups = (s + group_size - 1) / group_size;
  const int groups_per_doc =
      std::min(num_groups, std::max(1, config.groups_per_doc));

  for (int n = 0; n < config.num_examples; ++n) {
    const int y = rng.UniformInt(classes);
    const int length =
        std::max(config.min_doc_length, rng.Poisson(config.doc_length_mean));
    // The document's template: which keyword groups it may draw from.
    std::vector<int> doc_groups =
        rng.SampleWithoutReplacement(num_groups, groups_per_doc);
    // Keyword weights restricted to the chosen groups.
    std::vector<double> doc_signal_dist(s, 0.0);
    for (int g : doc_groups) {
      for (int i = g * group_size; i < std::min(s, (g + 1) * group_size);
           ++i) {
        doc_signal_dist[i] = signal_dist[i];
      }
    }
    std::vector<std::string> tokens;
    tokens.reserve(length);
    for (int t = 0; t < length; ++t) {
      const double channel = rng.Uniform();
      if (channel < config.signal_rate) {
        // Draw a keyword owned by class y from this document's template
        // groups, then apply its per-word leak: with probability leak the
        // document instead shows a keyword owned by a different class (so
        // that keyword's LF misfires here).
        const int word = rng.Discrete(doc_signal_dist);
        int owner = y;
        if (rng.Bernoulli(signal_leak[y][word])) {
          owner = rng.UniformInt(classes - 1);
          if (owner >= y) ++owner;
        }
        tokens.push_back(signal_words[owner][word]);
      } else if (channel < config.signal_rate + config.weak_rate) {
        const int word = rng.Discrete(weak_dist);
        int owner = y;
        if (rng.Bernoulli(weak_leak[y][word])) {
          owner = rng.UniformInt(classes - 1);
          if (owner >= y) ++owner;
        }
        tokens.push_back(weak_words[owner][word]);
      } else {
        tokens.push_back(background_words[rng.Discrete(background_dist)]);
      }
    }
    Example e;
    e.label = y;
    if (config.label_noise > 0.0 && rng.Bernoulli(config.label_noise)) {
      int flipped = rng.UniformInt(classes - 1);
      if (flipped >= e.label) ++flipped;
      e.label = flipped;
    }
    std::string text;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (i > 0) text += ' ';
      text += tokens[i];
    }
    e.text = std::move(text);
    examples.push_back(std::move(e));
    documents.push_back(std::move(tokens));
  }

  Vocabulary vocab = Vocabulary::Build(documents, /*min_doc_count=*/2);

  // Index each document against the vocabulary.
  for (int n = 0; n < config.num_examples; ++n) {
    std::map<int, int> counts;
    for (const auto& token : documents[n]) {
      const int id = vocab.GetId(token);
      if (id != Vocabulary::kUnknownId) ++counts[id];
    }
    auto& tc = examples[n].term_counts;
    tc.reserve(counts.size());
    for (const auto& [id, count] : counts) tc.emplace_back(id, count);
  }

  DatasetMeta meta;
  meta.name = config.name;
  meta.task_description = config.task_description;
  meta.task = TaskType::kTextClassification;
  meta.num_classes = classes;
  for (int y = 0; y < classes; ++y) {
    meta.class_names.push_back("class" + std::to_string(y));
  }

  Dataset dataset(std::move(meta), std::move(examples));
  dataset.set_vocabulary(std::move(vocab));
  return dataset;
}

}  // namespace activedp
