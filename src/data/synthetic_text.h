#ifndef ACTIVEDP_DATA_SYNTHETIC_TEXT_H_
#define ACTIVEDP_DATA_SYNTHETIC_TEXT_H_

#include <string>

#include "data/dataset.h"
#include "util/rng.h"

namespace activedp {

/// Configuration of the class-conditional keyword generative model that
/// stands in for the paper's real text corpora (YouTube Spam, IMDB, Yelp,
/// Amazon, BiasBios). Each class has `signal_words_per_class` indicative
/// keywords; each keyword carries its own cross-class leak probability drawn
/// from [confusion_min, confusion_max], so keyword label functions span a
/// spectrum of accuracies exactly as they do on real data. `label_noise`
/// flips a fraction of ground-truth labels, setting the irreducible error
/// (how "hard" the dataset is for the downstream model).
struct SyntheticTextConfig {
  std::string name = "synthetic-text";
  std::string task_description = "synthetic classification";
  int num_examples = 2000;
  int num_classes = 2;
  /// Strong keywords: the LF-usable channel. Each word's leak is drawn from
  /// [confusion_min, confusion_max], giving keyword LFs accuracies roughly
  /// in [1-confusion_max, 1-confusion_min].
  int signal_words_per_class = 60;
  double signal_rate = 0.25;
  double confusion_min = 0.05;
  double confusion_max = 0.30;
  /// Template structure: each class's strong keywords are partitioned into
  /// co-occurrence groups of this size, and every document draws its strong
  /// keywords from `groups_per_doc` randomly chosen groups. Keywords within
  /// a group therefore co-occur heavily — like "check"/"channel" in one spam
  /// template — giving the label model the correlated, dependency-violating
  /// LFs that LabelPick's Markov blanket exists to prune (§3.4). Set
  /// signal_group_size <= 1 for independent keywords.
  int signal_group_size = 4;
  int groups_per_doc = 6;
  /// Weak cue words: individually too noisy for an LF (leak drawn from
  /// [weak_confusion_min, weak_confusion_max], putting their accuracy below
  /// the 0.6 candidate threshold) but collectively informative — the
  /// distributional signal only a trained feature model can exploit. This
  /// is what lets active learning overtake pure data programming at large
  /// budgets, as on the paper's real datasets.
  int weak_words_per_class = 80;
  double weak_rate = 0.35;
  double weak_confusion_min = 0.40;
  double weak_confusion_max = 0.48;
  int background_words = 400;
  /// Fraction of documents whose label is flipped after generation.
  double label_noise = 0.05;
  double doc_length_mean = 18.0;
  int min_doc_length = 4;
};

/// Generates a dataset from the keyword mixture model. The dataset's
/// vocabulary is built from the generated corpus, so downstream TF-IDF and
/// keyword-LF machinery run exactly as they would on real text.
Dataset GenerateSyntheticText(const SyntheticTextConfig& config, Rng& rng);

}  // namespace activedp

#endif  // ACTIVEDP_DATA_SYNTHETIC_TEXT_H_
