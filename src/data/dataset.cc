#include "data/dataset.h"

#include <numeric>

#include "util/check.h"

namespace activedp {

std::vector<int> Dataset::Labels() const {
  std::vector<int> labels;
  labels.reserve(examples_.size());
  for (const auto& e : examples_) labels.push_back(e.label);
  return labels;
}

std::vector<double> Dataset::ClassBalance() const {
  std::vector<double> balance(meta_.num_classes, 0.0);
  for (const auto& e : examples_) {
    CHECK_GE(e.label, 0);
    CHECK_LT(e.label, meta_.num_classes);
    balance[e.label] += 1.0;
  }
  if (!examples_.empty()) {
    for (double& b : balance) b /= static_cast<double>(examples_.size());
  }
  return balance;
}

DataSplit SplitDataset(const Dataset& full, double train_fraction,
                       double valid_fraction, Rng& rng) {
  CHECK_GT(train_fraction, 0.0);
  CHECK_GE(valid_fraction, 0.0);
  CHECK_LT(train_fraction + valid_fraction, 1.0 + 1e-9);
  const int n = full.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  const int n_train = static_cast<int>(train_fraction * n);
  const int n_valid = static_cast<int>(valid_fraction * n);

  auto make_part = [&](int begin, int end) {
    std::vector<Example> part;
    part.reserve(end - begin);
    for (int i = begin; i < end; ++i) part.push_back(full.example(order[i]));
    Dataset d(full.meta(), std::move(part));
    d.set_vocabulary(full.vocabulary());
    d.set_feature_names(full.feature_names());
    return d;
  };

  DataSplit split;
  split.train = make_part(0, n_train);
  split.valid = make_part(n_train, n_train + n_valid);
  split.test = make_part(n_train + n_valid, n);
  return split;
}

}  // namespace activedp
