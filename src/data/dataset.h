#ifndef ACTIVEDP_DATA_DATASET_H_
#define ACTIVEDP_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/example.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace activedp {

enum class TaskType { kTextClassification, kTabularClassification };

/// Static description of a labelled classification dataset.
struct DatasetMeta {
  std::string name;
  std::string task_description;
  TaskType task = TaskType::kTextClassification;
  int num_classes = 2;
  std::vector<std::string> class_names;
  /// Tabular only: number of raw features.
  int num_features = 0;
};

/// An in-memory labelled dataset. Text datasets carry a shared Vocabulary;
/// tabular datasets carry feature names. Ground-truth labels are stored on
/// the examples but the interactive frameworks only access them through the
/// simulated-user oracle and final evaluation.
class Dataset {
 public:
  Dataset() = default;
  Dataset(DatasetMeta meta, std::vector<Example> examples)
      : meta_(std::move(meta)), examples_(std::move(examples)) {}

  const DatasetMeta& meta() const { return meta_; }
  int size() const { return static_cast<int>(examples_.size()); }
  const Example& example(int i) const { return examples_[i]; }
  const std::vector<Example>& examples() const { return examples_; }
  std::vector<Example>& mutable_examples() { return examples_; }

  const Vocabulary& vocabulary() const { return vocab_; }
  void set_vocabulary(Vocabulary vocab) { vocab_ = std::move(vocab); }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  void set_feature_names(std::vector<std::string> names) {
    feature_names_ = std::move(names);
  }

  /// Ground-truth labels of all examples, in order.
  std::vector<int> Labels() const;

  /// Fraction of examples in each class.
  std::vector<double> ClassBalance() const;

 private:
  DatasetMeta meta_;
  std::vector<Example> examples_;
  Vocabulary vocab_;
  std::vector<std::string> feature_names_;
};

/// A train/validation/test partition sharing one meta/vocabulary.
struct DataSplit {
  Dataset train;
  Dataset valid;
  Dataset test;
};

/// Randomly partitions `examples` into train/valid/test with the given
/// fractions (test gets the remainder). Vocabulary/feature names/meta are
/// copied from `full` into each part.
DataSplit SplitDataset(const Dataset& full, double train_fraction,
                       double valid_fraction, Rng& rng);

}  // namespace activedp

#endif  // ACTIVEDP_DATA_DATASET_H_
