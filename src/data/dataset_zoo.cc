#include "data/dataset_zoo.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "data/synthetic_tabular.h"
#include "data/synthetic_text.h"
#include "util/check.h"

namespace activedp {

const std::vector<ZooEntry>& DatasetZoo() {
  static const std::vector<ZooEntry>* const kZoo = new std::vector<ZooEntry>{
      {"youtube", "Youtube", "Spam classification",
       TaskType::kTextClassification, 1566, 195, 195},
      {"imdb", "IMDB", "Sentiment analysis", TaskType::kTextClassification,
       20000, 2500, 2500},
      {"yelp", "Yelp", "Sentiment analysis", TaskType::kTextClassification,
       20000, 2500, 2500},
      {"amazon", "Amazon", "Sentiment analysis", TaskType::kTextClassification,
       20000, 2500, 2500},
      {"bios-pt", "Bios-PT", "Biography classification",
       TaskType::kTextClassification, 19672, 2458, 2458},
      {"bios-jp", "Bios-JP", "Biography classification",
       TaskType::kTextClassification, 25808, 3225, 3225},
      {"occupancy", "Occupancy", "Occupancy prediction",
       TaskType::kTabularClassification, 14317, 1789, 1789},
      {"census", "Census", "Income classification",
       TaskType::kTabularClassification, 25541, 3192, 3192},
  };
  return *kZoo;
}

std::vector<std::string> ZooDatasetNames() {
  std::vector<std::string> names;
  for (const auto& entry : DatasetZoo()) names.push_back(entry.name);
  return names;
}

Result<ZooEntry> FindZooEntry(const std::string& name) {
  for (const auto& entry : DatasetZoo()) {
    if (entry.name == name) return entry;
  }
  return Status::NotFound("unknown zoo dataset: " + name);
}

namespace {

/// Difficulty calibration per dataset (see DESIGN.md §1). The knobs trade
/// off keyword/stump LF accuracy spread (confusion range, separation) and
/// irreducible error (label noise) so end-model accuracy lands in the range
/// the paper reports.
struct TextDifficulty {
  double confusion_min;
  double confusion_max;
  double label_noise;
  double signal_rate;  // strong (LF-visible) channel
  double weak_rate;    // weak-cue channel (invisible to LFs)
  double doc_length_mean;
};

TextDifficulty TextDifficultyFor(const std::string& name) {
  if (name == "youtube") return {0.03, 0.22, 0.025, 0.30, 0.36, 12.0};
  if (name == "imdb") return {0.08, 0.32, 0.10, 0.26, 0.36, 24.0};
  if (name == "yelp") return {0.10, 0.35, 0.11, 0.24, 0.33, 22.0};
  if (name == "amazon") return {0.15, 0.42, 0.13, 0.22, 0.32, 20.0};
  if (name == "bios-pt") return {0.05, 0.28, 0.06, 0.26, 0.34, 22.0};
  if (name == "bios-jp") return {0.04, 0.24, 0.035, 0.28, 0.36, 22.0};
  CHECK(false) << "no text difficulty profile for " << name;
  return {};
}

struct TabularDifficulty {
  int num_features;
  int informative_features;
  double class_separation;
  double label_noise;
};

TabularDifficulty TabularDifficultyFor(const std::string& name) {
  if (name == "occupancy") return {5, 3, 3.0, 0.005};
  if (name == "census") return {14, 6, 1.0, 0.14};
  CHECK(false) << "no tabular difficulty profile for " << name;
  return {};
}

}  // namespace

Result<DataSplit> MakeZooDataset(const std::string& name, double scale,
                                 uint64_t seed) {
  ASSIGN_OR_RETURN(ZooEntry entry, FindZooEntry(name));
  if (scale <= 0.0) return Status::InvalidArgument("scale must be positive");

  const int total = std::max(
      60, static_cast<int>(std::lround(
              scale * (entry.paper_train + entry.paper_valid +
                       entry.paper_test))));

  Rng rng(seed ^ std::hash<std::string>{}(name));
  Dataset full;
  if (entry.type == TaskType::kTextClassification) {
    const TextDifficulty diff = TextDifficultyFor(name);
    SyntheticTextConfig config;
    config.name = entry.name;
    config.task_description = entry.task;
    config.num_examples = total;
    config.confusion_min = diff.confusion_min;
    config.confusion_max = diff.confusion_max;
    config.label_noise = diff.label_noise;
    config.signal_rate = diff.signal_rate;
    config.weak_rate = diff.weak_rate;
    config.doc_length_mean = diff.doc_length_mean;
    full = GenerateSyntheticText(config, rng);
  } else {
    const TabularDifficulty diff = TabularDifficultyFor(name);
    SyntheticTabularConfig config;
    config.name = entry.name;
    config.task_description = entry.task;
    config.num_examples = total;
    config.num_features = diff.num_features;
    config.informative_features = diff.informative_features;
    config.class_separation = diff.class_separation;
    config.label_noise = diff.label_noise;
    full = GenerateSyntheticTabular(config, rng);
  }

  // 80/10/10 split as in the paper (§4.1.1).
  return SplitDataset(full, 0.8, 0.1, rng);
}

}  // namespace activedp
