#include "data/csv_loader.h"

#include <cstdlib>
#include <map>

#include "text/tokenizer.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace activedp {
namespace {

/// Finds a header column by name (case-sensitive).
Result<int> FindColumn(const std::vector<std::string>& header,
                       const std::string& name) {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return Status::NotFound("column not found: " + name);
}

/// Maps string labels to dense ids in first-appearance order; numeric
/// labels map to themselves when they already form 0..C-1.
class LabelMapper {
 public:
  Result<int> Map(const std::string& raw) {
    auto it = ids_.find(raw);
    if (it != ids_.end()) return it->second;
    const int id = static_cast<int>(names_.size());
    ids_[raw] = id;
    names_.push_back(raw);
    return id;
  }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::map<std::string, int> ids_;
  std::vector<std::string> names_;
};

Result<std::vector<std::vector<std::string>>> ReadRows(
    const std::string& path) {
  ASSIGN_OR_RETURN(std::string content, ReadFile(path));
  ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                   ParseCsv(content));
  if (rows.size() < 2)
    return Status::InvalidArgument("CSV needs a header and at least one row");
  return rows;
}

}  // namespace

Result<Dataset> LoadTextCsv(const std::string& path,
                            const CsvLoadOptions& options) {
  ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                   ReadRows(path));
  ASSIGN_OR_RETURN(int text_col, FindColumn(rows[0], options.text_column));
  ASSIGN_OR_RETURN(int label_col, FindColumn(rows[0], options.label_column));

  Tokenizer tokenizer;
  LabelMapper labels;
  std::vector<Example> examples;
  std::vector<std::vector<std::string>> documents;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (static_cast<int>(rows[r].size()) <=
        std::max(text_col, label_col)) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " has too few columns");
    }
    Example e;
    e.text = rows[r][text_col];
    ASSIGN_OR_RETURN(e.label, labels.Map(rows[r][label_col]));
    documents.push_back(tokenizer.Tokenize(e.text));
    examples.push_back(std::move(e));
  }
  if (labels.names().size() < 2)
    return Status::InvalidArgument("dataset has fewer than 2 classes");

  Vocabulary vocab = Vocabulary::Build(documents, options.min_doc_count,
                                       options.max_vocabulary);
  for (size_t i = 0; i < examples.size(); ++i) {
    std::map<int, int> counts;
    for (const auto& token : documents[i]) {
      const int id = vocab.GetId(token);
      if (id != Vocabulary::kUnknownId) ++counts[id];
    }
    auto& tc = examples[i].term_counts;
    tc.reserve(counts.size());
    for (const auto& [id, count] : counts) tc.emplace_back(id, count);
  }

  DatasetMeta meta;
  meta.name = options.name;
  meta.task_description = "user CSV (text)";
  meta.task = TaskType::kTextClassification;
  meta.num_classes = static_cast<int>(labels.names().size());
  meta.class_names = labels.names();
  Dataset dataset(std::move(meta), std::move(examples));
  dataset.set_vocabulary(std::move(vocab));
  return dataset;
}

Result<Dataset> LoadTabularCsv(const std::string& path,
                               const CsvLoadOptions& options) {
  ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                   ReadRows(path));
  ASSIGN_OR_RETURN(int label_col, FindColumn(rows[0], options.label_column));

  std::vector<std::string> feature_names;
  std::vector<int> feature_cols;
  for (size_t c = 0; c < rows[0].size(); ++c) {
    if (static_cast<int>(c) == label_col) continue;
    feature_names.push_back(rows[0][c]);
    feature_cols.push_back(static_cast<int>(c));
  }
  if (feature_cols.empty())
    return Status::InvalidArgument("no feature columns besides the label");

  LabelMapper labels;
  std::vector<Example> examples;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != rows[0].size()) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " has a different column count");
    }
    Example e;
    e.features.reserve(feature_cols.size());
    for (int c : feature_cols) {
      char* end = nullptr;
      const std::string& cell = rows[r][c];
      const double value = std::strtod(cell.c_str(), &end);
      // The whole cell (modulo surrounding whitespace) must parse.
      if (end == cell.c_str() || !Trim(std::string_view(end)).empty()) {
        return Status::InvalidArgument("non-numeric feature value '" + cell +
                                       "' in row " + std::to_string(r));
      }
      e.features.push_back(value);
    }
    ASSIGN_OR_RETURN(e.label, labels.Map(rows[r][label_col]));
    examples.push_back(std::move(e));
  }
  if (labels.names().size() < 2)
    return Status::InvalidArgument("dataset has fewer than 2 classes");

  DatasetMeta meta;
  meta.name = options.name;
  meta.task_description = "user CSV (tabular)";
  meta.task = TaskType::kTabularClassification;
  meta.num_classes = static_cast<int>(labels.names().size());
  meta.class_names = labels.names();
  meta.num_features = static_cast<int>(feature_cols.size());
  Dataset dataset(std::move(meta), std::move(examples));
  dataset.set_feature_names(std::move(feature_names));
  return dataset;
}

}  // namespace activedp
