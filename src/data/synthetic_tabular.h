#ifndef ACTIVEDP_DATA_SYNTHETIC_TABULAR_H_
#define ACTIVEDP_DATA_SYNTHETIC_TABULAR_H_

#include <string>

#include "data/dataset.h"
#include "util/rng.h"

namespace activedp {

/// Configuration of the Gaussian-mixture tabular generator that stands in
/// for the paper's Occupancy and Census datasets. Informative features have
/// class-dependent means separated by `class_separation` standard deviations
/// (with graded strength across features, so decision-stump LFs span a range
/// of accuracies); the remaining features are identically distributed across
/// classes. `label_noise` flips a fraction of labels, setting the
/// irreducible error.
struct SyntheticTabularConfig {
  std::string name = "synthetic-tabular";
  std::string task_description = "synthetic tabular classification";
  int num_examples = 2000;
  int num_classes = 2;
  int num_features = 10;
  int informative_features = 4;
  /// Separation (in stddev units) of the strongest informative feature;
  /// feature k gets separation * (1 - k / (2*informative_features)).
  double class_separation = 1.5;
  double label_noise = 0.02;
};

/// Generates a tabular dataset from the Gaussian mixture model.
Dataset GenerateSyntheticTabular(const SyntheticTabularConfig& config,
                                 Rng& rng);

}  // namespace activedp

#endif  // ACTIVEDP_DATA_SYNTHETIC_TABULAR_H_
