#ifndef ACTIVEDP_DATA_CSV_LOADER_H_
#define ACTIVEDP_DATA_CSV_LOADER_H_

#include <string>

#include "data/dataset.h"
#include "util/result.h"

namespace activedp {

/// Options for loading user-supplied datasets from CSV, so the library can
/// be pointed at real corpora (e.g. the original YouTube Spam or Census
/// files) instead of the synthetic zoo.
struct CsvLoadOptions {
  /// Column holding the class label (by header name).
  std::string label_column = "label";
  /// Text tasks: column holding the document text.
  std::string text_column = "text";
  /// First row is a header (required; columns are addressed by name).
  /// Vocabulary pruning for text tasks.
  int min_doc_count = 2;
  int max_vocabulary = 0;  // 0 = unlimited
  std::string name = "csv-dataset";
};

/// Loads a text-classification dataset from a CSV with (at least) a text
/// column and a label column. Labels may be integers (0..C-1) or arbitrary
/// strings (mapped to ids in first-appearance order). Builds the vocabulary
/// and term counts so the full LF/TF-IDF machinery applies.
Result<Dataset> LoadTextCsv(const std::string& path,
                            const CsvLoadOptions& options = {});

/// Loads a tabular dataset from a CSV where every non-label column is a
/// numeric feature. Non-numeric feature cells are an error.
Result<Dataset> LoadTabularCsv(const std::string& path,
                               const CsvLoadOptions& options = {});

}  // namespace activedp

#endif  // ACTIVEDP_DATA_CSV_LOADER_H_
