#ifndef ACTIVEDP_DATA_EXAMPLE_H_
#define ACTIVEDP_DATA_EXAMPLE_H_

#include <string>
#include <utility>
#include <vector>

namespace activedp {

/// Sparse feature vector with strictly increasing indices. Used for TF-IDF
/// text features and (densely populated) tabular features.
struct SparseVector {
  std::vector<int> indices;
  std::vector<double> values;

  int nnz() const { return static_cast<int>(indices.size()); }

  void PushBack(int index, double value) {
    indices.push_back(index);
    values.push_back(value);
  }
};

/// x . w for dense weights (w must cover all indices).
double SparseDot(const SparseVector& x, const std::vector<double>& w);

/// w += alpha * x.
void SparseAxpy(double alpha, const SparseVector& x, std::vector<double>& w);

/// Scales x to unit Euclidean norm (no-op on the zero vector).
void L2Normalize(SparseVector& x);

/// One labelled instance. Text tasks populate `text` and `term_counts`
/// (vocabulary-id -> in-document count, sorted by id); tabular tasks populate
/// `features`. `label` is the hidden ground truth, visible only to the
/// simulated user and the final evaluation.
struct Example {
  std::string text;
  std::vector<std::pair<int, int>> term_counts;
  std::vector<double> features;
  int label = -1;

  /// True if the (text) example contains the vocabulary word `id`.
  bool HasToken(int id) const;
};

}  // namespace activedp

#endif  // ACTIVEDP_DATA_EXAMPLE_H_
